package centuryscale_test

import (
	"testing"
	"time"

	"centuryscale"
)

func TestPublicConcreteAPI(t *testing.T) {
	b := centuryscale.Bridge()
	r := centuryscale.RoadDeck()
	if b.ServiceLifeYears() < 45 || b.ServiceLifeYears() > 58 {
		t.Fatalf("bridge life = %v", b.ServiceLifeYears())
	}
	if r.ServiceLifeYears() >= b.ServiceLifeYears() {
		t.Fatal("road must wear out before bridge")
	}
	// Health declines over the structure's life.
	if b.HealthIndex(centuryscale.Years(55)) >= b.HealthIndex(centuryscale.Years(20)) {
		t.Fatal("health did not decline")
	}
}

func TestPublicAirQualityAPI(t *testing.T) {
	f := centuryscale.SyntheticAirField(2000, 10, 3)
	res := centuryscale.AirDensityStudy(f, []int{10, 1000}, 0.05, 3)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[1].Corr <= res[0].Corr {
		t.Fatal("density did not improve reconstruction")
	}
}

func TestPublicMeteringAPI(t *testing.T) {
	fleet := centuryscale.NewMeterFleet(200, 0.5, 4)
	base := fleet.Run(2, centuryscale.DefaultTariff(), nil)
	if base.TotalKWh <= 0 || base.PeakKW <= 0 {
		t.Fatalf("run = %+v", base)
	}
	out := centuryscale.DetectOutage(centuryscale.OutageParams{
		ReportEvery:   time.Hour,
		MissesToAlarm: 1,
		OutageAt:      90 * time.Minute,
		MetersOut:     10,
	})
	if out.Latency <= 0 || out.Latency > time.Hour {
		t.Fatalf("latency = %v", out.Latency)
	}
}

func TestPublicTrafficAPI(t *testing.T) {
	n := centuryscale.SynthesizeTraffic(10, 5000, 2)
	res := centuryscale.TrafficCoverageStudy(n, []int{2, 100}, 10, 2)
	var sparse, dense float64
	for _, r := range res {
		if r.Strategy == centuryscale.SampleRandom {
			if r.Instrumented == 2 {
				sparse = r.AbsRelErr
			} else {
				dense = r.AbsRelErr
			}
		}
	}
	if dense >= sparse {
		t.Fatalf("coverage did not reduce error: %v vs %v", dense, sparse)
	}
}

func TestPublicBridgeScenarioAPI(t *testing.T) {
	cfg := centuryscale.DefaultBridgeScenario()
	cfg.Sensors = 4
	cfg.Horizon = centuryscale.Years(3)
	out := centuryscale.RunBridgeScenario(cfg)
	if out.PacketsAccepted == 0 {
		t.Fatal("no packets accepted")
	}
	if out.HealthAtYear[1] < 0.9 {
		t.Fatalf("year-1 health = %v", out.HealthAtYear[1])
	}
}
