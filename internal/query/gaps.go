package query

import (
	"sort"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
)

// WeeklyUptime is the paper's end-to-end metric for one device over
// [0, horizon): the fraction of weeks with at least one arrival. Sealed
// weeks are answered from buckets (a bucket's week is its Start's week,
// exact whenever the tier widths divide a week — true for the default
// 1h/24h geometry), the tail from raw points.
func (e *Engine) WeeklyUptime(dev lpwan.EUI64, horizon time.Duration) float64 {
	total := int64(horizon / sim.Week)
	if total <= 0 {
		return 0
	}
	weeks := make(map[int64]bool)
	mark := func(t time.Duration) {
		if w := int64(t / sim.Week); w < total {
			weeks[w] = true
		}
	}
	var folded time.Duration
	if r := e.Src.RollupEngine(); r != nil {
		folded = r.FoldedBefore()
		hourly, daily := r.SeriesView(dev)
		dailyFolded := r.DailyFoldedBefore()
		for _, b := range daily {
			mark(b.Start)
		}
		for _, b := range hourly {
			if b.Start >= dailyFolded {
				mark(b.Start)
			}
		}
	}
	pts, release := e.Src.RawPoints(dev, folded, horizon)
	for _, p := range pts {
		if p.At >= folded {
			mark(p.At)
		}
	}
	release()
	return float64(len(weeks)) / float64(total)
}

// LongestGap returns one device's longest interval with no arrival in
// [0, horizon), counting the run-in from 0 to the first arrival and the
// run-out from the last arrival to the horizon. The sealed region is
// walked tier by tier: a bucket contributes its internal MaxGap plus
// the seam gap from the previous bucket's Last to its First, so the
// answer over buckets equals the answer over the raw points they
// summarized.
func (e *Engine) LongestGap(dev lpwan.EUI64, horizon time.Duration) time.Duration {
	var gap time.Duration
	prev := time.Duration(0)
	step := func(first, last, inner time.Duration) {
		if g := first - prev; g > gap {
			gap = g
		}
		if inner > gap {
			gap = inner
		}
		prev = last
	}
	var folded time.Duration
	if r := e.Src.RollupEngine(); r != nil {
		folded = r.FoldedBefore()
		hourly, daily := r.SeriesView(dev)
		dailyFolded := r.DailyFoldedBefore()
		for _, b := range daily {
			step(b.First, b.Last, b.MaxGap)
		}
		for _, b := range hourly {
			if b.Start >= dailyFolded {
				step(b.First, b.Last, b.MaxGap)
			}
		}
	}
	pts, release := e.Src.RawPoints(dev, folded, horizon)
	ts := make([]time.Duration, 0, len(pts))
	for _, p := range pts {
		if p.At >= folded && p.At < horizon {
			ts = append(ts, p.At)
		}
	}
	release()
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for _, t := range ts {
		step(t, t, 0)
	}
	if g := horizon - prev; g > gap {
		gap = g
	}
	return gap
}

// DeviceGap pairs a device with its longest no-arrival interval.
type DeviceGap struct {
	Device lpwan.EUI64
	Gap    time.Duration
}

// TopGaps returns the k devices with the longest no-arrival intervals
// in [0, horizon), longest first, ties broken by ascending device
// address — the "which sensors are dying" dashboard query. Devices are
// drawn from both the rollup tiers and the raw store, so a device whose
// every point has been folded away still ranks.
func (e *Engine) TopGaps(k int, horizon time.Duration) []DeviceGap {
	if k <= 0 {
		return nil
	}
	seen := make(map[lpwan.EUI64]bool)
	var devs []lpwan.EUI64
	if r := e.Src.RollupEngine(); r != nil {
		for _, d := range r.Devices() {
			if !seen[d] {
				seen[d] = true
				devs = append(devs, d)
			}
		}
	}
	for _, d := range e.Src.RawDevices() {
		if !seen[d] {
			seen[d] = true
			devs = append(devs, d)
		}
	}
	out := make([]DeviceGap, 0, len(devs))
	for _, d := range devs {
		out = append(out, DeviceGap{Device: d, Gap: e.LongestGap(d, horizon)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gap != out[j].Gap {
			return out[i].Gap > out[j].Gap
		}
		return out[i].Device.Uint64() < out[j].Device.Uint64()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
