package query

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rng"
	"centuryscale/internal/rollup"
	"centuryscale/internal/sim"
	"centuryscale/internal/tsdb"
)

// naiveAgg is the oracle: one window's aggregate computed directly from
// At-sorted raw points, written independently of the engine's
// accumulator so the property test compares two implementations.
func naiveAgg(sorted []tsdb.Point, ws, we time.Duration) WindowAgg {
	w := WindowAgg{Start: ws}
	prev := ws
	for _, p := range sorted {
		if p.At < ws || p.At >= we {
			continue
		}
		if w.Count == 0 {
			w.Min, w.Max = p.Value, p.Value
		} else {
			if p.Value < w.Min {
				w.Min = p.Value
			}
			if p.Value > w.Max {
				w.Max = p.Value
			}
		}
		if g := p.At - prev; g > w.MaxGap {
			w.MaxGap = g
		}
		prev = p.At
		w.Count++
		w.Sum += float64(p.Value)
	}
	if g := we - prev; g > w.MaxGap {
		w.MaxGap = g
	}
	return w
}

func naiveUptime(pts []tsdb.Point, horizon time.Duration) float64 {
	total := int64(horizon / sim.Week)
	if total <= 0 {
		return 0
	}
	weeks := make(map[int64]bool)
	for _, p := range pts {
		if w := int64(p.At / sim.Week); w < total {
			weeks[w] = true
		}
	}
	return float64(len(weeks)) / float64(total)
}

func naiveGap(sorted []tsdb.Point, horizon time.Duration) time.Duration {
	var gap time.Duration
	prev := time.Duration(0)
	for _, p := range sorted {
		if p.At >= horizon {
			break
		}
		if g := p.At - prev; g > gap {
			gap = g
		}
		prev = p.At
	}
	if g := horizon - prev; g > gap {
		gap = g
	}
	return gap
}

func sortPts(pts []tsdb.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].At < pts[j].At })
}

func memDB(t testing.TB) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return db
}

func TestWindowsBadArgs(t *testing.T) {
	q := &Engine{Src: DBSource{DB: memDB(t)}}
	dev := lpwan.EUIFromUint64(1)
	for _, c := range []struct{ from, to, step time.Duration }{
		{0, time.Hour, 0},
		{0, time.Hour, -time.Minute},
		{time.Hour, time.Hour, time.Minute},
		{2 * time.Hour, time.Hour, time.Minute},
		{-time.Hour, time.Hour, time.Minute},
	} {
		if _, err := q.Windows(dev, c.from, c.to, c.step); !errors.Is(err, ErrBadWindow) {
			t.Fatalf("Windows(%v,%v,%v): err = %v, want ErrBadWindow", c.from, c.to, c.step, err)
		}
	}
}

func TestWindowsAlignmentBelowWatermark(t *testing.T) {
	db := memDB(t)
	dev := lpwan.EUIFromUint64(7)
	db.Load(tsdb.Point{Device: dev, At: 10 * time.Minute, Seq: 1, Value: 1})
	eng, err := rollup.New(rollup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wm := eng.Advance(2 * time.Hour)
	eng.Fold(db.DrainBelow(wm))
	q := &Engine{Src: DBSource{DB: db, Rollups: eng}}

	if _, err := q.Windows(dev, 30*time.Minute, 4*time.Hour, time.Hour); err == nil {
		t.Fatal("unaligned from below watermark accepted")
	}
	if _, err := q.Windows(dev, 0, 4*time.Hour, 90*time.Minute); err == nil {
		t.Fatal("unaligned step below watermark accepted")
	}
	// At or above the watermark the grid is unconstrained.
	it, err := q.Windows(dev, 2*time.Hour+30*time.Minute, 4*time.Hour, 17*time.Minute)
	if err != nil {
		t.Fatalf("aligned-above query refused: %v", err)
	}
	it.Close()
}

func TestWindowsRawOnly(t *testing.T) {
	db := memDB(t)
	dev := lpwan.EUIFromUint64(3)
	pts := []tsdb.Point{
		{Device: dev, At: 5 * time.Minute, Seq: 1, Value: 4},
		{Device: dev, At: 50 * time.Minute, Seq: 2, Value: -2},
		{Device: dev, At: 3*time.Hour + time.Minute, Seq: 3, Value: 10},
	}
	// Load out of order: the iterator must sort.
	db.Load(pts[2])
	db.Load(pts[0])
	db.Load(pts[1])
	q := &Engine{Src: DBSource{DB: db}}

	it, err := q.Windows(dev, 0, 4*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []WindowAgg
	for it.Next() {
		got = append(got, it.Window())
	}
	sortPts(pts)
	for i, w := range got {
		ws := time.Duration(i) * time.Hour
		if want := naiveAgg(pts, ws, ws+time.Hour); w != want {
			t.Fatalf("window %d: got %+v want %+v", i, w, want)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %d windows, want 4", len(got))
	}
	// Empty windows carry the full step as MaxGap.
	if got[1].Count != 0 || got[1].MaxGap != time.Hour {
		t.Fatalf("empty window: %+v", got[1])
	}
	if tiers := it.Tiers(); tiers.Raw != 3 || tiers.Daily != 0 || tiers.Hourly != 0 {
		t.Fatalf("tiers = %+v, want raw-only", tiers)
	}
}

// TestWindowsTierStitching pins the tier-selection rule on a hand-built
// series: 30-minute cadence over 3 days, folded through 49h, so a
// [0,72h) daily-step query must consume 2 daily buckets, 1 hourly edge
// bucket, and the raw tail.
func TestWindowsTierStitching(t *testing.T) {
	db := memDB(t)
	dev := lpwan.EUIFromUint64(0xAB)
	var pts []tsdb.Point
	seq := uint32(0)
	for at := time.Duration(0); at < 72*time.Hour; at += 30 * time.Minute {
		seq++
		pts = append(pts, tsdb.Point{Device: dev, At: at, Seq: seq, Value: float32(seq % 13)})
	}
	for _, p := range pts {
		db.Load(p)
	}
	eng, err := rollup.New(rollup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wm := eng.Advance(49 * time.Hour)
	if wm != 49*time.Hour {
		t.Fatalf("watermark = %v", wm)
	}
	eng.Fold(db.DrainBelow(wm))
	q := &Engine{Src: DBSource{DB: db, Rollups: eng}}

	it, err := q.Windows(dev, 0, 72*time.Hour, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		ws := time.Duration(i) * 24 * time.Hour
		if got, want := it.Window(), naiveAgg(pts, ws, ws+24*time.Hour); got != want {
			t.Fatalf("window %d: got %+v want %+v", i, got, want)
		}
		i++
	}
	if i != 3 {
		t.Fatalf("got %d windows, want 3", i)
	}
	tiers := it.Tiers()
	if tiers.Daily != 2 || tiers.Hourly != 1 {
		t.Fatalf("tiers = %+v, want 2 daily + 1 hourly", tiers)
	}
	// Raw tail is [49h, 72h): 46 points at 30-minute cadence.
	if tiers.Raw != 46 {
		t.Fatalf("raw hits = %d, want 46", tiers.Raw)
	}
}

// TestWindowsEmptyBuckets crosses a multi-day silence: gap statistics
// must stitch across absent buckets and window seams.
func TestWindowsEmptyBuckets(t *testing.T) {
	db := memDB(t)
	dev := lpwan.EUIFromUint64(0xCD)
	pts := []tsdb.Point{
		{Device: dev, At: 10 * time.Minute, Seq: 1, Value: 1},
		{Device: dev, At: 30 * time.Hour, Seq: 2, Value: 2},
		{Device: dev, At: 31 * time.Hour, Seq: 3, Value: 3},
	}
	for _, p := range pts {
		db.Load(p)
	}
	eng, err := rollup.New(rollup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Fold(db.DrainBelow(eng.Advance(48 * time.Hour)))
	q := &Engine{Src: DBSource{DB: db, Rollups: eng}}

	for _, step := range []time.Duration{48 * time.Hour, 24 * time.Hour, 6 * time.Hour} {
		it, err := q.Windows(dev, 0, 48*time.Hour, step)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for it.Next() {
			ws := time.Duration(i) * step
			if got, want := it.Window(), naiveAgg(pts, ws, ws+step); got != want {
				t.Fatalf("step %v window %d: got %+v want %+v", step, i, got, want)
			}
			i++
		}
		it.Close()
	}
}

// TestRollupVsNaiveProperty is the satellite's core: seeded random
// workloads where every windowed aggregate computed from rollup tiers
// equals the same aggregate computed from the raw points they replaced
// — including gap statistics across bucket boundaries and empty
// buckets. Values are small integers so float64 sums are exact in any
// association; equality is therefore ==, not approximate.
func TestRollupVsNaiveProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := rng.New(0xC0DE0000 + seed)
			devs := []lpwan.EUI64{
				lpwan.EUIFromUint64(0x100 + seed),
				lpwan.EUIFromUint64(0x200 + seed),
				lpwan.EUIFromUint64(0x300 + seed),
			}
			horizon := 45 * sim.Day
			perDev := make(map[lpwan.EUI64][]tsdb.Point)
			db := memDB(t)
			for _, d := range devs {
				at := time.Duration(src.Intn(int(2 * time.Hour)))
				seq := uint32(0)
				for at < horizon {
					seq++
					p := tsdb.Point{
						Device: d, At: at, Seq: seq,
						Sensor: uint8(src.Intn(3)),
						Value:  float32(src.Intn(2001) - 1000),
					}
					perDev[d] = append(perDev[d], p)
					db.Load(p)
					// Mostly minutes between arrivals; occasionally days of
					// silence, so empty hourly AND daily buckets occur.
					if src.Intn(10) == 0 {
						at += time.Duration(src.Int63n(int64(3*sim.Day))) + time.Minute
					} else {
						at += time.Duration(src.Int63n(int64(2*time.Hour))) + time.Second
					}
				}
			}

			eng, err := rollup.New(rollup.Config{})
			if err != nil {
				t.Fatal(err)
			}
			wm := eng.Advance(time.Duration(src.Int63n(int64(horizon))))
			eng.Fold(db.DrainBelow(wm))
			if eng.StaleDrops() != 0 {
				t.Fatalf("fold dropped %d points as stale", eng.StaleDrops())
			}
			q := &Engine{Src: DBSource{DB: db, Rollups: eng}}

			steps := []time.Duration{time.Hour, 2 * time.Hour, 6 * time.Hour, sim.Day, sim.Week}
			for trial := 0; trial < 40; trial++ {
				d := devs[src.Intn(len(devs))]
				step := steps[src.Intn(len(steps))]
				from := rollup.AlignDown(time.Duration(src.Int63n(int64(horizon))), time.Hour)
				n := 1 + src.Intn(20)
				to := from + time.Duration(n)*step
				it, err := q.Windows(d, from, to, step)
				if err != nil {
					t.Fatalf("Windows(%v, %v..%v/%v): %v", d, from, to, step, err)
				}
				i := 0
				for it.Next() {
					ws := from + time.Duration(i)*step
					got, want := it.Window(), naiveAgg(perDev[d], ws, ws+step)
					if got != want {
						t.Fatalf("seed %d trial %d dev %v window [%v,%v): got %+v want %+v (watermark %v)",
							seed, trial, d, ws, ws+step, got, want, wm)
					}
					i++
				}
				it.Close()
				if i != n {
					t.Fatalf("got %d windows, want %d", i, n)
				}
			}

			for _, d := range devs {
				if got, want := q.WeeklyUptime(d, horizon), naiveUptime(perDev[d], horizon); got != want {
					t.Fatalf("WeeklyUptime(%v) = %v, want %v", d, got, want)
				}
				if got, want := q.LongestGap(d, horizon), naiveGap(perDev[d], horizon); got != want {
					t.Fatalf("LongestGap(%v) = %v, want %v", d, got, want)
				}
			}

			want := make([]DeviceGap, 0, len(devs))
			for _, d := range devs {
				want = append(want, DeviceGap{Device: d, Gap: naiveGap(perDev[d], horizon)})
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Gap != want[j].Gap {
					return want[i].Gap > want[j].Gap
				}
				return want[i].Device.Uint64() < want[j].Device.Uint64()
			})
			got := q.TopGaps(2, horizon)
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("TopGaps = %+v, want %+v", got, want[:2])
			}
		})
	}
}

func TestWeeklyUptimeAcrossTiers(t *testing.T) {
	db := memDB(t)
	dev := lpwan.EUIFromUint64(0xEF)
	// Arrivals in weeks 0 and 2 of a 3-week horizon; week 0 ends up
	// entirely in sealed buckets, week 2 stays raw.
	db.Load(tsdb.Point{Device: dev, At: 3 * sim.Day, Seq: 1, Value: 1})
	db.Load(tsdb.Point{Device: dev, At: 15 * sim.Day, Seq: 2, Value: 2})
	eng, err := rollup.New(rollup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Fold(db.DrainBelow(eng.Advance(10 * sim.Day)))
	q := &Engine{Src: DBSource{DB: db, Rollups: eng}}
	if got := q.WeeklyUptime(dev, 3*sim.Week); got != 2.0/3.0 {
		t.Fatalf("WeeklyUptime = %v, want 2/3", got)
	}
}

// TestTopGapsFoldedAwayDevice: a device whose every point has been
// folded (and drained) must still rank, sourced from the tiers alone.
func TestTopGapsFoldedAwayDevice(t *testing.T) {
	db := memDB(t)
	cold := lpwan.EUIFromUint64(0x10)
	warm := lpwan.EUIFromUint64(0x20)
	db.Load(tsdb.Point{Device: cold, At: time.Hour, Seq: 1, Value: 1})
	db.Load(tsdb.Point{Device: warm, At: time.Hour, Seq: 1, Value: 1})
	db.Load(tsdb.Point{Device: warm, At: 9 * sim.Day, Seq: 2, Value: 2})
	eng, err := rollup.New(rollup.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Fold(db.DrainBelow(eng.Advance(2 * sim.Day)))
	q := &Engine{Src: DBSource{DB: db, Rollups: eng}}

	got := q.TopGaps(10, 10*sim.Day)
	if len(got) != 2 {
		t.Fatalf("TopGaps returned %d devices, want 2", len(got))
	}
	// cold's gap: from its only arrival at 1h to the 10-day horizon.
	if got[0].Device != cold || got[0].Gap != 10*sim.Day-time.Hour {
		t.Fatalf("top gap = %+v", got[0])
	}
	if got[1].Device != warm || got[1].Gap != 9*sim.Day-time.Hour {
		t.Fatalf("second gap = %+v", got[1])
	}
}

func TestMergeLongestGap(t *testing.T) {
	series := [][]time.Duration{
		{2 * time.Hour, 5 * time.Hour},
		{3 * time.Hour},
		nil,
	}
	// Union of arrivals: 2h, 3h, 5h over a 12h horizon → run-out 7h.
	if got := MergeLongestGap(series, 12*time.Hour); got != 7*time.Hour {
		t.Fatalf("MergeLongestGap = %v, want 7h", got)
	}
	if got := MergeLongestGap(nil, time.Hour); got != time.Hour {
		t.Fatalf("empty MergeLongestGap = %v, want horizon", got)
	}
}
