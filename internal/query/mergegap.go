package query

import (
	"sort"
	"time"
)

// MergeLongestGap returns the longest interval between consecutive
// arrivals across ALL series within [0, horizon), including the gap
// from 0 to the first arrival and from the last arrival to the horizon.
// It answers "how close did the fleet come to missing its weekly
// deadline" — the cross-device counterpart of Engine.LongestGap.
//
// The input is already mostly ordered: each series is one device's
// arrival-order run, sorted by At within one daemon run. So instead of
// flattening every time into one slice and re-sorting the whole history
// (O(n log n) per call, with n growing for 50 years), the runs are
// k-way merged through a min-heap: O(n log k) time and O(k) heap state.
// A run that is locally unsorted (a restart resets the arrival clock)
// is detected and sorted alone before the merge.
//
// This grew up as cloud.Store.LongestGap (PR 5); it lives here now so
// the fleet-wide raw path and the per-device tier path share one
// package, and cloud delegates to it.
func MergeLongestGap(series [][]time.Duration, horizon time.Duration) time.Duration {
	h := make(gapHeap, 0, len(series))
	for _, ts := range series {
		if len(ts) == 0 {
			continue
		}
		if !sortedTimes(ts) {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		}
		h = append(h, gapCursor{ts: ts})
	}
	if len(h) == 0 {
		return horizon
	}
	h.init()

	// Streaming min-merge: each pop yields the globally next arrival.
	prev := time.Duration(0) // gap from experiment start to first packet counts
	var gap time.Duration
	for len(h) > 0 {
		cur := &h[0]
		at := cur.ts[cur.i]
		if d := at - prev; d > gap {
			gap = d
		}
		prev = at
		cur.i++
		if cur.i == len(cur.ts) {
			h.popRoot()
		} else {
			h.siftDown(0)
		}
	}
	if d := horizon - prev; d > gap {
		gap = d
	}
	return gap
}

func sortedTimes(ts []time.Duration) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return false
		}
	}
	return true
}

// gapCursor walks one device's sorted arrival times.
type gapCursor struct {
	ts []time.Duration
	i  int
}

// gapHeap is a min-heap of cursors ordered by their next arrival time —
// hand-rolled so the merge stays allocation-free after setup (the
// container/heap interface boxes every operation).
type gapHeap []gapCursor

func (h gapHeap) less(i, j int) bool { return h[i].ts[h[i].i] < h[j].ts[h[j].i] }

func (h gapHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h gapHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(h) && h.less(l, least) {
			least = l
		}
		if r < len(h) && h.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// popRoot removes the root cursor (its series is exhausted).
func (h *gapHeap) popRoot() {
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	h.siftDown(0)
}
