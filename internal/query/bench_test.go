package query

import (
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rng"
	"centuryscale/internal/rollup"
	"centuryscale/internal/sim"
	"centuryscale/internal/tsdb"
)

// buildCentury loads one device's full century at the paper's data rate
// (one packet per hour, with deterministic sub-hour jitter), optionally
// folding everything but the last 30 days into rollup tiers. ~876k
// points; the rollup variant keeps ~37k buckets plus the raw tail.
func buildCentury(b *testing.B, fold bool) (*Engine, lpwan.EUI64, time.Duration) {
	b.Helper()
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dev := lpwan.EUIFromUint64(0xCE9701)
	src := rng.New(42)
	horizon := 100 * sim.Year
	var seq uint32
	for at := time.Duration(0); at < horizon; at += time.Hour {
		seq++
		jitter := time.Duration(src.Intn(int(10 * time.Minute)))
		db.Load(tsdb.Point{Device: dev, At: at + jitter, Seq: seq, Value: float32(src.Intn(100))})
	}
	var eng *rollup.Engine
	if fold {
		eng, err = rollup.New(rollup.Config{})
		if err != nil {
			b.Fatal(err)
		}
		wm := eng.Advance(horizon - 30*sim.Day)
		eng.Fold(db.DrainBelow(wm))
	}
	return &Engine{Src: DBSource{DB: db, Rollups: eng}}, dev, horizon
}

func benchCenturyWindows(b *testing.B, fold bool) {
	q, dev, horizon := buildCentury(b, fold)
	b.ResetTimer()
	var windows int
	var tiers TierHits
	for i := 0; i < b.N; i++ {
		it, err := q.Windows(dev, 0, horizon, sim.Week)
		if err != nil {
			b.Fatal(err)
		}
		windows = 0
		var count uint64
		for it.Next() {
			count += it.Window().Count
			windows++
		}
		tiers = it.Tiers()
		it.Close()
		if count == 0 {
			b.Fatal("century query saw no points")
		}
	}
	b.ReportMetric(float64(windows), "windows/op")
	b.ReportMetric(float64(tiers.Daily), "daily_buckets/op")
	b.ReportMetric(float64(tiers.Hourly), "hourly_buckets/op")
	b.ReportMetric(float64(tiers.Raw), "raw_points/op")
}

// BenchmarkQueryCenturyRollup is the headline read-path number: weekly
// aggregate windows over a 100-year series, answered from rollup tiers
// plus a 30-day raw tail. The acceptance bar is <10 ms per full-century
// query.
func BenchmarkQueryCenturyRollup(b *testing.B) { benchCenturyWindows(b, true) }

// BenchmarkQueryCenturyRawScan is the same query with rollups disabled:
// every window answered by scanning raw points. The ratio against
// BenchmarkQueryCenturyRollup is the read path's century dividend.
func BenchmarkQueryCenturyRawScan(b *testing.B) { benchCenturyWindows(b, false) }

// BenchmarkQueryCenturyTopGaps exercises the dashboard's device-health
// query over the same folded century.
func BenchmarkQueryCenturyTopGaps(b *testing.B) {
	q, _, horizon := buildCentury(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gaps := q.TopGaps(10, horizon); len(gaps) == 0 {
			b.Fatal("no devices ranked")
		}
	}
}
