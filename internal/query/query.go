// Package query is the read side's front door: a streaming query layer
// over the rollup tiers plus the raw tail. Windowed aggregation picks
// the coarsest tier that covers each part of the window — daily buckets
// for the daily-aligned middle of the sealed region, hourly buckets for
// its edges, raw points above the fold watermark — and stitches gap
// statistics across the seams, so a dashboard question over a century
// of data costs O(buckets in window), not O(points ever stored).
//
// The layer is deliberately storage-agnostic: it reads through the
// small Source interface, so the same engine serves the endpoint's
// in-process store, tests over a bare tsdb.DB, and benchmarks.
// Everything here is pure virtual-time arithmetic — no wall clock.
package query

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rollup"
	"centuryscale/internal/tsdb"
)

// ErrBadWindow rejects non-positive steps and empty or negative ranges.
var ErrBadWindow = errors.New("query: window range must be non-empty with a positive step")

// Source is what the query engine reads. RollupEngine may return nil
// (rollups disabled), in which case every query runs over raw points.
// RawPoints returns one device's points with At in [from, to) plus a
// release func for the underlying pooled buffer; the slice must not be
// used after release.
type Source interface {
	RollupEngine() *rollup.Engine
	RawPoints(dev lpwan.EUI64, from, to time.Duration) ([]tsdb.Point, func())
	RawDevices() []lpwan.EUI64
}

// DBSource adapts a bare tsdb.DB (+ optional rollup engine) to Source —
// the binding used by cloud.Store and by tests and benchmarks that
// don't want a full endpoint.
type DBSource struct {
	DB      *tsdb.DB
	Rollups *rollup.Engine // nil = raw only
}

func (s DBSource) RollupEngine() *rollup.Engine { return s.Rollups }

func (s DBSource) RawPoints(dev lpwan.EUI64, from, to time.Duration) ([]tsdb.Point, func()) {
	return s.DB.RangeSlice(dev, from, to)
}

func (s DBSource) RawDevices() []lpwan.EUI64 { return s.DB.Devices() }

// Engine answers aggregate queries through a Source.
type Engine struct {
	Src Source
}

// WindowAgg is one window's aggregate. MaxGap is the largest interval
// inside [Start, Start+step) with no arrival, counting the run-in from
// the window start to the first arrival and the run-out from the last
// arrival to the window end; an empty window's MaxGap is the full step.
type WindowAgg struct {
	Start  time.Duration
	Count  uint64
	Sum    float64
	Min    float32
	Max    float32
	MaxGap time.Duration
}

// TierHits counts what each tier contributed to a query — the
// observability hook proving tier selection actually engaged (a century
// query that reports millions of raw hits is a selection bug).
type TierHits struct {
	Daily  int // daily buckets consumed
	Hourly int // hourly buckets consumed
	Raw    int // raw points consumed
}

// Windows streams aggregates over [from, to) in consecutive windows of
// width step, starting at from. The final window is a full step wide
// even when it extends past to — windows are a grid, not a clamp.
//
// Tier-selection rule, per window [ws, we): the sealed part
// [ws, min(we, FoldedBefore)) is answered from buckets — daily buckets
// for the daily-aligned middle, hourly for the edges — and the raw tail
// [max(ws, FoldedBefore), we) from raw points. Bucket boundaries must
// coincide with window boundaries inside the sealed region for the
// answer to be exact, so when from < FoldedBefore both from and step
// must be multiples of the hourly tier width.
//
// The iterator is a streaming cursor: raw points are fetched once at
// creation (so the result is a consistent cut even while ingest
// continues) and every tier is walked monotonically. Close releases the
// pooled raw buffer.
func (e *Engine) Windows(dev lpwan.EUI64, from, to, step time.Duration) (*WindowIter, error) {
	if step <= 0 || to <= from || from < 0 {
		return nil, ErrBadWindow
	}
	it := &WindowIter{from: from, to: to, step: step, cur: from}
	if r := e.Src.RollupEngine(); r != nil {
		it.folded = r.FoldedBefore()
		it.dailyFolded = r.DailyFoldedBefore()
		it.hw = r.Config().Hourly
		it.dw = r.Config().Daily
		if from < it.folded {
			if from%it.hw != 0 || step%it.hw != 0 {
				return nil, fmt.Errorf("query: window boundaries below the fold watermark (%v) must align to the hourly tier (%v): from=%v step=%v", it.folded, it.hw, from, step)
			}
			it.hourly, it.daily = r.SeriesView(dev)
		}
	}
	rawFrom := from
	if it.folded > rawFrom {
		rawFrom = it.folded
	}
	if to > rawFrom {
		raw, release := e.Src.RawPoints(dev, rawFrom, to)
		it.release = release
		// Points below the watermark that the store has not drained yet
		// are excluded: once the watermark is published, the sealed
		// region belongs to the buckets alone (counting such a point
		// here would double-count it the moment the fold lands).
		kept := raw[:0]
		for _, p := range raw {
			if p.At >= it.folded {
				kept = append(kept, p)
			}
		}
		// Arrival order is not guaranteed At-sorted across restarts;
		// the window walk needs a single sorted pass.
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].At != kept[j].At {
				return kept[i].At < kept[j].At
			}
			return kept[i].Seq < kept[j].Seq
		})
		it.raw = kept
	}
	return it, nil
}

// WindowIter streams WindowAggs. Usage:
//
//	it, err := eng.Windows(dev, 0, horizon, sim.Week)
//	defer it.Close()
//	for it.Next() {
//		w := it.Window()
//		...
//	}
type WindowIter struct {
	from, to, step      time.Duration
	folded, dailyFolded time.Duration
	hw, dw              time.Duration
	hourly, daily       []rollup.Bucket
	hi, di              int
	raw                 []tsdb.Point
	ri                  int
	release             func()
	cur                 time.Duration
	w                   WindowAgg
	tiers               TierHits
}

// Next computes the next window, reporting whether one was produced.
func (it *WindowIter) Next() bool {
	if it.cur >= it.to {
		return false
	}
	ws := it.cur
	we := ws + it.step
	it.cur = we
	a := acc{prev: ws}

	// Sealed part: buckets, coarsest tier first where alignment allows.
	if se := minDur(we, it.folded); ws < se {
		dlo := alignUp(ws, it.dw)
		dhi := minDur(alignDown(se, it.dw), it.dailyFolded)
		if dlo < dhi {
			it.consumeHourly(&a, ws, dlo)
			it.consumeDaily(&a, dlo, dhi)
			it.consumeHourly(&a, dhi, se)
		} else {
			it.consumeHourly(&a, ws, se)
		}
	}

	// Raw tail: the cursor is monotone because windows are.
	for it.ri < len(it.raw) && it.raw[it.ri].At < we {
		p := it.raw[it.ri]
		it.ri++
		if p.At >= ws {
			a.addPoint(p)
			it.tiers.Raw++
		}
	}

	a.finish(we)
	a.w.Start = ws
	it.w = a.w
	return true
}

// Window returns the current aggregate. Only valid after a true Next.
func (it *WindowIter) Window() WindowAgg { return it.w }

// Tiers reports cumulative tier hits so far.
func (it *WindowIter) Tiers() TierHits { return it.tiers }

// Close releases the pooled raw buffer. The iterator must not be used
// afterwards. Idempotent.
func (it *WindowIter) Close() {
	if it.release != nil {
		it.release()
		it.release = nil
	}
	it.raw = nil
}

func (it *WindowIter) consumeHourly(a *acc, lo, hi time.Duration) {
	// Skip buckets covered by the daily tier (or below the query range)
	// by binary search, not linear walk: a century query would otherwise
	// step through ~1M hourly buckets just to skip them.
	it.hi += sort.Search(len(it.hourly)-it.hi, func(i int) bool {
		return it.hourly[it.hi+i].Start >= lo
	})
	for it.hi < len(it.hourly) && it.hourly[it.hi].Start < hi {
		a.addBucket(it.hourly[it.hi])
		it.tiers.Hourly++
		it.hi++
	}
}

func (it *WindowIter) consumeDaily(a *acc, lo, hi time.Duration) {
	it.di += sort.Search(len(it.daily)-it.di, func(i int) bool {
		return it.daily[it.di+i].Start >= lo
	})
	for it.di < len(it.daily) && it.daily[it.di].Start < hi {
		a.addBucket(it.daily[it.di])
		it.tiers.Daily++
		it.di++
	}
}

// acc accumulates one window. prev is the last arrival consumed (window
// start before any): the gap cursor the seam-stitching runs on.
type acc struct {
	w    WindowAgg
	prev time.Duration
	any  bool
}

func (a *acc) addBucket(b rollup.Bucket) {
	if b.Count == 0 {
		return
	}
	if !a.any {
		a.w.Min, a.w.Max = b.Min, b.Max
		a.any = true
	} else {
		if b.Min < a.w.Min {
			a.w.Min = b.Min
		}
		if b.Max > a.w.Max {
			a.w.Max = b.Max
		}
	}
	if g := b.First - a.prev; g > a.w.MaxGap {
		a.w.MaxGap = g
	}
	if b.MaxGap > a.w.MaxGap {
		a.w.MaxGap = b.MaxGap
	}
	a.prev = b.Last
	a.w.Count += b.Count
	a.w.Sum += b.Sum
}

func (a *acc) addPoint(p tsdb.Point) {
	if !a.any {
		a.w.Min, a.w.Max = p.Value, p.Value
		a.any = true
	} else {
		if p.Value < a.w.Min {
			a.w.Min = p.Value
		}
		if p.Value > a.w.Max {
			a.w.Max = p.Value
		}
	}
	if g := p.At - a.prev; g > a.w.MaxGap {
		a.w.MaxGap = g
	}
	a.prev = p.At
	a.w.Count++
	a.w.Sum += float64(p.Value)
}

func (a *acc) finish(we time.Duration) {
	if g := we - a.prev; g > a.w.MaxGap {
		a.w.MaxGap = g
	}
}

func alignDown(t, w time.Duration) time.Duration {
	if t < 0 {
		return 0
	}
	return t - t%w
}

func alignUp(t, w time.Duration) time.Duration {
	return alignDown(t+w-1, w)
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
