package city

import (
	"testing"

	"centuryscale/internal/rng"
)

func TestSeoulShape(t *testing.T) {
	// §2: sensor-driven collection reduced overflow by 66% and cost by
	// 83% in Seoul. The shape to reproduce: both drop by large factors.
	fixed, sensor := SeoulComparison(DefaultBins(), 365, 42)

	if fixed.OverflowEvents == 0 {
		t.Fatal("fixed schedule never overflowed; the baseline is implausibly good")
	}
	overflowCut := 1 - float64(sensor.OverflowEvents)/float64(fixed.OverflowEvents)
	if overflowCut < 0.6 {
		t.Fatalf("overflow reduction = %.0f%%, paper reports 66%%", overflowCut*100)
	}
	costCut := 1 - float64(sensor.CostCents)/float64(fixed.CostCents)
	if costCut < 0.7 || costCut > 0.95 {
		t.Fatalf("cost reduction = %.0f%%, paper reports 83%%", costCut*100)
	}
}

func TestFixedScheduleCollectsEveryone(t *testing.T) {
	cfg := BinConfig{Bins: 100, MeanFillDays: 4, FillSpreadSigma: 0.5, TripCents: 1000}
	res := RunTrash(cfg, TrashParams{Policy: FixedSchedule, FixedEveryDays: 2}, 10, rng.New(1))
	// 10 days / 2-day schedule = 5 rounds of 100 bins.
	if res.Collections != 500 {
		t.Fatalf("collections = %d, want 500", res.Collections)
	}
	if res.CostCents != 500*1000 {
		t.Fatalf("cost = %d", res.CostCents)
	}
}

func TestSensorDrivenSkipsSlowBins(t *testing.T) {
	cfg := BinConfig{Bins: 200, MeanFillDays: 10, FillSpreadSigma: 0.3, TripCents: 1000}
	res := RunTrash(cfg, TrashParams{Policy: SensorDriven, Threshold: 0.9}, 30, rng.New(2))
	// Bins fill in ~10 days: about 3 collections each over 30 days.
	perBin := float64(res.Collections) / 200
	if perBin < 2 || perBin > 4.5 {
		t.Fatalf("collections per bin = %v, want ~3", perBin)
	}
}

func TestCompactionReducesCollections(t *testing.T) {
	cfg := DefaultBins()
	plain := RunTrash(cfg, TrashParams{Policy: SensorDriven, Threshold: 0.85}, 365, rng.New(3))
	compacting := RunTrash(cfg, TrashParams{Policy: SensorDriven, Threshold: 0.85, CompactionFactor: 5}, 365, rng.New(3))
	if compacting.Collections*3 >= plain.Collections {
		t.Fatalf("5x compaction should cut collections by >3x: %d vs %d",
			compacting.Collections, plain.Collections)
	}
}

func TestOverflowAccounting(t *testing.T) {
	// A bin that fills in one day but is collected every 4 overflows.
	cfg := BinConfig{Bins: 10, MeanFillDays: 1, FillSpreadSigma: 0.01, TripCents: 100}
	res := RunTrash(cfg, TrashParams{Policy: FixedSchedule, FixedEveryDays: 4}, 40, rng.New(4))
	if res.OverflowEvents == 0 || res.OverflowBinDays == 0 {
		t.Fatal("fast bins on a slow schedule must overflow")
	}
	if res.OverflowRate() <= 0 {
		t.Fatal("overflow rate not positive")
	}
}

func TestRunTrashPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty run did not panic")
		}
	}()
	RunTrash(BinConfig{}, TrashParams{}, 0, rng.New(1))
}

func TestTrashDeterministic(t *testing.T) {
	a := RunTrash(DefaultBins(), TrashParams{Policy: SensorDriven, Threshold: 0.85}, 100, rng.New(9))
	b := RunTrash(DefaultBins(), TrashParams{Policy: SensorDriven, Threshold: 0.85}, 100, rng.New(9))
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func BenchmarkSeoulYear(b *testing.B) {
	cfg := DefaultBins()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = SeoulComparison(cfg, 365, uint64(i))
	}
}
