// Package city models the municipal substrate: the asset inventory that
// sensors attach to, the labor arithmetic of touching those assets, the
// geography over which gateways must provide coverage, and the batched
// infrastructure projects through which cities actually deploy and replace
// equipment.
//
// The numbers anchoring the model are the paper's (§1): Los Angeles has
// over 320,000 utility poles, 61,315 intersections, and 210,000
// streetlights — "three common targets for monitoring sensors" — and at a
// "very generous" 20 minutes of total replacement time per device,
// recovering a dead citywide deployment costs nearly 200,000 person-hours.
// The paper's counterpoint is that cities do not do anything en masse:
// work happens in geographic batches ("one project repaves a block,
// installs its traffic sensors, and replaces its streetlights"), which
// this package models as zone projects on a rolling schedule.
package city

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// AssetType is a class of municipal asset that can host a sensor.
type AssetType int

// Asset types.
const (
	UtilityPole AssetType = iota
	Intersection
	Streetlight
	Bridge
	RoadSegment
	WasteBin
)

var assetNames = map[AssetType]string{
	UtilityPole:  "utility-pole",
	Intersection: "intersection",
	Streetlight:  "streetlight",
	Bridge:       "bridge",
	RoadSegment:  "road-segment",
	WasteBin:     "waste-bin",
}

// String implements fmt.Stringer.
func (a AssetType) String() string {
	if n, ok := assetNames[a]; ok {
		return n
	}
	return fmt.Sprintf("asset(%d)", int(a))
}

// Inventory counts assets by type.
type Inventory map[AssetType]int

// LosAngeles returns the paper's §1 inventory.
func LosAngeles() Inventory {
	return Inventory{
		UtilityPole:  320000,
		Intersection: 61315,
		Streetlight:  210000,
	}
}

// Total sums all assets.
func (inv Inventory) Total() int {
	n := 0
	for _, c := range inv {
		n += c
	}
	return n
}

// LaborModel converts device-touch counts into person-time.
type LaborModel struct {
	// MinutesPerDevice is total replacement time including travel; the
	// paper calls 20 minutes "very generous".
	MinutesPerDevice float64
	// CrewSize and WorkdayHours convert person-hours to calendar time.
	CrewSize     int
	WorkdayHours float64
	// CentsPerPersonHour is the fully-loaded labor rate.
	CentsPerPersonHour int64
}

// DefaultLabor returns the paper-anchored labor model: 20 minutes per
// device, 50 two-person crews, $75/hr loaded.
func DefaultLabor() LaborModel {
	return LaborModel{
		MinutesPerDevice:   20,
		CrewSize:           100, // 50 crews of 2
		WorkdayHours:       8,
		CentsPerPersonHour: 7500,
	}
}

// PersonHours returns the person-hours to touch n devices.
func (m LaborModel) PersonHours(n int) float64 {
	return float64(n) * m.MinutesPerDevice / 60
}

// CalendarDays returns working days for the full crew pool to touch n
// devices.
func (m LaborModel) CalendarDays(n int) float64 {
	if m.CrewSize <= 0 || m.WorkdayHours <= 0 {
		panic("city: labor model without crew capacity")
	}
	return m.PersonHours(n) / (float64(m.CrewSize) * m.WorkdayHours)
}

// LaborCostCents returns the labor cost of touching n devices.
func (m LaborModel) LaborCostCents(n int) int64 {
	return int64(m.PersonHours(n) * float64(m.CentsPerPersonHour))
}

// Point is a planar city coordinate in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Zone is one geographic batch: the unit in which projects touch assets.
type Zone struct {
	ID     int
	Center Point
	Assets int
}

// Grid lays out a city as zones on a square grid.
type Grid struct {
	// SideMeters is the city's square side length.
	SideMeters float64
	Zones      []Zone
}

// NewGrid splits totalAssets across zonesPerSide² zones, scattering zone
// asset counts ±25% deterministically from the seed.
func NewGrid(sideMeters float64, zonesPerSide, totalAssets int, src *rng.Source) *Grid {
	if zonesPerSide <= 0 {
		panic("city: non-positive grid size")
	}
	nz := zonesPerSide * zonesPerSide
	g := &Grid{SideMeters: sideMeters}
	cell := sideMeters / float64(zonesPerSide)

	// Draw zone weights, then apportion the exact total across them so
	// asset counts conserve regardless of the draws.
	weights := make([]float64, nz)
	sum := 0.0
	for i := range weights {
		weights[i] = src.Uniform(0.75, 1.25)
		sum += weights[i]
	}
	assigned := 0
	for i := 0; i < nz; i++ {
		row, col := i/zonesPerSide, i%zonesPerSide
		var count int
		if i == nz-1 {
			count = totalAssets - assigned
		} else {
			count = int(float64(totalAssets) * weights[i] / sum)
		}
		assigned += count
		g.Zones = append(g.Zones, Zone{
			ID:     i,
			Center: Point{X: (float64(col) + 0.5) * cell, Y: (float64(row) + 0.5) * cell},
			Assets: count,
		})
	}
	return g
}

// TotalAssets sums zone asset counts.
func (g *Grid) TotalAssets() int {
	n := 0
	for _, z := range g.Zones {
		n += z.Assets
	}
	return n
}

// ProjectPlan is a rolling schedule of zone projects: every interval, the
// next zone's assets get touched (repaved, relit — and re-sensored).
type ProjectPlan struct {
	Interval time.Duration
	Order    []int // zone IDs in visit order
}

// RollingPlan visits zones in ID order, spreading the full city across
// cycleYears (the infrastructure renewal cycle: ~25 years for roads).
func RollingPlan(g *Grid, cycleYears float64) ProjectPlan {
	order := make([]int, len(g.Zones))
	for i := range order {
		order[i] = i
	}
	return ProjectPlan{
		Interval: time.Duration(sim.Years(cycleYears).Nanoseconds() / int64(len(g.Zones))),
		Order:    order,
	}
}

// ZoneAt returns which zone (by plan order index) is under project at
// time t, cycling indefinitely, plus the cycle number.
func (p ProjectPlan) ZoneAt(t time.Duration) (orderIdx, cycle int) {
	if p.Interval <= 0 || len(p.Order) == 0 {
		panic("city: empty project plan")
	}
	steps := int(t / p.Interval)
	return steps % len(p.Order), steps / len(p.Order)
}

// ReplacementReport compares the two deployment-recovery strategies of §1:
// replacing everything at once versus riding the rolling project schedule.
type ReplacementReport struct {
	Devices          int
	PersonHours      float64
	EnMasseDays      float64 // all crews, dedicated blitz
	RollingYears     float64 // piggybacking on the project cycle
	LaborCostCents   int64
	PerDeviceMinutes float64
}

// Replacement computes the report for touching every device in the
// inventory under the labor model, with the rolling alternative spread
// over the grid's project cycle.
func Replacement(inv Inventory, m LaborModel, cycleYears float64) ReplacementReport {
	n := inv.Total()
	return ReplacementReport{
		Devices:          n,
		PersonHours:      m.PersonHours(n),
		EnMasseDays:      m.CalendarDays(n),
		RollingYears:     cycleYears,
		LaborCostCents:   m.LaborCostCents(n),
		PerDeviceMinutes: m.MinutesPerDevice,
	}
}
