package city

import (
	"math"
	"testing"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

func TestLosAngelesInventory(t *testing.T) {
	// The paper's §1 numbers, exactly.
	inv := LosAngeles()
	if inv[UtilityPole] != 320000 || inv[Intersection] != 61315 || inv[Streetlight] != 210000 {
		t.Fatalf("inventory = %v", inv)
	}
	if inv.Total() != 591315 {
		t.Fatalf("total = %d, want 591,315", inv.Total())
	}
}

func TestPaperLaborClaim(t *testing.T) {
	// §1: "at a very generous 20 minute total replacement time per
	// device, recovering the deployment would require nearly 200,000
	// person-hours of labor".
	m := DefaultLabor()
	hours := m.PersonHours(LosAngeles().Total())
	if hours < 190000 || hours > 200000 {
		t.Fatalf("LA replacement = %v person-hours, paper says nearly 200,000", hours)
	}
}

func TestLaborCalendarAndCost(t *testing.T) {
	m := LaborModel{MinutesPerDevice: 30, CrewSize: 10, WorkdayHours: 8, CentsPerPersonHour: 6000}
	// 160 devices * 0.5h = 80 person-hours; 10 people * 8h = 80/day -> 1 day.
	if got := m.CalendarDays(160); math.Abs(got-1) > 1e-9 {
		t.Fatalf("calendar days = %v", got)
	}
	if got := m.LaborCostCents(160); got != 80*6000 {
		t.Fatalf("labor cost = %d", got)
	}
}

func TestLaborPanicsWithoutCrew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no-crew labor model did not panic")
		}
	}()
	LaborModel{MinutesPerDevice: 20}.CalendarDays(10)
}

func TestAssetNames(t *testing.T) {
	if UtilityPole.String() != "utility-pole" || WasteBin.String() != "waste-bin" {
		t.Fatal("asset names wrong")
	}
	if AssetType(42).String() != "asset(42)" {
		t.Fatal("unknown asset fallback")
	}
}

func TestGridConservesAssets(t *testing.T) {
	g := NewGrid(40000, 10, 591315, rng.New(1))
	if len(g.Zones) != 100 {
		t.Fatalf("zones = %d", len(g.Zones))
	}
	if g.TotalAssets() != 591315 {
		t.Fatalf("grid total = %d, want exact conservation", g.TotalAssets())
	}
	// Zone centers inside the city square.
	for _, z := range g.Zones {
		if z.Center.X < 0 || z.Center.X > 40000 || z.Center.Y < 0 || z.Center.Y > 40000 {
			t.Fatalf("zone %d center %v outside city", z.ID, z.Center)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a := NewGrid(40000, 8, 100000, rng.New(5))
	b := NewGrid(40000, 8, 100000, rng.New(5))
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			t.Fatal("grids differ under same seed")
		}
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
}

func TestRollingPlanCycles(t *testing.T) {
	g := NewGrid(10000, 5, 1000, rng.New(2))
	plan := RollingPlan(g, 25)
	// Whole city within 25 years: interval = 25y/25 zones = 1y.
	if got := sim.ToYears(plan.Interval); math.Abs(got-1) > 0.01 {
		t.Fatalf("interval = %v years", got)
	}
	idx, cycle := plan.ZoneAt(0)
	if idx != 0 || cycle != 0 {
		t.Fatalf("start = zone %d cycle %d", idx, cycle)
	}
	idx, cycle = plan.ZoneAt(sim.Years(26))
	if cycle != 1 || idx != 1 {
		t.Fatalf("year 26 = zone %d cycle %d, want zone 1 of cycle 1", idx, cycle)
	}
}

func TestZoneAtPanicsOnEmptyPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty plan did not panic")
		}
	}()
	ProjectPlan{}.ZoneAt(time.Hour)
}

func TestReplacementReport(t *testing.T) {
	rep := Replacement(LosAngeles(), DefaultLabor(), 25)
	if rep.Devices != 591315 {
		t.Fatalf("devices = %d", rep.Devices)
	}
	if rep.PersonHours < 190000 || rep.PersonHours > 200000 {
		t.Fatalf("person-hours = %v", rep.PersonHours)
	}
	// 100 workers * 8h = 800 person-hours/day -> ~246 working days.
	if rep.EnMasseDays < 200 || rep.EnMasseDays > 300 {
		t.Fatalf("en-masse days = %v", rep.EnMasseDays)
	}
	if rep.RollingYears != 25 {
		t.Fatalf("rolling years = %v", rep.RollingYears)
	}
	// ~197k hours at $75 ≈ $14.8M.
	if rep.LaborCostCents < 1_400_000_000 || rep.LaborCostCents > 1_600_000_000 {
		t.Fatalf("labor cost = %d cents", rep.LaborCostCents)
	}
}
