package city

import (
	"centuryscale/internal/rng"
)

// The Seoul case study (§2): sensor-driven waste collection "reduced
// overflow of trash bins in Seoul by 66% and cost of waste collection by
// 83%". The mechanism is simple and reproducible: bins fill at uneven,
// location-dependent rates, so any fixed schedule simultaneously
// over-serves slow bins (wasted trips) and under-serves fast ones
// (overflow). Fill-level telemetry replaces the schedule with a
// threshold policy: collect a bin exactly when it reports nearly full.

// BinConfig parameterises a bin population.
type BinConfig struct {
	Bins int
	// MeanFillDays is the population-average time for a bin to fill.
	MeanFillDays float64
	// FillSpreadSigma is the log-normal sigma of per-bin fill rates;
	// the heterogeneity is what kills fixed schedules.
	FillSpreadSigma float64
	// TripCents is the cost of collecting one bin once.
	TripCents int64
}

// DefaultBins returns a plausible district: 1,000 bins, 4-day mean fill,
// wide (sigma 0.7) rate spread, $12 per collection visit.
func DefaultBins() BinConfig {
	return BinConfig{Bins: 1000, MeanFillDays: 4, FillSpreadSigma: 0.7, TripCents: 1200}
}

// CollectionPolicy selects how bins get collected.
type CollectionPolicy int

// Policies.
const (
	// FixedSchedule collects every bin every FixedEveryDays, blind.
	FixedSchedule CollectionPolicy = iota
	// SensorDriven collects a bin when its reported fill crosses the
	// threshold (plus a dispatch latency).
	SensorDriven
)

// TrashParams configures one policy run.
type TrashParams struct {
	Policy CollectionPolicy
	// FixedEveryDays is the blind schedule period (FixedSchedule only).
	FixedEveryDays float64
	// Threshold is the fill fraction that triggers dispatch
	// (SensorDriven only), e.g. 0.85.
	Threshold float64
	// DispatchHours is the sensor-to-truck latency (SensorDriven only).
	DispatchHours float64
	// CompactionFactor is the capacity multiplier of the smart bin
	// (Seoul's deployment used solar compacting bins holding 5-8x a
	// plain bin's volume — that compaction, plus skipping not-yet-full
	// bins, is where the 83% cost cut comes from). 0 or 1 = no compactor.
	CompactionFactor float64
}

// TrashResult summarises a run.
type TrashResult struct {
	Days            float64
	Bins            int
	Collections     int64
	OverflowEvents  int64 // a bin reaching 100% before collection
	OverflowBinDays float64
	CostCents       int64
}

// OverflowRate returns overflow events per bin per year.
func (r TrashResult) OverflowRate() float64 {
	years := r.Days / 365.25
	if years <= 0 {
		return 0
	}
	return float64(r.OverflowEvents) / float64(r.Bins) / years
}

// RunTrash simulates the bin population for the given number of days under
// a policy. Per-bin fill rates are drawn log-normally around the
// configured mean; each bin then fills linearly with small day-to-day
// noise, overflowing when it hits capacity before a collection empties it.
func RunTrash(cfg BinConfig, p TrashParams, days int, src *rng.Source) TrashResult {
	if cfg.Bins <= 0 || days <= 0 {
		panic("city: empty trash run")
	}
	res := TrashResult{Days: float64(days), Bins: cfg.Bins}

	// Per-bin daily fill fraction: mean 1/MeanFillDays, log-normal spread.
	rates := make([]float64, cfg.Bins)
	rateSrc := src.Split("rates")
	for i := range rates {
		// LogNormal(mu, sigma) has mean exp(mu + sigma^2/2): pick mu so
		// the population mean matches the config.
		mu := -cfg.FillSpreadSigma * cfg.FillSpreadSigma / 2
		rates[i] = rateSrc.LogNormal(mu, cfg.FillSpreadSigma) / cfg.MeanFillDays
	}

	fill := make([]float64, cfg.Bins)
	overflowed := make([]bool, cfg.Bins)
	noise := src.Split("noise")

	dispatchDays := p.DispatchHours / 24
	capacity := p.CompactionFactor
	if capacity <= 0 {
		capacity = 1
	}

	for day := 1; day <= days; day++ {
		for i := range fill {
			rate := rates[i] * noise.Uniform(0.7, 1.3)
			fill[i] += rate
			if fill[i] >= capacity {
				if !overflowed[i] {
					res.OverflowEvents++
					overflowed[i] = true
				}
				res.OverflowBinDays++
				fill[i] = capacity
			}
			switch p.Policy {
			case SensorDriven:
				// Collected when the (end-of-day) level crosses the
				// threshold; dispatch latency adds extra fill exposure.
				if fill[i] >= p.Threshold*capacity {
					exposure := rate * dispatchDays
					if fill[i]+exposure >= capacity && !overflowed[i] {
						res.OverflowEvents++
						res.OverflowBinDays++
					}
					fill[i] = 0
					overflowed[i] = false
					res.Collections++
				}
			case FixedSchedule:
				if day%int(p.FixedEveryDays) == 0 {
					fill[i] = 0
					overflowed[i] = false
					res.Collections++
				}
			}
		}
	}
	res.CostCents = res.Collections * cfg.TripCents
	return res
}

// SeoulComparison runs both policies on the same bin population and
// returns (fixed, sensorDriven). The fixed baseline collects every
// MeanFillDays (a schedule designed around the average without
// telemetry, which over-serves slow bins and overflows the fast tail);
// the smart deployment pairs fill sensing with a 5x compacting bin, the
// Seoul configuration.
func SeoulComparison(cfg BinConfig, days int, seed uint64) (fixed, sensor TrashResult) {
	fixed = RunTrash(cfg, TrashParams{
		Policy:         FixedSchedule,
		FixedEveryDays: cfg.MeanFillDays,
	}, days, rng.New(seed))
	sensor = RunTrash(cfg, TrashParams{
		Policy:           SensorDriven,
		Threshold:        0.85,
		DispatchHours:    12,
		CompactionFactor: 5,
	}, days, rng.New(seed))
	return fixed, sensor
}
