package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rollup"
	"centuryscale/internal/tsdb"
)

// feedRollupTraffic ingests a deterministic 5-day stream for two
// devices (20-minute cadence, integer values) and returns the total
// packet count. Every test in this file feeds the identical stream, so
// bucket state is comparable byte-for-byte across stores.
func feedRollupTraffic(t *testing.T, s *Store) int {
	t.Helper()
	n := 0
	for _, dev := range []uint64{0xA1, 0xA2} {
		seq := uint32(0)
		for at := time.Duration(dev%7) * time.Minute; at < 5*24*time.Hour; at += 20 * time.Minute {
			seq++
			if err := s.Ingest(at, sealed(t, dev, seq, float32(seq%17))); err != nil {
				t.Fatalf("ingest dev %x seq %d: %v", dev, seq, err)
			}
			n++
		}
	}
	return n
}

// controlRollupState folds the same traffic in a fresh memory store and
// returns its serialized bucket state: the byte-determinism baseline
// every crash scenario must converge to.
func controlRollupState(t *testing.T, retain time.Duration) ([]byte, *Store) {
	t.Helper()
	s := NewStore(StaticKeys(master))
	if err := s.EnableRollups(rollup.Config{}, retain); err != nil {
		t.Fatal(err)
	}
	feedRollupTraffic(t, s)
	s.FoldRollups(s.HighWater())
	return marshalRollups(t, s), s
}

func marshalRollups(t *testing.T, s *Store) []byte {
	t.Helper()
	b, err := json.Marshal(s.Rollups().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func rawCount(s *Store) int {
	n := 0
	for _, dev := range s.db.Devices() {
		n += len(s.History(dev))
	}
	return n
}

func bucketCount(s *Store) uint64 {
	var n uint64
	for _, dev := range s.Rollups().Devices() {
		hourly, daily := s.Rollups().Series(dev)
		_ = daily // daily buckets re-summarize hourly ones; counting both would double
		for _, b := range hourly {
			n += b.Count
		}
	}
	return n
}

// assertSameWindows compares the two stores' full-history windowed
// aggregates — the read-path proof that folding changed where answers
// come from, not what they are.
func assertSameWindows(t *testing.T, got, want *Store, step time.Duration) {
	t.Helper()
	to := want.HighWater() + 1
	for _, dev := range []uint64{0xA1, 0xA2} {
		d := lpwan.EUIFromUint64(dev)
		gi, err := got.QueryEngine().Windows(d, 0, to, step)
		if err != nil {
			t.Fatal(err)
		}
		wi, err := want.QueryEngine().Windows(d, 0, to, step)
		if err != nil {
			t.Fatal(err)
		}
		for wi.Next() {
			if !gi.Next() {
				t.Fatalf("dev %x: ran out of windows", dev)
			}
			if g, w := gi.Window(), wi.Window(); g != w {
				t.Fatalf("dev %x window at %v: got %+v want %+v", dev, w.Start, g, w)
			}
		}
		if gi.Next() {
			t.Fatalf("dev %x: extra windows", dev)
		}
		gi.Close()
		wi.Close()
	}
}

func TestRollupFoldDrainsAndAnswersIdentically(t *testing.T) {
	const retain = 24 * time.Hour

	// plain keeps everything raw: the oracle.
	plain := NewStore(StaticKeys(master))
	total := feedRollupTraffic(t, plain)

	s := NewStore(StaticKeys(master))
	if err := s.EnableRollups(rollup.Config{}, retain); err != nil {
		t.Fatal(err)
	}
	feedRollupTraffic(t, s)
	if n := s.FoldRollups(s.HighWater()); n == 0 {
		t.Fatal("fold summarized nothing")
	}
	r := s.Rollups()
	if r.StaleDrops() != 0 {
		t.Fatalf("fold dropped %d points as stale", r.StaleDrops())
	}
	wm := r.FoldedBefore()
	if wm <= 0 || wm > s.HighWater()-retain {
		t.Fatalf("watermark = %v (high water %v)", wm, s.HighWater())
	}

	// Conservation: every accepted point is either a raw survivor or
	// summarized in exactly one hourly bucket.
	raw := rawCount(s)
	if got := bucketCount(s) + uint64(raw); got != uint64(total) {
		t.Fatalf("buckets+raw = %d, fed %d", got, total)
	}
	// And the raw survivors are exactly the points above the watermark.
	for _, dev := range s.db.Devices() {
		for _, rd := range s.History(dev) {
			if rd.At < wm {
				t.Fatalf("raw point at %v survived below watermark %v", rd.At, wm)
			}
		}
	}

	assertSameWindows(t, s, plain, 6*time.Hour)

	// A second fold with an unchanged clock is a no-op.
	if n := s.FoldRollups(s.HighWater()); n != 0 {
		t.Fatalf("idempotent refold summarized %d points", n)
	}
}

func TestRollupSealedRegionRefusesIngest(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.EnableRollups(rollup.Config{}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	feedRollupTraffic(t, s)
	s.FoldRollups(s.HighWater())
	wm := s.Rollups().FoldedBefore()

	// A brand-new sequence number with an arrival inside the sealed
	// region is permanently refused — the buckets there are immutable.
	err := s.Ingest(wm-time.Hour, sealed(t, 0xA1, 9999, 1))
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed-region ingest err = %v", err)
	}
	if st := s.Stats(); st.Stale != 1 {
		t.Fatalf("stale count = %d", st.Stale)
	}
	// The same packet at a fresh arrival time is fine.
	if err := s.Ingest(s.HighWater()+time.Minute, sealed(t, 0xA1, 9999, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestRollupSnapshotRoundTripAndGuardSeeding(t *testing.T) {
	const retain = 24 * time.Hour
	want, s := controlRollupState(t, retain)

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(StaticKeys(master))
	if err := restored.EnableRollups(rollup.Config{}, retain); err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got := marshalRollups(t, restored); !bytes.Equal(got, want) {
		t.Fatalf("restored bucket state differs:\n got %s\nwant %s", got, want)
	}
	assertSameWindows(t, restored, s, 6*time.Hour)

	// Replay protection must survive even though the folded points' raw
	// copies (and their guard history) are gone: the guard is re-seeded
	// from the buckets' MaxSeq, so replaying the newest folded packet is
	// rejected...
	maxSeq := restored.Rollups().MaxSeq(lpwan.EUIFromUint64(0xA1))
	if maxSeq == 0 {
		t.Fatal("no folded MaxSeq to test with")
	}
	if err := restored.Ingest(restored.HighWater()+time.Minute, sealed(t, 0xA1, maxSeq, 3)); err == nil {
		t.Fatal("replay of folded packet admitted after restore")
	}
	// ...while genuinely new sequence numbers flow.
	if err := restored.Ingest(restored.HighWater()+time.Minute, sealed(t, 0xA1, maxSeq+1000, 3)); err != nil {
		t.Fatalf("fresh packet refused after restore: %v", err)
	}
}

func TestRollupSnapshotGeometryGuards(t *testing.T) {
	_, s := controlRollupState(t, 24*time.Hour)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// A snapshot carrying buckets refuses to load into a store without a
	// rollup engine: silently dropping summarized history would lose it.
	bare := NewStore(StaticKeys(master))
	if err := bare.ReadSnapshot(bytes.NewReader(snap)); err == nil {
		t.Fatal("rollup snapshot loaded into rollup-less store")
	}

	// And refuses a different tier geometry: buckets cannot be re-cut.
	wrong := NewStore(StaticKeys(master))
	if err := wrong.EnableRollups(rollup.Config{Hourly: 2 * time.Hour, Daily: 48 * time.Hour}, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := wrong.ReadSnapshot(bytes.NewReader(snap)); err == nil {
		t.Fatal("rollup snapshot loaded into mismatched geometry")
	}
}

// TestRollupCrashSafety kills a durable endpoint at each interruption
// point of the fold/checkpoint protocol — fold done but nothing saved;
// snapshot saved but WAL not truncated; clean checkpoint — and asserts
// every reboot converges on byte-identical bucket state with no point
// lost or double-counted. "Kill" is the WAL suite's idiom: the store is
// abandoned without close, exactly as a power cut leaves it (per-append
// fsync makes the in-process abandonment equivalent to SIGKILL for
// what's on disk).
func TestRollupCrashSafety(t *testing.T) {
	const retain = 24 * time.Hour
	want, control := controlRollupState(t, retain)
	total := rawCount(control) + int(bucketCount(control))

	scenarios := []struct {
		name  string
		crash func(t *testing.T, s *Store, snap string)
	}{
		{
			// Crash after the in-memory fold, before any of it is saved:
			// the reboot sees no snapshot, replays the full WAL, and must
			// re-fold to the same bytes.
			name: "after-fold-before-save",
			crash: func(t *testing.T, s *Store, snap string) {
				s.FoldRollups(s.HighWater())
			},
		},
		{
			// Crash after the snapshot rename, before WAL truncation: the
			// WAL still holds every folded record, and replay must skip
			// them via the restored watermark instead of double-counting.
			name: "after-save-before-truncate",
			crash: func(t *testing.T, s *Store, snap string) {
				s.FoldRollups(s.HighWater())
				if err := s.SaveFile(snap); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// The clean path: full checkpoint (fold, save, truncate).
			name: "clean-checkpoint",
			crash: func(t *testing.T, s *Store, snap string) {
				if err := s.CheckpointAt(snap, s.HighWater()); err != nil {
					t.Fatal(err)
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			snap := filepath.Join(dir, "snapshot.json")
			walDir := filepath.Join(dir, "wal")
			boot := func() *Store {
				t.Helper()
				db, err := tsdb.Open(tsdb.Options{Dir: walDir, Shards: 4, Sync: tsdb.SyncAlways})
				if err != nil {
					t.Fatal(err)
				}
				s := NewStoreWithDB(StaticKeys(master), db)
				if err := s.EnableRollups(rollup.Config{}, retain); err != nil {
					t.Fatal(err)
				}
				if err := s.LoadFile(snap); err != nil {
					t.Fatal(err)
				}
				if _, err := s.ReplayWAL(); err != nil {
					t.Fatal(err)
				}
				return s
			}

			s1 := boot()
			feedRollupTraffic(t, s1)
			sc.crash(t, s1, snap)
			// s1 abandoned here: no Close, no final checkpoint.

			s2 := boot()
			defer s2.Close()
			// The reboot may still be pre-fold (scenario 1); fold with the
			// same data clock to reach steady state. Deterministic folding
			// makes this converge on the control's exact bytes.
			s2.FoldRollups(s2.HighWater())
			if got := marshalRollups(t, s2); !bytes.Equal(got, want) {
				t.Fatalf("bucket state diverged after crash:\n got %s\nwant %s", got, want)
			}
			if r := s2.Rollups(); r.StaleDrops() != 0 {
				t.Fatalf("refold dropped %d points", r.StaleDrops())
			}
			if got := rawCount(s2) + int(bucketCount(s2)); got != total {
				t.Fatalf("conservation: buckets+raw = %d, want %d", got, total)
			}
			assertSameWindows(t, s2, control, 6*time.Hour)

			// The reboot still refuses sealed-region arrivals and replays
			// of folded sequence numbers, and accepts fresh traffic.
			wm := s2.Rollups().FoldedBefore()
			if err := s2.Ingest(wm-time.Minute, sealed(t, 0xA1, 50000, 1)); !errors.Is(err, ErrSealed) {
				t.Fatalf("sealed ingest after reboot: %v", err)
			}
			maxSeq := s2.Rollups().MaxSeq(lpwan.EUIFromUint64(0xA2))
			if err := s2.Ingest(s2.HighWater()+time.Minute, sealed(t, 0xA2, maxSeq, 1)); err == nil {
				t.Fatal("folded-seq replay admitted after reboot")
			}
			if err := s2.Ingest(s2.HighWater()+time.Minute, sealed(t, 0xA2, maxSeq+1000, 1)); err != nil {
				t.Fatalf("fresh ingest after reboot: %v", err)
			}
		})
	}
}

// TestRollupCheckpointCadence runs three fold/checkpoint/reboot cycles
// with traffic between them — the steady-state loop a real endpoint
// lives in — and checks the tiers stay consistent with a never-crashed
// oracle throughout.
func TestRollupCheckpointCadence(t *testing.T) {
	const retain = 24 * time.Hour
	dir := t.TempDir()
	snap := filepath.Join(dir, "snapshot.json")
	walDir := filepath.Join(dir, "wal")
	boot := func() *Store {
		t.Helper()
		db, err := tsdb.Open(tsdb.Options{Dir: walDir, Shards: 4, Sync: tsdb.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		s := NewStoreWithDB(StaticKeys(master), db)
		if err := s.EnableRollups(rollup.Config{}, retain); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadFile(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReplayWAL(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	oracle := NewStore(StaticKeys(master))
	if err := oracle.EnableRollups(rollup.Config{}, retain); err != nil {
		t.Fatal(err)
	}

	feed := func(s *Store, day int) {
		t.Helper()
		base := time.Duration(day) * 24 * time.Hour
		for _, dev := range []uint64{0xB1, 0xB2} {
			for i := 0; i < 24; i++ {
				seq := uint32(day*24 + i + 1)
				at := base + time.Duration(i)*time.Hour + time.Duration(dev%11)*time.Minute
				if err := s.Ingest(at, sealed(t, dev, seq, float32(seq%7))); err != nil {
					t.Fatalf("day %d dev %x: %v", day, dev, err)
				}
			}
		}
	}

	s := boot()
	for day := 0; day < 6; day++ {
		feed(s, day)
		feed(oracle, day)
		if err := s.CheckpointAt(snap, s.HighWater()); err != nil {
			t.Fatal(err)
		}
		oracle.FoldRollups(oracle.HighWater())
		// Reboot every other day.
		if day%2 == 1 {
			s = boot()
		}
		if got, want := marshalRollups(t, s), marshalRollups(t, oracle); !bytes.Equal(got, want) {
			t.Fatalf("day %d: tiers diverged from oracle\n got %s\nwant %s", day, got, want)
		}
	}
	assertSameWindows(t, s, oracle, 6*time.Hour)
	if s.Rollups().FoldedBefore() == 0 {
		t.Fatal("cadence never advanced the watermark")
	}
}
