package cloud

import (
	"errors"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
)

func TestQuarantineBlocksIngest(t *testing.T) {
	s := NewStore(StaticKeys(master))
	dev := lpwan.EUIFromUint64(1)
	if err := s.Ingest(sim.Week, sealed(t, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	s.Quarantine(dev, 2*sim.Week)
	if err := s.Ingest(3*sim.Week, sealed(t, 1, 2, 1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined ingest err = %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuarantineCutoffIsTimeAware(t *testing.T) {
	s := NewStore(StaticKeys(master))
	dev := lpwan.EUIFromUint64(1)
	s.Quarantine(dev, 10*sim.Week)
	// Before the cut-off: still trusted.
	if err := s.Ingest(5*sim.Week, sealed(t, 1, 1, 1)); err != nil {
		t.Fatalf("pre-cutoff ingest rejected: %v", err)
	}
	if s.Quarantined(dev, 5*sim.Week) {
		t.Fatal("quarantined before cut-off")
	}
	if !s.Quarantined(dev, 10*sim.Week) {
		t.Fatal("not quarantined at cut-off")
	}
}

func TestTrustedHistoryExcludesPostCutoff(t *testing.T) {
	s := NewStore(StaticKeys(master))
	dev := lpwan.EUIFromUint64(1)
	for seq := uint32(1); seq <= 6; seq++ {
		at := time.Duration(seq) * sim.Week
		if err := s.Ingest(at, sealed(t, 1, seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Quarantine retroactively from week 4: readings at weeks 4-6 are
	// untrusted but kept.
	s.Quarantine(dev, 4*sim.Week)
	trusted := s.TrustedHistory(dev)
	full := s.History(dev)
	if len(full) != 6 {
		t.Fatalf("full history = %d", len(full))
	}
	if len(trusted) != 3 {
		t.Fatalf("trusted history = %d, want 3", len(trusted))
	}
	for _, r := range trusted {
		if r.At >= 4*sim.Week {
			t.Fatal("untrusted reading leaked into trusted history")
		}
	}
}

func TestUnquarantineRestores(t *testing.T) {
	s := NewStore(StaticKeys(master))
	dev := lpwan.EUIFromUint64(1)
	s.Quarantine(dev, 0)
	if err := s.Ingest(sim.Week, sealed(t, 1, 1, 1)); !errors.Is(err, ErrQuarantined) {
		t.Fatal("quarantine not effective")
	}
	s.Unquarantine(dev)
	if err := s.Ingest(2*sim.Week, sealed(t, 1, 2, 1)); err != nil {
		t.Fatalf("post-clear ingest rejected: %v", err)
	}
	if len(s.TrustedHistory(dev)) != 1 {
		t.Fatal("trusted history wrong after clear")
	}
}

func TestQuarantineEarliestCutoffWins(t *testing.T) {
	s := NewStore(StaticKeys(master))
	dev := lpwan.EUIFromUint64(1)
	s.Quarantine(dev, 10*sim.Week)
	s.Quarantine(dev, 5*sim.Week) // tighter evidence arrives later
	if !s.Quarantined(dev, 6*sim.Week) {
		t.Fatal("earlier cut-off not honored")
	}
	s.Quarantine(dev, 20*sim.Week) // looser evidence must not relax it
	if !s.Quarantined(dev, 6*sim.Week) {
		t.Fatal("cut-off relaxed by later quarantine call")
	}
}
