package cloud

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewStore(StaticKeys(master)), time.Now())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestHTTPIngestAndStatus(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealed(t, 1, 1, 42)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Devices != 1 || st.Stats.Accepted != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestHTTPIngestRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage ingest status = %d", resp.StatusCode)
	}
}

func TestHTTPDevicesAndHistory(t *testing.T) {
	_, ts := newTestServer(t)
	for seq := uint32(1); seq <= 3; seq++ {
		resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
			bytes.NewReader(sealed(t, 0xfeed, seq, float32(seq))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/devices")
	if err != nil {
		t.Fatal(err)
	}
	var devs []string
	if err := json.NewDecoder(resp.Body).Decode(&devs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(devs) != 1 || devs[0] != "00:00:00:00:00:00:fe:ed" {
		t.Fatalf("devices = %v", devs)
	}

	resp, err = http.Get(ts.URL + "/history?device=" + devs[0])
	if err != nil {
		t.Fatal(err)
	}
	var hist []readingPayload
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hist) != 3 || hist[2].Seq != 3 || hist[2].Value != 3 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestHTTPHistoryBadDevice(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{"", "?device=nonsense"} {
		resp, err := http.Get(ts.URL + "/history" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("history%s status = %d", q, resp.StatusCode)
		}
	}
}

func TestHTTPIndexPage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "century sensors") {
		t.Fatalf("index page = %q", buf.String())
	}
}

func TestHTTPMethodRouting(t *testing.T) {
	_, ts := newTestServer(t)
	// GET on /ingest must not be routed.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		t.Fatalf("GET /ingest status = %d", resp.StatusCode)
	}
}

func TestHTTPExportCSV(t *testing.T) {
	_, ts := newTestServer(t)
	for seq := uint32(1); seq <= 2; seq++ {
		resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
			bytes.NewReader(sealed(t, 5, seq, float32(seq)*2)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/export?device=00:00:00:00:00:00:00:05")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type = %q", ct)
	}
	records, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 { // header + 2 rows
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "at_seconds" || records[2][3] != "4" {
		t.Fatalf("csv = %v", records)
	}

	// Bad device parameter.
	resp2, err := http.Get(ts.URL + "/export?device=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad device status = %d", resp2.StatusCode)
	}
}
