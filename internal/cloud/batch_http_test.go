package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
)

func TestHTTPIngestBatch(t *testing.T) {
	_, ts := newTestServer(t)
	wires := make([][]byte, 8)
	for i := range wires {
		wires[i] = sealed(t, 0xbeef, uint32(i+1), float32(i))
	}
	frame, err := batch.AppendFrame(nil, wires...)
	if err != nil {
		t.Fatal(err)
	}

	post := func() (BatchResult, int) {
		resp, err := http.Post(ts.URL+"/ingest/batch", "application/octet-stream",
			bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res BatchResult
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
		}
		return res, resp.StatusCode
	}

	res, code := post()
	if code != http.StatusAccepted {
		t.Fatalf("batch ingest status = %d", code)
	}
	if res.Total != 8 || res.Accepted != 8 {
		t.Fatalf("first frame result = %+v", res)
	}
	// The same frame again is all duplicates — still 202, the gateway's
	// retry succeeded from its point of view.
	res, code = post()
	if code != http.StatusAccepted {
		t.Fatalf("replayed batch status = %d", code)
	}
	if res.Accepted != 0 || res.Duplicates != 8 {
		t.Fatalf("replayed frame result = %+v", res)
	}
}

func TestHTTPIngestBatchRejectsCorruptFrame(t *testing.T) {
	_, ts := newTestServer(t)
	frame, err := batch.AppendFrame(nil, sealed(t, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	frame[batch.HeaderSize] ^= 0x01 // payload flip -> CRC mismatch
	resp, err := http.Post(ts.URL+"/ingest/batch", "application/octet-stream",
		bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frame status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPIngestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		route string
		size  int
	}{
		{"/ingest", maxPacketBody + 1},
		{"/ingest/batch", batch.MaxFrameBytes + 1},
	}
	for _, tc := range cases {
		t.Run(tc.route, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.route, "application/octet-stream",
				bytes.NewReader(make([]byte, tc.size)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
			}
		})
	}
}

// TestClampedSecondsBoundaries pins the float->Duration conversion at
// its edges: the old code fed out-of-range float64s straight into a
// time.Duration conversion, which Go leaves implementation-defined —
// ?from=1e300 produced an arbitrary range instead of "everything".
func TestClampedSecondsBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  time.Duration
		isErr bool
	}{
		{"zero", "0", 0, false},
		{"one and a half", "1.5", 1500 * time.Millisecond, false},
		{"negative", "-2", -2 * time.Second, false},
		{"century", "3155760000", 3155760000 * time.Second, false},
		{"max horizon clamps", "1e300", sim.MaxHorizon, false},
		{"negative overflow clamps", "-1e300", -sim.MaxHorizon, false},
		{"positive infinity clamps", "+Inf", sim.MaxHorizon, false},
		{"negative infinity clamps", "-Inf", -sim.MaxHorizon, false},
		{"just past horizon clamps", "9.3e9", sim.MaxHorizon, false},
		{"nan rejected", "NaN", 0, true},
		{"garbage rejected", "ten", 0, true},
		{"empty rejected", "", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := clampedSeconds(tc.in, "from")
			if tc.isErr {
				if err == nil {
					t.Fatalf("clampedSeconds(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("clampedSeconds(%q): %v", tc.in, err)
			}
			if got != tc.want {
				t.Fatalf("clampedSeconds(%q) = %d, want %d", tc.in, got, tc.want)
			}
		})
	}

	// The HTTP layer inherits the clamp: a cosmological ?from must widen
	// to "everything", not silently overflow into an arbitrary range.
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealed(t, 0xfeed, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dev := lpwan.EUIFromUint64(0xfeed).String()
	resp, err = http.Get(ts.URL + "/history?device=" + dev + "&from=-1e300&to=1e300")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped history status = %d", resp.StatusCode)
	}
	var out []readingPayload
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("clamped full-range history returned %d readings, want 1", len(out))
	}
	resp, err = http.Get(ts.URL + "/history?device=" + dev + "&from=NaN")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN range status = %d, want 400", resp.StatusCode)
	}
}

// failingWriter fakes a client that hangs up mid-export: writes start
// failing after the first flush reaches it.
type failingWriter struct {
	*httptest.ResponseRecorder
	fail bool
}

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.fail {
		return 0, errors.New("connection reset by peer")
	}
	return f.ResponseRecorder.Write(b)
}

func TestHTTPExportSurfacesWriteError(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealed(t, 0xabc, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req := httptest.NewRequest("GET", "/export?device="+lpwan.EUIFromUint64(0xabc).String(), nil)
	w := &failingWriter{ResponseRecorder: httptest.NewRecorder(), fail: true}
	aborted := func() (aborted bool) {
		defer func() {
			if r := recover(); r != nil {
				if r != http.ErrAbortHandler {
					panic(r)
				}
				aborted = true
			}
		}()
		srv.ServeHTTP(w, req)
		return false
	}()
	if !aborted {
		t.Fatal("export with failing writer completed without aborting the connection")
	}
	if got := srv.queryStats.exportErrors.Load(); got != 1 {
		t.Fatalf("exportErrors = %d, want 1", got)
	}
}
