package cloud

import (
	"testing"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// benchWires pre-seals n monotone-seq packets for one device, so the
// measured loop is pure Ingest: parse + HMAC verify + replay check +
// store. Sealing happens outside the timer.
func benchWires(b *testing.B, n int) [][]byte {
	b.Helper()
	id := lpwan.EUIFromUint64(1)
	key := telemetry.DeriveKey(master, id)
	wires := make([][]byte, n)
	for i := range wires {
		w, err := telemetry.Packet{
			Device: id, Seq: uint32(i + 1), Sensor: telemetry.SensorStrain, Value: 1,
		}.Seal(key)
		if err != nil {
			b.Fatal(err)
		}
		wires[i] = w
	}
	return wires
}

func benchIngest(b *testing.B, instrument bool) {
	s := NewStore(StaticKeys(master))
	if instrument {
		s.RegisterMetrics(obs.NewRegistry(), nil)
	}
	wires := benchWires(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Ingest(time.Duration(i)*time.Millisecond, wires[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBare is the endpoint ingest path with no registry
// installed: the instrumentation hook costs one atomic pointer load.
func BenchmarkIngestBare(b *testing.B) { benchIngest(b, false) }

// BenchmarkIngestInstrumented is the same path after RegisterMetrics:
// disposition counters plus the latency histogram's two clock readings.
// The delta against BenchmarkIngestBare is the number the 5% overhead
// budget is judged against; compare with BENCH_obs.json.
func BenchmarkIngestInstrumented(b *testing.B) { benchIngest(b, true) }

// benchDurableStore opens a store on a real WAL with SyncAlways, the
// durability level the batched-vs-bare comparison is judged at: every
// ack costs at least one fsync, so the only way to go faster is to
// amortize the fsync over more packets.
func benchDurableStore(b *testing.B) *Store {
	b.Helper()
	db, err := tsdb.Open(tsdb.Options{Dir: b.TempDir(), Shards: 4, Sync: tsdb.SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return NewStoreWithDB(StaticKeys(master), db)
}

// BenchmarkIngestBareSyncAlways is the durable baseline: one packet per
// request, one fsync per ack. Packets/sec here is the denominator of
// the >=10x batching claim.
func BenchmarkIngestBareSyncAlways(b *testing.B) {
	s := benchDurableStore(b)
	wires := benchWires(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Ingest(time.Duration(i)*time.Millisecond, wires[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/packet")
}

// benchPacketsPerFrame sizes the batched benchmark's frames. 256 is a
// realistic gateway flush (a quarter of batch.DefaultMaxPackets) and
// already puts the fsync under 0.5% of per-packet cost.
const benchPacketsPerFrame = 256

// BenchmarkIngestBatched drives whole frames through IngestBatch at the
// same SyncAlways durability: one group fsync per frame, N packets per
// ack. Compare ns/packet against BenchmarkIngestBareSyncAlways — the
// ratio is the batching win. allocs/op divided by benchPacketsPerFrame
// must stay <= 2 (the pooled-decode budget).
func BenchmarkIngestBatched(b *testing.B) {
	s := benchDurableStore(b)
	wires := benchWires(b, b.N*benchPacketsPerFrame)
	frames := make([][]byte, b.N)
	for i := range frames {
		f, err := batch.AppendFrame(nil, wires[i*benchPacketsPerFrame:(i+1)*benchPacketsPerFrame]...)
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = f
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.IngestBatch(time.Duration(i)*time.Millisecond, frames[i])
		if err != nil {
			b.Fatal(err)
		}
		if res.Accepted != benchPacketsPerFrame {
			b.Fatalf("frame %d: accepted %d of %d", i, res.Accepted, benchPacketsPerFrame)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*benchPacketsPerFrame), "ns/packet")
}
