package cloud

import (
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/telemetry"
)

// benchWires pre-seals n monotone-seq packets for one device, so the
// measured loop is pure Ingest: parse + HMAC verify + replay check +
// store. Sealing happens outside the timer.
func benchWires(b *testing.B, n int) [][]byte {
	b.Helper()
	id := lpwan.EUIFromUint64(1)
	key := telemetry.DeriveKey(master, id)
	wires := make([][]byte, n)
	for i := range wires {
		w, err := telemetry.Packet{
			Device: id, Seq: uint32(i + 1), Sensor: telemetry.SensorStrain, Value: 1,
		}.Seal(key)
		if err != nil {
			b.Fatal(err)
		}
		wires[i] = w
	}
	return wires
}

func benchIngest(b *testing.B, instrument bool) {
	s := NewStore(StaticKeys(master))
	if instrument {
		s.RegisterMetrics(obs.NewRegistry(), nil)
	}
	wires := benchWires(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Ingest(time.Duration(i)*time.Millisecond, wires[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBare is the endpoint ingest path with no registry
// installed: the instrumentation hook costs one atomic pointer load.
func BenchmarkIngestBare(b *testing.B) { benchIngest(b, false) }

// BenchmarkIngestInstrumented is the same path after RegisterMetrics:
// disposition counters plus the latency histogram's two clock readings.
// The delta against BenchmarkIngestBare is the number the 5% overhead
// budget is judged against; compare with BENCH_obs.json.
func BenchmarkIngestInstrumented(b *testing.B) { benchIngest(b, true) }
