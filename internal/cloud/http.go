package cloud

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/tsdb"
)

// Server exposes a Store over HTTP: the real, publicly-reachable face of
// the experiment. Routes:
//
//	POST /ingest   raw 24-byte telemetry packet in the body
//	GET  /status   JSON summary (stats, uptime, device count)
//	GET  /devices  JSON list of device addresses
//	GET  /history?device=aa:bb:...  JSON readings for one device
//	GET  /         human-readable status page (the "living diary")
//
// Arrival times are wall-clock durations since the server's start, so the
// same Store code serves both simulations and the long-running daemon.
//
// The ingest route degrades gracefully instead of failing opaquely: when
// more than the configured number of ingests are in flight (overload) or
// the server has been marked degraded (persist failure), it answers
// 503 + Retry-After. Gateways running a resilience.Uplink treat that as
// "buffer and come back", which is exactly what a century-scale endpoint
// wants its edge to do while it recovers.
type Server struct {
	store *Store
	start time.Time
	mux   *http.ServeMux

	// maxInFlight caps concurrent ingests; 0 means unlimited.
	maxInFlight int64
	inFlight    atomic.Int64
	degraded    atomic.Bool
	shed        atomic.Uint64
	// retryAfterSec is the hint sent with every 503. Default 1.
	retryAfterSec int64

	// clusterSecret (a string; empty = disarmed) gates the
	// cluster-internal routes and the arrival override; see cluster.go.
	clusterSecret atomic.Value

	// Query-layer instrumentation; see query_http.go.
	queryStats queryCounters
	queryObs   atomic.Pointer[queryObs]
}

// NewServer wraps a store; the weekly-uptime clock starts now.
func NewServer(store *Store, now time.Time) *Server {
	s := &Server{store: store, start: now, mux: http.NewServeMux(), retryAfterSec: 1}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /status", s.handleStatus)
	s.mux.HandleFunc("GET /devices", s.handleDevices)
	s.mux.HandleFunc("GET /history", s.handleHistory)
	s.mux.HandleFunc("GET /export", s.handleExport)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /query/uptime", s.handleQueryUptime)
	s.mux.HandleFunc("GET /query/gaps", s.handleQueryGaps)
	s.mux.HandleFunc("GET /cluster/history", s.handleClusterHistory)
	s.mux.HandleFunc("POST /cluster/replicate", s.handleClusterReplicate)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// SetIngestLimit caps concurrent ingest requests; n <= 0 removes the
// cap. Requests beyond the cap are shed with 503 + Retry-After.
func (s *Server) SetIngestLimit(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&s.maxInFlight, int64(n))
}

// SetRetryAfter sets the Retry-After hint (rounded up to whole seconds,
// minimum 1) attached to shed responses.
func (s *Server) SetRetryAfter(d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	atomic.StoreInt64(&s.retryAfterSec, secs)
}

// SetDegraded marks (or clears) persist-failure degradation: while set,
// every ingest is shed with 503 so upstream buffers instead of handing
// data to a store that cannot durably keep it.
func (s *Server) SetDegraded(v bool) { s.degraded.Store(v) }

// Degraded reports whether the server is shedding due to persist failure.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Shed returns how many ingest requests have been answered 503.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) now() time.Duration { return time.Since(s.start) }

// shedLoad answers 503 + Retry-After: the graceful "come back soon".
func (s *Server) shedLoad(w http.ResponseWriter, reason string) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.FormatInt(atomic.LoadInt64(&s.retryAfterSec), 10))
	http.Error(w, "cloud: "+reason, http.StatusServiceUnavailable)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.degraded.Load() {
		s.shedLoad(w, "endpoint degraded (persist failure); buffer and retry")
		return
	}
	if limit := atomic.LoadInt64(&s.maxInFlight); limit > 0 {
		if s.inFlight.Add(1) > limit {
			s.inFlight.Add(-1)
			s.shedLoad(w, "endpoint overloaded; buffer and retry")
			return
		}
		defer s.inFlight.Add(-1)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1024))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Replicated ingest carries the coordinator's arrival stamp so every
	// replica stores the same time; only cluster-authenticated peers may
	// assert one (an outsider stamping history would corrupt the ledger).
	at := s.now()
	if hdr := r.Header.Get(ClusterArrivalHeader); hdr != "" {
		if !s.clusterAuthorized(r) {
			http.Error(w, "cloud: arrival override requires cluster auth", http.StatusForbidden)
			return
		}
		nanos, err := strconv.ParseInt(hdr, 10, 64)
		if err != nil {
			http.Error(w, "cloud: bad arrival header: "+err.Error(), http.StatusBadRequest)
			return
		}
		at = time.Duration(nanos)
	}
	if err := s.store.Ingest(at, body); err != nil {
		// A WAL append failure means the reading is not durable: shed
		// 503 so the gateway buffers and retries, exactly like a
		// snapshot-disk failure.
		if errors.Is(err, ErrPersist) {
			s.shedLoad(w, "endpoint storage failing; buffer and retry")
			return
		}
		// Duplicates are normal (dual-gateway delivery); report them
		// as accepted-but-known so gateways don't retry.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

type statusPayload struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Devices       int         `json:"devices"`
	WeeklyUptime  float64     `json:"weekly_uptime"`
	Stats         IngestStats `json:"stats"`
	Shed          uint64      `json:"shed"`
	Degraded      bool        `json:"degraded"`
	Storage       tsdb.Stats  `json:"storage"`
}

func (s *Server) status() statusPayload {
	return statusPayload{
		UptimeSeconds: s.now().Seconds(),
		Devices:       len(s.store.Devices()),
		WeeklyUptime:  s.store.WeeklyUptime(s.now()),
		Stats:         s.store.Stats(),
		Shed:          s.shed.Load(),
		Degraded:      s.degraded.Load(),
		Storage:       s.store.StorageStats(),
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful left to do.
		return
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.status())
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	devs := s.store.Devices()
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.String()
	}
	writeJSON(w, out)
}

type readingPayload struct {
	AtSeconds float64 `json:"at_seconds"`
	Seq       uint32  `json:"seq"`
	Sensor    string  `json:"sensor"`
	Value     float32 `json:"value"`
	Uptime    uint32  `json:"device_uptime_seconds"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	devStr := r.URL.Query().Get("device")
	dev, err := parseDevice(devStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rs := s.store.HistoryRange(dev, from, to)
	out := make([]readingPayload, len(rs))
	for i, rd := range rs {
		out[i] = readingPayload{
			AtSeconds: rd.At.Seconds(),
			Seq:       rd.Packet.Seq,
			Sensor:    rd.Packet.Sensor.String(),
			Value:     rd.Packet.Value,
			Uptime:    rd.Packet.UptimeSeconds,
		}
	}
	writeJSON(w, out)
}

// handleExport streams one device's full history as CSV — the archival
// format a 2070s researcher will still be able to read (§4.4's data
// retention concern).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	dev, err := parseDevice(r.URL.Query().Get("device"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"at_seconds", "seq", "sensor", "value", "device_uptime_seconds"})
	for _, rd := range s.store.HistoryRange(dev, from, to) {
		_ = cw.Write([]string{
			strconv.FormatFloat(rd.At.Seconds(), 'f', 3, 64),
			strconv.FormatUint(uint64(rd.Packet.Seq), 10),
			rd.Packet.Sensor.String(),
			strconv.FormatFloat(float64(rd.Packet.Value), 'g', -1, 32),
			strconv.FormatUint(uint64(rd.Packet.UptimeSeconds), 10),
		})
	}
	cw.Flush()
}

func parseDevice(s string) (lpwan.EUI64, error) {
	if s == "" {
		return lpwan.EUI64{}, fmt.Errorf("cloud: missing device parameter")
	}
	return lpwan.ParseEUI64(s)
}

// parseRange reads the optional from/to query parameters (arrival time
// in seconds, half-open [from, to)) for the history and export routes.
// Absent parameters mean an unbounded side.
func parseRange(r *http.Request) (from, to time.Duration, err error) {
	from, to = math.MinInt64, math.MaxInt64
	if v := r.URL.Query().Get("from"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("cloud: bad from parameter: %v", err)
		}
		from = time.Duration(secs * float64(time.Second))
	}
	if v := r.URL.Query().Get("to"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("cloud: bad to parameter: %v", err)
		}
		to = time.Duration(secs * float64(time.Second))
	}
	return from, to, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	st := s.status()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "century sensors — living experiment status\n")
	fmt.Fprintf(w, "endpoint uptime: %.0f s\n", st.UptimeSeconds)
	fmt.Fprintf(w, "devices reporting: %d\n", st.Devices)
	fmt.Fprintf(w, "weekly uptime: %.3f\n", st.WeeklyUptime)
	fmt.Fprintf(w, "packets accepted: %d  duplicates: %d  bad-signature: %d  malformed: %d\n",
		st.Stats.Accepted, st.Stats.Duplicates, st.Stats.BadSignature, st.Stats.Malformed)
}
