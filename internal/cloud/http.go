package cloud

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/tsdb"
)

// Server exposes a Store over HTTP: the real, publicly-reachable face of
// the experiment. Routes:
//
//	POST /ingest   raw 24-byte telemetry packet in the body
//	GET  /status   JSON summary (stats, uptime, device count)
//	GET  /devices  JSON list of device addresses
//	GET  /history?device=aa:bb:...  JSON readings for one device
//	GET  /         human-readable status page (the "living diary")
//
// Arrival times are wall-clock durations since the server's start, so the
// same Store code serves both simulations and the long-running daemon.
//
// The ingest route degrades gracefully instead of failing opaquely: when
// more than the configured number of ingests are in flight (overload) or
// the server has been marked degraded (persist failure), it answers
// 503 + Retry-After. Gateways running a resilience.Uplink treat that as
// "buffer and come back", which is exactly what a century-scale endpoint
// wants its edge to do while it recovers.
type Server struct {
	store *Store
	start time.Time
	mux   *http.ServeMux

	// maxInFlight caps concurrent ingests; 0 means unlimited.
	maxInFlight int64
	inFlight    atomic.Int64
	degraded    atomic.Bool
	shed        atomic.Uint64
	// retryAfterSec is the hint sent with every 503. Default 1.
	retryAfterSec int64

	// clusterSecret (a string; empty = disarmed) gates the
	// cluster-internal routes and the arrival override; see cluster.go.
	clusterSecret atomic.Value

	// Query-layer instrumentation; see query_http.go.
	queryStats queryCounters
	queryObs   atomic.Pointer[queryObs]
}

// NewServer wraps a store; the weekly-uptime clock starts now.
func NewServer(store *Store, now time.Time) *Server {
	s := &Server{store: store, start: now, mux: http.NewServeMux(), retryAfterSec: 1}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("GET /status", s.handleStatus)
	s.mux.HandleFunc("GET /devices", s.handleDevices)
	s.mux.HandleFunc("GET /history", s.handleHistory)
	s.mux.HandleFunc("GET /export", s.handleExport)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /query/uptime", s.handleQueryUptime)
	s.mux.HandleFunc("GET /query/gaps", s.handleQueryGaps)
	s.mux.HandleFunc("GET /cluster/history", s.handleClusterHistory)
	s.mux.HandleFunc("POST /cluster/replicate", s.handleClusterReplicate)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// SetIngestLimit caps concurrent ingest requests; n <= 0 removes the
// cap. Requests beyond the cap are shed with 503 + Retry-After.
func (s *Server) SetIngestLimit(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&s.maxInFlight, int64(n))
}

// SetRetryAfter sets the Retry-After hint (rounded up to whole seconds,
// minimum 1) attached to shed responses.
func (s *Server) SetRetryAfter(d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	atomic.StoreInt64(&s.retryAfterSec, secs)
}

// SetDegraded marks (or clears) persist-failure degradation: while set,
// every ingest is shed with 503 so upstream buffers instead of handing
// data to a store that cannot durably keep it.
func (s *Server) SetDegraded(v bool) { s.degraded.Store(v) }

// Degraded reports whether the server is shedding due to persist failure.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Shed returns how many ingest requests have been answered 503.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) now() time.Duration { return time.Since(s.start) }

// shedLoad answers 503 + Retry-After: the graceful "come back soon".
func (s *Server) shedLoad(w http.ResponseWriter, reason string) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.FormatInt(atomic.LoadInt64(&s.retryAfterSec), 10))
	http.Error(w, "cloud: "+reason, http.StatusServiceUnavailable)
}

// maxPacketBody bounds POST /ingest bodies. A telemetry packet is 24
// bytes; 1024 leaves generous headroom while keeping the pooled read
// buffers small.
const maxPacketBody = 1024

// errBodyTooLarge maps to 413: the body exceeded the route's cap. This
// replaces the old silent io.LimitReader truncation, which turned an
// oversized body into a misleading "malformed packet" count.
var errBodyTooLarge = errors.New("cloud: request body exceeds limit")

// bodyPool recycles request-body read buffers across ingest requests.
// Entries are *[]byte (pointer to avoid an allocation per Put); each is
// grown once to the largest limit it has served.
var bodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, maxPacketBody+1)
		return &b
	},
}

// readBody reads the whole body into a pooled buffer, rejecting bodies
// over limit with errBodyTooLarge (it reads limit+1 bytes to tell "at
// the limit" from "over it"). release returns the buffer to the pool;
// the body must not be used after calling it.
func readBody(r io.Reader, limit int) (body []byte, release func(), err error) {
	bp := bodyPool.Get().(*[]byte)
	if cap(*bp) < limit+1 {
		*bp = make([]byte, 0, limit+1)
	}
	buf := (*bp)[:limit+1]
	release = func() { bodyPool.Put(bp) }
	n, err := io.ReadFull(r, buf)
	switch {
	case err == nil:
		// limit+1 bytes arrived without EOF: over the cap.
		release()
		return nil, nil, errBodyTooLarge
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return buf[:n], release, nil
	default:
		release()
		return nil, nil, err
	}
}

// arrival resolves the request's arrival stamp: the server clock, unless
// a cluster-authenticated peer asserts the coordinator's. Replicated
// ingest carries that stamp so every replica stores the same time; only
// authenticated peers may assert one (an outsider stamping history
// would corrupt the ledger). On failure the response has been written
// and ok is false.
func (s *Server) arrival(w http.ResponseWriter, r *http.Request) (at time.Duration, ok bool) {
	at = s.now()
	hdr := r.Header.Get(ClusterArrivalHeader)
	if hdr == "" {
		return at, true
	}
	if !s.clusterAuthorized(r) {
		http.Error(w, "cloud: arrival override requires cluster auth", http.StatusForbidden)
		return 0, false
	}
	nanos, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil {
		http.Error(w, "cloud: bad arrival header: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return time.Duration(nanos), true
}

// admitIngest applies the shared front door of both ingest routes:
// degradation and overload shedding. ok=false means the response has
// been written; done must be called (deferred) when ok.
func (s *Server) admitIngest(w http.ResponseWriter) (done func(), ok bool) {
	if s.degraded.Load() {
		s.shedLoad(w, "endpoint degraded (persist failure); buffer and retry")
		return nil, false
	}
	if limit := atomic.LoadInt64(&s.maxInFlight); limit > 0 {
		if s.inFlight.Add(1) > limit {
			s.inFlight.Add(-1)
			s.shedLoad(w, "endpoint overloaded; buffer and retry")
			return nil, false
		}
		return func() { s.inFlight.Add(-1) }, true
	}
	return func() {}, true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitIngest(w)
	if !ok {
		return
	}
	defer done()
	body, release, err := readBody(r.Body, maxPacketBody)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			http.Error(w, errBodyTooLarge.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	at, ok := s.arrival(w, r)
	if !ok {
		return
	}
	if err := s.store.Ingest(at, body); err != nil {
		// A WAL append failure means the reading is not durable: shed
		// 503 so the gateway buffers and retries, exactly like a
		// snapshot-disk failure.
		if errors.Is(err, ErrPersist) {
			s.shedLoad(w, "endpoint storage failing; buffer and retry")
			return
		}
		// Duplicates are normal (dual-gateway delivery); report them
		// as accepted-but-known so gateways don't retry.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleIngestBatch accepts one batch frame of N packets. The response
// is written only after IngestBatch returns — and IngestBatch does not
// return success for any packet before the WAL group commit covering it
// has fsynced — so the WAL-before-ack contract holds for the whole
// frame: a 202 means every accepted packet is on stable storage.
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitIngest(w)
	if !ok {
		return
	}
	defer done()
	body, release, err := readBody(r.Body, batch.MaxFrameBytes)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			http.Error(w, "cloud: frame exceeds cap", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	at, ok := s.arrival(w, r)
	if !ok {
		return
	}
	res, err := s.store.IngestBatch(at, body)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		if err := json.NewEncoder(w).Encode(res); err != nil {
			return // headers already sent
		}
	case errors.Is(err, ErrPersist):
		// At least one shard's group commit failed: refuse the whole
		// frame so the gateway buffers and retries; the replay guards
		// deduplicate whatever did commit.
		s.shedLoad(w, "endpoint storage failing; buffer and retry")
	case errors.Is(err, batch.ErrTornFrame), errors.Is(err, batch.ErrFrameSize),
		errors.Is(err, batch.ErrFrameCRC), errors.Is(err, batch.ErrBadCount):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	}
}

type statusPayload struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Devices       int         `json:"devices"`
	WeeklyUptime  float64     `json:"weekly_uptime"`
	Stats         IngestStats `json:"stats"`
	Shed          uint64      `json:"shed"`
	Degraded      bool        `json:"degraded"`
	Storage       tsdb.Stats  `json:"storage"`
}

func (s *Server) status() statusPayload {
	return statusPayload{
		UptimeSeconds: s.now().Seconds(),
		Devices:       len(s.store.Devices()),
		WeeklyUptime:  s.store.WeeklyUptime(s.now()),
		Stats:         s.store.Stats(),
		Shed:          s.shed.Load(),
		Degraded:      s.degraded.Load(),
		Storage:       s.store.StorageStats(),
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful left to do.
		return
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.status())
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	devs := s.store.Devices()
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.String()
	}
	writeJSON(w, out)
}

type readingPayload struct {
	AtSeconds float64 `json:"at_seconds"`
	Seq       uint32  `json:"seq"`
	Sensor    string  `json:"sensor"`
	Value     float32 `json:"value"`
	Uptime    uint32  `json:"device_uptime_seconds"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	devStr := r.URL.Query().Get("device")
	dev, err := parseDevice(devStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rs := s.store.HistoryRange(dev, from, to)
	out := make([]readingPayload, len(rs))
	for i, rd := range rs {
		out[i] = readingPayload{
			AtSeconds: rd.At.Seconds(),
			Seq:       rd.Packet.Seq,
			Sensor:    rd.Packet.Sensor.String(),
			Value:     rd.Packet.Value,
			Uptime:    rd.Packet.UptimeSeconds,
		}
	}
	writeJSON(w, out)
}

// handleExport streams one device's full history as CSV — the archival
// format a 2070s researcher will still be able to read (§4.4's data
// retention concern).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	dev, err := parseDevice(r.URL.Query().Get("device"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	werr := cw.Write([]string{"at_seconds", "seq", "sensor", "value", "device_uptime_seconds"})
	for _, rd := range s.store.HistoryRange(dev, from, to) {
		if werr != nil {
			break
		}
		werr = cw.Write([]string{
			strconv.FormatFloat(rd.At.Seconds(), 'f', 3, 64),
			strconv.FormatUint(uint64(rd.Packet.Seq), 10),
			rd.Packet.Sensor.String(),
			strconv.FormatFloat(float64(rd.Packet.Value), 'g', -1, 32),
			strconv.FormatUint(uint64(rd.Packet.UptimeSeconds), 10),
		})
	}
	if werr == nil {
		cw.Flush()
		werr = cw.Error()
	}
	if werr != nil {
		// The 200 header and some rows are already on the wire, so a
		// truncated archival export cannot be turned into an error
		// status. What it must NOT look like is success: count it, and
		// kill the connection so the client sees an aborted transfer
		// rather than a clean EOF mid-history.
		s.queryStats.exportErrors.Add(1)
		panic(http.ErrAbortHandler)
	}
}

func parseDevice(s string) (lpwan.EUI64, error) {
	if s == "" {
		return lpwan.EUI64{}, fmt.Errorf("cloud: missing device parameter")
	}
	return lpwan.ParseEUI64(s)
}

// parseRange reads the optional from/to query parameters (arrival time
// in seconds, half-open [from, to)) for the history and export routes.
// Absent parameters mean an unbounded side.
func parseRange(r *http.Request) (from, to time.Duration, err error) {
	from, to = math.MinInt64, math.MaxInt64
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = clampedSeconds(v, "from"); err != nil {
			return 0, 0, err
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = clampedSeconds(v, "to"); err != nil {
			return 0, 0, err
		}
	}
	return from, to, nil
}

// clampedSeconds converts a query parameter of fractional seconds to a
// Duration, clamping at ±sim.MaxHorizon (the centurytime ±292-year
// contract). The raw `time.Duration(secs * float64(time.Second))` it
// replaces hit Go's implementation-defined out-of-range float→int64
// conversion on inputs like 1e300. NaN is rejected, not clamped: it
// names no range boundary at all.
func clampedSeconds(v, name string) (time.Duration, error) {
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("cloud: bad %s parameter: %v", name, err)
	}
	if math.IsNaN(secs) {
		return 0, fmt.Errorf("cloud: bad %s parameter: NaN", name)
	}
	return sim.Seconds(secs), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	st := s.status()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "century sensors — living experiment status\n")
	fmt.Fprintf(w, "endpoint uptime: %.0f s\n", st.UptimeSeconds)
	fmt.Fprintf(w, "devices reporting: %d\n", st.Devices)
	fmt.Fprintf(w, "weekly uptime: %.3f\n", st.WeeklyUptime)
	fmt.Fprintf(w, "packets accepted: %d  duplicates: %d  bad-signature: %d  malformed: %d\n",
		st.Stats.Accepted, st.Stats.Duplicates, st.Stats.BadSignature, st.Stats.Malformed)
}
