package cloud

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

// Cluster-internal surface: the trusted, secret-gated routes replica
// nodes use among themselves. None of this is reachable in a
// single-node deployment — the routes answer 404 until SetClusterSecret
// arms them — and none of it weakens the public contract: packets still
// verify against the device key; the secret only authorizes metadata a
// peer is trusted to assert (the arrival stamp) and the replication
// routes.
//
//	GET  /cluster/history?device=...  exact per-device records
//	POST /cluster/replicate           merge records into this node
//
// Exact matters: the public /history route serves float seconds for
// humans, but replicas comparing histories need bit-identical records,
// so the cluster routes carry int64 nanoseconds and IEEE-754 bit
// patterns. Byte-exact convergence is asserted, not approximated.

// Cluster header names.
const (
	// ClusterSecretHeader carries the shared cluster secret on every
	// cluster-internal request.
	ClusterSecretHeader = "X-Century-Cluster"
	// ClusterArrivalHeader carries the coordinator's arrival stamp
	// (int64 nanoseconds) on replicated ingest, so R replicas of one
	// packet store one arrival time instead of R skewed clocks.
	ClusterArrivalHeader = "X-Century-Arrival"
)

// ClusterRecord is one reading in cluster-exact wire form.
type ClusterRecord struct {
	AtNanos   int64  `json:"at_nanos"`
	Seq       uint32 `json:"seq"`
	Sensor    uint8  `json:"sensor"`
	ValueBits uint32 `json:"value_bits"`
	Uptime    uint32 `json:"uptime"`
}

// RecordOf converts a reading to its cluster-exact form.
func RecordOf(r Reading) ClusterRecord {
	return ClusterRecord{
		AtNanos:   int64(r.At),
		Seq:       r.Packet.Seq,
		Sensor:    uint8(r.Packet.Sensor),
		ValueBits: math.Float32bits(r.Packet.Value),
		Uptime:    r.Packet.UptimeSeconds,
	}
}

// Reading converts back, attaching the device the record belongs to.
func (c ClusterRecord) Reading(dev lpwan.EUI64) Reading {
	r := Reading{At: time.Duration(c.AtNanos)}
	r.Packet.Device = dev
	r.Packet.Seq = c.Seq
	r.Packet.Sensor = telemetry.SensorType(c.Sensor)
	r.Packet.Value = math.Float32frombits(c.ValueBits)
	r.Packet.UptimeSeconds = c.Uptime
	return r
}

// ReplicatePayload is the POST /cluster/replicate body.
type ReplicatePayload struct {
	Device  string          `json:"device"`
	Records []ClusterRecord `json:"records"`
}

// SetClusterSecret arms the cluster-internal routes and the arrival
// override with a shared secret. An empty secret disarms them again.
func (s *Server) SetClusterSecret(secret string) {
	s.clusterSecret.Store(secret)
}

func (s *Server) clusterSecretValue() string {
	v, _ := s.clusterSecret.Load().(string)
	return v
}

// clusterAuthorized reports whether r carries the armed cluster secret.
// Always false while disarmed.
func (s *Server) clusterAuthorized(r *http.Request) bool {
	secret := s.clusterSecretValue()
	if secret == "" {
		return false
	}
	got := r.Header.Get(ClusterSecretHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1
}

// requireCluster gates a cluster-internal handler: 404 while disarmed
// (the surface does not exist on a single-node deployment), 403 on a
// wrong secret.
func (s *Server) requireCluster(w http.ResponseWriter, r *http.Request) bool {
	if s.clusterSecretValue() == "" {
		http.Error(w, "cloud: cluster mode disabled", http.StatusNotFound)
		return false
	}
	if !s.clusterAuthorized(r) {
		http.Error(w, "cloud: bad cluster secret", http.StatusForbidden)
		return false
	}
	return true
}

func (s *Server) handleClusterHistory(w http.ResponseWriter, r *http.Request) {
	if !s.requireCluster(w, r) {
		return
	}
	dev, err := parseDevice(r.URL.Query().Get("device"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rs := s.store.History(dev)
	out := make([]ClusterRecord, len(rs))
	for i, rd := range rs {
		out[i] = RecordOf(rd)
	}
	writeJSON(w, out)
}

func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	if !s.requireCluster(w, r) {
		return
	}
	var p ReplicatePayload
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&p); err != nil {
		http.Error(w, "cloud: bad replicate payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	dev, err := lpwan.ParseEUI64(p.Device)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs := make([]Reading, len(p.Records))
	for i, rec := range p.Records {
		recs[i] = rec.Reading(dev)
	}
	added, err := s.store.Repair(dev, recs)
	if err != nil {
		s.shedLoad(w, "repair persist failing; retry")
		return
	}
	writeJSON(w, map[string]int{"added": added})
}

// Repair merges records fetched from a replica into this store: the
// receiving half of read-repair. Records the store already holds
// (matched by sequence number — the device's own monotonic stream
// identity) are skipped; missing ones are durably appended. Unlike
// Ingest, Repair trusts its caller — the packets were verified by the
// node that first accepted them, and the cluster secret gates the HTTP
// route — so no signature re-check, no replay-guard freshness veto
// (the whole point is admitting records the guard window has moved
// past), and no lapse/quarantine policy (they were applied at first
// accept).
//
// Returns how many records were newly stored. On a persist failure the
// merge stops and the error reports ErrPersist; records already merged
// stay merged (the operation is idempotent, so the caller just retries).
func (s *Store) Repair(dev lpwan.EUI64, recs []Reading) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	gs := s.guardFor(dev)
	gs.mu.Lock()
	// Records below the rollup fold watermark are already summarized in
	// sealed buckets (their raw copies — and with them the seq-dedup
	// evidence — may be gone), so merging them raw would double-count.
	// Same rule and same barrier discipline as Ingest's sealed check.
	var sealedBelow time.Duration
	if r := s.rollups.Load(); r != nil {
		sealedBelow = r.FoldedBefore()
	}
	have := make(map[uint32]struct{})
	for _, pt := range s.db.History(dev) {
		have[pt.Seq] = struct{}{}
	}
	added := 0
	var weeks []int64
	var firstErr error
	for _, r := range recs {
		if r.At < sealedBelow {
			s.stats.stale.Add(1)
			continue
		}
		if _, dup := have[r.Packet.Seq]; dup {
			continue
		}
		if err := s.db.Append(pointOf(r.At, r.Packet)); err != nil { //lint:lockedio dedup-check and append must commit atomically under the per-device guard shard, mirroring Ingest, or a racing ingest of the same seq double-stores; the lock is sharded per device, never global
			s.stats.persistFailures.Add(1)
			firstErr = fmt.Errorf("%w: %v", ErrPersist, err)
			break
		}
		have[r.Packet.Seq] = struct{}{}
		// Advance the replay window over repaired sequence numbers so a
		// late duplicate of a repaired packet is still rejected; records
		// older than the window simply leave it unchanged.
		_ = gs.guard.Admit(r.Packet)
		added++
		s.observeArrival(r.At)
		weeks = append(weeks, int64(r.At/sim.Week))
	}
	gs.mu.Unlock()

	if added > 0 {
		s.stats.repaired.Add(uint64(added))
		s.mu.Lock()
		for _, wk := range weeks {
			s.weeks[wk] = true
		}
		s.mu.Unlock()
	}
	return added, firstErr
}
