package cloud

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"centuryscale/internal/sim"
)

func populatedStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(StaticKeys(master))
	s.AddLapse(10*sim.Week, 11*sim.Week)
	for dev := uint64(1); dev <= 3; dev++ {
		for seq := uint32(1); seq <= 5; seq++ {
			at := time.Duration(seq) * sim.Week
			if err := s.Ingest(at, sealed(t, dev, seq, float32(seq)*1.5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := populatedStore(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewStore(StaticKeys(master))
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	if restored.Count() != orig.Count() {
		t.Fatalf("counts: %d vs %d", restored.Count(), orig.Count())
	}
	if len(restored.Devices()) != 3 {
		t.Fatalf("devices = %d", len(restored.Devices()))
	}
	// Histories byte-identical.
	for _, dev := range orig.Devices() {
		oh, rh := orig.History(dev), restored.History(dev)
		if len(oh) != len(rh) {
			t.Fatalf("history length mismatch for %v", dev)
		}
		for i := range oh {
			if oh[i] != rh[i] {
				t.Fatalf("reading %d differs: %+v vs %+v", i, oh[i], rh[i])
			}
		}
	}
	// Weekly uptime preserved.
	if restored.WeeklyUptime(6*sim.Week) != orig.WeeklyUptime(6*sim.Week) {
		t.Fatal("weekly uptime diverged")
	}
	// Lapses preserved.
	if err := restored.Ingest(10*sim.Week+time.Hour, sealed(t, 1, 99, 1)); !errors.Is(err, ErrLeaseLapsed) {
		t.Fatalf("lapse not restored: %v", err)
	}
}

func TestSnapshotRebuildsReplayGuard(t *testing.T) {
	orig := populatedStore(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(StaticKeys(master))
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Replaying an old packet after restore must still be rejected.
	if err := restored.Ingest(20*sim.Week, sealed(t, 1, 3, 4.5)); err == nil {
		t.Fatal("replay admitted after restore")
	}
	// But new sequence numbers flow.
	if err := restored.Ingest(20*sim.Week, sealed(t, 1, 6, 9)); err != nil {
		t.Fatalf("fresh packet rejected after restore: %v", err)
	}
}

func TestSnapshotVersionCheck(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.ReadSnapshot(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	if err := s.ReadSnapshot(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if err := s.ReadSnapshot(strings.NewReader(`{"version":1,"readings":{"bogus":[]}}`)); err == nil {
		t.Fatal("bad device address accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	orig := populatedStore(t)
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(StaticKeys(master))
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != orig.Count() {
		t.Fatal("file round trip lost readings")
	}
	// Saving again overwrites atomically.
	if err := restored.Ingest(30*sim.Week, sealed(t, 9, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := restored.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	again := NewStore(StaticKeys(master))
	if err := again.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if again.Count() != orig.Count()+1 {
		t.Fatalf("resave count = %d", again.Count())
	}
}

func TestLoadMissingFileIsFreshStart(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.LoadFile(filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Fatalf("missing snapshot errored: %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("fresh start not empty")
	}
}

func TestDirOf(t *testing.T) {
	if dirOf("/a/b/c.json") != "/a/b" {
		t.Fatalf("dirOf = %q", dirOf("/a/b/c.json"))
	}
	if dirOf("c.json") != "." {
		t.Fatalf("dirOf bare = %q", dirOf("c.json"))
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewStore(StaticKeys(master))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewStore(StaticKeys(master))
	if err := r.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 || len(r.Devices()) != 0 {
		t.Fatal("empty snapshot round trip not empty")
	}
}
