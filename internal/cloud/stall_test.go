package cloud

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// gatedWriter blocks inside its first Write until released — a stand-in
// for a slow snapshot destination (cold disk, network filesystem). It
// lets the test freeze WriteSnapshot mid-flight and probe what else the
// store can still do.
type gatedWriter struct {
	entered chan struct{} // closed when the first Write begins
	release chan struct{} // close to let writes proceed
	once    sync.Once
	n       int
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	g.n += len(p)
	return len(p), nil
}

// TestIngestNotStalledBySnapshot pins the WriteSnapshot contract: a
// large (or arbitrarily slow) snapshot write must not block ingest. The
// old implementation serialised the whole store under one lock for the
// full JSON encode, so a multi-year archive write stalled the live
// datapath; now state is copied briefly per shard and the encode runs
// lock-free. The test freezes a snapshot inside its Write and requires
// concurrent ingests to keep completing with bounded latency.
func TestIngestNotStalledBySnapshot(t *testing.T) {
	db, err := tsdb.Open(tsdb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWithDB(StaticKeys(master), db)
	defer s.Close()

	// Enough state that the encode is genuinely "large": 64 devices,
	// 400 points each. Loaded directly into the engine; the replay
	// guards have no history for these devices, which is fine — the
	// latency probes below use separate device IDs.
	for d := uint64(1); d <= 64; d++ {
		dev := lpwan.EUIFromUint64(d)
		for seq := uint32(1); seq <= 400; seq++ {
			s.db.Load(tsdb.Point{Device: dev, At: time.Duration(seq) * time.Minute, Seq: seq, Value: float32(seq)})
		}
	}

	gate := &gatedWriter{entered: make(chan struct{}), release: make(chan struct{})}
	snapDone := make(chan error, 1)
	go func() { snapDone <- s.WriteSnapshot(gate) }()

	select {
	case <-gate.entered:
	case err := <-snapDone:
		t.Fatalf("snapshot finished without writing? err=%v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot never reached its writer")
	}

	// The snapshot is now frozen mid-write. Every lock it ever took has
	// been released, so ingest must proceed at full speed. If any lock
	// were still held, these ingests would hang until the gate opens —
	// i.e. for the full duration of a slow archive write.
	const probes = 50
	probeDev := lpwan.EUIFromUint64(0x5747) // outside the bulk-load ID range
	key := telemetry.DeriveKey(master, probeDev)
	var worst time.Duration
	probesDone := make(chan error, 1)
	go func() {
		for seq := uint32(1); seq <= probes; seq++ {
			wire, err := telemetry.Packet{Device: probeDev, Seq: seq, Value: 1}.Seal(key)
			if err != nil {
				probesDone <- err
				return
			}
			begin := time.Now()
			if err := s.Ingest(time.Duration(seq)*time.Second, wire); err != nil {
				probesDone <- fmt.Errorf("ingest %d: %w", seq, err)
				return
			}
			if d := time.Since(begin); d > worst {
				worst = d
			}
		}
		probesDone <- nil
	}()

	select {
	case err := <-probesDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingest stalled behind the in-flight snapshot")
	}
	// Generous bound: a single ingest is microseconds of work; seconds
	// would mean it waited on snapshot machinery.
	if worst > 2*time.Second {
		t.Fatalf("worst ingest latency %v during snapshot", worst)
	}

	// Unfreeze and make sure the snapshot itself still completes whole.
	close(gate.release)
	if err := <-snapDone; err != nil {
		t.Fatal(err)
	}
	if gate.n == 0 {
		t.Fatal("snapshot wrote nothing")
	}
	if got := len(s.History(probeDev)); got != probes {
		t.Fatalf("probe ingests stored %d of %d", got, probes)
	}
}
