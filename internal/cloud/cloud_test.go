package cloud

import (
	"errors"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

var master = []byte("fleet-master-secret")

func sealed(t *testing.T, dev uint64, seq uint32, value float32) []byte {
	t.Helper()
	id := lpwan.EUIFromUint64(dev)
	wire, err := telemetry.Packet{
		Device: id, Seq: seq, Sensor: telemetry.SensorStrain, Value: value,
	}.Seal(telemetry.DeriveKey(master, id))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestIngestAccepts(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(time.Hour, sealed(t, 1, 1, 20.5)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	h := s.History(lpwan.EUIFromUint64(1))
	if len(h) != 1 || h[0].Packet.Value != 20.5 || h[0].At != time.Hour {
		t.Fatalf("history = %+v", h)
	}
}

func TestIngestRejectsBadSignature(t *testing.T) {
	s := NewStore(StaticKeys(master))
	wire := sealed(t, 1, 1, 1)
	wire[15] ^= 0xff
	if err := s.Ingest(0, wire); err == nil {
		t.Fatal("tampered packet accepted")
	}
	if st := s.Stats(); st.BadSignature != 1 || st.Accepted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(0, []byte("not a packet")); err == nil {
		t.Fatal("malformed accepted")
	}
	if st := s.Stats(); st.Malformed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestRejectsUnknownDevice(t *testing.T) {
	known := lpwan.EUIFromUint64(7)
	resolver := func(dev lpwan.EUI64) (telemetry.Key, bool) {
		if dev == known {
			return telemetry.DeriveKey(master, dev), true
		}
		return nil, false
	}
	s := NewStore(resolver)
	if err := s.Ingest(0, sealed(t, 8, 1, 1)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device err = %v", err)
	}
	if err := s.Ingest(0, sealed(t, 7, 1, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateViaSecondGateway(t *testing.T) {
	s := NewStore(StaticKeys(master))
	wire := sealed(t, 1, 5, 1)
	if err := s.Ingest(time.Hour, wire); err != nil {
		t.Fatal(err)
	}
	// The same packet relayed by another gateway minutes later.
	if err := s.Ingest(time.Hour+3*time.Minute, wire); err == nil {
		t.Fatal("duplicate accepted twice")
	}
	st := s.Stats()
	if st.Accepted != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfOrderWithinWindow(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(0, sealed(t, 1, 10, 1)); err != nil {
		t.Fatal(err)
	}
	// Seq 9 arrives late via the slower gateway: within window, accept.
	if err := s.Ingest(time.Minute, sealed(t, 1, 9, 1)); err != nil {
		t.Fatalf("in-window out-of-order rejected: %v", err)
	}
}

func TestWeeklyUptime(t *testing.T) {
	s := NewStore(StaticKeys(master))
	// Packets in weeks 0, 1, 3 of a 4-week horizon: 3/4 uptime.
	for i, at := range []time.Duration{sim.Day, sim.Week + sim.Day, 3*sim.Week + sim.Day} {
		if err := s.Ingest(at, sealed(t, 1, uint32(i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.WeeklyUptime(4 * sim.Week); got != 0.75 {
		t.Fatalf("weekly uptime = %v, want 0.75", got)
	}
}

func TestWeeklyUptimeEmptyHorizon(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if got := s.WeeklyUptime(time.Hour); got != 0 {
		t.Fatalf("uptime over sub-week horizon = %v", got)
	}
}

func TestLongestGap(t *testing.T) {
	s := NewStore(StaticKeys(master))
	_ = s.Ingest(sim.Day, sealed(t, 1, 1, 1))
	_ = s.Ingest(5*sim.Day, sealed(t, 1, 2, 1))
	// Gaps: 1d (start), 4d (between), 5d (to the 10-day horizon).
	if got := s.LongestGap(10 * sim.Day); got != 5*sim.Day {
		t.Fatalf("longest gap = %v", got)
	}
	empty := NewStore(StaticKeys(master))
	if got := empty.LongestGap(sim.Week); got != sim.Week {
		t.Fatalf("empty-store gap = %v", got)
	}
}

func TestLeaseLapseDropsData(t *testing.T) {
	s := NewStore(StaticKeys(master))
	s.AddLapse(sim.Week, 2*sim.Week)
	if err := s.Ingest(sim.Week+sim.Day, sealed(t, 1, 1, 1)); !errors.Is(err, ErrLeaseLapsed) {
		t.Fatalf("lapse err = %v", err)
	}
	if err := s.Ingest(2*sim.Week, sealed(t, 1, 2, 1)); err != nil {
		t.Fatalf("post-lapse packet rejected: %v", err)
	}
	st := s.Stats()
	if st.LeaseLapsed != 1 || st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDevicesSorted(t *testing.T) {
	s := NewStore(StaticKeys(master))
	for i, dev := range []uint64{9, 3, 7} {
		if err := s.Ingest(0, sealed(t, dev, uint32(i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	devs := s.Devices()
	if len(devs) != 3 || devs[0].Uint64() != 3 || devs[2].Uint64() != 9 {
		t.Fatalf("devices = %v", devs)
	}
}

func TestDomainLeaseSchedule(t *testing.T) {
	// 50 years at a 10-year max term: renewals at 10, 20, 30, 40.
	sched := DomainLeaseSchedule(sim.Years(50), sim.Years(10))
	if len(sched) != 4 {
		t.Fatalf("schedule = %v", sched)
	}
	if sched[0] != sim.Years(10) || sched[3] != sim.Years(40) {
		t.Fatalf("schedule = %v", sched)
	}
}

func TestDomainLeasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lease term did not panic")
		}
	}()
	DomainLeaseSchedule(sim.Years(50), 0)
}
