package cloud

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

var master = []byte("fleet-master-secret")

func sealed(t *testing.T, dev uint64, seq uint32, value float32) []byte {
	t.Helper()
	id := lpwan.EUIFromUint64(dev)
	wire, err := telemetry.Packet{
		Device: id, Seq: seq, Sensor: telemetry.SensorStrain, Value: value,
	}.Seal(telemetry.DeriveKey(master, id))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestIngestAccepts(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(time.Hour, sealed(t, 1, 1, 20.5)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	h := s.History(lpwan.EUIFromUint64(1))
	if len(h) != 1 || h[0].Packet.Value != 20.5 || h[0].At != time.Hour {
		t.Fatalf("history = %+v", h)
	}
}

func TestIngestRejectsBadSignature(t *testing.T) {
	s := NewStore(StaticKeys(master))
	wire := sealed(t, 1, 1, 1)
	wire[15] ^= 0xff
	if err := s.Ingest(0, wire); err == nil {
		t.Fatal("tampered packet accepted")
	}
	if st := s.Stats(); st.BadSignature != 1 || st.Accepted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(0, []byte("not a packet")); err == nil {
		t.Fatal("malformed accepted")
	}
	if st := s.Stats(); st.Malformed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestRejectsUnknownDevice(t *testing.T) {
	known := lpwan.EUIFromUint64(7)
	resolver := func(dev lpwan.EUI64) (telemetry.Key, bool) {
		if dev == known {
			return telemetry.DeriveKey(master, dev), true
		}
		return nil, false
	}
	s := NewStore(resolver)
	if err := s.Ingest(0, sealed(t, 8, 1, 1)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device err = %v", err)
	}
	if err := s.Ingest(0, sealed(t, 7, 1, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIngestStats hammers every disposition counter from many
// goroutines and checks the totals are exact. Run under -race this also
// pins the locking contract: disposition counting is lock-free atomics,
// not the aux mutex.
func TestConcurrentIngestStats(t *testing.T) {
	const workers, each = 8, 200
	s := NewStore(StaticKeys(master))

	type load struct{ good, bad, junk, unknown [][]byte }
	loads := make([]load, workers)
	unknownKeys := StaticKeys([]byte("some other fleet"))
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			good := sealed(t, uint64(w+1), uint32(i+1), 1)
			bad := sealed(t, uint64(w+1), uint32(i+1), 1)
			bad[15] ^= 0xff
			id := lpwan.EUIFromUint64(uint64(1000 + w))
			key, _ := unknownKeys(id)
			stranger, err := telemetry.Packet{Device: id, Seq: uint32(i + 1)}.Seal(key)
			if err != nil {
				t.Fatal(err)
			}
			loads[w].good = append(loads[w].good, good)
			loads[w].bad = append(loads[w].bad, bad)
			loads[w].junk = append(loads[w].junk, []byte("junk"))
			loads[w].unknown = append(loads[w].unknown, stranger)
		}
	}
	resolver := func(dev lpwan.EUI64) (telemetry.Key, bool) {
		if dev.Uint64() >= 1000 {
			return nil, false
		}
		return telemetry.DeriveKey(master, dev), true
	}
	s = NewStore(resolver)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(l load) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				at := time.Duration(i) * time.Hour
				_ = s.Ingest(at, l.good[i]) // accepted
				_ = s.Ingest(at, l.good[i]) // duplicate (same device, same seq)
				_ = s.Ingest(at, l.bad[i])
				_ = s.Ingest(at, l.junk[i])
				_ = s.Ingest(at, l.unknown[i])
			}
		}(loads[w])
	}
	wg.Wait()

	want := IngestStats{
		Accepted:     workers * each,
		Duplicates:   workers * each,
		BadSignature: workers * each,
		Malformed:    workers * each,
		UnknownDev:   workers * each,
	}
	if got := s.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if s.Count() != workers*each {
		t.Fatalf("count = %d, want %d", s.Count(), workers*each)
	}
}

func TestDuplicateViaSecondGateway(t *testing.T) {
	s := NewStore(StaticKeys(master))
	wire := sealed(t, 1, 5, 1)
	if err := s.Ingest(time.Hour, wire); err != nil {
		t.Fatal(err)
	}
	// The same packet relayed by another gateway minutes later.
	if err := s.Ingest(time.Hour+3*time.Minute, wire); err == nil {
		t.Fatal("duplicate accepted twice")
	}
	st := s.Stats()
	if st.Accepted != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfOrderWithinWindow(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if err := s.Ingest(0, sealed(t, 1, 10, 1)); err != nil {
		t.Fatal(err)
	}
	// Seq 9 arrives late via the slower gateway: within window, accept.
	if err := s.Ingest(time.Minute, sealed(t, 1, 9, 1)); err != nil {
		t.Fatalf("in-window out-of-order rejected: %v", err)
	}
}

func TestWeeklyUptime(t *testing.T) {
	s := NewStore(StaticKeys(master))
	// Packets in weeks 0, 1, 3 of a 4-week horizon: 3/4 uptime.
	for i, at := range []time.Duration{sim.Day, sim.Week + sim.Day, 3*sim.Week + sim.Day} {
		if err := s.Ingest(at, sealed(t, 1, uint32(i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.WeeklyUptime(4 * sim.Week); got != 0.75 {
		t.Fatalf("weekly uptime = %v, want 0.75", got)
	}
}

func TestWeeklyUptimeEmptyHorizon(t *testing.T) {
	s := NewStore(StaticKeys(master))
	if got := s.WeeklyUptime(time.Hour); got != 0 {
		t.Fatalf("uptime over sub-week horizon = %v", got)
	}
}

func TestLongestGap(t *testing.T) {
	s := NewStore(StaticKeys(master))
	_ = s.Ingest(sim.Day, sealed(t, 1, 1, 1))
	_ = s.Ingest(5*sim.Day, sealed(t, 1, 2, 1))
	// Gaps: 1d (start), 4d (between), 5d (to the 10-day horizon).
	if got := s.LongestGap(10 * sim.Day); got != 5*sim.Day {
		t.Fatalf("longest gap = %v", got)
	}
	empty := NewStore(StaticKeys(master))
	if got := empty.LongestGap(sim.Week); got != sim.Week {
		t.Fatalf("empty-store gap = %v", got)
	}
}

// naiveLongestGap is the reference implementation the k-way merge
// replaced: flatten every arrival time and sort the whole history.
func naiveLongestGap(s *Store, horizon time.Duration) time.Duration {
	var times []time.Duration
	s.DB().ForEach(func(p tsdb.Point) { times = append(times, p.At) })
	if len(times) == 0 {
		return horizon
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gap := times[0]
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d > gap {
			gap = d
		}
	}
	if d := horizon - times[len(times)-1]; d > gap {
		gap = d
	}
	return gap
}

// TestLongestGapMatchesNaive drives a many-device fleet with randomized
// arrival times — per-device series deliberately NOT sorted by At, the
// shape a restarted daemon's reset arrival clock leaves behind — and
// checks the merge agrees exactly with the flatten-and-sort reference.
func TestLongestGapMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewStore(StaticKeys(master))
	seqs := make(map[uint64]uint32)
	for i := 0; i < 3000; i++ {
		dev := uint64(rng.Intn(25) + 1)
		seqs[dev]++
		at := time.Duration(rng.Int63n(int64(100 * sim.Day)))
		if err := s.Ingest(at, sealed(t, dev, seqs[dev], 1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, horizon := range []time.Duration{100 * sim.Day, 101 * sim.Day, 365 * sim.Day} {
		want := naiveLongestGap(s, horizon)
		if got := s.LongestGap(horizon); got != want {
			t.Fatalf("horizon %v: merge gap = %v, naive = %v", horizon, got, want)
		}
	}
}

// TestLongestGapSingleDeviceDominates pins the cross-device property:
// one chatty device must not mask another's silence — the gap is over
// the union of arrivals, not per device.
func TestLongestGapSingleDeviceDominates(t *testing.T) {
	s := NewStore(StaticKeys(master))
	// Device 1 reports daily for 10 days; device 2 only at day 0.
	for d := 0; d < 10; d++ {
		_ = s.Ingest(time.Duration(d)*sim.Day, sealed(t, 1, uint32(d+1), 1))
	}
	_ = s.Ingest(0, sealed(t, 2, 1, 1))
	// Union of arrivals is daily: the longest gap is the 2-day tail to
	// the 11-day horizon, not device 2's 11 days of silence.
	if got := s.LongestGap(11 * sim.Day); got != 2*sim.Day {
		t.Fatalf("gap = %v, want %v", got, 2*sim.Day)
	}
}

func TestLeaseLapseDropsData(t *testing.T) {
	s := NewStore(StaticKeys(master))
	s.AddLapse(sim.Week, 2*sim.Week)
	if err := s.Ingest(sim.Week+sim.Day, sealed(t, 1, 1, 1)); !errors.Is(err, ErrLeaseLapsed) {
		t.Fatalf("lapse err = %v", err)
	}
	if err := s.Ingest(2*sim.Week, sealed(t, 1, 2, 1)); err != nil {
		t.Fatalf("post-lapse packet rejected: %v", err)
	}
	st := s.Stats()
	if st.LeaseLapsed != 1 || st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDevicesSorted(t *testing.T) {
	s := NewStore(StaticKeys(master))
	for i, dev := range []uint64{9, 3, 7} {
		if err := s.Ingest(0, sealed(t, dev, uint32(i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	devs := s.Devices()
	if len(devs) != 3 || devs[0].Uint64() != 3 || devs[2].Uint64() != 9 {
		t.Fatalf("devices = %v", devs)
	}
}

func TestDomainLeaseSchedule(t *testing.T) {
	// 50 years at a 10-year max term: renewals at 10, 20, 30, 40.
	sched := DomainLeaseSchedule(sim.Years(50), sim.Years(10))
	if len(sched) != 4 {
		t.Fatalf("schedule = %v", sched)
	}
	if sched[0] != sim.Years(10) || sched[3] != sim.Years(40) {
		t.Fatalf("schedule = %v", sched)
	}
}

func TestDomainLeasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lease term did not panic")
		}
	}()
	DomainLeaseSchedule(sim.Years(50), 0)
}
