package cloud

import "centuryscale/internal/obs"

// ingestObs is the hot-path slice of the endpoint's instrumentation: the
// one histogram Ingest itself touches. Everything else is bridged as
// scrape-time closures over counters the store already keeps.
type ingestObs struct {
	latency *obs.Histogram
	// batchLatency observes whole frames on the batched path: one
	// observation per POST /ingest/batch, not per packet, so the two
	// histograms stay comparable to their own routes.
	batchLatency *obs.Histogram
}

// RegisterMetrics exposes the endpoint's ingest disposition counters and
// installs a packet-latency histogram on reg under the cloud_ prefix.
// clock feeds the histogram's Now/ObserveSince (nil means process wall
// time); deterministic hosts pass their virtual clock so two seeded runs
// scrape byte-identical latency sums.
func (s *Store) RegisterMetrics(reg *obs.Registry, clock obs.Clock) {
	reg.CounterFunc("cloud_ingest_accepted_total", "packets verified, persisted, and acknowledged", s.stats.accepted.Load)
	reg.CounterFunc("cloud_ingest_duplicates_total", "packets rejected as replays or dual-gateway duplicates", s.stats.duplicates.Load)
	reg.CounterFunc("cloud_ingest_bad_signature_total", "packets failing HMAC verification", s.stats.badSignature.Load)
	reg.CounterFunc("cloud_ingest_malformed_total", "packets failing structural parse", s.stats.malformed.Load)
	reg.CounterFunc("cloud_ingest_unknown_device_total", "packets from devices the key resolver refused", s.stats.unknownDev.Load)
	reg.CounterFunc("cloud_ingest_lease_lapsed_total", "packets arriving while the public endpoint was dark", s.stats.leaseLapsed.Load)
	reg.CounterFunc("cloud_ingest_quarantined_total", "packets from devices whose trust was revoked", s.stats.quarantined.Load)
	reg.CounterFunc("cloud_ingest_persist_failures_total", "packets refused because the WAL append failed", s.stats.persistFailures.Load)
	reg.CounterFunc("cloud_repair_readings_total", "readings merged from replicas by read-repair", s.stats.repaired.Load)
	reg.CounterFunc("cloud_ingest_stale_total", "packets arriving below the rollup fold watermark (sealed region)", s.stats.stale.Load)
	reg.CounterFunc("cloud_ingest_batch_frames_total", "well-formed frames admitted on the batched ingest path", s.batchFrames.Load)
	reg.CounterFunc("cloud_ingest_batch_frame_errors_total", "frames rejected at the structural layer (torn, bad CRC, bad count)", s.batchFrameErrors.Load)
	reg.CounterFunc("cloud_wal_group_commits_total", "WAL group commits (one amortized fsync per touched shard per frame)", s.db.GroupCommits)
	s.obs.Store(&ingestObs{
		latency:      reg.Histogram("cloud_ingest_seconds", "wall time per Ingest call, all dispositions", nil, clock),
		batchLatency: reg.Histogram("cloud_ingest_batch_seconds", "wall time per IngestBatch frame, all dispositions", nil, clock),
	})
}
