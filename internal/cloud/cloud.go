// Package cloud implements the data endpoint: the backend that receives,
// authenticates, deduplicates, stores, and publishes device telemetry —
// the centurysensors.com piece of the paper's 50-year experiment (§4.4-4.5).
//
// The paper's end-to-end uptime metric is deliberately modest: "some data
// arrives at some interval of time up to once a week that is publicly
// accessible." The Store tracks exactly that — per-week delivery — along
// with per-device history. The endpoint also carries the one piece of
// scheduled institutional maintenance the paper calls out as certain: the
// DNS domain lease, renewable at most every 10 years, whose lapse takes
// the public page (and thus the metric) down no matter how healthy the
// sensors are.
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

// KeyResolver maps a device address to its verification key. Returning
// ok=false rejects the device as unknown.
type KeyResolver func(dev lpwan.EUI64) (telemetry.Key, bool)

// StaticKeys builds a resolver from a fleet master secret: every derived
// device key verifies (the manufacturer-provisioning model).
func StaticKeys(master []byte) KeyResolver {
	return func(dev lpwan.EUI64) (telemetry.Key, bool) {
		return telemetry.DeriveKey(master, dev), true
	}
}

// Reading is one accepted packet with its arrival time (virtual time in
// simulations, process-relative wall time in the daemons).
type Reading struct {
	At     time.Duration
	Packet telemetry.Packet
}

// IngestStats counts the endpoint's traffic disposition.
type IngestStats struct {
	Accepted     uint64
	Duplicates   uint64 // same packet via a second gateway, or replay
	BadSignature uint64
	Malformed    uint64
	UnknownDev   uint64
	LeaseLapsed  uint64 // arrived while the public endpoint was dark
	Quarantined  uint64 // from devices whose trust has been revoked
}

// Store is the endpoint state: authenticated time-series per device plus
// the weekly-uptime ledger. Safe for concurrent use.
type Store struct {
	keys  KeyResolver
	guard *telemetry.ReplayGuard

	mu       sync.Mutex
	stats    IngestStats
	readings map[lpwan.EUI64][]Reading
	weeks    map[int64]bool // week index -> data arrived

	// lapses are [from,to) windows when the endpoint was unreachable
	// (e.g. a lapsed domain lease).
	lapses []window

	// quarantined maps devices to the virtual time their trust was
	// revoked; see quarantine.go.
	quarantined map[lpwan.EUI64]time.Duration
}

type window struct{ from, to time.Duration }

// NewStore returns an endpoint store using the resolver and a replay
// window tolerant of dual-gateway delivery races.
func NewStore(keys KeyResolver) *Store {
	if keys == nil {
		panic("cloud: nil key resolver")
	}
	return &Store{
		keys:     keys,
		guard:    telemetry.NewReplayGuard(16),
		readings: make(map[lpwan.EUI64][]Reading),
		weeks:    make(map[int64]bool),
	}
}

// AddLapse records a public-unreachability window (lease lapse, hosting
// failure). Packets arriving during a lapse are dropped: nobody was
// listening at the published name.
func (s *Store) AddLapse(from, to time.Duration) {
	if to <= from {
		panic("cloud: empty lapse window")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lapses = append(s.lapses, window{from, to})
}

func (s *Store) inLapseLocked(t time.Duration) bool {
	for _, w := range s.lapses {
		if t >= w.from && t < w.to {
			return true
		}
	}
	return false
}

// Errors from Ingest.
var (
	ErrUnknownDevice = errors.New("cloud: unknown device")
	ErrLeaseLapsed   = errors.New("cloud: endpoint unreachable (lease lapsed)")
)

// Ingest verifies and stores one raw packet arriving at time at.
func (s *Store) Ingest(at time.Duration, wire []byte) error {
	p, err := telemetry.Parse(wire)
	if err != nil {
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return err
	}
	key, ok := s.keys(p.Device)
	if !ok {
		s.mu.Lock()
		s.stats.UnknownDev++
		s.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownDevice, p.Device)
	}
	if _, err := telemetry.Verify(wire, key); err != nil {
		s.mu.Lock()
		s.stats.BadSignature++
		s.mu.Unlock()
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inLapseLocked(at) {
		s.stats.LeaseLapsed++
		return ErrLeaseLapsed
	}
	if s.quarantinedLocked(p.Device, at) {
		s.stats.Quarantined++
		return fmt.Errorf("%w: %v", ErrQuarantined, p.Device)
	}
	if err := s.guard.Admit(p); err != nil {
		s.stats.Duplicates++
		return err
	}
	s.stats.Accepted++
	s.readings[p.Device] = append(s.readings[p.Device], Reading{At: at, Packet: p})
	s.weeks[int64(at/sim.Week)] = true
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() IngestStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Devices returns the addresses with stored data, sorted.
func (s *Store) Devices() []lpwan.EUI64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]lpwan.EUI64, 0, len(s.readings))
	for d := range s.readings {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint64() < out[j].Uint64() })
	return out
}

// History returns a copy of one device's readings in arrival order.
func (s *Store) History(dev lpwan.EUI64) []Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Reading(nil), s.readings[dev]...)
}

// Count returns the total accepted readings.
func (s *Store) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Accepted
}

// WeeklyUptime returns the paper's end-to-end metric over [0, horizon):
// the fraction of weeks in which at least one packet was accepted.
func (s *Store) WeeklyUptime(horizon time.Duration) float64 {
	total := int64(horizon / sim.Week)
	if total <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up := int64(0)
	for w := range s.weeks {
		if w < total {
			up++
		}
	}
	return float64(up) / float64(total)
}

// LongestGap returns the longest interval between consecutive accepted
// packets (across all devices) within [0, horizon), including the gap from
// the last packet to the horizon. It answers "how close did the
// experiment come to missing its weekly deadline".
func (s *Store) LongestGap(horizon time.Duration) time.Duration {
	s.mu.Lock()
	var times []time.Duration
	for _, rs := range s.readings {
		for _, r := range rs {
			times = append(times, r.At)
		}
	}
	s.mu.Unlock()
	if len(times) == 0 {
		return horizon
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gap := times[0]
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d > gap {
			gap = d
		}
	}
	if d := horizon - times[len(times)-1]; d > gap {
		gap = d
	}
	return gap
}

// DomainLeaseSchedule returns the renewal deadlines the operators must
// meet over the horizon given the maximum lease term (10 years per ICANN,
// §4.5): one renewal at every multiple of the term.
func DomainLeaseSchedule(horizon time.Duration, maxTerm time.Duration) []time.Duration {
	if maxTerm <= 0 {
		panic("cloud: non-positive lease term")
	}
	var out []time.Duration
	for t := maxTerm; t < horizon; t += maxTerm {
		out = append(out, t)
	}
	return out
}
