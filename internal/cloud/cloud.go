// Package cloud implements the data endpoint: the backend that receives,
// authenticates, deduplicates, stores, and publishes device telemetry —
// the centurysensors.com piece of the paper's 50-year experiment (§4.4-4.5).
//
// The paper's end-to-end uptime metric is deliberately modest: "some data
// arrives at some interval of time up to once a week that is publicly
// accessible." The Store tracks exactly that — per-week delivery — along
// with per-device history. The endpoint also carries the one piece of
// scheduled institutional maintenance the paper calls out as certain: the
// DNS domain lease, renewable at most every 10 years, whose lapse takes
// the public page (and thus the metric) down no matter how healthy the
// sensors are.
//
// Storage is delegated to internal/tsdb: hash-sharded per-device series
// with an optional write-ahead log, so ingest scales with cores and an
// acknowledged reading survives a crash. This package keeps the policy —
// authentication, replay rejection, quarantine, lapse windows, the
// weekly-uptime ledger — and the versioned-JSON snapshot that stays the
// portable, readable-in-2060 export format.
package cloud

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/query"
	"centuryscale/internal/rollup"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// KeyResolver maps a device address to its verification key. Returning
// ok=false rejects the device as unknown.
type KeyResolver func(dev lpwan.EUI64) (telemetry.Key, bool)

// StaticKeys builds a resolver from a fleet master secret: every derived
// device key verifies (the manufacturer-provisioning model).
func StaticKeys(master []byte) KeyResolver {
	return func(dev lpwan.EUI64) (telemetry.Key, bool) {
		return telemetry.DeriveKey(master, dev), true
	}
}

// Reading is one accepted packet with its arrival time (virtual time in
// simulations, process-relative wall time in the daemons).
type Reading struct {
	At     time.Duration
	Packet telemetry.Packet
}

// IngestStats counts the endpoint's traffic disposition. It is the
// plain-value snapshot/export form (JSON in snapshots and /status); the
// live counters behind it are atomics (ingestCounters).
type IngestStats struct {
	Accepted        uint64
	Duplicates      uint64 // same packet via a second gateway, or replay
	BadSignature    uint64
	Malformed       uint64
	UnknownDev      uint64
	LeaseLapsed     uint64 // arrived while the public endpoint was dark
	Quarantined     uint64 // from devices whose trust has been revoked
	PersistFailures uint64 // WAL append failed; packet refused, not acked
	Repaired        uint64 // readings merged from a replica by read-repair
	Stale           uint64 // arrival below the rollup fold watermark (sealed region)
}

// ingestCounters is the live, lock-free backing of IngestStats. Every
// disposition is one atomic add: a storm of rejects (malformed floods, a
// replayed batch, a quarantined fleet) must not serialize all cores on
// the aux mutex just to count itself — that lock is for the small policy
// state, not the hot path.
type ingestCounters struct {
	accepted        atomic.Uint64
	duplicates      atomic.Uint64
	badSignature    atomic.Uint64
	malformed       atomic.Uint64
	unknownDev      atomic.Uint64
	leaseLapsed     atomic.Uint64
	quarantined     atomic.Uint64
	persistFailures atomic.Uint64
	repaired        atomic.Uint64
	stale           atomic.Uint64
}

func (c *ingestCounters) snapshot() IngestStats {
	return IngestStats{
		Accepted:        c.accepted.Load(),
		Duplicates:      c.duplicates.Load(),
		BadSignature:    c.badSignature.Load(),
		Malformed:       c.malformed.Load(),
		UnknownDev:      c.unknownDev.Load(),
		LeaseLapsed:     c.leaseLapsed.Load(),
		Quarantined:     c.quarantined.Load(),
		PersistFailures: c.persistFailures.Load(),
		Repaired:        c.repaired.Load(),
		Stale:           c.stale.Load(),
	}
}

func (c *ingestCounters) restore(st IngestStats) {
	c.accepted.Store(st.Accepted)
	c.duplicates.Store(st.Duplicates)
	c.badSignature.Store(st.BadSignature)
	c.malformed.Store(st.Malformed)
	c.unknownDev.Store(st.UnknownDev)
	c.leaseLapsed.Store(st.LeaseLapsed)
	c.quarantined.Store(st.Quarantined)
	c.persistFailures.Store(st.PersistFailures)
	c.repaired.Store(st.Repaired)
	c.stale.Store(st.Stale)
}

// ErrPersist wraps a storage-engine append failure: the reading was NOT
// stored and must not be acknowledged. The HTTP layer maps it to
// 503 + Retry-After so resilient gateways buffer and retry.
var ErrPersist = errors.New("cloud: persist failed")

// guardShard is one partition of replay protection. It is sharded with
// the same hash as the storage engine so two packets from the same
// device always serialize on the same lock, and packets from different
// devices almost never do.
type guardShard struct {
	mu    sync.Mutex
	guard *telemetry.ReplayGuard
}

// Store is the endpoint state: authenticated time-series per device plus
// the weekly-uptime ledger. Safe for concurrent use. The hot ingest path
// takes only its device's guard-shard lock and the matching storage
// shard lock; disposition counting is lock-free atomics; the aux mutex
// guards the small policy state (weeks, lapses, quarantine) for
// nanoseconds at a time.
type Store struct {
	keys   KeyResolver
	db     *tsdb.DB
	guards []*guardShard

	stats ingestCounters // lock-free; see IngestStats for the export form

	// batchFrames / batchFrameErrors count whole frames on the batched
	// ingest path (per-packet dispositions land in stats like any other
	// packet): admitted well-formed frames, and frames rejected at the
	// structural layer (torn, bad CRC, bad count).
	batchFrames      atomic.Uint64
	batchFrameErrors atomic.Uint64

	// rollups is the tiered-downsampling engine (nil = rollups
	// disabled). An atomic pointer because the ingest hot path reads it
	// per packet while boot (EnableRollups, ReadSnapshot) installs it;
	// see rollups.go for the fold protocol.
	rollups   atomic.Pointer[rollup.Engine]
	retainRaw time.Duration // raw tail width; set once by EnableRollups
	foldMu    sync.Mutex    // serializes FoldRollups against itself

	// highWater is the maximum arrival time ever accepted (nanoseconds):
	// the data clock fold cutoffs are derived from, so retention depends
	// on the stream, not the wall.
	highWater atomic.Int64

	// obs is the optional ingest latency histogram, installed by
	// RegisterMetrics. An atomic pointer rather than a field set at
	// construction so un-instrumented stores (simulations, tests) pay
	// one predictable nil-check and nothing else.
	obs atomic.Pointer[ingestObs]

	mu    sync.Mutex     // aux state only; never held across db calls
	weeks map[int64]bool // week index -> data arrived

	// lapses are [from,to) windows when the endpoint was unreachable
	// (e.g. a lapsed domain lease).
	lapses []window

	// quarantined maps devices to the virtual time their trust was
	// revoked; see quarantine.go.
	quarantined map[lpwan.EUI64]time.Duration
}

type window struct{ from, to time.Duration }

// replayWindow tolerates dual-gateway delivery races.
const replayWindow = 16

// NewStore returns an in-memory endpoint store (no WAL): the right shape
// for simulations, tests, and deployments that accept snapshot-interval
// durability. For crash-safe storage, open a tsdb.DB with a directory
// and use NewStoreWithDB.
func NewStore(keys KeyResolver) *Store {
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		// Memory-only Open touches no I/O; failure is a programming error.
		panic("cloud: " + err.Error())
	}
	return NewStoreWithDB(keys, db)
}

// NewStoreWithDB returns a store backed by an existing storage engine.
// Boot order for a durable endpoint: Open the DB, build the store, load
// the last snapshot (LoadFile), then ReplayWAL to roll forward.
func NewStoreWithDB(keys KeyResolver, db *tsdb.DB) *Store {
	if keys == nil {
		panic("cloud: nil key resolver")
	}
	if db == nil {
		panic("cloud: nil tsdb")
	}
	s := &Store{
		keys:  keys,
		db:    db,
		weeks: make(map[int64]bool),
	}
	s.guards = freshGuards(db.Shards())
	return s
}

func freshGuards(n int) []*guardShard {
	gs := make([]*guardShard, n)
	for i := range gs {
		gs[i] = &guardShard{guard: telemetry.NewReplayGuard(replayWindow)}
	}
	return gs
}

func (s *Store) guardFor(dev lpwan.EUI64) *guardShard {
	return s.guards[tsdb.ShardIndex(dev, len(s.guards))]
}

// DB exposes the underlying storage engine (for checkpointing, stats,
// and shutdown).
func (s *Store) DB() *tsdb.DB { return s.db }

// Close seals the storage engine's WALs.
func (s *Store) Close() error { return s.db.Close() }

// StorageStats returns the storage engine's summary.
func (s *Store) StorageStats() tsdb.Stats { return s.db.Stats() }

// AddLapse records a public-unreachability window (lease lapse, hosting
// failure). Packets arriving during a lapse are dropped: nobody was
// listening at the published name.
func (s *Store) AddLapse(from, to time.Duration) {
	if to <= from {
		panic("cloud: empty lapse window")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lapses = append(s.lapses, window{from, to})
}

func (s *Store) inLapseLocked(t time.Duration) bool {
	for _, w := range s.lapses {
		if t >= w.from && t < w.to {
			return true
		}
	}
	return false
}

// Errors from Ingest.
var (
	ErrUnknownDevice = errors.New("cloud: unknown device")
	ErrLeaseLapsed   = errors.New("cloud: endpoint unreachable (lease lapsed)")
)

// Ingest verifies and stores one raw packet arriving at time at. On
// success the reading is as durable as the storage engine's fsync policy
// guarantees before Ingest returns — the acknowledgement contract.
//lint:hotpath budget=1 per-packet disposition path; the one static always-site is ReplayGuard's lazy per-device seen-map init, amortized to zero once a device is known
func (s *Store) Ingest(at time.Duration, wire []byte) error {
	o := s.obs.Load()
	if o == nil {
		return s.ingest(at, wire)
	}
	// Measured without defer: a closure capture here would put an
	// allocation on every packet.
	start := o.latency.Now()
	err := s.ingest(at, wire)
	o.latency.ObserveSince(start)
	return err
}

//lint:hotpath budget=1 same bound as Ingest: parse, verify, and append reuse their inputs; only the replay guard's first-contact map init allocates
func (s *Store) ingest(at time.Duration, wire []byte) error {
	p, err := telemetry.Parse(wire)
	if err != nil {
		s.stats.malformed.Add(1)
		return err
	}
	key, ok := s.keys(p.Device)
	if !ok {
		s.stats.unknownDev.Add(1)
		return fmt.Errorf("%w: %v", ErrUnknownDevice, p.Device)
	}
	if _, err := telemetry.Verify(wire, key); err != nil {
		s.stats.badSignature.Add(1)
		return err
	}

	s.mu.Lock()
	if s.inLapseLocked(at) {
		s.mu.Unlock()
		s.stats.leaseLapsed.Add(1)
		return ErrLeaseLapsed
	}
	if s.quarantinedLocked(p.Device, at) {
		s.mu.Unlock()
		s.stats.quarantined.Add(1)
		return fmt.Errorf("%w: %v", ErrQuarantined, p.Device)
	}
	s.mu.Unlock()

	// Freshness check and storage append commit together under the
	// device's guard-shard lock: Fresh first (no mutation), then the
	// fallible WAL append, then Admit — so a failed append leaves the
	// guard clean and the packet retryable.
	gs := s.guardFor(p.Device)
	gs.mu.Lock()
	// Sealed-region check under the guard lock: FoldRollups publishes
	// the watermark and then takes every guard lock once (the barrier),
	// so any append that saw the old watermark has committed before the
	// drain runs — no packet can slip between "summarized" and "raw".
	if r := s.rollups.Load(); r != nil {
		if wm := r.FoldedBefore(); at < wm {
			gs.mu.Unlock()
			s.stats.stale.Add(1)
			return fmt.Errorf("%w: arrival %v precedes fold watermark %v", ErrSealed, at, wm)
		}
	}
	if err := gs.guard.Fresh(p); err != nil {
		gs.mu.Unlock()
		s.stats.duplicates.Add(1)
		return err
	}
	if err := s.db.Append(pointOf(at, p)); err != nil { //lint:lockedio Fresh/Append/Admit must commit atomically under the per-device guard shard, or a crash between them acks an unpersisted packet; the lock is sharded per device, never global
		gs.mu.Unlock()
		s.stats.persistFailures.Add(1)
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	_ = gs.guard.Admit(p) // cannot fail: Fresh held under the same lock
	gs.mu.Unlock()

	s.stats.accepted.Add(1)
	s.observeArrival(at)
	s.mu.Lock()
	s.weeks[int64(at/sim.Week)] = true
	s.mu.Unlock()
	return nil
}

// ReplayWAL rolls the storage engine's write-ahead log forward over
// whatever state is already loaded (usually the last snapshot). Records
// the replay guard has already seen — the overlap a crash between
// checkpoint write and WAL truncation leaves behind — are skipped, so
// replay is idempotent. Records below the restored fold watermark are
// likewise skipped: they are already summarized in the snapshot's
// rollup buckets (a crash between the checkpoint's rename and its WAL
// truncation leaves them behind), and loading them raw would count them
// twice. The guard still learns their sequence numbers first. Returns
// the engine's replay summary.
func (s *Store) ReplayWAL() (tsdb.ReplayStats, error) {
	var folded time.Duration
	if r := s.rollups.Load(); r != nil {
		folded = r.FoldedBefore()
	}
	return s.db.Replay(func(pt tsdb.Point) bool {
		s.observeArrival(pt.At)
		p := packetOf(pt)
		gs := s.guardFor(p.Device)
		gs.mu.Lock()
		err := gs.guard.Admit(p)
		gs.mu.Unlock()
		if pt.At < folded {
			return false // summarized in the snapshot's buckets; stats already counted there
		}
		if err != nil {
			return false
		}
		s.stats.accepted.Add(1)
		s.mu.Lock()
		s.weeks[int64(pt.At/sim.Week)] = true
		s.mu.Unlock()
		return true
	})
}

func pointOf(at time.Duration, p telemetry.Packet) tsdb.Point {
	return tsdb.Point{
		Device: p.Device,
		At:     at,
		Seq:    p.Seq,
		Sensor: uint8(p.Sensor),
		Value:  p.Value,
		Uptime: p.UptimeSeconds,
	}
}

func packetOf(pt tsdb.Point) telemetry.Packet {
	return telemetry.Packet{
		Device:        pt.Device,
		Seq:           pt.Seq,
		Sensor:        telemetry.SensorType(pt.Sensor),
		Value:         pt.Value,
		UptimeSeconds: pt.Uptime,
	}
}

func readingOf(pt tsdb.Point) Reading {
	return Reading{At: pt.At, Packet: packetOf(pt)}
}

// Stats returns a snapshot of the counters. Each field is individually
// exact; a snapshot taken while ingest races may tear between fields
// (e.g. an accept counted but its week not yet ledgered) — at
// quiescence it is exact in full.
func (s *Store) Stats() IngestStats {
	return s.stats.snapshot()
}

// Devices returns the addresses with stored data, sorted.
func (s *Store) Devices() []lpwan.EUI64 {
	return s.db.Devices()
}

// History returns a copy of one device's readings in arrival order.
func (s *Store) History(dev lpwan.EUI64) []Reading {
	pts := s.db.History(dev)
	out := make([]Reading, len(pts))
	for i, pt := range pts {
		out[i] = readingOf(pt)
	}
	return out
}

// HistoryRange returns one device's readings with arrival time in
// [from, to), in arrival order — the storage engine's range query, used
// by the status page's windowed views.
func (s *Store) HistoryRange(dev lpwan.EUI64, from, to time.Duration) []Reading {
	it := s.db.Range(dev, from, to)
	out := make([]Reading, 0, it.Remaining())
	for it.Next() {
		out = append(out, readingOf(it.Point()))
	}
	return out
}

// Count returns the total accepted readings.
func (s *Store) Count() uint64 {
	return s.stats.accepted.Load()
}

// WeeklyUptime returns the paper's end-to-end metric over [0, horizon):
// the fraction of weeks in which at least one packet was accepted.
func (s *Store) WeeklyUptime(horizon time.Duration) float64 {
	total := int64(horizon / sim.Week)
	if total <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up := int64(0)
	for w := range s.weeks {
		if w < total {
			up++
		}
	}
	return float64(up) / float64(total)
}

// LongestGap returns the longest interval between consecutive accepted
// packets (across all devices) within [0, horizon), including the gap from
// the last packet to the horizon. It answers "how close did the
// experiment come to missing its weekly deadline".
//
// The k-way merge over per-device arrival runs (PR 5's O(n log k)
// replacement for flatten-and-sort) lives in internal/query now, shared
// with the per-device tier-walk queries; only the 8-byte times are
// copied out of the shards. Note this scans the RAW store: with rollups
// enabled it covers the raw tail only — use the query engine's
// LongestGap/TopGaps for the full sealed history.
func (s *Store) LongestGap(horizon time.Duration) time.Duration {
	return query.MergeLongestGap(s.db.TimesByDevice(), horizon)
}

// DomainLeaseSchedule returns the renewal deadlines the operators must
// meet over the horizon given the maximum lease term (10 years per ICANN,
// §4.5): one renewal at every multiple of the term.
func DomainLeaseSchedule(horizon time.Duration, maxTerm time.Duration) []time.Duration {
	if maxTerm <= 0 {
		panic("cloud: non-positive lease term")
	}
	var out []time.Duration
	for t := maxTerm; t < horizon; t += maxTerm {
		out = append(out, t)
	}
	return out
}
