package cloud

import (
	"time"

	"centuryscale/internal/tsdb"
)

// Retention (§4.4: "potential data retention and resiliency"): a 50-year
// endpoint accumulating hourly readings from a growing fleet cannot keep
// every packet hot forever. The standard answer is tiered thinning: full
// resolution for the recent window, one representative reading per coarse
// bucket beyond it. Compaction never touches the weekly-uptime ledger —
// the experiment's headline metric is append-only.

// RetentionPolicy thins old readings.
type RetentionPolicy struct {
	// FullResolutionWindow keeps everything younger than now-window.
	FullResolutionWindow time.Duration
	// KeepOnePer is the bucket width for older readings: the first
	// reading in each bucket survives, the rest drop.
	KeepOnePer time.Duration
}

// DefaultRetention keeps 2 years at full rate, then daily samples — a
// ~97% reduction for hourly reporters, preserving trend analysis.
func DefaultRetention() RetentionPolicy {
	return RetentionPolicy{
		FullResolutionWindow: 2 * 365 * 24 * time.Hour,
		KeepOnePer:           24 * time.Hour,
	}
}

// Compact applies the policy as of virtual time now, returning how many
// readings were dropped. The work is delegated to the storage engine,
// which compacts shard by shard — one partition pauses for its own pass
// while the rest keep ingesting, so retention never stalls the endpoint
// globally.
func (s *Store) Compact(now time.Duration, p RetentionPolicy) (dropped int) {
	if p.KeepOnePer <= 0 {
		panic("cloud: retention bucket must be positive")
	}
	return s.db.Compact(now, tsdb.Retention{
		FullResolutionWindow: p.FullResolutionWindow,
		KeepOnePer:           p.KeepOnePer,
	})
}
