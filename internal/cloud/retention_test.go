package cloud

import (
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
)

func TestCompactThinsOldReadings(t *testing.T) {
	s := NewStore(StaticKeys(master))
	// Hourly readings for 10 days.
	for h := 0; h < 240; h++ {
		at := time.Duration(h) * time.Hour
		if err := s.Ingest(at, sealed(t, 1, uint32(h+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the last 2 days at full rate, older thinned to daily.
	dropped := s.Compact(240*time.Hour, RetentionPolicy{
		FullResolutionWindow: 48 * time.Hour,
		KeepOnePer:           24 * time.Hour,
	})
	hist := s.History(lpwan.EUIFromUint64(1))
	// Old region: 192 hourly readings -> 8 daily survivors. Recent: 48.
	if len(hist) != 56 {
		t.Fatalf("kept %d readings, want 56", len(hist))
	}
	if dropped != 240-56 {
		t.Fatalf("dropped = %d", dropped)
	}
	// Survivors in the old region are bucket-leading (midnight) samples.
	if hist[0].At != 0 || hist[1].At != 24*time.Hour {
		t.Fatalf("old survivors at %v, %v", hist[0].At, hist[1].At)
	}
	// Recent region untouched and contiguous.
	last := hist[len(hist)-1]
	if last.At != 239*time.Hour {
		t.Fatalf("latest reading at %v", last.At)
	}
}

func TestCompactPreservesWeeklyUptime(t *testing.T) {
	s := NewStore(StaticKeys(master))
	for w := 0; w < 10; w++ {
		at := time.Duration(w)*sim.Week + sim.Day
		if err := s.Ingest(at, sealed(t, 1, uint32(w+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.WeeklyUptime(10 * sim.Week)
	s.Compact(10*sim.Week, RetentionPolicy{FullResolutionWindow: 0, KeepOnePer: 30 * sim.Day})
	after := s.WeeklyUptime(10 * sim.Week)
	if before != after {
		t.Fatalf("compaction changed the uptime metric: %v -> %v", before, after)
	}
}

func TestCompactNoopOnRecentData(t *testing.T) {
	s := NewStore(StaticKeys(master))
	for h := 0; h < 24; h++ {
		if err := s.Ingest(time.Duration(h)*time.Hour, sealed(t, 1, uint32(h+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := s.Compact(24*time.Hour, DefaultRetention()); dropped != 0 {
		t.Fatalf("dropped %d recent readings", dropped)
	}
	if len(s.History(lpwan.EUIFromUint64(1))) != 24 {
		t.Fatal("recent history shrank")
	}
}

func TestCompactPanicsOnBadPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket did not panic")
		}
	}()
	NewStore(StaticKeys(master)).Compact(0, RetentionPolicy{})
}

func TestCompactIdempotent(t *testing.T) {
	s := NewStore(StaticKeys(master))
	for h := 0; h < 200; h++ {
		if err := s.Ingest(time.Duration(h)*time.Hour, sealed(t, 1, uint32(h+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	pol := RetentionPolicy{FullResolutionWindow: 24 * time.Hour, KeepOnePer: 24 * time.Hour}
	first := s.Compact(200*time.Hour, pol)
	second := s.Compact(200*time.Hour, pol)
	if first == 0 || second != 0 {
		t.Fatalf("compaction not idempotent: first=%d second=%d", first, second)
	}
}
