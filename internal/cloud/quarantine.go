package cloud

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/lpwan"
)

// Quarantine: transmit-only devices have "limited longitudinal trust"
// (§4.1) — their keys can never rotate, so a device whose key must be
// presumed leaked cannot be fixed, only distrusted. Gateways carry the
// blocklist for traffic suppression (§3.2); the endpoint carries the
// *data* quarantine: new packets from a quarantined device are refused,
// and its historical readings can be excluded from analyses without
// being destroyed (the diary keeps everything; analyses choose trust).

// ErrQuarantined is returned by Ingest for quarantined devices.
var ErrQuarantined = fmt.Errorf("cloud: device quarantined")

// Quarantine marks a device untrusted from virtual time from onward.
// Packets already stored remain (marked via the cut-off), and subsequent
// ingest attempts are refused and counted.
func (s *Store) Quarantine(dev lpwan.EUI64, from time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined == nil {
		s.quarantined = make(map[lpwan.EUI64]time.Duration)
	}
	if existing, ok := s.quarantined[dev]; !ok || from < existing {
		s.quarantined[dev] = from
	}
}

// Unquarantine restores trust (e.g. after forensics clear the device).
func (s *Store) Unquarantine(dev lpwan.EUI64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.quarantined, dev)
}

// Quarantined reports whether the device is distrusted at time t.
func (s *Store) Quarantined(dev lpwan.EUI64, t time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantinedLocked(dev, t)
}

func (s *Store) quarantinedLocked(dev lpwan.EUI64, t time.Duration) bool {
	from, ok := s.quarantined[dev]
	return ok && t >= from
}

// TrustedHistory returns the device's readings accepted before its
// quarantine cut-off (all of them if never quarantined).
func (s *Store) TrustedHistory(dev lpwan.EUI64) []Reading {
	s.mu.Lock()
	cutoff, quarantined := s.quarantined[dev]
	s.mu.Unlock()
	if !quarantined {
		return s.History(dev)
	}
	// The quarantine cut-off is exactly a storage range query: keep
	// everything that arrived before cutoff.
	return s.HistoryRange(dev, math.MinInt64, cutoff)
}
