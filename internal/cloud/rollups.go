package cloud

import (
	"errors"
	"fmt"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/query"
	"centuryscale/internal/rollup"
	"centuryscale/internal/tsdb"
)

// Rollup integration: the endpoint's side of the tiered read path.
//
// The invariant everything below maintains is a clean partition of the
// acknowledged history at the fold watermark: every point with arrival
// time below rollup.Engine.FoldedBefore is summarized in bucket state
// exactly once (and its raw copy may be gone); every point at or above
// it is raw. Three rules keep it:
//
//  1. Ingest (and Repair) refuse arrivals below the watermark — the
//     sealed region is immutable, so late data inside it is a permanent
//     reject (ErrSealed, HTTP 422), counted in IngestStats.Stale.
//  2. FoldRollups drains EVERY stored point below the watermark into
//     buckets, after a barrier over the guard-shard locks guarantees no
//     in-flight ingest that read the old watermark is still mid-append.
//  3. ReplayWAL skips records below the restored watermark — they are
//     already inside the snapshot's buckets.

// ErrSealed rejects a packet whose arrival time falls below the rollup
// fold watermark. The sealed region's buckets are immutable (queries
// may already have served them), so this is a permanent refusal, not a
// retryable one.
var ErrSealed = errors.New("cloud: arrival time below rollup fold watermark (region sealed)")

// EnableRollups switches the store to tiered retention: points older
// than retainRaw (relative to the data high-water mark) are folded into
// hourly/daily aggregate buckets at every checkpoint and their raw
// copies dropped. Must be called at boot, before LoadFile — the
// snapshot loader needs the engine (and its tier geometry) to restore
// bucket state into.
func (s *Store) EnableRollups(cfg rollup.Config, retainRaw time.Duration) error {
	if retainRaw <= 0 {
		return fmt.Errorf("cloud: rollup raw retention must be positive, got %v", retainRaw)
	}
	eng, err := rollup.New(cfg)
	if err != nil {
		return err
	}
	s.retainRaw = retainRaw
	s.rollups.Store(eng)
	return nil
}

// Rollups returns the rollup engine, nil when rollups are disabled.
func (s *Store) Rollups() *rollup.Engine { return s.rollups.Load() }

// HighWater returns the newest arrival time ever accepted (including
// replayed and repaired records) — the data clock that fold cutoffs are
// derived from. Virtual-time ingest (simulations, cluster-stamped
// arrivals) moves it exactly as far as the data says, so retention is a
// property of the series, not of the serving process's wall clock.
func (s *Store) HighWater() time.Duration {
	return time.Duration(s.highWater.Load())
}

func (s *Store) observeArrival(at time.Duration) {
	n := int64(at)
	for {
		cur := s.highWater.Load()
		if n <= cur || s.highWater.CompareAndSwap(cur, n) {
			return
		}
	}
}

// FoldRollups advances the fold watermark to alignDown(now-retainRaw,
// hourly) and summarizes every raw point below it into the rollup
// tiers, dropping the raw copies from the memtable. Returns the number
// of points folded (0 when rollups are disabled or the watermark did
// not move). The caller persists the new bucket state by
// checkpointing; CheckpointAt does both in the right order.
//
// Publication protocol: the new watermark is published first, then
// every guard-shard lock is taken and released once. Ingest checks the
// watermark under its guard lock, so after the barrier no append below
// the new watermark can be in flight — the drain is complete by
// construction, and rollup.Engine.StaleDrops stays zero.
func (s *Store) FoldRollups(now time.Duration) int {
	r := s.rollups.Load()
	if r == nil {
		return 0
	}
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	before := r.FoldedBefore()
	wm := r.Advance(now - s.retainRaw)
	if wm <= before {
		return 0
	}
	for _, gs := range s.guards {
		gs.mu.Lock() // barrier, not a critical section: see the publication protocol above
		gs.mu.Unlock()
	}
	return r.Fold(s.db.DrainBelow(wm))
}

// CheckpointAt is Checkpoint with tiered retention: between the WAL
// rotation and the snapshot save it folds everything older than the raw
// retention window into the rollup tiers, so the snapshot captures the
// new buckets and the truncation reclaims the folded records' WAL
// segments in the same pass. now is the caller's data clock — normally
// Store.HighWater().
//
// Crash windows (verified by TestRollupCrashSafety): before the
// snapshot rename, the old snapshot's watermark stands, the full WAL
// replays the drained points back raw, and the next fold re-summarizes
// them byte-identically (the fold's total order makes re-folding
// deterministic). After the rename but before truncation, ReplayWAL
// skips the folded records via the restored watermark.
func (s *Store) CheckpointAt(path string, now time.Duration) error {
	return s.db.Checkpoint(func() error {
		s.FoldRollups(now)
		return s.SaveFile(path)
	})
}

// storeSource adapts the store to the query engine's Source, reading
// the rollup pointer per call so a snapshot restore mid-flight is
// picked up.
type storeSource struct{ s *Store }

func (src storeSource) RollupEngine() *rollup.Engine { return src.s.rollups.Load() }

func (src storeSource) RawPoints(dev lpwan.EUI64, from, to time.Duration) ([]tsdb.Point, func()) {
	return src.s.db.RangeSlice(dev, from, to)
}

func (src storeSource) RawDevices() []lpwan.EUI64 { return src.s.db.Devices() }

// QueryEngine returns the streaming query layer over this store's
// rollup tiers and raw tail.
func (s *Store) QueryEngine() *query.Engine {
	return &query.Engine{Src: storeSource{s}}
}
