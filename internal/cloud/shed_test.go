package cloud

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func sealedPacket(t *testing.T, master []byte, dev uint64, seq uint32) []byte {
	t.Helper()
	id := lpwan.EUIFromUint64(dev)
	wire, err := telemetry.Packet{Device: id, Seq: seq, Sensor: telemetry.SensorTemperature, Value: 1}.
		Seal(telemetry.DeriveKey(master, id))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestServerShedsWhenDegraded(t *testing.T) {
	master := []byte("shed-master")
	srv := NewServer(NewStore(StaticKeys(master)), time.Now())
	srv.SetRetryAfter(2 * time.Second)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.SetDegraded(true)
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealedPacket(t, master, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2", got)
	}
	if srv.Shed() != 1 || !srv.Degraded() {
		t.Fatalf("shed=%d degraded=%v", srv.Shed(), srv.Degraded())
	}

	// Recovery: the same packet is accepted afterwards — nothing was
	// half-ingested during degradation.
	srv.SetDegraded(false)
	resp, err = http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealedPacket(t, master, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery status = %d", resp.StatusCode)
	}

	// Shed count and degradation appear on /status.
	var st struct {
		Shed     uint64 `json:"shed"`
		Degraded bool   `json:"degraded"`
	}
	resp, err = http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}
}

func TestServerShedsOverload(t *testing.T) {
	master := []byte("overload-master")
	store := NewStore(StaticKeys(master))
	srv := NewServer(store, time.Now())
	srv.SetIngestLimit(1)

	// Hold the single ingest slot open with a request whose body stalls
	// until we release it.
	release := make(chan struct{})
	holding := make(chan struct{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pr := &stallingReader{data: sealedPacket(t, master, 2, 1), holding: holding, release: release}
		req, _ := http.NewRequest("POST", ts.URL+"/ingest", pr)
		req.ContentLength = int64(len(pr.data))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-holding

	// The slot is taken: a second ingest is shed with 503 + Retry-After.
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealedPacket(t, master, 3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overload 503 missing Retry-After")
	}
	close(release)
	wg.Wait()

	// With the slot free again, ingest succeeds.
	resp, err = http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealedPacket(t, master, 3, 2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-overload status = %d", resp.StatusCode)
	}
	if srv.Shed() != 1 {
		t.Fatalf("shed = %d", srv.Shed())
	}
}

// stallingReader serves its first byte, signals, then blocks the rest of
// the body until released — pinning the server's ingest slot.
type stallingReader struct {
	data    []byte
	pos     int
	signal  sync.Once
	holding chan struct{}
	release chan struct{}
}

func (r *stallingReader) Read(p []byte) (int, error) {
	if r.pos == 0 && len(r.data) > 0 {
		p[0] = r.data[0]
		r.pos = 1
		return 1, nil
	}
	r.signal.Do(func() { close(r.holding) })
	<-r.release
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}
