package cloud

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// TestWALReplayReconstructsSnapshotBytes is the storage engine's
// round-trip property: for any accepted ingest sequence, a fresh store
// rebuilt purely from the WAL serialises to a snapshot byte-identical
// to the live store's. If this holds, the WAL carries everything the
// portable archive format considers state — nothing acknowledged can be
// lost between checkpoints, and nothing spurious can be invented.
func TestWALReplayReconstructsSnapshotBytes(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 0xC0FFEE} {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()

		db, err := tsdb.Open(tsdb.Options{Dir: dir, Shards: 4, Sync: tsdb.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		live := NewStoreWithDB(StaticKeys(master), db)

		// A random accepted sequence: per-device strictly increasing
		// seqs (so every ingest is admitted), random interleaving,
		// random values and times.
		devs := 1 + rng.Intn(8)
		nextSeq := make([]uint32, devs)
		at := time.Duration(0)
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			d := rng.Intn(devs)
			nextSeq[d]++
			at += time.Duration(rng.Intn(3600)) * time.Second
			p := telemetry.Packet{
				Device:        lpwan.EUIFromUint64(uint64(d + 1)),
				Seq:           nextSeq[d],
				Sensor:        telemetry.SensorType(rng.Intn(8)),
				Value:         rng.Float32() * 100,
				UptimeSeconds: uint32(rng.Intn(1 << 20)),
			}
			wire, err := p.Seal(telemetry.DeriveKey(master, p.Device))
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Ingest(at, wire); err != nil {
				t.Fatalf("seed %d ingest %d: %v", seed, i, err)
			}
		}

		var liveSnap bytes.Buffer
		if err := live.WriteSnapshot(&liveSnap); err != nil {
			t.Fatal(err)
		}
		if err := live.Close(); err != nil {
			t.Fatal(err)
		}

		// Rebuild from the WAL alone: no snapshot loaded first.
		redb, err := tsdb.Open(tsdb.Options{Dir: dir, Shards: 4, Sync: tsdb.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		rebuilt := NewStoreWithDB(StaticKeys(master), redb)
		rs, err := rebuilt.ReplayWAL()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Kept != uint64(n) || rs.Corruptions != 0 {
			t.Fatalf("seed %d: replay stats %+v, want %d kept", seed, rs, n)
		}
		var rebuiltSnap bytes.Buffer
		if err := rebuilt.WriteSnapshot(&rebuiltSnap); err != nil {
			t.Fatal(err)
		}
		rebuilt.Close()

		if !bytes.Equal(liveSnap.Bytes(), rebuiltSnap.Bytes()) {
			t.Fatalf("seed %d: WAL replay did not reconstruct the snapshot\nlive:    %s\nrebuilt: %s",
				seed, truncated(liveSnap.String()), truncated(rebuiltSnap.String()))
		}

		// And the rebuilt store keeps working: the guard still rejects a
		// replayed duplicate of the last packet of device 1.
		dup := telemetry.Packet{Device: lpwan.EUIFromUint64(1), Seq: nextSeq[0], Sensor: 0, Value: 1}
		wire, err := dup.Seal(telemetry.DeriveKey(master, dup.Device))
		if err != nil {
			t.Fatal(err)
		}
		if nextSeq[0] > 0 {
			if err := rebuilt.Ingest(at+time.Hour, wire); err == nil {
				t.Fatalf("seed %d: rebuilt store accepted a replayed duplicate", seed)
			}
		}
	}
}

// TestSnapshotDeterministic: the same state serialises to the same
// bytes, run to run — the property the byte-identity test above leans
// on, and the property an auditor diffing two archive copies needs.
func TestSnapshotDeterministic(t *testing.T) {
	s := populatedStore(t)
	var a, b bytes.Buffer
	if err := s.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}
}

func truncated(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
