package cloud

import (
	"fmt"
	"sync"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// Batched ingest: the endpoint half of the gateway→endpoint frame path.
// One POST /ingest/batch frame of N packets becomes one pass of
// per-packet verification plus one WAL group commit per touched shard —
// the fsync amortization that closes ROADMAP item 1's gap between the
// ~3 µs instrumented ingest and the ~0.8 µs bare append. The durability
// contract is byte-for-byte the single-packet one: no packet in the
// frame is acknowledged until the group fsync covering it has returned.

// BatchResult summarizes one frame's disposition, echoed as the 202
// response body so the gateway can reconcile its counters.
type BatchResult struct {
	// Total is the packet count the frame declared.
	Total int `json:"total"`
	// Accepted packets are verified, durably stored, and acknowledged.
	Accepted int `json:"accepted"`
	// Duplicates covers replay-guard rejects and intra-frame repeats.
	Duplicates int `json:"duplicates"`
	// Rejected covers malformed, unknown-device, bad-signature, and
	// quarantined packets — refusals retrying cannot cure.
	Rejected int `json:"rejected"`
	// Stale packets arrived below the rollup fold watermark.
	Stale int `json:"stale"`
}

// devSeq keys the intra-frame dedup map: two packets with the same
// device and sequence number inside one frame would both pass the
// replay guard's non-mutating Fresh check, so the frame loop must
// remember what it has already admitted this frame.
type devSeq struct {
	dev uint64
	seq uint32
}

// batchScratch is the pooled per-frame working set: candidate packets,
// the current shard's group, the points handed to the group commit, and
// the intra-frame dedup map. Pooling these is what holds the batched
// path at ≤2 allocs/packet — steady state reuses every buffer.
type batchScratch struct {
	cands []telemetry.Packet
	wires [][]byte // wire bytes of cands, parallel; views into the frame
	group []telemetry.Packet
	fresh []tsdb.Point
	seen  map[devSeq]struct{}
	// verifiers caches one keyed HMAC state per device across the
	// scratch's lifetime — keys never rotate (burned in at manufacture),
	// so the cache is only ever warm, never wrong. It survives release()
	// because rebuilding it is the expensive part.
	verifiers map[lpwan.EUI64]*telemetry.Verifier
}

// maxCachedVerifiers bounds one scratch's verifier cache; past it the
// cache resets rather than tracking an unbounded fleet per scratch.
const maxCachedVerifiers = 4096

var batchScratchPool = sync.Pool{
	New: func() any {
		return &batchScratch{
			seen:      make(map[devSeq]struct{}, 64),
			verifiers: make(map[lpwan.EUI64]*telemetry.Verifier, 64),
		}
	},
}

func (sc *batchScratch) release() {
	sc.cands = sc.cands[:0]
	sc.wires = sc.wires[:0]
	sc.group = sc.group[:0]
	sc.fresh = sc.fresh[:0]
	clear(sc.seen)
	if len(sc.verifiers) > maxCachedVerifiers {
		clear(sc.verifiers)
	}
	batchScratchPool.Put(sc)
}

// IngestBatch verifies and stores a frame of packets arriving together
// at time at. Every packet is authenticated individually, exactly as
// Ingest would; what the frame shares is the arrival stamp, the policy
// checks that depend only on it, and — the point — the WAL fsync.
//
// Error semantics: a non-nil error means the caller must NOT treat the
// frame as acknowledged. ErrPersist reports that at least one shard's
// group commit failed — packets on other shards may have committed, but
// the sender retries the whole frame and the replay guards deduplicate
// the survivors, the same contract a retried single packet has always
// had. Frame-structure errors (torn, bad CRC) reject before any packet
// is examined. A per-packet refusal (bad signature, duplicate) is not
// an error; it is counted in the result.
func (s *Store) IngestBatch(at time.Duration, frame []byte) (BatchResult, error) {
	o := s.obs.Load()
	if o == nil || o.batchLatency == nil {
		return s.ingestBatch(at, frame)
	}
	start := o.batchLatency.Now()
	res, err := s.ingestBatch(at, frame)
	o.batchLatency.ObserveSince(start)
	return res, err
}

//lint:hotpath budget=3 per-frame admission: pooled scratch and dedup map amortize to zero, plus one verifier build per device-cache miss — misses are bounded by fleet size, not traffic. Per packet the loops parse, verify, and append into reused buffers; the runtime contract (≤2 allocs/packet, measured ~1) is pinned by BenchmarkIngestBatched
func (s *Store) ingestBatch(at time.Duration, frame []byte) (BatchResult, error) {
	var res BatchResult
	payload, n, err := batch.Split(frame, 0)
	if err != nil {
		s.batchFrameErrors.Add(1)
		return res, err
	}
	s.batchFrames.Add(1)
	res.Total = n

	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()

	// Pass 1: structural parse, per packet. Parse reads a subslice of
	// the frame and copies out a fixed-size Packet value — no
	// allocation, nothing retains the frame's bytes past this function.
	for i := 0; i < n; i++ {
		wire := batch.Packet(payload, i)
		p, err := telemetry.Parse(wire)
		if err != nil {
			s.stats.malformed.Add(1)
			res.Rejected++
			continue
		}
		sc.cands = append(sc.cands, p)
		sc.wires = append(sc.wires, wire)
	}

	// Pass 1b: signature verification over the candidate batch, through
	// the per-device verifier cache — a cache miss builds one reusable
	// keyed HMAC state, a hit verifies with zero allocation.
	verified := sc.cands[:0]
	for ci, p := range sc.cands {
		ver := sc.verifiers[p.Device]
		if ver == nil {
			key, ok := s.keys(p.Device)
			if !ok {
				s.stats.unknownDev.Add(1)
				res.Rejected++
				continue
			}
			v, err := telemetry.NewVerifier(key)
			if err != nil {
				s.stats.badSignature.Add(1)
				res.Rejected++
				continue
			}
			ver = v
			sc.verifiers[p.Device] = ver
		}
		if _, err := ver.Verify(sc.wires[ci]); err != nil {
			s.stats.badSignature.Add(1)
			res.Rejected++
			continue
		}
		verified = append(verified, p)
	}
	sc.cands = verified

	// Pass 2: arrival-time policy under one aux-lock acquisition for the
	// whole frame. A lapse rejects everything (nobody was listening at
	// the published name); quarantine is per device.
	s.mu.Lock()
	if s.inLapseLocked(at) {
		s.mu.Unlock()
		k := len(sc.cands)
		s.stats.leaseLapsed.Add(uint64(k))
		res.Rejected += k
		return res, ErrLeaseLapsed
	}
	keep := sc.cands[:0]
	for _, p := range sc.cands {
		if s.quarantinedLocked(p.Device, at) {
			s.stats.quarantined.Add(1)
			res.Rejected++
			continue
		}
		keep = append(keep, p)
	}
	s.mu.Unlock()
	sc.cands = keep

	// Pass 3: per guard shard — freshness, group commit, admission, all
	// under that shard's lock. Guard shards and storage shards use the
	// same hash and count (freshGuards(db.Shards())), so one guard
	// shard's group lands in exactly one storage shard: one fsync.
	// The ordering inside the lock is the single-packet invariant lifted
	// to the group: Fresh (no mutation) for every packet, the fallible
	// group commit, and only then Admit — so a failed commit leaves the
	// guard clean and every packet of the group retryable.
	var firstPersist error
	nsh := len(s.guards)
	for si := range s.guards {
		sc.group = sc.group[:0]
		for _, p := range sc.cands {
			if tsdb.ShardIndex(p.Device, nsh) == si {
				sc.group = append(sc.group, p)
			}
		}
		if len(sc.group) == 0 {
			continue
		}
		gs := s.guards[si]
		gs.mu.Lock()
		// Sealed-region check under the guard lock, same barrier
		// discipline as Ingest: FoldRollups publishes the watermark and
		// then takes every guard lock once, so a frame that saw the old
		// watermark has committed before the fold drains.
		if r := s.rollups.Load(); r != nil {
			if wm := r.FoldedBefore(); at < wm {
				gs.mu.Unlock()
				k := len(sc.group)
				s.stats.stale.Add(uint64(k))
				res.Stale += k
				continue
			}
		}
		sc.fresh = sc.fresh[:0]
		for _, p := range sc.group {
			k := devSeq{p.Device.Uint64(), p.Seq}
			if _, dup := sc.seen[k]; dup {
				s.stats.duplicates.Add(1)
				res.Duplicates++
				continue
			}
			if err := gs.guard.Fresh(p); err != nil {
				s.stats.duplicates.Add(1)
				res.Duplicates++
				continue
			}
			sc.seen[k] = struct{}{}
			sc.fresh = append(sc.fresh, pointOf(at, p))
		}
		if len(sc.fresh) == 0 {
			gs.mu.Unlock()
			continue
		}
		if err := s.db.AppendBatch(sc.fresh); err != nil { //lint:lockedio WAL-before-ack, group form: the group's single fsync must complete under the per-device guard shard before any Admit, or a crash acks packets the log never held; the lock is sharded per device, never global
			gs.mu.Unlock()
			s.stats.persistFailures.Add(uint64(len(sc.fresh)))
			if firstPersist == nil {
				firstPersist = fmt.Errorf("%w: %v", ErrPersist, err)
			}
			continue
		}
		for _, pt := range sc.fresh {
			_ = gs.guard.Admit(packetOf(pt)) // cannot fail: Fresh held under the same lock
		}
		gs.mu.Unlock()
		res.Accepted += len(sc.fresh)
	}

	if res.Accepted > 0 {
		s.stats.accepted.Add(uint64(res.Accepted))
		s.observeArrival(at)
		s.mu.Lock()
		s.weeks[int64(at/sim.Week)] = true
		s.mu.Unlock()
	}
	return res, firstPersist
}

// BatchFrames reports how many well-formed frames IngestBatch has
// admitted; with GroupCommits and Accepted it gives the realized
// batching factor.
func (s *Store) BatchFrames() uint64 { return s.batchFrames.Load() }
