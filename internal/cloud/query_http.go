package cloud

import (
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"centuryscale/internal/obs"
)

// Query surface: the read path's public face. Three routes, all GET:
//
//	/query         windowed aggregates for one device (device, from, to,
//	               step — seconds; from/to default to [0, high water))
//	/query/uptime  weekly uptime for one device (device, horizon), or
//	               the store-wide ledger metric with no device
//	/query/gaps    top-K devices by longest no-arrival interval (k,
//	               horizon)
//
// Answers come from the rollup tiers wherever the window is sealed and
// from raw points above the watermark — the response says which
// (tiers), so a dashboard (or the smoke test) can verify the cheap path
// actually engaged.

// queryObs is the query layer's instrumentation, installed by
// Server.RegisterQueryMetrics. Same atomic-pointer pattern as
// ingestObs: un-instrumented servers pay one nil check.
type queryObs struct {
	latency *obs.Histogram
}

type queryCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	daily    atomic.Uint64
	hourly   atomic.Uint64
	raw      atomic.Uint64
	// exportErrors counts /export streams that hit a csv.Writer error
	// mid-stream and were aborted — the only honest signal left once
	// the 200 header is on the wire.
	exportErrors atomic.Uint64
}

// RegisterQueryMetrics exposes the query layer's counters and installs
// its latency histogram on reg under the query_ prefix.
func (s *Server) RegisterQueryMetrics(reg *obs.Registry, clock obs.Clock) {
	reg.CounterFunc("query_requests_total", "query API requests served, all routes", s.queryStats.requests.Load)
	reg.CounterFunc("query_errors_total", "query API requests refused (bad parameters or unaligned windows)", s.queryStats.errors.Load)
	reg.CounterFunc("query_tier_daily_buckets_total", "daily rollup buckets consumed answering queries", s.queryStats.daily.Load)
	reg.CounterFunc("query_tier_hourly_buckets_total", "hourly rollup buckets consumed answering queries", s.queryStats.hourly.Load)
	reg.CounterFunc("query_tier_raw_points_total", "raw points consumed answering queries", s.queryStats.raw.Load)
	reg.CounterFunc("query_export_errors_total", "CSV exports aborted mid-stream on a write error", s.queryStats.exportErrors.Load)
	s.queryObs.Store(&queryObs{
		latency: reg.Histogram("query_seconds", "wall time per query API request", nil, clock),
	})
}

func (s *Server) observeQuery(fn func() bool) {
	s.queryStats.requests.Add(1)
	o := s.queryObs.Load()
	if o == nil {
		if !fn() {
			s.queryStats.errors.Add(1)
		}
		return
	}
	start := o.latency.Now()
	ok := fn()
	o.latency.ObserveSince(start)
	if !ok {
		s.queryStats.errors.Add(1)
	}
}

// windowPayload is one window in /query's response.
type windowPayload struct {
	StartSeconds  float64 `json:"start_seconds"`
	Count         uint64  `json:"count"`
	Sum           float64 `json:"sum"`
	Mean          float64 `json:"mean"`
	Min           float32 `json:"min"`
	Max           float32 `json:"max"`
	MaxGapSeconds float64 `json:"max_gap_seconds"`
}

type tiersPayload struct {
	Daily  int `json:"daily_buckets"`
	Hourly int `json:"hourly_buckets"`
	Raw    int `json:"raw_points"`
}

type queryPayload struct {
	Device              string          `json:"device"`
	StepSeconds         float64         `json:"step_seconds"`
	FoldedBeforeSeconds float64         `json:"folded_before_seconds"`
	Tiers               tiersPayload    `json:"tiers"`
	Windows             []windowPayload `json:"windows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.observeQuery(func() bool {
		dev, err := parseDevice(r.URL.Query().Get("device"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return false
		}
		step, err := parseSeconds(r, "step")
		if err != nil || step <= 0 {
			http.Error(w, "cloud: step parameter must be positive seconds", http.StatusBadRequest)
			return false
		}
		from, to, err := parseRange(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return false
		}
		// Unlike /history, unbounded sides are concrete here: windows
		// are a grid, so default to [0, high water].
		if from == math.MinInt64 {
			from = 0
		}
		if to == math.MaxInt64 {
			to = s.store.HighWater() + 1 // half-open: include the newest point
		}
		eng := s.store.QueryEngine()
		it, err := eng.Windows(dev, from, to, step)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return false
		}
		defer it.Close()
		out := queryPayload{
			Device:      dev.String(),
			StepSeconds: step.Seconds(),
			Windows:     []windowPayload{},
		}
		if re := s.store.Rollups(); re != nil {
			out.FoldedBeforeSeconds = re.FoldedBefore().Seconds()
		}
		for it.Next() {
			wa := it.Window()
			wp := windowPayload{
				StartSeconds:  wa.Start.Seconds(),
				Count:         wa.Count,
				Sum:           wa.Sum,
				Min:           wa.Min,
				Max:           wa.Max,
				MaxGapSeconds: wa.MaxGap.Seconds(),
			}
			if wa.Count > 0 {
				wp.Mean = wa.Sum / float64(wa.Count)
			}
			out.Windows = append(out.Windows, wp)
		}
		t := it.Tiers()
		out.Tiers = tiersPayload{Daily: t.Daily, Hourly: t.Hourly, Raw: t.Raw}
		s.queryStats.daily.Add(uint64(t.Daily))
		s.queryStats.hourly.Add(uint64(t.Hourly))
		s.queryStats.raw.Add(uint64(t.Raw))
		writeJSON(w, out)
		return true
	})
}

type uptimePayload struct {
	Device         string  `json:"device,omitempty"`
	HorizonSeconds float64 `json:"horizon_seconds"`
	WeeklyUptime   float64 `json:"weekly_uptime"`
}

func (s *Server) handleQueryUptime(w http.ResponseWriter, r *http.Request) {
	s.observeQuery(func() bool {
		horizon, err := parseSeconds(r, "horizon")
		if err != nil {
			http.Error(w, "cloud: bad horizon parameter", http.StatusBadRequest)
			return false
		}
		if horizon <= 0 {
			horizon = s.store.HighWater()
		}
		out := uptimePayload{HorizonSeconds: horizon.Seconds()}
		if devStr := r.URL.Query().Get("device"); devStr != "" {
			dev, err := parseDevice(devStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return false
			}
			out.Device = dev.String()
			out.WeeklyUptime = s.store.QueryEngine().WeeklyUptime(dev, horizon)
		} else {
			out.WeeklyUptime = s.store.WeeklyUptime(horizon)
		}
		writeJSON(w, out)
		return true
	})
}

type gapPayload struct {
	Device     string  `json:"device"`
	GapSeconds float64 `json:"gap_seconds"`
}

func (s *Server) handleQueryGaps(w http.ResponseWriter, r *http.Request) {
	s.observeQuery(func() bool {
		k := 10
		if v := r.URL.Query().Get("k"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "cloud: k parameter must be a positive integer", http.StatusBadRequest)
				return false
			}
			k = n
		}
		horizon, err := parseSeconds(r, "horizon")
		if err != nil {
			http.Error(w, "cloud: bad horizon parameter", http.StatusBadRequest)
			return false
		}
		if horizon <= 0 {
			horizon = s.store.HighWater()
		}
		gaps := s.store.QueryEngine().TopGaps(k, horizon)
		out := make([]gapPayload, len(gaps))
		for i, g := range gaps {
			out[i] = gapPayload{Device: g.Device.String(), GapSeconds: g.Gap.Seconds()}
		}
		writeJSON(w, out)
		return true
	})
}

// parseSeconds reads one optional float-seconds query parameter;
// absent means 0.
func parseSeconds(r *http.Request, name string) (time.Duration, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	return clampedSeconds(v, name)
}
