package cloud

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rollup"
	"centuryscale/internal/tsdb"
)

// Persistence: a data endpoint that must outlive hardware, hosting
// migrations, and the operators themselves (§4.4-4.5: "we will have to
// establish and maintain a reliable endpoint for data collection as well
// as potential data retention and resiliency") needs its state to be a
// plain, portable artifact. The snapshot format is versioned JSON —
// deliberately boring, so that whoever inherits the experiment in 2060
// can read it with whatever tools exist then.
//
// The snapshot and the storage engine's WAL split the durability work:
// the snapshot is the portable checkpoint (and the only artifact a
// future operator needs), the WAL is the crash-safety path covering the
// readings accepted since the last checkpoint. Checkpoint writes the
// snapshot and then truncates the WAL segments it covers.

// snapshotVersion identifies the on-disk format. Version 2 added the
// optional rollups section; version-1 files (no rollups) still load.
const (
	snapshotVersion    = 2
	minSnapshotVersion = 1
)

type snapshotReading struct {
	AtNanos int64   `json:"at"`
	Seq     uint32  `json:"seq"`
	Sensor  uint8   `json:"sensor"`
	Value   float32 `json:"value"`
	Uptime  uint32  `json:"uptime"`
}

// snapshotBucket is one rollup bucket in wire form. The float fields
// are serialized as IEEE-754 bit patterns: the buckets are required to
// be byte-identical across seed-identical runs and across
// crash-replay-refold cycles, and integer bits make that property
// independent of any encoder's float formatting.
type snapshotBucket struct {
	StartNanos  int64  `json:"start"`
	Count       uint64 `json:"count"`
	SumBits     uint64 `json:"sum_bits"`
	MinBits     uint32 `json:"min_bits"`
	MaxBits     uint32 `json:"max_bits"`
	FirstNanos  int64  `json:"first"`
	LastNanos   int64  `json:"last"`
	MaxGapNanos int64  `json:"max_gap"`
	MaxSeq      uint32 `json:"max_seq"`
}

// snapshotRollups carries the rollup engine's full state: tier
// geometry, both watermarks, and every bucket. Geometry rides along so
// a restore into a differently-configured engine fails loudly instead
// of mis-bucketing (summarized data cannot be re-cut).
type snapshotRollups struct {
	HourlyNanos      int64                       `json:"hourly"`
	DailyNanos       int64                       `json:"daily"`
	FoldedNanos      int64                       `json:"folded_before"`
	DailyFoldedNanos int64                       `json:"daily_folded_before"`
	Hourly           map[string][]snapshotBucket `json:"hourly_buckets"`
	Daily            map[string][]snapshotBucket `json:"daily_buckets"`
}

type snapshotFile struct {
	Version  int                          `json:"version"`
	Stats    IngestStats                  `json:"stats"`
	Readings map[string][]snapshotReading `json:"readings"`
	Weeks    []int64                      `json:"weeks"`
	Lapses   [][2]int64                   `json:"lapses"`
	Rollups  *snapshotRollups             `json:"rollups,omitempty"`
}

// WriteSnapshot serialises the store's full state. Ingest is never
// blocked for the duration: the small policy state is copied under the
// aux lock, each storage shard is copied under its own lock one at a
// time, and the (dominant) JSON encoding runs with no lock held at all.
// The output is byte-deterministic for a given state: map keys are
// sorted by the encoder, and the week ledger is sorted here.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	snap := snapshotFile{
		Version: snapshotVersion,
		Stats:   s.stats.snapshot(),
		Weeks:   make([]int64, 0, len(s.weeks)),
	}
	for wk := range s.weeks {
		snap.Weeks = append(snap.Weeks, wk)
	}
	for _, l := range s.lapses {
		snap.Lapses = append(snap.Lapses, [2]int64{int64(l.from), int64(l.to)})
	}
	s.mu.Unlock()
	sort.Slice(snap.Weeks, func(i, j int) bool { return snap.Weeks[i] < snap.Weeks[j] })

	snap.Readings = make(map[string][]snapshotReading)
	for i := 0; i < s.db.Shards(); i++ {
		for dev, pts := range s.db.SnapshotShard(i) {
			out := make([]snapshotReading, len(pts))
			for j, pt := range pts {
				out[j] = snapshotReading{
					AtNanos: int64(pt.At),
					Seq:     pt.Seq,
					Sensor:  pt.Sensor,
					Value:   pt.Value,
					Uptime:  pt.Uptime,
				}
			}
			// Merge, don't assign: a device's series normally lives in
			// exactly one shard, but if points ever straddle two (a bug,
			// or a replay from a stale shard layout) the checkpoint must
			// still capture all of them — WAL truncation after the
			// checkpoint makes any omission permanent.
			k := dev.String()
			snap.Readings[k] = append(snap.Readings[k], out...)
		}
	}

	if r := s.rollups.Load(); r != nil {
		snap.Rollups = rollupsToSnapshot(r.Snapshot())
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("cloud: snapshot encode: %w", err)
	}
	return nil
}

func bucketsToSnapshot(bs []rollup.Bucket) []snapshotBucket {
	out := make([]snapshotBucket, len(bs))
	for i, b := range bs {
		out[i] = snapshotBucket{
			StartNanos:  int64(b.Start),
			Count:       b.Count,
			SumBits:     math.Float64bits(b.Sum),
			MinBits:     math.Float32bits(b.Min),
			MaxBits:     math.Float32bits(b.Max),
			FirstNanos:  int64(b.First),
			LastNanos:   int64(b.Last),
			MaxGapNanos: int64(b.MaxGap),
			MaxSeq:      b.MaxSeq,
		}
	}
	return out
}

func bucketsFromSnapshot(sbs []snapshotBucket) []rollup.Bucket {
	out := make([]rollup.Bucket, len(sbs))
	for i, sb := range sbs {
		out[i] = rollup.Bucket{
			Start:  time.Duration(sb.StartNanos),
			Count:  sb.Count,
			Sum:    math.Float64frombits(sb.SumBits),
			Min:    math.Float32frombits(sb.MinBits),
			Max:    math.Float32frombits(sb.MaxBits),
			First:  time.Duration(sb.FirstNanos),
			Last:   time.Duration(sb.LastNanos),
			MaxGap: time.Duration(sb.MaxGapNanos),
			MaxSeq: sb.MaxSeq,
		}
	}
	return out
}

func rollupsToSnapshot(st rollup.EngineState) *snapshotRollups {
	out := &snapshotRollups{
		HourlyNanos:      int64(st.Config.Hourly),
		DailyNanos:       int64(st.Config.Daily),
		FoldedNanos:      int64(st.FoldedBefore),
		DailyFoldedNanos: int64(st.DailyFoldedBefore),
		Hourly:           make(map[string][]snapshotBucket, len(st.Devices)),
		Daily:            make(map[string][]snapshotBucket, len(st.Devices)),
	}
	for _, ds := range st.Devices {
		k := ds.Device.String()
		if len(ds.Hourly) > 0 {
			out.Hourly[k] = bucketsToSnapshot(ds.Hourly)
		}
		if len(ds.Daily) > 0 {
			out.Daily[k] = bucketsToSnapshot(ds.Daily)
		}
	}
	return out
}

func rollupsFromSnapshot(sr *snapshotRollups, cfg rollup.Config) (*rollup.Engine, error) {
	st := rollup.EngineState{
		Config:            rollup.Config{Hourly: time.Duration(sr.HourlyNanos), Daily: time.Duration(sr.DailyNanos)},
		FoldedBefore:      time.Duration(sr.FoldedNanos),
		DailyFoldedBefore: time.Duration(sr.DailyFoldedNanos),
	}
	devs := make(map[string]bool, len(sr.Hourly))
	for k := range sr.Hourly {
		devs[k] = true
	}
	for k := range sr.Daily {
		devs[k] = true
	}
	keys := make([]string, 0, len(devs))
	for k := range devs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dev, err := lpwan.ParseEUI64(k)
		if err != nil {
			return nil, fmt.Errorf("cloud: snapshot rollup device %q: %w", k, err)
		}
		st.Devices = append(st.Devices, rollup.DeviceState{
			Device: dev,
			Hourly: bucketsFromSnapshot(sr.Hourly[k]),
			Daily:  bucketsFromSnapshot(sr.Daily[k]),
		})
	}
	return rollup.Restore(cfg, st)
}

// ReadSnapshot replaces the store's state with a snapshot's. The replay
// guard is rebuilt from the restored readings so sequence protection
// survives the restart.
func (s *Store) ReadSnapshot(r io.Reader) error {
	var snap snapshotFile
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("cloud: snapshot decode: %w", err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return fmt.Errorf("cloud: snapshot version %d, this build reads %d-%d", snap.Version, minSnapshotVersion, snapshotVersion)
	}

	// Rollup state must restore into a matching engine before anything
	// is swapped: a snapshot with buckets loaded into a store that has
	// rollups disabled would silently drop summarized history.
	var restoredRollups *rollup.Engine
	if snap.Rollups != nil {
		cur := s.rollups.Load()
		if cur == nil {
			return fmt.Errorf("cloud: snapshot carries rollup buckets but rollups are disabled on this store (enable with the same tier geometry, or the sealed history is lost)")
		}
		var err error
		restoredRollups, err = rollupsFromSnapshot(snap.Rollups, cur.Config())
		if err != nil {
			return err
		}
	} else if cur := s.rollups.Load(); cur != nil {
		// Pre-rollup snapshot into a rollup-enabled store: start the
		// tiers empty at the configured geometry.
		fresh, err := rollup.New(cur.Config())
		if err != nil {
			return err
		}
		restoredRollups = fresh
	}

	type devSeries struct {
		dev lpwan.EUI64
		pts []tsdb.Point
	}
	series := make([]devSeries, 0, len(snap.Readings))
	for devStr, rs := range snap.Readings {
		dev, err := lpwan.ParseEUI64(devStr)
		if err != nil {
			return fmt.Errorf("cloud: snapshot device %q: %w", devStr, err)
		}
		pts := make([]tsdb.Point, len(rs))
		for i, sr := range rs {
			pts[i] = tsdb.Point{
				Device: dev,
				At:     time.Duration(sr.AtNanos),
				Seq:    sr.Seq,
				Sensor: sr.Sensor,
				Value:  sr.Value,
				Uptime: sr.Uptime,
			}
		}
		series = append(series, devSeries{dev, pts})
	}

	weeks := make(map[int64]bool, len(snap.Weeks))
	for _, w := range snap.Weeks {
		weeks[w] = true
	}
	var lapses []window
	for _, l := range snap.Lapses {
		lapses = append(lapses, window{from: time.Duration(l[0]), to: time.Duration(l[1])})
	}

	// Swap everything in: fresh guards rebuilt from the restored
	// readings (duplicates within the snapshot were already filtered at
	// ingest), fresh engine memtables loaded without WAL writes — the
	// snapshot itself is the durable copy of these readings.
	guards := freshGuards(s.db.Shards())
	s.db.Reset()
	for _, ds := range series {
		g := guards[tsdb.ShardIndex(ds.dev, len(guards))]
		for _, pt := range ds.pts {
			s.db.Load(pt)
			s.observeArrival(pt.At)
			_ = g.guard.Admit(packetOf(pt))
		}
	}
	if restoredRollups != nil {
		// The watermark is a lower bound on the data clock that produced
		// it; restoring it keeps HighWater monotone even when every raw
		// point was folded away.
		s.observeArrival(restoredRollups.FoldedBefore())
		// Seed replay protection for devices whose raw points were
		// folded away: only the buckets' max sequence number survives,
		// and without it a replayed pre-fold packet would re-enter.
		for _, dev := range restoredRollups.Devices() {
			if seq := restoredRollups.MaxSeq(dev); seq > 0 {
				guards[tsdb.ShardIndex(dev, len(guards))].guard.Seed(dev, seq)
			}
		}
		s.rollups.Store(restoredRollups)
	}

	s.stats.restore(snap.Stats)
	s.mu.Lock()
	s.weeks = weeks
	s.lapses = lapses
	s.mu.Unlock()
	for i, g := range guards {
		s.guards[i].mu.Lock()
		s.guards[i].guard = g.guard
		s.guards[i].mu.Unlock()
	}
	return nil
}

// SaveFile writes a snapshot atomically: to a temp file in the same
// directory, then rename. A crash mid-save leaves the previous snapshot
// intact.
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("cloud: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		_ = tmp.Close() // cleanup on an already-failed save; the temp file is discarded
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // cleanup on an already-failed save; the temp file is discarded
		return fmt.Errorf("cloud: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cloud: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cloud: snapshot rename: %w", err)
	}
	return nil
}

// Checkpoint writes the snapshot and truncates the WAL behind it: the
// snapshot becomes the new recovery baseline, and only the segments
// sealed before it began are deleted. With a memory-only engine this is
// exactly SaveFile.
func (s *Store) Checkpoint(path string) error {
	return s.db.Checkpoint(func() error { return s.SaveFile(path) })
}

// LoadFile restores the store from a snapshot file. A missing file is
// not an error: the endpoint simply starts fresh (first boot).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cloud: snapshot open: %w", err)
	}
	//lint:syncerr read-only snapshot handle; the decode already succeeded or failed on its own
	defer f.Close()
	return s.ReadSnapshot(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
