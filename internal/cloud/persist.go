package cloud

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

// Persistence: a data endpoint that must outlive hardware, hosting
// migrations, and the operators themselves (§4.4-4.5: "we will have to
// establish and maintain a reliable endpoint for data collection as well
// as potential data retention and resiliency") needs its state to be a
// plain, portable artifact. The snapshot format is versioned JSON —
// deliberately boring, so that whoever inherits the experiment in 2060
// can read it with whatever tools exist then.

// snapshotVersion identifies the on-disk format.
const snapshotVersion = 1

type snapshotReading struct {
	AtNanos int64   `json:"at"`
	Seq     uint32  `json:"seq"`
	Sensor  uint8   `json:"sensor"`
	Value   float32 `json:"value"`
	Uptime  uint32  `json:"uptime"`
}

type snapshotFile struct {
	Version  int                          `json:"version"`
	Stats    IngestStats                  `json:"stats"`
	Readings map[string][]snapshotReading `json:"readings"`
	Weeks    []int64                      `json:"weeks"`
	Lapses   [][2]int64                   `json:"lapses"`
}

// WriteSnapshot serialises the store's full state.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	snap := snapshotFile{
		Version:  snapshotVersion,
		Stats:    s.stats,
		Readings: make(map[string][]snapshotReading, len(s.readings)),
	}
	for dev, rs := range s.readings {
		out := make([]snapshotReading, len(rs))
		for i, r := range rs {
			out[i] = snapshotReading{
				AtNanos: int64(r.At),
				Seq:     r.Packet.Seq,
				Sensor:  uint8(r.Packet.Sensor),
				Value:   r.Packet.Value,
				Uptime:  r.Packet.UptimeSeconds,
			}
		}
		snap.Readings[dev.String()] = out
	}
	for w := range s.weeks {
		snap.Weeks = append(snap.Weeks, w)
	}
	for _, l := range s.lapses {
		snap.Lapses = append(snap.Lapses, [2]int64{int64(l.from), int64(l.to)})
	}
	s.mu.Unlock()

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("cloud: snapshot encode: %w", err)
	}
	return nil
}

// ReadSnapshot replaces the store's state with a snapshot's. The replay
// guard is rebuilt from the restored readings so sequence protection
// survives the restart.
func (s *Store) ReadSnapshot(r io.Reader) error {
	var snap snapshotFile
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("cloud: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("cloud: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}

	readings := make(map[lpwan.EUI64][]Reading, len(snap.Readings))
	guard := telemetry.NewReplayGuard(16)
	for devStr, rs := range snap.Readings {
		dev, err := lpwan.ParseEUI64(devStr)
		if err != nil {
			return fmt.Errorf("cloud: snapshot device %q: %w", devStr, err)
		}
		out := make([]Reading, len(rs))
		for i, sr := range rs {
			p := telemetry.Packet{
				Device:        dev,
				Seq:           sr.Seq,
				Sensor:        telemetry.SensorType(sr.Sensor),
				Value:         sr.Value,
				UptimeSeconds: sr.Uptime,
			}
			out[i] = Reading{At: time.Duration(sr.AtNanos), Packet: p}
			// Rebuild the guard's high-water marks; duplicates within
			// the snapshot itself were already filtered at ingest.
			_ = guard.Admit(p)
		}
		readings[dev] = out
	}

	weeks := make(map[int64]bool, len(snap.Weeks))
	for _, w := range snap.Weeks {
		weeks[w] = true
	}
	var lapses []window
	for _, l := range snap.Lapses {
		lapses = append(lapses, window{from: time.Duration(l[0]), to: time.Duration(l[1])})
	}

	s.mu.Lock()
	s.stats = snap.Stats
	s.readings = readings
	s.weeks = weeks
	s.lapses = lapses
	s.guard = guard
	s.mu.Unlock()
	return nil
}

// SaveFile writes a snapshot atomically: to a temp file in the same
// directory, then rename. A crash mid-save leaves the previous snapshot
// intact.
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("cloud: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cloud: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cloud: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cloud: snapshot rename: %w", err)
	}
	return nil
}

// LoadFile restores the store from a snapshot file. A missing file is
// not an error: the endpoint simply starts fresh (first boot).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cloud: snapshot open: %w", err)
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
