package cloud

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func clusterGet(t *testing.T, url, secret string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if secret != "" {
		req.Header.Set(ClusterSecretHeader, secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestClusterRoutesDisarmedByDefault(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(StaticKeys(master)), time.Now()))
	defer srv.Close()

	resp := clusterGet(t, srv.URL+"/cluster/history?device=00:00:00:00:00:00:00:01", "whatever")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disarmed /cluster/history = %d, want 404", resp.StatusCode)
	}
}

func TestClusterHistoryExactRoundTrip(t *testing.T) {
	store := NewStore(StaticKeys(master))
	server := NewServer(store, time.Now())
	server.SetClusterSecret("s3cret")
	srv := httptest.NewServer(server)
	defer srv.Close()

	// A value chosen to expose float mangling if records ever pass
	// through a decimal representation of seconds.
	want := Reading{At: 1234567891234567891, Packet: telemetry.Packet{
		Device: lpwan.EUIFromUint64(7), Seq: 3,
		Sensor: telemetry.SensorStrain, Value: math.Float32frombits(0x40490fdb),
		UptimeSeconds: 99,
	}}
	wire, err := want.Packet.Seal(telemetry.DeriveKey(master, want.Packet.Device))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Ingest(want.At, wire); err != nil {
		t.Fatal(err)
	}

	url := srv.URL + "/cluster/history?device=" + lpwan.EUIFromUint64(7).String()
	if resp := clusterGet(t, url, "wrong"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong secret = %d, want 403", resp.StatusCode)
	}
	resp := clusterGet(t, url, "s3cret")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var recs []ClusterRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if got := recs[0].Reading(want.Packet.Device); got != want {
		t.Fatalf("round trip mangled record:\n got %+v\nwant %+v", got, want)
	}
}

func TestClusterReplicateMergesMissing(t *testing.T) {
	dev := lpwan.EUIFromUint64(11)
	key := telemetry.DeriveKey(master, dev)

	// Source node holds seqs 1..5; target only 1..2 (it was down).
	source := NewStore(StaticKeys(master))
	target := NewStore(StaticKeys(master))
	for seq := uint32(1); seq <= 5; seq++ {
		wire, err := telemetry.Packet{Device: dev, Seq: seq, Sensor: telemetry.SensorStrain, Value: float32(seq)}.Seal(key)
		if err != nil {
			t.Fatal(err)
		}
		at := time.Duration(seq) * time.Minute
		if err := source.Ingest(at, wire); err != nil {
			t.Fatal(err)
		}
		if seq <= 2 {
			if err := target.Ingest(at, wire); err != nil {
				t.Fatal(err)
			}
		}
	}

	server := NewServer(target, time.Now())
	server.SetClusterSecret("s3cret")
	srv := httptest.NewServer(server)
	defer srv.Close()

	payload := ReplicatePayload{Device: dev.String()}
	for _, rd := range source.History(dev) {
		payload.Records = append(payload.Records, RecordOf(rd))
	}
	body, _ := json.Marshal(payload)
	req, _ := http.NewRequest("POST", srv.URL+"/cluster/replicate", bytes.NewReader(body))
	req.Header.Set(ClusterSecretHeader, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate status = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["added"] != 3 {
		t.Fatalf("added = %d, want 3", out["added"])
	}

	// Byte-exact convergence.
	src, dst := source.History(dev), target.History(dev)
	if len(src) != len(dst) {
		t.Fatalf("history lengths differ: %d vs %d", len(src), len(dst))
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, src[i], dst[i])
		}
	}
	if got := target.Stats().Repaired; got != 3 {
		t.Fatalf("Repaired = %d, want 3", got)
	}

	// Idempotent: replaying the same payload adds nothing.
	if added, err := target.Repair(dev, source.History(dev)); err != nil || added != 0 {
		t.Fatalf("second repair: added=%d err=%v", added, err)
	}
}

func TestRepairKeepsReplayProtection(t *testing.T) {
	dev := lpwan.EUIFromUint64(21)
	key := telemetry.DeriveKey(master, dev)
	store := NewStore(StaticKeys(master))

	var wires [][]byte
	var recs []Reading
	for seq := uint32(1); seq <= 3; seq++ {
		p := telemetry.Packet{Device: dev, Seq: seq, Sensor: telemetry.SensorStrain, Value: float32(seq)}
		wire, err := p.Seal(key)
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, wire)
		recs = append(recs, Reading{At: time.Duration(seq) * time.Second, Packet: p})
	}
	if added, err := store.Repair(dev, recs); err != nil || added != 3 {
		t.Fatalf("repair: added=%d err=%v", added, err)
	}
	// A late duplicate of a repaired packet must still be rejected: the
	// repair advanced the replay window.
	if err := store.Ingest(time.Minute, wires[2]); err == nil {
		t.Fatal("duplicate of repaired packet accepted")
	}
	if store.Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d", store.Stats().Duplicates)
	}
}

func TestIngestArrivalOverride(t *testing.T) {
	store := NewStore(StaticKeys(master))
	server := NewServer(store, time.Now())
	server.SetClusterSecret("s3cret")
	srv := httptest.NewServer(server)
	defer srv.Close()

	stamp := int64(42 * time.Hour)
	post := func(wire []byte, secret string, arrival int64) *http.Response {
		req, _ := http.NewRequest("POST", srv.URL+"/ingest", bytes.NewReader(wire))
		if secret != "" {
			req.Header.Set(ClusterSecretHeader, secret)
		}
		if arrival != 0 {
			req.Header.Set(ClusterArrivalHeader, strconv.FormatInt(arrival, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Without the secret the override is refused outright.
	if resp := post(sealed(t, 31, 1, 1), "", stamp); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated override = %d, want 403", resp.StatusCode)
	}
	if resp := post(sealed(t, 31, 1, 1), "s3cret", stamp); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authenticated override = %d, want 202", resp.StatusCode)
	}
	h := store.History(lpwan.EUIFromUint64(31))
	if len(h) != 1 || h[0].At != time.Duration(stamp) {
		t.Fatalf("history = %+v, want At=%v", h, time.Duration(stamp))
	}
	// Plain ingest (no header) still uses the server clock.
	if resp := post(sealed(t, 31, 2, 2), "", 0); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plain ingest = %d", resp.StatusCode)
	}
	h = store.History(lpwan.EUIFromUint64(31))
	if len(h) != 2 || h[1].At == time.Duration(stamp) {
		t.Fatalf("plain ingest reused the stamp: %+v", h)
	}
}
