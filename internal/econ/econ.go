// Package econ provides the cost accounting for century-scale
// deployments: an exact integer-cents ledger, present-value math, and the
// owned-versus-leased tipping-point analysis of §3.4.
//
// The paper's economic claim is that "there will always be a tipping point
// where the cost of deploying vertically owned and managed infrastructure
// is lower than the cost of replacing devices": leased infrastructure
// carries recurring fees and — worse — periodic technology sunsets that
// obsolete the entire device fleet, so its cost scales with fleet size,
// while owned infrastructure is a (mostly) fleet-size-independent capital
// cost. TippingPoint solves for the fleet size where the curves cross.
package econ

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/sim"
)

// Cents is an exact currency amount in US cents.
type Cents int64

// String renders as dollars: "$1,234.56" (negative amounts as "-$...").
func (c Cents) String() string {
	neg := c < 0
	if neg {
		c = -c
	}
	dollars := int64(c) / 100
	rem := int64(c) % 100
	// Insert thousands separators.
	s := fmt.Sprintf("%d", dollars)
	out := make([]byte, 0, len(s)+len(s)/3)
	for i, ch := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, ch)
	}
	sign := ""
	if neg {
		sign = "-"
	}
	return fmt.Sprintf("%s$%s.%02d", sign, out, rem)
}

// Entry is one ledger line.
type Entry struct {
	At       time.Duration
	Category string
	Amount   Cents
	Note     string
}

// Ledger accumulates dated, categorised costs across a simulation run.
type Ledger struct {
	entries []Entry
	total   Cents
}

// Add appends an entry.
func (l *Ledger) Add(at time.Duration, category string, amount Cents, note string) {
	l.entries = append(l.entries, Entry{At: at, Category: category, Amount: amount, Note: note})
	l.total += amount
}

// Total returns the sum of all entries.
func (l *Ledger) Total() Cents { return l.total }

// Len returns the number of entries.
func (l *Ledger) Len() int { return len(l.entries) }

// ByCategory sums entries per category.
func (l *Ledger) ByCategory() map[string]Cents {
	out := make(map[string]Cents)
	for _, e := range l.entries {
		out[e.Category] += e.Amount
	}
	return out
}

// TotalThrough sums entries dated at or before t.
func (l *Ledger) TotalThrough(t time.Duration) Cents {
	var sum Cents
	for _, e := range l.entries {
		if e.At <= t {
			sum += e.Amount
		}
	}
	return sum
}

// NPV discounts the ledger's entries to present value at the given annual
// rate (e.g. 0.03). Long-horizon municipal planning is exactly where
// discounting matters: a dollar of opex in year 49 is not a dollar today.
func (l *Ledger) NPV(annualRate float64) float64 {
	pv := 0.0
	for _, e := range l.entries {
		years := sim.ToYears(e.At)
		pv += float64(e.Amount) / math.Pow(1+annualRate, years)
	}
	return pv
}

// Amortize spreads a capital cost evenly over a number of months,
// returning the per-month amount (rounded up so the schedule covers the
// full principal).
func Amortize(capex Cents, months int) Cents {
	if months <= 0 {
		panic("econ: non-positive amortization period")
	}
	return Cents((int64(capex) + int64(months) - 1) / int64(months))
}

// TippingConfig parameterises the owned-vs-leased comparison of §3.4 for
// a deployment of a given gateway count over a horizon.
type TippingConfig struct {
	HorizonYears float64
	Gateways     int

	// Leased model: recurring per-gateway service, plus a technology
	// sunset every SunsetEveryYears that obsoletes the device fleet
	// (each device replaced at DeviceReplaceCents).
	LeasedPerGatewayMonth Cents
	SunsetEveryYears      float64
	DeviceReplaceCents    Cents

	// Owned model: build-out capex (base + per gateway) and recurring
	// operations, fleet-size independent. Devices ride undisturbed.
	OwnedBaseCapex       Cents
	OwnedPerGatewayCapex Cents
	OwnedOpexMonth       Cents
}

// LeasedTCO returns the leased-infrastructure total cost over the horizon
// for a fleet of devices.
func (c TippingConfig) LeasedTCO(devices int) Cents {
	months := int64(c.HorizonYears * 12)
	service := Cents(months * int64(c.LeasedPerGatewayMonth) * int64(c.Gateways))
	sunsets := int64(0)
	if c.SunsetEveryYears > 0 {
		sunsets = int64(c.HorizonYears / c.SunsetEveryYears)
	}
	replacement := Cents(sunsets * int64(devices) * int64(c.DeviceReplaceCents))
	return service + replacement
}

// OwnedTCO returns the owned-infrastructure total cost over the horizon;
// it does not depend on the device count — that is the whole point.
func (c TippingConfig) OwnedTCO(devices int) Cents {
	_ = devices
	months := int64(c.HorizonYears * 12)
	return c.OwnedBaseCapex +
		Cents(int64(c.OwnedPerGatewayCapex)*int64(c.Gateways)) +
		Cents(months*int64(c.OwnedOpexMonth))
}

// TippingPoint returns the smallest device count at which owning the
// infrastructure is no more expensive than leasing it, or -1 if owning
// never wins below the given search cap.
func (c TippingConfig) TippingPoint(maxDevices int) int {
	// LeasedTCO is affine and non-decreasing in devices while OwnedTCO is
	// constant, so binary search the crossover.
	if c.OwnedTCO(0) <= c.LeasedTCO(0) {
		return 0
	}
	lo, hi := 0, maxDevices
	if c.OwnedTCO(hi) > c.LeasedTCO(hi) {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c.OwnedTCO(mid) <= c.LeasedTCO(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
