package econ

import "fmt"

// Shared-infrastructure amortization (§3.4): "Planners should consider
// the amortized cost of shared infrastructure over the cost of many
// applications." A fiber plant or gateway mesh built for one application
// is expensive; the same plant carrying parking, air quality, structural
// health, and waste telemetry divides its capital across all of them —
// and (the San Leandro/Barcelona observation, §3.3.1) can sell surplus
// capacity outright.

// SharedInfraPlan describes a common infrastructure build-out and the
// applications riding it.
type SharedInfraPlan struct {
	// BuildCapex and OpexMonth are the plant's own costs.
	BuildCapex Cents
	OpexMonth  Cents
	// HorizonYears amortizes the capital.
	HorizonYears float64
	// Applications sharing the plant (≥1).
	Applications int
	// PerAppDedicatedCapex/OpexMonth is what each application would pay
	// to build its own dedicated infrastructure instead.
	PerAppDedicatedCapex     Cents
	PerAppDedicatedOpexMonth Cents
	// RevenueMonth is income from selling surplus capacity (community
	// broadband, §3.3.3), offsetting shared opex.
	RevenueMonth Cents
}

// PerAppSharedCost returns each application's share of the plant's
// lifetime cost (capex + opex − revenue, floored at zero), divided
// evenly.
func (p SharedInfraPlan) PerAppSharedCost() Cents {
	if p.Applications <= 0 || p.HorizonYears <= 0 {
		panic(fmt.Sprintf("econ: bad shared plan: %d apps over %v years", p.Applications, p.HorizonYears))
	}
	months := int64(p.HorizonYears * 12)
	total := int64(p.BuildCapex) + months*int64(p.OpexMonth) - months*int64(p.RevenueMonth)
	if total < 0 {
		total = 0
	}
	return Cents(total / int64(p.Applications))
}

// PerAppDedicatedCost returns what one application pays going it alone.
func (p SharedInfraPlan) PerAppDedicatedCost() Cents {
	months := int64(p.HorizonYears * 12)
	return p.PerAppDedicatedCapex + Cents(months*int64(p.PerAppDedicatedOpexMonth))
}

// SharingAdvantage returns dedicated/shared per-application cost: >1
// means sharing wins. Returns +Inf semantics via a large value when the
// shared cost reaches zero (revenue covers the plant).
func (p SharedInfraPlan) SharingAdvantage() float64 {
	shared := p.PerAppSharedCost()
	dedicated := p.PerAppDedicatedCost()
	if shared == 0 {
		if dedicated == 0 {
			return 1
		}
		return 1e9
	}
	return float64(dedicated) / float64(shared)
}

// BreakEvenApplications returns the smallest number of co-resident
// applications at which sharing beats dedicated build-outs, searching up
// to maxApps; -1 if never.
func (p SharedInfraPlan) BreakEvenApplications(maxApps int) int {
	for k := 1; k <= maxApps; k++ {
		q := p
		q.Applications = k
		if q.PerAppSharedCost() <= q.PerAppDedicatedCost() {
			return k
		}
	}
	return -1
}
