package econ

import (
	"math"
	"testing"
	"testing/quick"

	"centuryscale/internal/sim"
)

func TestCentsString(t *testing.T) {
	cases := []struct {
		c    Cents
		want string
	}{
		{0, "$0.00"},
		{5, "$0.05"},
		{123456, "$1,234.56"},
		{100000000, "$1,000,000.00"},
		{-9950, "-$99.50"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Fatalf("%d.String() = %q, want %q", int64(tc.c), got, tc.want)
		}
	}
}

func TestLedgerTotals(t *testing.T) {
	var l Ledger
	l.Add(0, "capex", 500000, "fiber trench")
	l.Add(sim.Years(1), "opex", 1500, "month")
	l.Add(sim.Years(2), "opex", 1500, "month")
	if l.Total() != 503000 {
		t.Fatalf("total = %v", l.Total())
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	by := l.ByCategory()
	if by["capex"] != 500000 || by["opex"] != 3000 {
		t.Fatalf("by category = %v", by)
	}
	if got := l.TotalThrough(sim.Years(1)); got != 501500 {
		t.Fatalf("through year 1 = %v", got)
	}
}

func TestNPVDiscounts(t *testing.T) {
	var l Ledger
	l.Add(sim.Years(10), "opex", 10000, "")
	pv := l.NPV(0.05)
	want := 10000 / math.Pow(1.05, 10)
	if math.Abs(pv-want) > 0.01 {
		t.Fatalf("NPV = %v, want %v", pv, want)
	}
	// Zero rate: NPV equals nominal.
	if got := l.NPV(0); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("NPV(0) = %v", got)
	}
	// Money today is not discounted.
	var now Ledger
	now.Add(0, "capex", 10000, "")
	if got := now.NPV(0.10); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("NPV of t=0 = %v", got)
	}
}

func TestAmortize(t *testing.T) {
	if got := Amortize(1200, 12); got != 100 {
		t.Fatalf("Amortize(1200,12) = %v", got)
	}
	// Rounds up so the schedule covers principal.
	if got := Amortize(1000, 3); got != 334 {
		t.Fatalf("Amortize(1000,3) = %v", got)
	}
}

func TestAmortizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Amortize with 0 months did not panic")
		}
	}()
	Amortize(100, 0)
}

func tippingFixture() TippingConfig {
	return TippingConfig{
		HorizonYears:          50,
		Gateways:              40,
		LeasedPerGatewayMonth: 3000,        // $30/gw/month
		SunsetEveryYears:      12,          // four forced fleet replacements
		DeviceReplaceCents:    15000,       // $150/device (hardware+labor)
		OwnedBaseCapex:        200_000_000, // $2M headend + trenching program
		OwnedPerGatewayCapex:  1_000_000,   // $10k fiber lateral per gateway
		OwnedOpexMonth:        200_000,     // $2k/month operations staff share
	}
}

func TestLeasedGrowsWithFleet(t *testing.T) {
	cfg := tippingFixture()
	if cfg.LeasedTCO(1000) <= cfg.LeasedTCO(100) {
		t.Fatal("leased TCO must grow with device count")
	}
	if cfg.OwnedTCO(1000) != cfg.OwnedTCO(100) {
		t.Fatal("owned TCO must not depend on device count")
	}
}

func TestTippingPointExists(t *testing.T) {
	cfg := tippingFixture()
	n := cfg.TippingPoint(1_000_000)
	if n <= 0 {
		t.Fatalf("tipping point = %d, want positive crossover", n)
	}
	// At the crossover, owned wins; one below, leased wins.
	if cfg.OwnedTCO(n) > cfg.LeasedTCO(n) {
		t.Fatal("owned not cheaper at the tipping point")
	}
	if n > 0 && cfg.OwnedTCO(n-1) <= cfg.LeasedTCO(n-1) {
		t.Fatal("tipping point not minimal")
	}
}

func TestTippingPointMovesWithReplacementCost(t *testing.T) {
	cheap := tippingFixture()
	expensive := tippingFixture()
	expensive.DeviceReplaceCents *= 4
	nc := cheap.TippingPoint(1_000_000)
	ne := expensive.TippingPoint(1_000_000)
	if ne >= nc {
		t.Fatalf("pricier replacement must lower the tipping point: %d vs %d", ne, nc)
	}
}

func TestNoSunsetRaisesTippingPoint(t *testing.T) {
	withSunset := tippingFixture()
	noSunset := tippingFixture()
	noSunset.SunsetEveryYears = 0
	nw := withSunset.TippingPoint(10_000_000)
	nn := noSunset.TippingPoint(10_000_000)
	// Without forced replacements the leased option only loses on
	// service fees, so owning pays off later (or never).
	if nn != -1 && nn <= nw {
		t.Fatalf("no-sunset tipping point %d should exceed %d", nn, nw)
	}
}

func TestTippingPointZeroWhenOwnedFree(t *testing.T) {
	cfg := tippingFixture()
	cfg.OwnedBaseCapex = 0
	cfg.OwnedPerGatewayCapex = 0
	cfg.OwnedOpexMonth = 0
	if n := cfg.TippingPoint(1000); n != 0 {
		t.Fatalf("free ownership tipping point = %d, want 0", n)
	}
}

func TestTippingPointUnreachable(t *testing.T) {
	cfg := tippingFixture()
	cfg.SunsetEveryYears = 0
	cfg.LeasedPerGatewayMonth = 1 // leasing nearly free
	if n := cfg.TippingPoint(1000); n != -1 {
		t.Fatalf("tipping point = %d, want -1 (never)", n)
	}
}

func TestTippingBinarySearchMatchesLinear(t *testing.T) {
	cfg := tippingFixture()
	if err := quick.Check(func(seed uint16) bool {
		c := cfg
		c.DeviceReplaceCents = Cents(1000 + int64(seed)%50000)
		got := c.TippingPoint(200000)
		// Linear scan reference.
		want := -1
		for n := 0; n <= 200000; n++ {
			if c.OwnedTCO(n) <= c.LeasedTCO(n) {
				want = n
				break
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerNPVBelowNominalForFutureCosts(t *testing.T) {
	var l Ledger
	for y := 1; y <= 50; y++ {
		l.Add(sim.Years(float64(y)), "opex", 1000, "")
	}
	if pv := l.NPV(0.03); pv >= float64(l.Total()) {
		t.Fatalf("NPV %v should be below nominal %v", pv, l.Total())
	}
}

func BenchmarkTippingPoint(b *testing.B) {
	cfg := tippingFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.TippingPoint(10_000_000)
	}
}

func sharedFixture() SharedInfraPlan {
	return SharedInfraPlan{
		BuildCapex:               500_000_000, // $5M citywide plant
		OpexMonth:                500_000,     // $5k/month
		HorizonYears:             50,
		Applications:             4,
		PerAppDedicatedCapex:     200_000_000, // $2M to go it alone
		PerAppDedicatedOpexMonth: 300_000,
	}
}

func TestSharedCostDividesEvenly(t *testing.T) {
	p := sharedFixture()
	// Plant lifetime cost: 500M + 600*0.5M = 800M cents over 4 apps.
	if got := p.PerAppSharedCost(); got != 200_000_000 {
		t.Fatalf("per-app shared = %v", got)
	}
	// Dedicated: 200M + 600*0.3M = 380M cents.
	if got := p.PerAppDedicatedCost(); got != 380_000_000 {
		t.Fatalf("per-app dedicated = %v", got)
	}
	if adv := p.SharingAdvantage(); adv < 1.5 || adv > 2.5 {
		t.Fatalf("advantage = %v", adv)
	}
}

func TestSharingBreakEven(t *testing.T) {
	p := sharedFixture()
	k := p.BreakEvenApplications(100)
	// 800M/k <= 380M -> k >= 2.1 -> 3 apps.
	if k != 3 {
		t.Fatalf("break-even = %d apps, want 3", k)
	}
	// A plant too expensive to ever share out.
	expensive := p
	expensive.BuildCapex = 1 << 50
	if got := expensive.BreakEvenApplications(5); got != -1 {
		t.Fatalf("impossible break-even = %d", got)
	}
}

func TestRevenueOffsetsPlant(t *testing.T) {
	p := sharedFixture()
	p.RevenueMonth = p.OpexMonth * 4 // community broadband pays the plant
	withRev := p.PerAppSharedCost()
	p.RevenueMonth = 0
	without := p.PerAppSharedCost()
	if withRev >= without {
		t.Fatalf("revenue did not reduce shared cost: %v vs %v", withRev, without)
	}
	// Revenue can fully cover the plant: cost floors at zero.
	p.RevenueMonth = 10_000_000
	if got := p.PerAppSharedCost(); got != 0 {
		t.Fatalf("over-funded plant cost = %v", got)
	}
	if adv := p.SharingAdvantage(); adv < 1e6 {
		t.Fatalf("advantage with free plant = %v", adv)
	}
}

func TestSharedPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-app plan did not panic")
		}
	}()
	SharedInfraPlan{HorizonYears: 1}.PerAppSharedCost()
}
