// Package radio models the low-power wireless physical and MAC layers the
// paper's devices use: IEEE 802.15.4 (the owned-gateway design point) and
// LoRa (the third-party / Helium design point), §4.1-4.2.
//
// The models are the standard engineering ones: a log-distance path-loss
// channel with log-normal shadowing, link budgets against per-protocol
// sensitivity, the Semtech LoRa time-on-air formula, ALOHA collision
// behaviour for uncoordinated transmit-only devices, and energy-per-packet
// derived from airtime and transmit power. They are deliberately simple
// enough to be auditable against datasheets while capturing what the system
// design depends on: delivery probability, airtime (which drives both
// energy and regulatory duty-cycle limits), and how the two trade off
// against range.
package radio

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/rng"
)

// DBmToMilliwatts converts dBm to mW.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts mW to dBm.
func MilliwattsToDBm(mw float64) float64 { return 10 * math.Log10(mw) }

// Channel is a log-distance path-loss model with optional log-normal
// shadowing: PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma.
type Channel struct {
	// RefLossDB is the path loss at the reference distance (1 m). 40 dB
	// is a common 2.4 GHz figure; ~31.5 dB for 915 MHz.
	RefLossDB float64
	// Exponent n: 2 in free space, 2.7-3.5 urban street level, 4+ indoors.
	Exponent float64
	// ShadowSigmaDB is the standard deviation of log-normal shadowing;
	// 0 disables it.
	ShadowSigmaDB float64
}

// PathLossDB returns the deterministic (median) path loss at distance d
// meters. Distances below 1 m clamp to the reference loss.
func (c Channel) PathLossDB(meters float64) float64 {
	if meters < 1 {
		meters = 1
	}
	return c.RefLossDB + 10*c.Exponent*math.Log10(meters)
}

// SampleLossDB returns the path loss at d meters with a shadowing draw.
func (c Channel) SampleLossDB(meters float64, src *rng.Source) float64 {
	loss := c.PathLossDB(meters)
	if c.ShadowSigmaDB > 0 {
		loss += src.Normal(0, c.ShadowSigmaDB)
	}
	return loss
}

// UrbanChannel is a street-level urban deployment channel for sub-GHz
// LoRa: the propagation environment of pole- and bridge-mounted sensors.
func UrbanChannel() Channel {
	return Channel{RefLossDB: 31.5, Exponent: 2.9, ShadowSigmaDB: 6}
}

// Urban24Channel is the 2.4 GHz counterpart for 802.15.4.
func Urban24Channel() Channel {
	return Channel{RefLossDB: 40, Exponent: 2.9, ShadowSigmaDB: 6}
}

// Link describes one transmitter-receiver pair's RF parameters.
type Link struct {
	TxPowerDBm float64
	TxGainDBi  float64
	RxGainDBi  float64
}

// RxPowerDBm returns the received power over the given channel at distance
// d meters using median path loss.
func (l Link) RxPowerDBm(c Channel, meters float64) float64 {
	return l.TxPowerDBm + l.TxGainDBi + l.RxGainDBi - c.PathLossDB(meters)
}

// MarginDB returns link margin against a receiver sensitivity.
func (l Link) MarginDB(c Channel, meters, sensitivityDBm float64) float64 {
	return l.RxPowerDBm(c, meters) - sensitivityDBm
}

// MaxRangeMeters returns the distance at which median margin reaches zero.
func (l Link) MaxRangeMeters(c Channel, sensitivityDBm float64) float64 {
	budget := l.TxPowerDBm + l.TxGainDBi + l.RxGainDBi - sensitivityDBm
	// budget = RefLoss + 10 n log10(d)  =>  d = 10^((budget-RefLoss)/(10n))
	return math.Pow(10, (budget-c.RefLossDB)/(10*c.Exponent))
}

// LinkSuccessProb converts a median link margin plus shadowing sigma into a
// packet-delivery probability: the probability that the shadowing draw does
// not erase the margin (Gaussian tail).
func LinkSuccessProb(marginDB, shadowSigmaDB float64) float64 {
	if shadowSigmaDB <= 0 {
		if marginDB >= 0 {
			return 1
		}
		return 0
	}
	// P(X < margin) for X ~ N(0, sigma).
	return 0.5 * (1 + math.Erf(marginDB/(shadowSigmaDB*math.Sqrt2)))
}

// IEEE802154 models the 2.4 GHz O-QPSK PHY: 250 kb/s, 127-byte maximum
// frame, 6-byte synchronisation header.
type IEEE802154 struct{}

// MaxFrameBytes is the 802.15.4 PHY-layer MTU.
const MaxFrameBytes = 127

// Airtime returns the on-air duration of a frame with the given MAC-layer
// length (payload + MAC header/footer), excluding nothing: SHR+PHR are
// added here. It returns an error if the frame exceeds the PHY MTU.
func (IEEE802154) Airtime(frameBytes int) (time.Duration, error) {
	if frameBytes < 0 || frameBytes > MaxFrameBytes {
		return 0, fmt.Errorf("radio: 802.15.4 frame of %d bytes exceeds %d-byte MTU", frameBytes, MaxFrameBytes)
	}
	bits := (6 + frameBytes) * 8
	return time.Duration(float64(bits) / 250e3 * float64(time.Second)), nil
}

// Sensitivity returns the typical receiver sensitivity in dBm.
func (IEEE802154) Sensitivity() float64 { return -95 }

// LoRaConfig selects a LoRa modulation configuration.
type LoRaConfig struct {
	SF            int     // spreading factor, 7..12
	BandwidthHz   float64 // typically 125000
	CodingRate    int     // 1..4 meaning 4/5..4/8
	PreambleSyms  int     // typically 8
	ExplicitHdr   bool    // LoRaWAN uses explicit header
	LowDataRateOn bool    // required for SF11/12 at 125 kHz
}

// DefaultLoRa returns the standard LoRaWAN configuration for a spreading
// factor: 125 kHz, CR 4/5, 8-symbol preamble, explicit header, LDRO as
// mandated. It panics for SF outside 7..12.
func DefaultLoRa(sf int) LoRaConfig {
	if sf < 7 || sf > 12 {
		panic(fmt.Sprintf("radio: invalid LoRa SF%d", sf))
	}
	return LoRaConfig{
		SF:            sf,
		BandwidthHz:   125e3,
		CodingRate:    1,
		PreambleSyms:  8,
		ExplicitHdr:   true,
		LowDataRateOn: sf >= 11,
	}
}

// Airtime returns the LoRa time-on-air for a payload of n bytes, per the
// Semtech SX127x datasheet formula.
func (c LoRaConfig) Airtime(payloadBytes int) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	tSym := math.Pow(2, float64(c.SF)) / c.BandwidthHz
	de := 0.0
	if c.LowDataRateOn {
		de = 1
	}
	ih := 1.0
	if c.ExplicitHdr {
		ih = 0
	}
	num := 8*float64(payloadBytes) - 4*float64(c.SF) + 28 + 16 - 20*ih
	den := 4 * (float64(c.SF) - 2*de)
	nPayload := 8 + math.Max(math.Ceil(num/den)*float64(c.CodingRate+4), 0)
	tPreamble := (float64(c.PreambleSyms) + 4.25) * tSym
	tPayload := nPayload * tSym
	return time.Duration((tPreamble + tPayload) * float64(time.Second))
}

// Sensitivity returns the typical SX127x sensitivity in dBm at 125 kHz for
// the configuration's spreading factor.
func (c LoRaConfig) Sensitivity() float64 {
	// Datasheet-typical values, SF7..SF12 at BW 125 kHz.
	table := map[int]float64{7: -123, 8: -126, 9: -129, 10: -132, 11: -134.5, 12: -137}
	if s, ok := table[c.SF]; ok {
		return s
	}
	return -120
}

// TxEnergy estimates the energy to transmit for the given airtime at the
// given RF output power, assuming a 3.3 V supply and a radio whose drain
// is a fixed overhead plus the PA draw at ~20% efficiency — a reasonable
// envelope for SX127x / CC2538-class parts.
func TxEnergy(airtime time.Duration, txPowerDBm float64) (microJoules float64) {
	paWatts := DBmToMilliwatts(txPowerDBm) / 1000 / 0.20
	overheadWatts := 0.015 // synthesizer, baseband
	return (paWatts + overheadWatts) * airtime.Seconds() * 1e6
}

// AlohaSuccess returns the per-packet success probability of pure
// (unslotted) ALOHA given the offered channel load G in Erlangs
// (aggregate airtime per unit time): P = exp(-2G). Transmit-only devices
// cannot listen before talk, so pure ALOHA is the right model (§4.1).
func AlohaSuccess(offeredLoad float64) float64 {
	if offeredLoad <= 0 {
		return 1
	}
	return math.Exp(-2 * offeredLoad)
}

// OfferedLoad computes channel load for n devices each transmitting a
// frame of the given airtime once per interval.
func OfferedLoad(n int, airtime, interval time.Duration) float64 {
	if interval <= 0 {
		panic("radio: non-positive interval")
	}
	return float64(n) * airtime.Seconds() / interval.Seconds()
}

// DutyCycleLimit reports whether a device transmitting airtime per interval
// respects a regulatory duty-cycle cap (e.g. 0.01 for the 1% EU868 limit).
func DutyCycleLimit(airtime, interval time.Duration, cap float64) bool {
	return airtime.Seconds()/interval.Seconds() <= cap
}

// PDR combines link-level success and collision survival into an
// end-to-end packet delivery ratio for a transmit-only device: the paper's
// devices get no ACKs and no retries, so per-packet PDR is the product.
func PDR(linkSuccess, alohaSuccess float64) float64 {
	p := linkSuccess * alohaSuccess
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
