package radio

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"centuryscale/internal/rng"
)

func TestDBmConversionRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-137, -95, -30, 0, 14, 20, 30} {
		mw := DBmToMilliwatts(dbm)
		back := MilliwattsToDBm(mw)
		if math.Abs(back-dbm) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", dbm, mw, back)
		}
	}
	if got := DBmToMilliwatts(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("0 dBm = %v mW, want 1", got)
	}
	if got := DBmToMilliwatts(20); math.Abs(got-100) > 1e-9 {
		t.Fatalf("20 dBm = %v mW, want 100", got)
	}
}

func TestPathLossMonotone(t *testing.T) {
	c := UrbanChannel()
	if err := quick.Check(func(a, b uint16) bool {
		d1, d2 := float64(a)+1, float64(b)+1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return c.PathLossDB(d1) <= c.PathLossDB(d2)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossReference(t *testing.T) {
	c := Channel{RefLossDB: 40, Exponent: 2}
	if got := c.PathLossDB(1); got != 40 {
		t.Fatalf("PL(1m) = %v, want ref 40", got)
	}
	// Free space exponent 2: +20 dB per decade.
	if got := c.PathLossDB(10) - c.PathLossDB(1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("decade loss = %v, want 20", got)
	}
	// Sub-meter clamps to reference.
	if got := c.PathLossDB(0.1); got != 40 {
		t.Fatalf("PL(0.1m) = %v, want clamp to 40", got)
	}
}

func TestShadowingStatistics(t *testing.T) {
	c := Channel{RefLossDB: 40, Exponent: 2.9, ShadowSigmaDB: 6}
	src := rng.New(1)
	median := c.PathLossDB(100)
	sum, sumsq := 0.0, 0.0
	n := 50000
	for i := 0; i < n; i++ {
		v := c.SampleLossDB(100, src) - median
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	sigma := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("shadowing mean = %v, want ~0", mean)
	}
	if math.Abs(sigma-6) > 0.15 {
		t.Fatalf("shadowing sigma = %v, want ~6", sigma)
	}
}

func TestLinkBudget(t *testing.T) {
	l := Link{TxPowerDBm: 14}
	c := Channel{RefLossDB: 31.5, Exponent: 2.9}
	rx := l.RxPowerDBm(c, 1000)
	want := 14 - (31.5 + 10*2.9*3) // 1000 m = 3 decades
	if math.Abs(rx-want) > 1e-9 {
		t.Fatalf("rx power = %v, want %v", rx, want)
	}
	margin := l.MarginDB(c, 1000, -137)
	if math.Abs(margin-(want+137)) > 1e-9 {
		t.Fatalf("margin = %v", margin)
	}
}

func TestMaxRangeConsistent(t *testing.T) {
	l := Link{TxPowerDBm: 14}
	c := Channel{RefLossDB: 31.5, Exponent: 2.9}
	r := l.MaxRangeMeters(c, -137)
	// Margin at the computed max range must be ~0.
	if m := l.MarginDB(c, r, -137); math.Abs(m) > 1e-6 {
		t.Fatalf("margin at max range = %v, want 0", m)
	}
	// LoRa SF12 at street level should reach kilometres; 802.15.4 at
	// 2.4 GHz with -95 dBm only hundreds of metres.
	lora := l.MaxRangeMeters(UrbanChannel(), DefaultLoRa(12).Sensitivity())
	wpan := Link{TxPowerDBm: 0}.MaxRangeMeters(Urban24Channel(), IEEE802154{}.Sensitivity())
	if lora < 2000 {
		t.Fatalf("LoRa SF12 range = %v m, want km-scale", lora)
	}
	if wpan > 1000 || wpan < 30 {
		t.Fatalf("802.15.4 range = %v m, want hundreds of metres", wpan)
	}
	if lora < 5*wpan {
		t.Fatalf("LoRa range %v should dwarf 802.15.4 range %v", lora, wpan)
	}
}

func TestLinkSuccessProb(t *testing.T) {
	// Zero margin with shadowing: 50/50.
	if p := LinkSuccessProb(0, 6); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(margin 0) = %v, want 0.5", p)
	}
	// Large positive margin: ~1; large negative: ~0.
	if p := LinkSuccessProb(30, 6); p < 0.999 {
		t.Fatalf("P(margin 30) = %v", p)
	}
	if p := LinkSuccessProb(-30, 6); p > 0.001 {
		t.Fatalf("P(margin -30) = %v", p)
	}
	// No shadowing: step function.
	if LinkSuccessProb(1, 0) != 1 || LinkSuccessProb(-1, 0) != 0 {
		t.Fatal("no-shadowing step function broken")
	}
	// Monotone in margin.
	if LinkSuccessProb(5, 6) <= LinkSuccessProb(2, 6) {
		t.Fatal("success not monotone in margin")
	}
}

func Test802154Airtime(t *testing.T) {
	// 127-byte frame: (6+127)*8 bits at 250 kb/s = 4.256 ms.
	a, err := IEEE802154{}.Airtime(127)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Seconds()-0.004256) > 1e-9 {
		t.Fatalf("airtime = %v, want 4.256ms", a)
	}
	if _, err := (IEEE802154{}).Airtime(128); err == nil {
		t.Fatal("oversize frame accepted")
	}
	if _, err := (IEEE802154{}).Airtime(-1); err == nil {
		t.Fatal("negative frame accepted")
	}
}

func TestLoRaAirtimeKnownValues(t *testing.T) {
	// Hand-computed from the Semtech SX127x datasheet formula: BW 125 kHz,
	// CR 4/5, 8-symbol preamble, explicit header, CRC on, LDRO at SF11+.
	// SF7: 48 payload symbols -> (12.25+48)*1.024 ms = 61.70 ms.
	// SF10: 33 symbols -> (12.25+33)*8.192 ms = 370.69 ms.
	// SF12 (DE=1): 33 symbols -> (12.25+33)*32.768 ms = 1482.75 ms.
	cases := []struct {
		sf      int
		payload int
		wantMs  float64
	}{
		{7, 24, 61.70},
		{10, 24, 370.69},
		{12, 24, 1482.75},
	}
	for _, tc := range cases {
		got := DefaultLoRa(tc.sf).Airtime(tc.payload).Seconds() * 1000
		if math.Abs(got-tc.wantMs)/tc.wantMs > 0.02 {
			t.Fatalf("SF%d/%dB airtime = %.2f ms, want ~%.2f", tc.sf, tc.payload, got, tc.wantMs)
		}
	}
}

func TestLoRaAirtimeMonotoneInSF(t *testing.T) {
	prev := time.Duration(0)
	for sf := 7; sf <= 12; sf++ {
		a := DefaultLoRa(sf).Airtime(24)
		if a <= prev {
			t.Fatalf("airtime not increasing at SF%d: %v <= %v", sf, a, prev)
		}
		prev = a
	}
}

func TestLoRaSensitivityMonotone(t *testing.T) {
	prev := 0.0
	for sf := 7; sf <= 12; sf++ {
		s := DefaultLoRa(sf).Sensitivity()
		if sf > 7 && s >= prev {
			t.Fatalf("sensitivity must improve (more negative) with SF: SF%d %v >= %v", sf, s, prev)
		}
		prev = s
	}
}

func TestDefaultLoRaInvalidSFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DefaultLoRa(6) did not panic")
		}
	}()
	DefaultLoRa(6)
}

func TestLoRaLDRO(t *testing.T) {
	if DefaultLoRa(10).LowDataRateOn {
		t.Fatal("LDRO should be off at SF10/125k")
	}
	if !DefaultLoRa(11).LowDataRateOn || !DefaultLoRa(12).LowDataRateOn {
		t.Fatal("LDRO must be on at SF11/12 with 125 kHz")
	}
}

func TestTxEnergyScalesWithAirtimeAndPower(t *testing.T) {
	e1 := TxEnergy(50*time.Millisecond, 14)
	e2 := TxEnergy(100*time.Millisecond, 14)
	if math.Abs(e2-2*e1) > 1e-6 {
		t.Fatalf("energy not linear in airtime: %v vs %v", e1, e2)
	}
	if TxEnergy(50*time.Millisecond, 20) <= e1 {
		t.Fatal("higher TX power must cost more energy")
	}
	// Sanity: SF7 24-byte LoRa packet at 14 dBm is single-digit mJ.
	e := TxEnergy(DefaultLoRa(7).Airtime(24), 14)
	if e < 1000 || e > 20000 {
		t.Fatalf("SF7 packet energy = %v µJ, want ~1-20 mJ", e)
	}
}

func TestAlohaSuccess(t *testing.T) {
	if AlohaSuccess(0) != 1 {
		t.Fatal("empty channel must always succeed")
	}
	// Peak pure-ALOHA throughput at G=0.5: S = 0.5*e^-1 ~ 18.4%.
	if p := AlohaSuccess(0.5); math.Abs(p-math.Exp(-1)) > 1e-12 {
		t.Fatalf("P(G=0.5) = %v, want e^-1", p)
	}
	if AlohaSuccess(0.1) <= AlohaSuccess(0.5) {
		t.Fatal("success must fall with load")
	}
}

func TestOfferedLoad(t *testing.T) {
	// 1000 devices, 50 ms airtime, hourly: G = 1000*0.05/3600.
	g := OfferedLoad(1000, 50*time.Millisecond, time.Hour)
	if math.Abs(g-1000*0.05/3600) > 1e-12 {
		t.Fatalf("offered load = %v", g)
	}
}

func TestDutyCycleLimit(t *testing.T) {
	// SF12 24-byte packet ~1.16 s hourly: 0.032% — well under 1%.
	a := DefaultLoRa(12).Airtime(24)
	if !DutyCycleLimit(a, time.Hour, 0.01) {
		t.Fatal("hourly SF12 uplink should satisfy the 1% duty cycle")
	}
	// The same packet every 10 seconds violates it.
	if DutyCycleLimit(a, 10*time.Second, 0.01) {
		t.Fatal("10s SF12 cadence must violate the 1% duty cycle")
	}
}

func TestPDRClamps(t *testing.T) {
	if PDR(0.9, 0.9) != 0.81 {
		t.Fatalf("PDR = %v", PDR(0.9, 0.9))
	}
	if PDR(2, 2) != 1 || PDR(-1, 0.5) != 0 {
		t.Fatal("PDR must clamp to [0,1]")
	}
}

func BenchmarkLoRaAirtime(b *testing.B) {
	cfg := DefaultLoRa(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.Airtime(24)
	}
}

func BenchmarkSampleLoss(b *testing.B) {
	c := UrbanChannel()
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.SampleLossDB(500, src)
	}
}
