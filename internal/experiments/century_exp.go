package experiments

import (
	"fmt"

	"centuryscale/internal/core"
	"centuryscale/internal/sim"
)

// A14Century runs the title claim: a full hundred years. No individual
// device makes it (the best BOM in the catalog has a ~35-year mean), so
// this is the Ship of Theseus at the system level — §4.4's living-study
// replacement keeps the *deployment* alive while every physical part of
// it turns over, likely several times, along with the people running it.
func A14Century(seed uint64) Table {
	cfg := core.DefaultExperiment(core.OwnedWPAN)
	cfg.Seed = seed
	cfg.Horizon = sim.Years(100)
	cfg.NumDevices = 20
	cfg.ReportInterval = sim.Day
	cfg.ReplaceFailedDevices = true
	cfg.DeviceReplaceLag = 60 * sim.Day
	out := core.RunExperiment(cfg)

	t := Table{
		ID:     "A14",
		Title:  "Century-scale: one hundred simulated years (the title claim)",
		Header: []string{"decade", "devices-alive", "pkts-accepted/yr"},
	}
	for _, y := range []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 99} {
		t.AddRow(
			fmt.Sprintf("%d", y),
			fmt.Sprintf("%d", out.YearlyAliveDevices[y]),
			fmt.Sprintf("%d", out.YearlyAccepted[y]),
		)
	}
	t.AddRow("—", "—", "—")
	t.AddRow("weekly uptime (100y)", pct(out.WeeklyUptime), "-")
	t.AddRow("device replacements", fmt.Sprintf("%d", out.DeviceReplacements), "-")
	t.AddRow("gateway replacements", fmt.Sprintf("%d", out.GatewayReplaced), "-")
	t.AddRow("diary entries", fmt.Sprintf("%d", len(out.Diary)), "-")
	t.AddRow("century cost", out.Ledger.Total().String(), "-")
	t.Notes = append(t.Notes,
		"every device and gateway turns over multiple times across the century; the system — the data stream, the addresses, the diary — is what persists",
		"this is the Ship of Theseus the paper opens with, run to the hull's last plank")
	return t
}
