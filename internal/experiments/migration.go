package experiments

import (
	"fmt"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/gateway"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

// A8GatewayMigration drills §3.2/§3.4's runtime-swappable-gateway
// requirement on the real forwarding objects: a device population runs
// through a first-generation gateway which has, over its service life,
// learned a registry and blocklisted an abusive device. At mid-run the
// gateway is replaced. With the trusted-third-party handoff the successor
// inherits registry and blocklist and the swap is invisible; with a naive
// swap the blocklist is lost and the abusive device's traffic flows again
// until rediscovered.
func A8GatewayMigration(seed uint64) Table {
	_ = seed // the drill is fully deterministic
	t := Table{
		ID:     "A8",
		Title:  "Gateway generation swap: trusted-third-party handoff (§3.2)",
		Header: []string{"swap mode", "good-pkts-delivered", "bad-pkts-leaked", "devices-inherited"},
	}

	master := []byte("migration-drill-master-secret")
	secret := []byte("network-operator-secret-0123456789")
	const (
		goodDevices = 20
		epochs      = 40 // reporting rounds; swap after round 20
	)
	badDev := lpwan.EUIFromUint64(0xBAD)

	run := func(withHandoff bool) (good, leaked int, inherited int) {
		store := cloud.NewStore(cloud.StaticKeys(master))
		now := time.Duration(0)
		uplink := gateway.UplinkFunc(func(p []byte) error {
			if err := store.Ingest(now, p); err != nil {
				return nil // endpoint rejections are not uplink failures
			}
			return nil
		})
		gen1 := gateway.New(gateway.Config{ID: "gw-gen1"}, uplink)
		gen1.Block(badDev)

		seqs := make(map[uint64]uint32)
		sendAll := func(gw *gateway.Gateway) {
			for i := 0; i < goodDevices; i++ {
				id := lpwan.EUIFromUint64(0x2000 + uint64(i))
				seqs[id.Uint64()]++
				p := telemetry.Packet{Device: id, Seq: seqs[id.Uint64()]}
				payload, err := p.Seal(telemetry.DeriveKey(master, id))
				if err != nil {
					panic(err)
				}
				frame, err := (lpwan.Frame{Type: lpwan.FrameData, Source: id, Seq: uint16(p.Seq), Payload: payload}).Encode()
				if err != nil {
					panic(err)
				}
				_ = gw.HandleFrame(frame)
			}
			// The abusive device also transmits every round. Its
			// packets verify (it holds a fleet key) — only the
			// gateway blocklist stops them.
			seqs[badDev.Uint64()]++
			p := telemetry.Packet{Device: badDev, Seq: seqs[badDev.Uint64()]}
			payload, err := p.Seal(telemetry.DeriveKey(master, badDev))
			if err != nil {
				panic(err)
			}
			frame, err := (lpwan.Frame{Type: lpwan.FrameData, Source: badDev, Seq: uint16(p.Seq), Payload: payload}).Encode()
			if err != nil {
				panic(err)
			}
			_ = gw.HandleFrame(frame)
		}

		active := gen1
		for epoch := 0; epoch < epochs; epoch++ {
			now = time.Duration(epoch) * time.Hour
			if epoch == epochs/2 {
				gen2 := gateway.New(gateway.Config{ID: "gw-gen2"}, uplink)
				if withHandoff {
					blob, err := gen1.ExportHandoff(secret, "gw-gen2", time.Unix(int64(epoch), 0))
					if err != nil {
						panic(err)
					}
					if _, err := gen2.ImportHandoff(secret, blob); err != nil {
						panic(err)
					}
				}
				inherited = len(gen2.Devices())
				active = gen2
			}
			sendAll(active)
		}

		for _, dev := range store.Devices() {
			n := len(store.History(dev))
			if dev == badDev {
				leaked += n
			} else {
				good += n
			}
		}
		return good, leaked, inherited
	}

	goodH, leakedH, inhH := run(true)
	goodN, leakedN, inhN := run(false)
	t.AddRow("trusted-third-party handoff",
		fmt.Sprintf("%d", goodH), fmt.Sprintf("%d", leakedH), fmt.Sprintf("%d", inhH))
	t.AddRow("naive swap (registry lost)",
		fmt.Sprintf("%d", goodN), fmt.Sprintf("%d", leakedN), fmt.Sprintf("%d", inhN))
	t.Notes = append(t.Notes,
		"the outgoing gateway signs its registry and blocklist to its successor; a naive swap leaks the blocklisted device's traffic for the rest of the run",
		"good-device delivery is unaffected either way — open gateways need no per-device provisioning, which is the §3.1 de-risking takeaway")
	return t
}
