package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell finds the row whose first column equals label and returns column
// idx.
func cell(t *testing.T, tab Table, label string, idx int) string {
	t.Helper()
	for _, row := range tab.Rows {
		if row[0] == label {
			return row[idx]
		}
	}
	t.Fatalf("%s: no row %q in %v", tab.ID, label, tab.Rows)
	return ""
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v
}

func TestAllProducesTwelve(t *testing.T) {
	tabs := All(1)
	if len(tabs) != 12 {
		t.Fatalf("All produced %d tables", len(tabs))
	}
	seen := map[string]bool{}
	for i, tab := range tabs {
		if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("table %d incomplete: %+v", i, tab)
		}
		if seen[tab.ID] {
			t.Fatalf("duplicate ID %s", tab.ID)
		}
		seen[tab.ID] = true
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "e4", "E12"} {
		if _, ok := ByID(id, 1); !ok {
			t.Fatalf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("E99", 1); ok {
		t.Fatal("ByID accepted E99")
	}
}

func TestFprintRendersAllColumns(t *testing.T) {
	var sb strings.Builder
	tab := E4HeliumWallet()
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"E4", "438000", "500000", "62000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE2MatchesPaperArithmetic(t *testing.T) {
	tab := E2Labor()
	if got := atoi(t, cell(t, tab, "total devices", 1)); got != 591315 {
		t.Fatalf("total devices = %d", got)
	}
	ph := atoi(t, cell(t, tab, "person-hours", 1))
	if ph < 190000 || ph > 200000 {
		t.Fatalf("person-hours = %d, paper says nearly 200,000", ph)
	}
}

func TestE4ExactPaperNumbers(t *testing.T) {
	tab := E4HeliumWallet()
	if got := cell(t, tab, "credits needed", 1); got != "438000" {
		t.Fatalf("credits = %s", got)
	}
	if got := cell(t, tab, "credits left after 50y", 1); got != "62000" {
		t.Fatalf("left = %s", got)
	}
	if got := cell(t, tab, "prepaid covers 50y", 1); got != "true" {
		t.Fatalf("covered = %s", got)
	}
}

func TestE5MatchesPaperShape(t *testing.T) {
	tab := E5BackhaulDiversity(1)
	share := parsePct(t, cell(t, tab, "top-10 AS share", 1))
	if share < 42 || share > 58 {
		t.Fatalf("top-10 share = %v%%, paper ~50%%", share)
	}
	ases := atoi(t, cell(t, tab, "unique ASes", 1))
	if ases < 170 || ases > 200 {
		t.Fatalf("unique ASes = %d, paper ~200", ases)
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6SurvivalRace(1)
	// At year 30 batteries are extinct; harvesting persists.
	batt30 := atoi(t, cell(t, tab, "30.0", 1))
	harv30 := atoi(t, cell(t, tab, "30.0", 2))
	if batt30 > 10 {
		t.Fatalf("battery alive at 30y = %d of 1000", batt30)
	}
	if harv30 < 200 {
		t.Fatalf("harvesting alive at 30y = %d of 1000", harv30)
	}
	harv50 := atoi(t, cell(t, tab, "50.0", 2))
	if harv50 < 20 {
		t.Fatalf("harvesting alive at 50y = %d", harv50)
	}
}

func TestE7CrossoversOrdered(t *testing.T) {
	tab := E7TippingPoint()
	// Within a sunset cadence, doubling replacement cost must not raise
	// the tipping point. Rows are ordered replace(7500,15000,30000) x
	// sunset(8,12,20).
	tip := func(row int) int {
		return atoi(t, tab.Rows[row][2])
	}
	// sunset=8 rows: 0, 3, 6.
	if !(tip(6) <= tip(3) && tip(3) <= tip(0)) {
		t.Fatalf("tipping points not monotone in replacement cost: %d %d %d",
			tip(0), tip(3), tip(6))
	}
	// replace=15000 rows: 3, 4, 5 (sunset 8, 12, 20).
	if !(tip(3) <= tip(4) && tip(4) <= tip(5)) {
		t.Fatalf("tipping points not monotone in sunset cadence: %d %d %d",
			tip(3), tip(4), tip(5))
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8FiberVsCellular(1)
	var fiberTCO, cellTCO string
	var fiberStranded, cellStranded string
	for _, row := range tab.Rows {
		if row[0] == "fiber" && row[1] == "municipal" {
			fiberTCO, fiberStranded = row[3], row[5]
		}
		if row[0] == "cellular-4g" {
			cellTCO, cellStranded = row[3], row[5]
		}
	}
	if fiberStranded != "never" {
		t.Fatalf("fiber stranded at %s", fiberStranded)
	}
	if cellStranded == "never" {
		t.Fatal("cellular never stranded")
	}
	if fiberTCO == "" || cellTCO == "" {
		t.Fatal("rows missing")
	}
}

func TestE10BothDesignsSucceed(t *testing.T) {
	if testing.Short() {
		t.Skip("50-year end-to-end run")
	}
	tab := E10FiftyYear(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		uptime := parsePct(t, row[1])
		if uptime < 95 {
			t.Fatalf("%s weekly uptime = %v%%", row[0], uptime)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11SmartTrash(1)
	// The change column for overflow and cost must be a large negative
	// percentage.
	for _, label := range []string{"overflow events/year", "collection cost"} {
		change := parsePct(t, cell(t, tab, label, 3))
		if change > -50 {
			t.Fatalf("%s change = %v%%, want a large cut", label, change)
		}
	}
}

func TestE12OpenBeatsLocked(t *testing.T) {
	tab := E12Interop(1)
	open := parsePct(t, tab.Rows[0][2])
	locked := parsePct(t, tab.Rows[1][2])
	if open <= locked*1.5 {
		t.Fatalf("open coverage %v%% should far exceed locked %v%%", open, locked)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := E6SurvivalRace(9)
	b := E6SurvivalRace(9)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("same seed diverged")
			}
		}
	}
}
