package experiments

import (
	"fmt"

	"centuryscale/internal/econ"
	"centuryscale/internal/fleet"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// A11Obsolescence quantifies §1's central distinction: functional
// obsolescence (devices retire when they actually break) versus technical
// or planned obsolescence (an external schedule — a spectrum sunset, a
// vendor lockout — retires healthy devices). The same 15-year-mean
// hardware is run under progressively harsher forced-EOL schedules.
func A11Obsolescence(seed uint64) Table {
	t := Table{
		ID:     "A11",
		Title:  "Functional vs technical obsolescence (§1)",
		Header: []string{"retirement regime", "effective-mean-life-y", "replacements", "cost-50y", "cost-multiple"},
	}
	base := fleet.Config{
		Slots:         500,
		Horizon:       sim.Years(50),
		Lifetime:      reliability.WeibullFromMean(3, 15),
		Policy:        fleet.PolicyOnFailure,
		RepairLag:     30 * sim.Day,
		HardwareCents: 10000,
		LaborCents:    2500,
	}
	var naturalCost int64
	for _, eol := range []float64{0, 15, 10, 5, 3} {
		cfg := base
		cfg.ForcedRetirementYears = eol
		res := fleet.Run(cfg, rng.New(seed))
		// Effective mean life = total in-service time / devices used.
		devicesUsed := 500 + res.Replacements
		meanLife := res.Availability() * 50 * 500 / float64(devicesUsed)
		label := "functional (break-only)"
		if eol > 0 {
			label = fmt.Sprintf("forced EOL at %gy", eol)
		}
		if eol == 0 {
			naturalCost = res.CostCents
		}
		multiple := "-"
		if naturalCost > 0 {
			multiple = fmt.Sprintf("%.1fx", float64(res.CostCents)/float64(naturalCost))
		}
		t.AddRow(
			label,
			f1(meanLife),
			fmt.Sprintf("%d", res.Replacements),
			econ.Cents(res.CostCents).String(),
			multiple,
		)
	}
	t.Notes = append(t.Notes,
		"the paper's §1 argument in one table: every year an external schedule shaves off a healthy device's life converts directly into replacement labor and hardware",
		"a 3-year EOL (a fast phone-style cycle) costs ~5x the break-only regime on identical hardware")
	return t
}
