package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSpace(s), v)
}

func TestAllAblationsComplete(t *testing.T) {
	tabs := AllAblations(1)
	if len(tabs) != 14 {
		t.Fatalf("ablations = %d", len(tabs))
	}
	for _, tab := range tabs {
		if !strings.HasPrefix(tab.ID, "A") || len(tab.Rows) == 0 {
			t.Fatalf("ablation incomplete: %+v", tab.ID)
		}
	}
}

func TestAblationsByID(t *testing.T) {
	for _, id := range []string{"A1", "a4", "A7"} {
		if _, ok := ByID(id, 1); !ok {
			t.Fatalf("ByID(%q) not found", id)
		}
	}
}

func TestA1AirtimeDoubling(t *testing.T) {
	tab := A1LoRaSweep()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Airtime roughly doubles per SF step; range grows monotonically.
	var prevAir, prevRange float64
	for i, row := range tab.Rows {
		air := parseFloat(t, row[1])
		rng := parseFloat(t, row[4])
		if i > 0 {
			ratio := air / prevAir
			if ratio < 1.5 || ratio > 2.4 {
				t.Fatalf("airtime step ratio = %v at %s", ratio, row[0])
			}
			if rng <= prevRange {
				t.Fatalf("range not increasing at %s", row[0])
			}
		}
		prevAir, prevRange = air, rng
	}
}

func TestA2Knee(t *testing.T) {
	tab := A2StorageSizing()
	// 1 mF cannot hold a task; 10 mF and up can.
	if tab.Rows[0][2] != "false" {
		t.Fatalf("1 mF row = %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:] {
		if row[2] != "true" {
			t.Fatalf("row %v should hold a task", row)
		}
	}
}

func TestA3UptimeImprovesWithGateways(t *testing.T) {
	tab := A3GatewayDensity(1)
	first := parsePct(t, tab.Rows[0][3])
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][3])
	if last < first {
		t.Fatalf("uptime fell with more gateways: %v -> %v", first, last)
	}
}

func TestA4PolicyOrdering(t *testing.T) {
	tab := A4ReplacementPolicies(1)
	avail := map[string]float64{}
	for _, row := range tab.Rows {
		avail[row[0]] = parsePct(t, row[1])
	}
	if !(avail["none"] < avail["batch"] && avail["batch"] < avail["on-failure"]) {
		t.Fatalf("availability ordering wrong: %v", avail)
	}
}

func TestA5DensityKnee(t *testing.T) {
	tab := A5SensingDensity(1)
	first := parseFloat(t, tab.Rows[0][3])
	last := parseFloat(t, tab.Rows[len(tab.Rows)-1][3])
	if last < 0.85 || first > 0.3 {
		t.Fatalf("density study shape off: corr %v -> %v", first, last)
	}
}

func TestA6OutageLatencyOrdering(t *testing.T) {
	tab := A6Metering(1)
	// The three latency rows must be strictly decreasing (monthly,
	// daily, hourly cadences).
	var latencies []float64
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "outage latency") {
			latencies = append(latencies, parseFloat(t, strings.TrimSuffix(row[1], " h")))
		}
	}
	if len(latencies) != 3 {
		t.Fatalf("latency rows = %d", len(latencies))
	}
	if !(latencies[0] > latencies[1] && latencies[1] > latencies[2]) {
		t.Fatalf("latencies not decreasing: %v", latencies)
	}
}

func TestA8HandoffStopsLeaks(t *testing.T) {
	tab := A8GatewayMigration(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	handoff, naive := tab.Rows[0], tab.Rows[1]
	if handoff[2] != "0" {
		t.Fatalf("handoff leaked %s bad packets", handoff[2])
	}
	if naive[2] == "0" {
		t.Fatal("naive swap should leak the blocklisted device")
	}
	if handoff[1] != naive[1] {
		t.Fatalf("good delivery differs: %s vs %s", handoff[1], naive[1])
	}
	if handoff[3] == "0" {
		t.Fatal("handoff inherited no devices")
	}
}

func TestA14CenturyHoldsUptime(t *testing.T) {
	if testing.Short() {
		t.Skip("100-year run")
	}
	tab := A14Century(1)
	var uptime float64
	for _, row := range tab.Rows {
		if row[0] == "weekly uptime (100y)" {
			uptime = parsePct(t, row[1])
		}
	}
	if uptime < 98 {
		t.Fatalf("century uptime = %v%%", uptime)
	}
}

func TestA7GrimSymmetry(t *testing.T) {
	tab := A7BridgeMonitor()
	// Find health and harvest at year 10 and year 50: health falls,
	// harvest rises.
	var h10, h50, p10, p50 float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "10.0":
			h10, p10 = parseFloat(t, row[1]), parseFloat(t, row[3])
		case "50.0":
			h50, p50 = parseFloat(t, row[1]), parseFloat(t, row[3])
		}
	}
	if !(h50 < h10 && p50 > p10) {
		t.Fatalf("grim symmetry broken: health %v->%v harvest %v->%v", h10, h50, p10, p50)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("not a float: %q (%v)", s, err)
	}
	return v
}
