package experiments

import (
	"fmt"

	"centuryscale/internal/econ"
)

// A13SharedInfra quantifies §3.4's amortization argument: the per-
// application cost of a shared municipal plant versus per-application
// dedicated build-outs, as the number of co-resident applications grows,
// with and without surplus-capacity revenue (the San Leandro/Barcelona
// community-broadband model, §3.3).
func A13SharedInfra() Table {
	base := econ.SharedInfraPlan{
		BuildCapex:               500_000_000, // $5M citywide plant
		OpexMonth:                500_000,     // $5k/month
		HorizonYears:             50,
		PerAppDedicatedCapex:     200_000_000, // $2M per app going alone
		PerAppDedicatedOpexMonth: 300_000,
	}
	t := Table{
		ID:     "A13",
		Title:  "Shared-infrastructure amortization (§3.4)",
		Header: []string{"applications", "per-app shared", "per-app dedicated", "sharing-advantage", "with broadband revenue"},
	}
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		p := base
		p.Applications = k
		withRev := p
		withRev.RevenueMonth = 400_000 // selling surplus capacity
		t.AddRow(
			fmt.Sprintf("%d", k),
			p.PerAppSharedCost().String(),
			p.PerAppDedicatedCost().String(),
			fmt.Sprintf("%.2fx", p.SharingAdvantage()),
			withRev.PerAppSharedCost().String(),
		)
	}
	be := base
	be.Applications = 1
	t.AddRow("break-even", fmt.Sprintf("%d applications", be.BreakEvenApplications(100)), "-", "-", "-")
	t.Notes = append(t.Notes,
		"one application cannot justify the plant; by three it is cheaper than going alone, and every further application rides nearly free",
		"selling surplus capacity (community broadband) pushes the shared cost down further — the municipal networks the paper surveys run profitably")
	return t
}
