package experiments

import (
	"fmt"

	"centuryscale/internal/rng"
	"centuryscale/internal/traffic"
)

// A10TrafficCoverage quantifies §2's claim that "instrumenting one
// intersection will not give city planners an accurate picture of the
// overall city traffic": citywide-flow estimation error versus the
// fraction of intersections instrumented, for unbiased and
// arterial-chasing sensor placement.
func A10TrafficCoverage(seed uint64) Table {
	t := Table{
		ID:     "A10",
		Title:  "Traffic-sensing coverage (§2: one intersection is not a picture)",
		Header: []string{"instrumented", "fraction", "placement", "mean-abs-error"},
	}
	src := rng.New(seed)
	net := traffic.Synthesize(20, 50000, src.Split("network"))
	res := net.CoverageStudy([]int{1, 4, 16, 64, 400}, 25, src.Split("sampling"))
	for _, r := range res {
		t.AddRow(
			fmt.Sprintf("%d/400", r.Instrumented),
			pct(r.Fraction),
			r.Strategy.String(),
			pct(r.AbsRelErr),
		)
	}
	t.AddRow("flow concentration", "-", "Gini index", f2(net.GiniIndex()))
	t.Notes = append(t.Notes,
		"one instrumented intersection misestimates citywide flow by a large factor; unbiased error shrinks with coverage, while instrumenting only the busiest corridors biases high at every scale")
	return t
}
