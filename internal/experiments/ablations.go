package experiments

import (
	"fmt"
	"time"

	"centuryscale/internal/airfield"
	"centuryscale/internal/concrete"
	"centuryscale/internal/core"
	"centuryscale/internal/energy"
	"centuryscale/internal/fleet"
	"centuryscale/internal/metering"
	"centuryscale/internal/radio"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Ablations and extension studies (A1-A7): design-choice sweeps DESIGN.md
// calls out, plus the application workloads the paper motivates but does
// not evaluate. They follow the same Table conventions as E1-E12.

// A1LoRaSweep quantifies the LoRa spreading-factor trade: airtime (which
// is both energy and regulatory duty-cycle budget) versus link budget
// (range) for the paper's 24-byte packet.
func A1LoRaSweep() Table {
	t := Table{
		ID:     "A1",
		Title:  "LoRa spreading-factor trade for 24-byte packets",
		Header: []string{"SF", "airtime-ms", "energy-mJ@14dBm", "sensitivity-dBm", "range-km", "max-hourly-pkts@1%duty"},
	}
	ch := radio.UrbanChannel()
	link := radio.Link{TxPowerDBm: 14}
	for sf := 7; sf <= 12; sf++ {
		cfg := radio.DefaultLoRa(sf)
		air := cfg.Airtime(24)
		energyMJ := radio.TxEnergy(air, 14) / 1000
		rangeKM := link.MaxRangeMeters(ch, cfg.Sensitivity()) / 1000
		maxPkts := int(0.01 * time.Hour.Seconds() / air.Seconds())
		t.AddRow(
			fmt.Sprintf("SF%d", sf),
			f1(float64(air.Microseconds())/1000),
			f2(energyMJ),
			f1(cfg.Sensitivity()),
			f2(rangeKM),
			fmt.Sprintf("%d", maxPkts),
		)
	}
	t.Notes = append(t.Notes,
		"each SF step buys ~2.5 dB of budget at ~2x the airtime/energy; the paper's hourly 24-byte cadence fits the 1% duty cycle at every SF")
	return t
}

// A2StorageSizing sweeps the harvesting device's capacitor size under a
// solar harvester: too small a store cannot hold one task; beyond the
// knee, extra capacitance buys nothing (and the electrolytic sizes the
// paper warns about would reintroduce a wear-out part).
func A2StorageSizing() Table {
	t := Table{
		ID:     "A2",
		Title:  "Supercap sizing for a solar-harvesting hourly reporter",
		Header: []string{"capacitance-F", "usable-mJ", "holds-one-task", "time-to-first-task", "night-survival"},
	}
	task := energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000}
	harv := energy.Solar{PeakMicroWatts: 300}
	for _, farads := range []float64{0.001, 0.01, 0.047, 0.1, 0.47, 1.0} {
		store := energy.SupercapStore(farads, 1.8, 5.0, 1)
		b := energy.Budget{Harvester: harv, Store: store, Task: task}
		holds := task.Total() <= store.CapacityMicroJoules
		first := "-"
		if d, ok := b.TimeToFirstTask(); ok {
			first = fmt.Sprintf("%.0f min", d.Minutes())
		} else {
			first = "never"
		}
		// Night survival: can a full store cover 12 h of leakage plus
		// one dawn report?
		nightNeed := 1*12*3600 + task.Total()
		survives := store.CapacityMicroJoules >= nightNeed
		t.AddRow(
			fmt.Sprintf("%.3f", farads),
			f1(store.CapacityMicroJoules/1000),
			fmt.Sprintf("%v", holds),
			first,
			fmt.Sprintf("%v", survives),
		)
	}
	t.Notes = append(t.Notes,
		"the knee sits near 0.047 F: below it a 30 mJ report cannot be buffered; far above it only leakage grows")
	return t
}

// A3GatewayDensity sweeps owned-gateway count for a fixed device fleet:
// the availability/cost trade of the owned design point.
func A3GatewayDensity(seed uint64) Table {
	t := Table{
		ID:     "A3",
		Title:  "Owned-gateway density vs end-to-end delivery (10-year runs)",
		Header: []string{"gateways", "devices/gw", "delivery", "weekly-uptime", "gw-replacements"},
	}
	for _, gws := range []int{1, 2, 4, 8} {
		cfg := core.DefaultExperiment(core.OwnedWPAN)
		cfg.Seed = seed
		cfg.Horizon = sim.Years(10)
		cfg.NumDevices = 40
		cfg.ReportInterval = 12 * time.Hour
		cfg.NumGateways = gws
		out := core.RunExperiment(cfg)
		t.AddRow(
			fmt.Sprintf("%d", gws),
			fmt.Sprintf("%d", cfg.NumDevices/gws),
			pct(out.DeliveryRatio()),
			pct(out.WeeklyUptime),
			fmt.Sprintf("%d", out.GatewayReplaced),
		)
	}
	t.Notes = append(t.Notes,
		"cells are independent in this model, so per-packet delivery is flat; what density buys is uptime — one gateway is a single point of failure during its replacement lag, and weekly uptime only reaches 100% with at least two")
	return t
}

// A4ReplacementPolicies compares all four fleet policies on one fleet.
func A4ReplacementPolicies(seed uint64) Table {
	t := Table{
		ID:     "A4",
		Title:  "Replacement policies on a 600-slot, 15-year-device fleet (50y)",
		Header: []string{"policy", "availability", "replacements", "cost", "events-logged"},
	}
	base := fleet.Config{
		Slots:          600,
		Horizon:        sim.Years(50),
		Lifetime:       reliability.WeibullFromMean(3, 15),
		RepairLag:      30 * sim.Day,
		BatchZones:     25,
		BatchCycle:     sim.Years(25),
		ScheduledEvery: sim.Years(10),
		HardwareCents:  10000,
		LaborCents:     2500,
	}
	for _, p := range []fleet.Policy{fleet.PolicyNone, fleet.PolicyOnFailure, fleet.PolicyBatch, fleet.PolicyScheduled} {
		cfg := base
		cfg.Policy = p
		res := fleet.Run(cfg, rng.New(seed))
		t.AddRow(
			p.String(),
			pct(res.Availability()),
			fmt.Sprintf("%d", res.Replacements),
			fmt.Sprintf("$%.0f", float64(res.CostCents)/100),
			fmt.Sprintf("%d", len(res.Diary)),
		)
	}
	t.Notes = append(t.Notes,
		"batch replacement is the realistic municipal mode (§1): cheaper than on-failure dispatch but it leaves failed slots dark until the project cycle returns")
	return t
}

// A5SensingDensity runs the §2 air-quality density study: reconstruction
// quality versus sensor count.
func A5SensingDensity(seed uint64) Table {
	t := Table{
		ID:     "A5",
		Title:  "Air-quality sensing density (§2: city-block granularity)",
		Header: []string{"sensors", "spacing-m", "RMSE-ug/m3", "correlation"},
	}
	src := rng.New(seed)
	f := airfield.Synthetic(4000, 25, src.Split("field"))
	for _, r := range f.DensityStudy([]int{5, 20, 100, 500, 2000}, 0.05, src.Split("sensors")) {
		t.AddRow(
			fmt.Sprintf("%d", r.Sensors),
			fmt.Sprintf("%.0f", r.MetersPerSide),
			f2(r.RMSE),
			f2(r.Corr),
		)
	}
	t.Notes = append(t.Notes,
		"reconstruction only becomes faithful once sensor spacing approaches the ~100-180 m source footprint — the paper's city-block granularity")
	return t
}

// A6Metering runs the AMI study: demand-response peak cut and outage
// detection latency versus reporting cadence.
func A6Metering(seed uint64) Table {
	t := Table{
		ID:     "A6",
		Title:  "Advanced metering infrastructure (§2): DR and outage detection",
		Header: []string{"metric", "value"},
	}
	fleetM := metering.NewFleet(2000, 0.4, rng.New(seed))
	base := fleetM.Run(7, metering.DefaultTariff(), nil)
	var events []metering.DREvent
	for d := 0; d < 7; d++ {
		events = append(events, metering.DREvent{Day: d, StartHour: 17, Hours: 4, ShedFraction: 0.3})
	}
	fleetM2 := metering.NewFleet(2000, 0.4, rng.New(seed))
	dr := fleetM2.Run(7, metering.DefaultTariff(), events)
	t.AddRow("meters", "2000 (40% DR-enrolled)")
	t.AddRow("system peak, no DR", fmt.Sprintf("%.0f kW", base.PeakKW))
	t.AddRow("system peak, with DR", fmt.Sprintf("%.0f kW", dr.PeakKW))
	t.AddRow("peak reduction", pct(1-dr.PeakKW/base.PeakKW))
	t.AddRow("energy shed", fmt.Sprintf("%.0f kWh/week", dr.ShedKWh))
	for _, cadence := range []time.Duration{30 * 24 * time.Hour, 24 * time.Hour, time.Hour} {
		res := metering.DetectOutage(metering.OutageParams{
			ReportEvery: cadence, MissesToAlarm: 2,
			OutageAt: 6*time.Hour + 17*time.Minute, MetersOut: 140,
		})
		t.AddRow(fmt.Sprintf("outage latency @ %v reads", cadence),
			fmt.Sprintf("%.1f h", res.Latency.Hours()))
	}
	t.Notes = append(t.Notes,
		"two-way AMI both shaves the system peak and turns every meter into an outage sensor (the Chattanooga value, §2)")
	return t
}

// A7BridgeMonitor composes the concrete model with the energy budget: the
// paper's flagship device, checked for physical self-consistency over the
// structure's whole life.
func A7BridgeMonitor() Table {
	t := Table{
		ID:     "A7",
		Title:  "Bridge-embedded sensor: health signal and harvest budget (§1, §4.1)",
		Header: []string{"year", "health-index", "chloride@rebar", "harvest-uW", "sustainable-interval"},
	}
	b := concrete.Bridge()
	task := energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000}
	for _, y := range []float64{0.1, 1, 10, 25, 40, 50} {
		at := sim.Years(y)
		uw := b.HarvestMicroWatts(100, 0.5, at)
		budget := energy.Budget{
			Harvester: energy.Constant{MicroWatts: uw},
			Store:     energy.SupercapStore(0.1, 1.8, 5.0, 1),
			Task:      task,
		}
		interval := "starved"
		if iv, ok := budget.SustainableInterval(); ok {
			interval = fmt.Sprintf("%.0f min", iv.Minutes())
		}
		t.AddRow(
			f1(y),
			f2(b.HealthIndex(at)),
			f2(b.ChlorideAt(b.CoverMM, at)),
			f1(uw),
			interval,
		)
	}
	t.AddRow("service life", f1(b.ServiceLifeYears())+" years", "-", "-", "-")
	t.Notes = append(t.Notes,
		"the grim symmetry the paper notes: the corrosion that ends the bridge's life is exactly what powers its sensor — harvest rises as health falls",
		"hourly reporting is sustainable once corrosion initiates; pre-initiation the passive trickle supports ~2-hourly reports")
	return t
}

// AllAblations returns A1-A14 in order.
func AllAblations(seed uint64) []Table {
	return []Table{
		A1LoRaSweep(),
		A2StorageSizing(),
		A3GatewayDensity(seed),
		A4ReplacementPolicies(seed),
		A5SensingDensity(seed),
		A6Metering(seed),
		A7BridgeMonitor(),
		A8GatewayMigration(seed),
		A9FiftyYearTimeline(seed),
		A10TrafficCoverage(seed),
		A11Obsolescence(seed),
		A12BridgeLifetime(seed),
		A13SharedInfra(),
		A14Century(seed),
	}
}
