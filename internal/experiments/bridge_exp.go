package experiments

import (
	"fmt"

	"centuryscale/internal/core"
)

// A12BridgeLifetime runs the fully-coupled bridge scenario: sensors cast
// into one bridge deck, harvesting from the corrosion they report on,
// through the structure's entire ~52-year service life plus five years of
// aftermath. This is the paper's opening image (§1) executed end to end.
func A12BridgeLifetime(seed uint64) Table {
	cfg := core.DefaultBridge()
	cfg.Seed = seed
	out := core.RunBridge(cfg)

	t := Table{
		ID:     "A12",
		Title:  "Coupled bridge deployment across the structure's service life (§1, §4.1)",
		Header: []string{"year", "mean-reported-health"},
	}
	for _, y := range []int{0, 10, 20, 30, 40, 45, 50, 52, 55} {
		if y >= len(out.HealthAtYear) {
			continue
		}
		v := "no data (fleet silent)"
		if h := out.HealthAtYear[y]; h >= 0 {
			v = f2(h)
		}
		t.AddRow(fmt.Sprintf("%d", y), v)
	}
	t.AddRow("—", "—")
	t.AddRow("sensors deployed", fmt.Sprintf("%d (never touched)", cfg.Sensors))
	t.AddRow("sensors alive at structure EOL", fmt.Sprintf("%d", out.SensorsAliveAtEOL))
	t.AddRow("packets accepted", fmt.Sprintf("%d", out.PacketsAccepted))
	t.AddRow("weekly uptime", pct(out.WeeklyUptime))
	t.AddRow("energy-starved skips", fmt.Sprintf("%d (passive corrosion regime)", out.StarvedSkips))
	t.Notes = append(t.Notes,
		"the reported health curve tracks ground truth: flat near 1.0 for four decades, then declining as corrosion initiates around year 44",
		"with only a dozen never-touched sensors the sensing fleet itself can go extinct near the structure's end of life — the redundancy argument for deploying more sensors than the data strictly needs",
		"pre-initiation, the passive corrosion trickle starves the 2-hour cadence into skips; once corrosion begins in earnest the same cell funds it comfortably")
	return t
}
