package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Machine-readable output: the tables are also the interchange format
// for anyone plotting the results, so they serialise to CSV and JSON.

// WriteCSV emits the table as CSV: a header row then data rows. Notes are
// emitted as trailing comment-style rows prefixed with "#note".
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"#note", n}); err != nil {
			return fmt.Errorf("experiments: csv note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the stable JSON shape.
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteJSON emits the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTable{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
	})
}

// WriteAllJSON emits several tables as a JSON array.
func WriteAllJSON(w io.Writer, tables []Table) error {
	out := make([]jsonTable, len(tables))
	for i, t := range tables {
		out[i] = jsonTable{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
