package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() Table {
	t := Table{
		ID:     "T0",
		Title:  "sample",
		Header: []string{"a", "b"},
		Notes:  []string{"a note, with comma"},
	}
	t.AddRow("1", "x,y") // embedded comma must survive CSV quoting
	t.AddRow("2", "z")
	return t
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	tab := sampleTable()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + 1 note
		t.Fatalf("records = %d: %v", len(records), records)
	}
	if records[1][1] != "x,y" {
		t.Fatalf("comma cell mangled: %q", records[1][1])
	}
	if records[3][0] != "#note" {
		t.Fatalf("note row = %v", records[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	tab := sampleTable()
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got jsonTable
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "T0" || len(got.Rows) != 2 || got.Rows[0][1] != "x,y" {
		t.Fatalf("json = %+v", got)
	}
}

func TestWriteAllJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAllJSON(&buf, []Table{sampleTable(), E4HeliumWallet()}); err != nil {
		t.Fatal(err)
	}
	var got []jsonTable
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].ID != "E4" {
		t.Fatalf("json array = %d entries", len(got))
	}
	if !strings.Contains(buf.String(), "438000") {
		t.Fatal("E4 numbers missing from JSON")
	}
}
