package experiments

import (
	"fmt"
	"time"

	"centuryscale/internal/core"
)

// A9FiftyYearTimeline renders the experiment's public chart: the decade-
// by-decade trajectory of the §4 deployment — devices still alive and
// packets landing per year — for both gateway designs. This is the
// "living, public experimental diary" view (§4.5) that the paper's web
// page would plot.
func A9FiftyYearTimeline(seed uint64) Table {
	t := Table{
		ID:    "A9",
		Title: "Fifty-year timeline: the public diary chart (§4.5)",
		Header: []string{"year",
			"owned:alive", "owned:pkts/yr",
			"lora:alive", "lora:pkts/yr"},
	}
	outs := make(map[core.GatewayDesign]*core.Outcome)
	for _, design := range []core.GatewayDesign{core.OwnedWPAN, core.ThirdPartyLoRa} {
		cfg := core.DefaultExperiment(design)
		cfg.Seed = seed
		cfg.ReportInterval = 12 * time.Hour
		outs[design] = core.RunExperiment(cfg)
	}
	owned, lora := outs[core.OwnedWPAN], outs[core.ThirdPartyLoRa]
	for _, y := range []int{0, 5, 10, 20, 30, 40, 49} {
		t.AddRow(
			fmt.Sprintf("%d", y),
			fmt.Sprintf("%d", owned.YearlyAliveDevices[y]),
			fmt.Sprintf("%d", owned.YearlyAccepted[y]),
			fmt.Sprintf("%d", lora.YearlyAliveDevices[y]),
			fmt.Sprintf("%d", lora.YearlyAccepted[y]),
		)
	}
	t.Notes = append(t.Notes,
		"the population decays (nobody touches a device, ever) while the packet stream — and thus the weekly metric — persists as long as any device breathes",
		fmt.Sprintf("end-to-end weekly uptime: owned %.1f%%, third-party %.1f%%",
			owned.WeeklyUptime*100, lora.WeeklyUptime*100))
	return t
}
