// Package experiments regenerates every quantitative claim in the paper
// as a numbered experiment, E1 through E12 (see DESIGN.md for the index).
// Each experiment returns a Table that cmd/centurysim prints and
// EXPERIMENTS.md records; the root bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"centuryscale/internal/backhaul"
	"centuryscale/internal/city"
	"centuryscale/internal/core"
	"centuryscale/internal/econ"
	"centuryscale/internal/fleet"
	"centuryscale/internal/helium"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Table is one experiment's output: a titled grid plus free-form notes
// comparing against the paper's stated numbers.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// E1Hierarchy quantifies Figure 1: population, reliance fan-in, and
// lifetime spread per deployment tier.
func E1Hierarchy(seed uint64) Table {
	cfg := core.DefaultHierarchy()
	cfg.Seed = seed
	rep := core.BuildHierarchy(cfg)
	t := Table{
		ID:     "E1",
		Title:  "Deployment hierarchy (Figure 1)",
		Header: []string{"tier", "count", "devices-relying", "mean-life-y", "life-CoV", "min-y", "max-y"},
	}
	for _, row := range rep.Rows {
		t.AddRow(
			row.Tier.String(),
			fmt.Sprintf("%d", row.Count),
			f1(rep.RelianceAt(row.Tier)),
			f1(row.Lifetimes.MeanYears),
			f2(row.Lifetimes.CoV),
			f1(row.Lifetimes.MinYears),
			f1(row.Lifetimes.MaxYears),
		)
	}
	t.Notes = append(t.Notes,
		"paper (Fig. 1): devices are numerous and short/variable-lived; each higher tier is scarcer, carries more devices, and must be more stable")
	return t
}

// E2Labor reproduces §1's Los Angeles replacement-labor arithmetic and
// extends it with the batch-project alternative.
func E2Labor() Table {
	inv := city.LosAngeles()
	rep := city.Replacement(inv, city.DefaultLabor(), 25)
	t := Table{
		ID:     "E2",
		Title:  "Los Angeles deployment-recovery labor (§1)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("utility poles", fmt.Sprintf("%d", inv[city.UtilityPole]))
	t.AddRow("intersections", fmt.Sprintf("%d", inv[city.Intersection]))
	t.AddRow("streetlights", fmt.Sprintf("%d", inv[city.Streetlight]))
	t.AddRow("total devices", fmt.Sprintf("%d", rep.Devices))
	t.AddRow("minutes/device", f1(rep.PerDeviceMinutes))
	t.AddRow("person-hours", fmt.Sprintf("%.0f", rep.PersonHours))
	t.AddRow("en-masse blitz (100 workers)", fmt.Sprintf("%.0f working days", rep.EnMasseDays))
	t.AddRow("rolling with projects", fmt.Sprintf("%.0f years", rep.RollingYears))
	t.AddRow("labor cost", econ.Cents(rep.LaborCostCents).String())
	t.Notes = append(t.Notes,
		"paper: 'nearly 200,000 person-hours of labor alone' — arithmetic reproduced exactly")
	return t
}

// E3TodayScale sweeps today's deployment envelope (§2): 500-5,000 nodes
// on 2-7-year upgrade cycles.
func E3TodayScale(seed uint64) Table {
	t := Table{
		ID:     "E3",
		Title:  "Today's deployments: scale vs upgrade burden (§2)",
		Header: []string{"nodes", "cycle-y", "availability", "replacements/y", "cost/y"},
	}
	for _, nodes := range []int{500, 2000, 5000} {
		for _, cycle := range []float64{2, 7} {
			res := fleet.Run(fleet.Config{
				Slots:          nodes,
				Horizon:        sim.Years(14),
				Lifetime:       reliability.BatteryDeviceBOM().System(),
				Policy:         fleet.PolicyScheduled,
				ScheduledEvery: sim.Years(cycle),
				HardwareCents:  10000,
				LaborCents:     2500,
			}, rng.New(seed))
			years := 14.0
			t.AddRow(
				fmt.Sprintf("%d", nodes),
				f1(cycle),
				pct(res.Availability()),
				fmt.Sprintf("%.0f", float64(res.Replacements)/years),
				econ.Cents(res.CostCents/14).String(),
			)
		}
	}
	t.Notes = append(t.Notes,
		"paper: operators predict 2-7 year lifetimes; shorter cycles buy availability with a linearly growing touch burden")
	return t
}

// E4HeliumWallet reproduces §4.4's data-credit arithmetic exactly.
func E4HeliumWallet() Table {
	span := 50 * 365 * 24 * time.Hour
	credits := helium.CreditsForUplink(time.Hour, span)
	w := helium.NewWallet(0)
	w.Provision(500)
	t := Table{
		ID:     "E4",
		Title:  "Helium prepaid-wallet economics (§4.4)",
		Header: []string{"metric", "value", "paper"},
	}
	t.AddRow("packet size", fmt.Sprintf("%d bytes", helium.MaxPacketBytes), "24 bytes")
	t.AddRow("cadence", "1/hour for 50 years", "same")
	t.AddRow("credits needed", fmt.Sprintf("%d", credits), "438,000")
	t.AddRow("$5 wallet", fmt.Sprintf("%d DC", w.Balance()), "500,000 DC")
	covered := w.Charge(credits) == nil
	t.AddRow("prepaid covers 50y", fmt.Sprintf("%v", covered), "yes")
	t.AddRow("credits left after 50y", fmt.Sprintf("%d", w.Balance()), "62,000")
	return t
}

// E5BackhaulDiversity reproduces §4.3's Helium AS measurement and extends
// it with the future-work churn analysis.
func E5BackhaulDiversity(seed uint64) Table {
	net := helium.NewNetwork(helium.DefaultNetworkConfig(), rng.New(seed))
	t := Table{
		ID:     "E5",
		Title:  "Helium backhaul AS diversity (§4.3)",
		Header: []string{"metric", "measured", "paper"},
	}
	total, _ := net.AliveAt(0)
	t.AddRow("public-IP hotspots", fmt.Sprintf("%d", total), "12,400")
	t.AddRow("top-10 AS share", pct(net.TopShare(10, 0)), "~50%")
	t.AddRow("unique ASes", fmt.Sprintf("%d", net.UniqueASes(0)), "~200")
	// Future-work extension: how the census drifts under churn.
	for _, y := range []float64{10, 25, 50} {
		at := sim.Years(y)
		alive, _ := net.AliveAt(at)
		t.AddRow(fmt.Sprintf("alive at %gy (churning)", y), fmt.Sprintf("%d", alive), "-")
	}
	t.Notes = append(t.Notes,
		"churn analysis is the paper's declared future work; replacement arrivals keep the population stationary while the network stays commercially viable")
	return t
}

// E6SurvivalRace races battery against harvesting devices over 50 years.
func E6SurvivalRace(seed uint64) Table {
	t := Table{
		ID:     "E6",
		Title:  "Battery vs energy-harvesting survival (§1, §4)",
		Header: []string{"year", "battery-alive", "harvesting-alive"},
	}
	const n = 1000
	src := rng.New(seed)
	battBOM := reliability.BatteryDeviceBOM()
	harvBOM := reliability.HarvestingDeviceBOM()
	battLives := make([]float64, n)
	harvLives := make([]float64, n)
	for i := 0; i < n; i++ {
		battLives[i], _ = battBOM.SampleLifetime(src)
		harvLives[i], _ = harvBOM.SampleLifetime(src)
	}
	countAlive := func(lives []float64, y float64) int {
		c := 0
		for _, l := range lives {
			if l > y {
				c++
			}
		}
		return c
	}
	for _, y := range []float64{0, 5, 10, 15, 20, 30, 40, 50} {
		t.AddRow(f1(y),
			fmt.Sprintf("%d", countAlive(battLives, y)),
			fmt.Sprintf("%d", countAlive(harvLives, y)))
	}
	t.Notes = append(t.Notes,
		"paper: batteries hold mean device life to 10-15y; removing them lets the electronics set the horizon")
	return t
}

// E7TippingPoint solves §3.4's owned-vs-leased crossover as fleets grow.
func E7TippingPoint() Table {
	base := econ.TippingConfig{
		HorizonYears:          50,
		Gateways:              40,
		LeasedPerGatewayMonth: 3000,
		SunsetEveryYears:      12,
		DeviceReplaceCents:    15000,
		OwnedBaseCapex:        200_000_000,
		OwnedPerGatewayCapex:  1_000_000,
		OwnedOpexMonth:        200_000,
	}
	t := Table{
		ID:     "E7",
		Title:  "Vertical-integration tipping point (§3.4)",
		Header: []string{"replace-$/device", "sunset-every-y", "tipping-devices"},
	}
	for _, replace := range []int64{7500, 15000, 30000} {
		for _, sunset := range []float64{8, 12, 20} {
			cfg := base
			cfg.DeviceReplaceCents = econ.Cents(replace)
			cfg.SunsetEveryYears = sunset
			n := cfg.TippingPoint(100_000_000)
			val := "never"
			if n >= 0 {
				val = fmt.Sprintf("%d", n)
			}
			t.AddRow(econ.Cents(replace).String(), f1(sunset), val)
		}
	}
	t.Notes = append(t.Notes,
		"paper: 'there will always be a tipping point where the cost of deploying vertically owned infrastructure is lower than the cost of replacing devices'; pricier replacement and faster sunsets pull it earlier")
	return t
}

// E8FiberVsCellular compares 50-year TCO and stranding risk (§3.3).
func E8FiberVsCellular(seed uint64) Table {
	t := Table{
		ID:     "E8",
		Title:  "Backhaul options over 50 years (§3.3)",
		Header: []string{"tech", "ownership", "capex", "TCO-50y", "availability", "stranded-at-y"},
	}
	horizon := sim.Years(50)
	src := rng.New(seed)
	cases := []struct {
		tech backhaul.Tech
		own  backhaul.Ownership
	}{
		{backhaul.Fiber, backhaul.Municipal},
		{backhaul.Fiber, backhaul.Commercial},
		{backhaul.Ethernet, backhaul.Commercial},
		{backhaul.Cellular3G, backhaul.Commercial},
		{backhaul.Cellular4G, backhaul.Commercial},
		{backhaul.Cellular5G, backhaul.Commercial},
		{backhaul.WiMAX, backhaul.Municipal},
		{backhaul.WiMAX, backhaul.Commercial},
	}
	for _, c := range cases {
		p := backhaul.DefaultProfile(c.tech, c.own)
		b := backhaul.New(p, horizon, src.Split(c.tech.String()+c.own.String()))
		stranded := "never"
		if s := b.SunsetAt(); s > 0 {
			stranded = f1(sim.ToYears(s))
		}
		t.AddRow(
			c.tech.String(), c.own.String(),
			econ.Cents(p.CapexCents).String(),
			econ.Cents(p.TCOCents(horizon)).String(),
			pct(b.Availability(horizon)),
			stranded,
		)
	}
	t.Notes = append(t.Notes,
		"paper: cellular is easy to start but subscriptions compound and spectrum sunsets strand devices; wires, once trenched, 'generally will not go anywhere'")
	return t
}

// E9ShipOfTheseus compares single-cohort vs pipelined fleets (§1).
func E9ShipOfTheseus(seed uint64) Table {
	t := Table{
		ID:     "E9",
		Title:  "Ship of Theseus: pipelined cohorts (§1)",
		Header: []string{"strategy", "availability", "steady-uptime@80%", "replacements", "peak-burst/y"},
	}
	lifetime := reliability.WeibullFromMean(3, 15)
	base := fleet.Config{
		Slots: 600, Horizon: sim.Years(50), Lifetime: lifetime,
		RepairLag: 60 * sim.Day,
	}
	burst := func(r *fleet.Result) int {
		max := 0
		for y := 0; y < 50; y++ {
			n := 0
			for _, e := range r.Diary {
				if e.Kind == fleet.EventReplace &&
					e.At >= sim.Years(float64(y)) && e.At < sim.Years(float64(y+1)) {
					n++
				}
			}
			if n > max {
				max = n
			}
		}
		return max
	}
	noRep := base
	noRep.Policy = fleet.PolicyNone
	r := fleet.Run(noRep, rng.New(seed))
	t.AddRow("single cohort, no replacement", pct(r.Availability()),
		pct(r.SystemUptime(0.8, 400)), fmt.Sprintf("%d", r.Replacements), "0")

	onFail := base
	onFail.Policy = fleet.PolicyOnFailure
	r = fleet.Run(onFail, rng.New(seed))
	t.AddRow("single cohort + on-failure", pct(r.Availability()),
		pct(r.SystemUptime(0.8, 400)), fmt.Sprintf("%d", r.Replacements),
		fmt.Sprintf("%d", burst(r)))

	pipe := onFail
	pipe.StaggerCohorts = 15
	pipe.StaggerSpan = sim.Years(15)
	r = fleet.Run(pipe, rng.New(seed))
	t.AddRow("pipelined cohorts + on-failure", pct(r.Availability()),
		pct(r.SystemUptimeWindow(0.8, 400, sim.Years(15), sim.Years(50))),
		fmt.Sprintf("%d", r.Replacements), fmt.Sprintf("%d", burst(r)))
	t.Notes = append(t.Notes,
		"paper: no device lasts 50 years, but a pipelined system does; staggering also smooths the replacement workload",
		"pipelined uptime measured at steady state (after the 15y ramp)")
	return t
}

// E10FiftyYear runs the full §4 experiment end to end for both gateway
// designs.
func E10FiftyYear(seed uint64) Table {
	t := Table{
		ID:     "E10",
		Title:  "The 50-year experiment, end to end (§4)",
		Header: []string{"design", "weekly-uptime", "delivery", "alive@50y", "gw-replaced", "wallet-left", "longest-gap-d", "cost"},
	}
	for _, design := range []core.GatewayDesign{core.OwnedWPAN, core.ThirdPartyLoRa} {
		cfg := core.DefaultExperiment(design)
		cfg.Seed = seed
		cfg.ReportInterval = 12 * time.Hour
		out := core.RunExperiment(cfg)
		wallet := "-"
		if design == core.ThirdPartyLoRa {
			wallet = fmt.Sprintf("%d DC", out.WalletRemaining)
		}
		t.AddRow(
			design.String(),
			pct(out.WeeklyUptime),
			pct(out.DeliveryRatio()),
			fmt.Sprintf("%d/%d", out.DevicesAliveAtEnd, cfg.NumDevices),
			fmt.Sprintf("%d", out.GatewayReplaced),
			wallet,
			f1(out.LongestGap.Hours()/24),
			out.Ledger.Total().String(),
		)
	}
	t.Notes = append(t.Notes,
		"metric per §4: some data publicly lands at least weekly; devices are never touched, gateways/backhaul may be maintained")
	return t
}

// E11SmartTrash reproduces the Seoul case study (§2).
func E11SmartTrash(seed uint64) Table {
	fixed, sensor := city.SeoulComparison(city.DefaultBins(), 365, seed)
	overflowCut := 1 - float64(sensor.OverflowEvents)/float64(fixed.OverflowEvents)
	costCut := 1 - float64(sensor.CostCents)/float64(fixed.CostCents)
	t := Table{
		ID:     "E11",
		Title:  "Sensor-driven waste collection (§2, Seoul)",
		Header: []string{"metric", "fixed-schedule", "sensor-driven", "change", "paper"},
	}
	t.AddRow("collections/year",
		fmt.Sprintf("%d", fixed.Collections), fmt.Sprintf("%d", sensor.Collections),
		pct(-costCut), "-")
	t.AddRow("overflow events/year",
		fmt.Sprintf("%d", fixed.OverflowEvents), fmt.Sprintf("%d", sensor.OverflowEvents),
		pct(-overflowCut), "-66%")
	t.AddRow("collection cost",
		econ.Cents(fixed.CostCents).String(), econ.Cents(sensor.CostCents).String(),
		pct(-costCut), "-83%")
	t.Notes = append(t.Notes,
		"sensor-driven policy pairs fill telemetry with 5x compacting bins, the Seoul deployment's configuration")
	return t
}

// E12Interop compares open vs vendor-locked gateway populations (§3.2).
func E12Interop(seed uint64) Table {
	// Geometry: devices from V vendors scattered across a district with
	// G gateways. Open gateways: any device can use its nearest G
	// gateways. Locked: only same-vendor gateways count.
	const (
		vendors   = 4
		gateways  = 12
		devices   = 2000
		rangeM    = 300.0
		districtM = 2000.0
	)
	src := rng.New(seed)
	type pt struct{ x, y float64 }
	gwPos := make([]pt, gateways)
	gwVendor := make([]int, gateways)
	for i := range gwPos {
		gwPos[i] = pt{src.Uniform(0, districtM), src.Uniform(0, districtM)}
		gwVendor[i] = i % vendors
	}
	coveredOpen, coveredLocked := 0, 0
	redundancyOpen, redundancyLocked := 0, 0
	for d := 0; d < devices; d++ {
		p := pt{src.Uniform(0, districtM), src.Uniform(0, districtM)}
		vendor := d % vendors
		open, locked := 0, 0
		for g := range gwPos {
			dx, dy := p.x-gwPos[g].x, p.y-gwPos[g].y
			if dx*dx+dy*dy <= rangeM*rangeM {
				open++
				if gwVendor[g] == vendor {
					locked++
				}
			}
		}
		if open > 0 {
			coveredOpen++
			redundancyOpen += open
		}
		if locked > 0 {
			coveredLocked++
			redundancyLocked += locked
		}
	}
	t := Table{
		ID:     "E12",
		Title:  "Open vs vendor-locked gateway coverage (§3.2)",
		Header: []string{"association", "devices-covered", "coverage", "mean-redundancy"},
	}
	meanRed := func(sum, covered int) string {
		if covered == 0 {
			return "0"
		}
		return f2(float64(sum) / float64(covered))
	}
	t.AddRow("open (any vendor)",
		fmt.Sprintf("%d/%d", coveredOpen, devices),
		pct(float64(coveredOpen)/devices),
		meanRed(redundancyOpen, coveredOpen))
	t.AddRow("vendor-locked",
		fmt.Sprintf("%d/%d", coveredLocked, devices),
		pct(float64(coveredLocked)/devices),
		meanRed(redundancyLocked, coveredLocked))
	t.Notes = append(t.Notes,
		"same hardware count: locking gateways to their vendor's devices divides both coverage and redundancy — the paper's 'redundant co-located gateways' pathology")
	return t
}

// All returns every experiment in order. Experiments that take no seed
// ignore the argument.
func All(seed uint64) []Table {
	return []Table{
		E1Hierarchy(seed),
		E2Labor(),
		E3TodayScale(seed),
		E4HeliumWallet(),
		E5BackhaulDiversity(seed),
		E6SurvivalRace(seed),
		E7TippingPoint(),
		E8FiberVsCellular(seed),
		E9ShipOfTheseus(seed),
		E10FiftyYear(seed),
		E11SmartTrash(seed),
		E12Interop(seed),
	}
}

// ByID returns one experiment's table, or ok=false for an unknown ID.
func ByID(id string, seed uint64) (Table, bool) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1Hierarchy(seed), true
	case "E2":
		return E2Labor(), true
	case "E3":
		return E3TodayScale(seed), true
	case "E4":
		return E4HeliumWallet(), true
	case "E5":
		return E5BackhaulDiversity(seed), true
	case "E6":
		return E6SurvivalRace(seed), true
	case "E7":
		return E7TippingPoint(), true
	case "E8":
		return E8FiberVsCellular(seed), true
	case "E9":
		return E9ShipOfTheseus(seed), true
	case "E10":
		return E10FiftyYear(seed), true
	case "E11":
		return E11SmartTrash(seed), true
	case "E12":
		return E12Interop(seed), true
	case "A1":
		return A1LoRaSweep(), true
	case "A2":
		return A2StorageSizing(), true
	case "A3":
		return A3GatewayDensity(seed), true
	case "A4":
		return A4ReplacementPolicies(seed), true
	case "A5":
		return A5SensingDensity(seed), true
	case "A6":
		return A6Metering(seed), true
	case "A7":
		return A7BridgeMonitor(), true
	case "A8":
		return A8GatewayMigration(seed), true
	case "A9":
		return A9FiftyYearTimeline(seed), true
	case "A10":
		return A10TrafficCoverage(seed), true
	case "A11":
		return A11Obsolescence(seed), true
	case "A12":
		return A12BridgeLifetime(seed), true
	case "A13":
		return A13SharedInfra(), true
	case "A14":
		return A14Century(seed), true
	default:
		return Table{}, false
	}
}
