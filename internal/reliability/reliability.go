// Package reliability provides lifetime distributions, system reliability
// composition, and survival estimation for century-scale device fleets.
//
// The paper's argument (§1, §4) leans on two reliability facts: (1)
// conventional wisdom holds components such as batteries and electrolytic
// capacitors to a 10-15 year mean device life, and (2) energy-harvesting
// designs remove exactly those limiting components, so the remaining
// population (PCB, solder, silicon) may carry a device to the century
// scale. This package encodes both: parametric lifetime distributions
// (Weibull, exponential, bathtub), a component catalog with the
// paper-consistent parameters, series-system composition for a device's
// bill of materials, and a Kaplan-Meier estimator for measuring survival
// curves out of simulation output.
//
// All times in this package are expressed in (fractional, Julian) years;
// the simulator converts at its boundary via sim.Years.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"centuryscale/internal/rng"
)

// Distribution is a lifetime distribution over non-negative times in
// years.
type Distribution interface {
	// Survival returns S(t) = P(lifetime > t). S(0) == 1, non-increasing.
	Survival(t float64) float64
	// Hazard returns the instantaneous failure rate h(t) = f(t)/S(t),
	// in failures per year.
	Hazard(t float64) float64
	// Sample draws a lifetime in years.
	Sample(src *rng.Source) float64
	// Mean returns the expected lifetime in years.
	Mean() float64
}

// Weibull is a Weibull lifetime distribution. Shape < 1 models infant
// mortality (decreasing hazard), shape == 1 random failures (constant
// hazard), and shape > 1 wear-out (increasing hazard) — the regime that
// governs batteries and electrolytic capacitors.
type Weibull struct {
	Shape float64 // k > 0, dimensionless
	Scale float64 // lambda > 0, years; the 63.2th percentile life
}

// NewWeibull returns a Weibull distribution, panicking on non-positive
// parameters (a configuration error, not a runtime condition).
func NewWeibull(shape, scale float64) Weibull {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("reliability: invalid Weibull(%v, %v)", shape, scale))
	}
	return Weibull{Shape: shape, Scale: scale}
}

// WeibullFromMean constructs a Weibull with the given shape whose mean
// equals mean years; used to encode claims stated as mean lifetimes (e.g.
// "10-15 years").
func WeibullFromMean(shape, mean float64) Weibull {
	if shape <= 0 || mean <= 0 {
		panic(fmt.Sprintf("reliability: invalid WeibullFromMean(%v, %v)", shape, mean))
	}
	return Weibull{Shape: shape, Scale: mean / math.Gamma(1+1/shape)}
}

// Survival implements Distribution.
func (w Weibull) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(t/w.Scale, w.Shape))
}

// Hazard implements Distribution.
func (w Weibull) Hazard(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		t = 1e-12 // avoid 0^negative for shape < 1
	}
	return w.Shape / w.Scale * math.Pow(t/w.Scale, w.Shape-1)
}

// Sample implements Distribution.
func (w Weibull) Sample(src *rng.Source) float64 {
	return src.Weibull(w.Shape, w.Scale)
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Exponential is a constant-hazard lifetime distribution, appropriate for
// random external failures (lightning, vandalism, vehicle strikes on
// street furniture).
type Exponential struct {
	MeanLife float64 // years
}

// Survival implements Distribution.
func (e Exponential) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-t / e.MeanLife)
}

// Hazard implements Distribution.
func (e Exponential) Hazard(float64) float64 { return 1 / e.MeanLife }

// Sample implements Distribution.
func (e Exponential) Sample(src *rng.Source) float64 {
	return src.Exponential(e.MeanLife)
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.MeanLife }

// CompetingRisks models a unit subject to several independent failure
// modes; the unit fails when the first mode fires. Survival is the product
// of mode survivals, hazard the sum of mode hazards. A classic bathtub is
// the competing combination of an infant-mortality Weibull (shape < 1), a
// constant-hazard Exponential, and a wear-out Weibull (shape > 1).
type CompetingRisks struct {
	Modes []Distribution
}

// Survival implements Distribution.
func (c CompetingRisks) Survival(t float64) float64 {
	s := 1.0
	for _, m := range c.Modes {
		s *= m.Survival(t)
	}
	return s
}

// Hazard implements Distribution.
func (c CompetingRisks) Hazard(t float64) float64 {
	h := 0.0
	for _, m := range c.Modes {
		h += m.Hazard(t)
	}
	return h
}

// Sample implements Distribution: the minimum of the modes' draws.
func (c CompetingRisks) Sample(src *rng.Source) float64 {
	min := math.Inf(1)
	for _, m := range c.Modes {
		if v := m.Sample(src); v < min {
			min = v
		}
	}
	return min
}

// Mean implements Distribution by numerically integrating the survival
// function (MTTF = integral of S(t) dt).
func (c CompetingRisks) Mean() float64 {
	return MTTF(c, 1000)
}

// Bathtub builds the canonical three-phase hazard curve: infant mortality
// with the given early shape/scale, a constant random-failure floor, and
// wear-out.
func Bathtub(infantScale, randomMean float64, wearOut Weibull) CompetingRisks {
	return CompetingRisks{Modes: []Distribution{
		NewWeibull(0.5, infantScale),
		Exponential{MeanLife: randomMean},
		wearOut,
	}}
}

// MTTF numerically integrates the survival function out to the point where
// it becomes negligible, using the trapezoid rule over steps intervals per
// probe horizon. It doubles the horizon until the tail contributes less
// than 0.1%.
func MTTF(d Distribution, steps int) float64 {
	horizon := 50.0
	for d.Survival(horizon) > 1e-4 && horizon < 1e6 {
		horizon *= 2
	}
	h := horizon / float64(steps)
	sum := 0.0
	prev := d.Survival(0)
	for i := 1; i <= steps; i++ {
		cur := d.Survival(float64(i) * h)
		sum += (prev + cur) / 2 * h
		prev = cur
	}
	return sum
}

// Quantile inverts the survival function numerically: the time t at which
// S(t) == 1-p (the p-th failure quantile). p must be in (0, 1).
func Quantile(d Distribution, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("reliability: Quantile p=%v out of (0,1)", p))
	}
	target := 1 - p
	lo, hi := 0.0, 1.0
	for d.Survival(hi) > target {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if d.Survival(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Observation is one unit's outcome in a survival study: the time it was
// observed for, and whether the observation ended in failure (true) or
// censoring (false — e.g. the study ended with the unit still alive).
type Observation struct {
	Time   float64
	Failed bool
}

// KaplanMeier computes the product-limit survival estimate from possibly
// right-censored observations. It returns parallel slices: event times (in
// increasing order, failures only) and the estimated S(t) immediately after
// each event time.
func KaplanMeier(obs []Observation) (times, survival []float64) {
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	atRisk := len(sorted)
	s := 1.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		deaths, leaving := 0, 0
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Failed {
				deaths++
			}
			leaving++
			i++
		}
		if deaths > 0 {
			s *= 1 - float64(deaths)/float64(atRisk)
			times = append(times, t)
			survival = append(survival, s)
		}
		atRisk -= leaving
	}
	return times, survival
}

// SurvivalAt evaluates a Kaplan-Meier step function (as returned by
// KaplanMeier) at time t.
func SurvivalAt(times, survival []float64, t float64) float64 {
	s := 1.0
	for i, et := range times {
		if et > t {
			break
		}
		s = survival[i]
	}
	return s
}
