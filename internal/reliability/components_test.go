package reliability

import (
	"math"
	"testing"

	"centuryscale/internal/rng"
)

func TestComponentNames(t *testing.T) {
	for c := Battery; c <= EnergyHarvester; c++ {
		if c.String() == "" || c.String()[0] == 'c' && c != CeramicCap && c != Connector {
			// Every class must have a registered name, not the fallback.
			if _, ok := componentNames[c]; !ok {
				t.Fatalf("component %d has no name", int(c))
			}
		}
	}
	if got := ComponentClass(999).String(); got != "component(999)" {
		t.Fatalf("unknown class String() = %q", got)
	}
}

func TestComponentLifetimesAreSane(t *testing.T) {
	// Battery mean life must land in the paper's 10-15 year band.
	bm := Battery.Lifetime().Mean()
	if bm < 10 || bm > 15 {
		t.Fatalf("battery mean life %v years, want within 10-15", bm)
	}
	// Structural components must far outlive the battery.
	for _, c := range []ComponentClass{PCBSubstrate, MCU, CeramicCap, RadioIC} {
		if m := c.Lifetime().Mean(); m < 2*bm {
			t.Fatalf("%v mean life %v should be >> battery %v", c, m, bm)
		}
	}
}

func TestBatteryBOMMeanLife(t *testing.T) {
	// The battery-device series system should fail with mean life in or
	// below the conventional-wisdom band (series systems die earlier than
	// their weakest component's mean).
	m := MTTF(BatteryDeviceBOM().System(), 2000)
	if m < 5 || m > 15 {
		t.Fatalf("battery device MTTF = %v years, want 5-15", m)
	}
}

func TestHarvestingOutlivesBattery(t *testing.T) {
	batt := MTTF(BatteryDeviceBOM().System(), 2000)
	harv := MTTF(HarvestingDeviceBOM().System(), 2000)
	if harv <= batt*1.5 {
		t.Fatalf("harvesting MTTF %v should exceed battery MTTF %v by >1.5x", harv, batt)
	}
}

func TestHarvestingSurvivalAtFifty(t *testing.T) {
	// The paper's 50-year experiment premise: a meaningful fraction of
	// harvesting devices reach multi-decade life while battery devices
	// are essentially extinct by year 30.
	batt := BatteryDeviceBOM().System()
	harv := HarvestingDeviceBOM().System()
	if s := batt.Survival(30); s > 0.02 {
		t.Fatalf("battery S(30) = %v, want near zero", s)
	}
	if s := harv.Survival(30); s < 0.2 {
		t.Fatalf("harvesting S(30) = %v, want a substantial fraction alive", s)
	}
	if harv.Survival(50) <= batt.Survival(50) {
		t.Fatal("harvesting devices must dominate battery devices at 50 years")
	}
}

func TestSampleLifetimeCauses(t *testing.T) {
	src := rng.New(5)
	bom := BatteryDeviceBOM()
	causes := map[string]int{}
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		y, cause := bom.SampleLifetime(src)
		if y <= 0 || math.IsInf(y, 1) {
			t.Fatalf("bad lifetime %v", y)
		}
		causes[cause]++
		sum += y
	}
	// The battery must be the dominant cause of death.
	if causes["battery"] < n/3 {
		t.Fatalf("battery caused only %d/%d failures: %v", causes["battery"], n, causes)
	}
	mean := sum / float64(n)
	analytic := MTTF(bom.System(), 2000)
	if math.Abs(mean-analytic)/analytic > 0.05 {
		t.Fatalf("sampled mean %v vs analytic MTTF %v", mean, analytic)
	}
}

func TestHarvestingBOMHasNoBattery(t *testing.T) {
	for _, c := range HarvestingDeviceBOM().Components {
		if c == Battery || c == ElectrolyticCap {
			t.Fatalf("harvesting BOM must not include %v", c)
		}
	}
}

func TestGatewayBOM(t *testing.T) {
	m := MTTF(GatewayBOM().System(), 2000)
	// Gateways are serviceable infrastructure: shorter-lived than
	// harvesting devices (powered, exposed) but years-scale.
	if m < 3 || m > 40 {
		t.Fatalf("gateway MTTF = %v years", m)
	}
}

func TestSampleLifetimeDeterministic(t *testing.T) {
	a, _ := BatteryDeviceBOM().SampleLifetime(rng.New(7))
	b, _ := BatteryDeviceBOM().SampleLifetime(rng.New(7))
	if a != b {
		t.Fatalf("same seed gave different lifetimes: %v vs %v", a, b)
	}
}

func BenchmarkSampleLifetime(b *testing.B) {
	src := rng.New(1)
	bom := HarvestingDeviceBOM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = bom.SampleLifetime(src)
	}
}
