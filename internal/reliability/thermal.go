package reliability

import (
	"fmt"
	"math"

	"centuryscale/internal/rng"
)

// Thermal acceleration: component lifetimes in the catalog assume a
// temperate reference climate. Electronics age faster when hot — the
// Arrhenius relationship is the standard engineering model — and a
// sensor potted into south-facing asphalt lives in a very different
// thermal world than one inside a shaded bridge box. Century-scale
// planning has to site-derate its lifetime math.

// boltzmannEV is Boltzmann's constant in eV/K.
const boltzmannEV = 8.617e-5

// referenceCelsius is the catalog's assumed operating temperature.
const referenceCelsius = 25.0

// ArrheniusFactor returns the life-consumption acceleration at the given
// operating temperature relative to the 25 °C catalog reference, for an
// activation energy in eV (0.7 eV is a common electronics figure).
// Values above 1 mean faster aging (shorter life).
func ArrheniusFactor(operatingCelsius, activationEV float64) float64 {
	if activationEV <= 0 {
		panic(fmt.Sprintf("reliability: non-positive activation energy %v", activationEV))
	}
	tRef := referenceCelsius + 273.15
	tOp := operatingCelsius + 273.15
	if tOp <= 0 {
		panic(fmt.Sprintf("reliability: operating temperature %v°C below absolute zero", operatingCelsius))
	}
	return math.Exp(activationEV / boltzmannEV * (1/tRef - 1/tOp))
}

// Derated wraps a lifetime distribution with a thermal acceleration
// factor: time runs faster for the component by that factor, so the
// distribution contracts. Factor 1 is the identity; 2 halves all
// lifetimes.
type Derated struct {
	Base   Distribution
	Factor float64
}

// DeratedFor builds the wrapper from a site temperature and activation
// energy.
func DeratedFor(base Distribution, operatingCelsius, activationEV float64) Derated {
	return Derated{Base: base, Factor: ArrheniusFactor(operatingCelsius, activationEV)}
}

// Survival implements Distribution: S'(t) = S(factor·t).
func (d Derated) Survival(t float64) float64 { return d.Base.Survival(d.Factor * t) }

// Hazard implements Distribution: h'(t) = factor·h(factor·t).
func (d Derated) Hazard(t float64) float64 { return d.Factor * d.Base.Hazard(d.Factor*t) }

// Sample implements Distribution: draws shrink by the factor.
func (d Derated) Sample(src *rng.Source) float64 { return d.Base.Sample(src) / d.Factor }

// Mean implements Distribution.
func (d Derated) Mean() float64 { return d.Base.Mean() / d.Factor }
