package reliability

import (
	"fmt"
	"math"

	"centuryscale/internal/rng"
)

// ComponentClass identifies a class of electronic component with a
// characteristic lifetime distribution.
type ComponentClass int

// Component classes in rough order of how often they bound device life.
// Parameters are encoded from the sources the paper cites: batteries and
// electrolytic capacitors hold mean device life to 10-15 years (§1, citing
// IPC-6012E and Jang et al.), while PCB substrates, solder, and silicon
// reach multi-decade scales under benign conditions.
const (
	Battery ComponentClass = iota
	ElectrolyticCap
	CeramicCap
	PCBSubstrate
	SolderJoints
	MCU
	RadioIC
	Connector
	EnclosureSeal
	EnergyHarvester // transducer: PV cell, corrosion electrode, thermo pile
)

var componentNames = map[ComponentClass]string{
	Battery:         "battery",
	ElectrolyticCap: "electrolytic-capacitor",
	CeramicCap:      "ceramic-capacitor",
	PCBSubstrate:    "pcb-substrate",
	SolderJoints:    "solder-joints",
	MCU:             "mcu",
	RadioIC:         "radio-ic",
	Connector:       "connector",
	EnclosureSeal:   "enclosure-seal",
	EnergyHarvester: "energy-harvester",
}

// String implements fmt.Stringer.
func (c ComponentClass) String() string {
	if n, ok := componentNames[c]; ok {
		return n
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Lifetime returns the class's lifetime distribution. Wear-dominated
// components use Weibull shapes around 2-4 (failures cluster near the
// characteristic life); structural components use gentler shapes with long
// scales.
func (c ComponentClass) Lifetime() Distribution {
	switch c {
	case Battery:
		// Primary lithium cells: calendar life, mean ~12 years. This is
		// the component the paper's conventional-wisdom 10-15 year
		// device life hangs on.
		return WeibullFromMean(3.0, 12)
	case ElectrolyticCap:
		// Electrolyte dry-out, mean ~18 years at moderate temperature.
		return WeibullFromMean(3.5, 18)
	case CeramicCap:
		return WeibullFromMean(2.0, 120)
	case PCBSubstrate:
		// IPC-6012E-class rigid boards in sealed outdoor enclosures.
		return WeibullFromMean(2.5, 80)
	case SolderJoints:
		// Thermal-cycling fatigue; outdoor diurnal cycling.
		return WeibullFromMean(2.5, 60)
	case MCU:
		// Silicon electromigration/TDDB at low duty cycle is very slow.
		return WeibullFromMean(2.0, 150)
	case RadioIC:
		return WeibullFromMean(2.0, 120)
	case Connector:
		// Corrosion of contacts; only present on externally-wired units.
		return WeibullFromMean(2.0, 40)
	case EnclosureSeal:
		// UV and ozone degradation of gaskets admits moisture.
		return WeibullFromMean(2.5, 45)
	case EnergyHarvester:
		// PV encapsulant browning / electrode passivation; harvesters
		// degrade gracefully but eventually fail outright.
		return WeibullFromMean(2.0, 70)
	default:
		panic(fmt.Sprintf("reliability: unknown component class %d", int(c)))
	}
}

// BOM is a device bill of materials: the component classes whose first
// failure kills the device (a series system).
type BOM struct {
	Name       string
	Components []ComponentClass
	// ExternalMTBF, if positive, adds a constant-hazard external failure
	// mode (vandalism, vehicle strike, water ingress through damage) with
	// the given mean years between failures.
	ExternalMTBF float64
}

// BatteryDeviceBOM is a conventional battery-powered wireless sensor: the
// design point today's 500-5000 node deployments use (§2).
func BatteryDeviceBOM() BOM {
	return BOM{
		Name: "battery-sensor",
		Components: []ComponentClass{
			Battery, ElectrolyticCap, CeramicCap, PCBSubstrate,
			SolderJoints, MCU, RadioIC, EnclosureSeal,
		},
		ExternalMTBF: 200,
	}
}

// HarvestingDeviceBOM is the paper's energy-harvesting, transmit-only
// design: no battery, no electrolytics (the low-power design point uses
// ceramics and supercaps), conformally coated board, no connectors.
func HarvestingDeviceBOM() BOM {
	return BOM{
		Name: "harvesting-sensor",
		Components: []ComponentClass{
			EnergyHarvester, CeramicCap, PCBSubstrate,
			SolderJoints, MCU, RadioIC, EnclosureSeal,
		},
		ExternalMTBF: 200,
	}
}

// GatewayBOM is a Raspberry-Pi-class mains-powered gateway (§4.4): more
// capable but with a power supply (electrolytics) and storage that wear.
func GatewayBOM() BOM {
	return BOM{
		Name: "gateway",
		Components: []ComponentClass{
			ElectrolyticCap, CeramicCap, PCBSubstrate,
			SolderJoints, MCU, RadioIC, Connector,
		},
		ExternalMTBF: 60, // powered, networked, physically accessible
	}
}

// System returns the series-system lifetime distribution for the BOM.
func (b BOM) System() Distribution {
	modes := make([]Distribution, 0, len(b.Components)+1)
	for _, c := range b.Components {
		modes = append(modes, c.Lifetime())
	}
	if b.ExternalMTBF > 0 {
		modes = append(modes, Exponential{MeanLife: b.ExternalMTBF})
	}
	return CompetingRisks{Modes: modes}
}

// SampleLifetime draws a device lifetime in years and reports the name of
// the failure cause: a component class name, or "external" when the
// constant-hazard external mode fired first.
func (b BOM) SampleLifetime(src *rng.Source) (years float64, cause string) {
	years = math.Inf(1)
	cause = "none"
	for _, c := range b.Components {
		if v := c.Lifetime().Sample(src); v < years {
			years, cause = v, c.String()
		}
	}
	if b.ExternalMTBF > 0 {
		if v := src.Exponential(b.ExternalMTBF); v < years {
			years, cause = v, "external"
		}
	}
	return years, cause
}
