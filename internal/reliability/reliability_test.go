package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"centuryscale/internal/rng"
)

func TestWeibullSurvivalBasics(t *testing.T) {
	w := NewWeibull(2, 10)
	if s := w.Survival(0); s != 1 {
		t.Fatalf("S(0) = %v, want 1", s)
	}
	if s := w.Survival(-5); s != 1 {
		t.Fatalf("S(-5) = %v, want 1", s)
	}
	// At t == scale, survival is exp(-1) regardless of shape.
	if s := w.Survival(10); math.Abs(s-math.Exp(-1)) > 1e-12 {
		t.Fatalf("S(scale) = %v, want e^-1", s)
	}
}

func TestWeibullSurvivalMonotone(t *testing.T) {
	w := NewWeibull(3, 12)
	if err := quick.Check(func(a, b uint16) bool {
		t1, t2 := float64(a)/100, float64(b)/100
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return w.Survival(t1) >= w.Survival(t2)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullHazardRegimes(t *testing.T) {
	wearOut := NewWeibull(3, 10)
	if wearOut.Hazard(1) >= wearOut.Hazard(9) {
		t.Fatal("wear-out hazard must increase with age")
	}
	infant := NewWeibull(0.5, 10)
	if infant.Hazard(0.1) <= infant.Hazard(9) {
		t.Fatal("infant-mortality hazard must decrease with age")
	}
	random := Exponential{MeanLife: 10}
	if random.Hazard(1) != random.Hazard(99) {
		t.Fatal("exponential hazard must be constant")
	}
}

func TestWeibullFromMean(t *testing.T) {
	for _, mean := range []float64{5, 12, 15, 50} {
		w := WeibullFromMean(3, mean)
		if got := w.Mean(); math.Abs(got-mean)/mean > 1e-9 {
			t.Fatalf("WeibullFromMean(3, %v).Mean() = %v", mean, got)
		}
	}
}

func TestWeibullInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWeibull(0, 1) did not panic")
		}
	}()
	NewWeibull(0, 1)
}

func TestExponentialMemoryless(t *testing.T) {
	e := Exponential{MeanLife: 10}
	// S(a+b) == S(a)*S(b)
	if got, want := e.Survival(7), e.Survival(3)*e.Survival(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("memorylessness violated: %v != %v", got, want)
	}
}

func TestCompetingRisksSurvivalProduct(t *testing.T) {
	a := NewWeibull(2, 10)
	b := Exponential{MeanLife: 30}
	c := CompetingRisks{Modes: []Distribution{a, b}}
	for _, tt := range []float64{0, 1, 5, 20, 60} {
		want := a.Survival(tt) * b.Survival(tt)
		if got := c.Survival(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("S(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestCompetingRisksHazardSum(t *testing.T) {
	a := NewWeibull(2, 10)
	b := Exponential{MeanLife: 30}
	c := CompetingRisks{Modes: []Distribution{a, b}}
	if got, want := c.Hazard(5), a.Hazard(5)+b.Hazard(5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hazard = %v, want %v", got, want)
	}
}

func TestCompetingRisksSampleIsMin(t *testing.T) {
	// Sampled competing-risk lifetimes should match the analytic mean.
	src := rng.New(1)
	c := CompetingRisks{Modes: []Distribution{
		Exponential{MeanLife: 10}, Exponential{MeanLife: 10},
	}}
	// Min of two exp(10) is exp(5).
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += c.Sample(src)
	}
	if got := sum / float64(n); math.Abs(got-5)/5 > 0.03 {
		t.Fatalf("competing exp mean = %v, want ~5", got)
	}
}

func TestBathtubShape(t *testing.T) {
	b := Bathtub(2.0, 100, NewWeibull(4, 20))
	early := b.Hazard(0.05)
	mid := b.Hazard(5)
	late := b.Hazard(25)
	if early <= mid {
		t.Fatalf("bathtub early hazard %v should exceed mid-life %v", early, mid)
	}
	if late <= mid {
		t.Fatalf("bathtub late hazard %v should exceed mid-life %v", late, mid)
	}
}

func TestMTTFMatchesAnalytic(t *testing.T) {
	// Exponential MTTF is the mean.
	if got := MTTF(Exponential{MeanLife: 12}, 4000); math.Abs(got-12)/12 > 0.01 {
		t.Fatalf("exp MTTF = %v, want 12", got)
	}
	// Weibull MTTF is scale*Gamma(1+1/k).
	w := NewWeibull(3, 15)
	if got := MTTF(w, 4000); math.Abs(got-w.Mean())/w.Mean() > 0.01 {
		t.Fatalf("weibull MTTF = %v, want %v", got, w.Mean())
	}
}

func TestQuantile(t *testing.T) {
	w := NewWeibull(2, 10)
	// Median: S(t) = 0.5 => t = scale * (ln 2)^(1/k)
	want := 10 * math.Pow(math.Ln2, 0.5)
	if got := Quantile(w, 0.5); math.Abs(got-want) > 1e-6 {
		t.Fatalf("median = %v, want %v", got, want)
	}
	// Quantile must be monotone in p.
	if Quantile(w, 0.1) >= Quantile(w, 0.9) {
		t.Fatal("quantile not monotone")
	}
}

func TestQuantileInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(d, 0) did not panic")
		}
	}()
	Quantile(Exponential{MeanLife: 1}, 0)
}

func TestKaplanMeierNoCensoring(t *testing.T) {
	// With no censoring, KM is the empirical survival function.
	obs := []Observation{
		{1, true}, {2, true}, {3, true}, {4, true},
	}
	times, surv := KaplanMeier(obs)
	if len(times) != 4 {
		t.Fatalf("got %d event times, want 4", len(times))
	}
	want := []float64{0.75, 0.5, 0.25, 0}
	for i := range surv {
		if math.Abs(surv[i]-want[i]) > 1e-12 {
			t.Fatalf("S after event %d = %v, want %v", i, surv[i], want[i])
		}
	}
}

func TestKaplanMeierCensoring(t *testing.T) {
	// A censored unit leaves the risk set without a survival drop.
	obs := []Observation{
		{1, true},  // 1 of 4 fails: S = 3/4
		{2, false}, // censored: risk set 2
		{3, true},  // 1 of 2 fails: S = 3/4 * 1/2 = 3/8
		{4, false},
	}
	times, surv := KaplanMeier(obs)
	if len(times) != 2 {
		t.Fatalf("got %d event times, want 2", len(times))
	}
	if math.Abs(surv[0]-0.75) > 1e-12 || math.Abs(surv[1]-0.375) > 1e-12 {
		t.Fatalf("KM survival = %v, want [0.75 0.375]", surv)
	}
}

func TestKaplanMeierTies(t *testing.T) {
	obs := []Observation{{5, true}, {5, true}, {5, false}, {10, true}}
	times, surv := KaplanMeier(obs)
	if len(times) != 2 {
		t.Fatalf("event times = %v", times)
	}
	// At t=5: 2 deaths among 4 at risk => S = 0.5. At t=10: 1 of 1 => 0.
	if math.Abs(surv[0]-0.5) > 1e-12 || surv[1] != 0 {
		t.Fatalf("KM with ties = %v", surv)
	}
}

func TestSurvivalAt(t *testing.T) {
	times := []float64{1, 3}
	surv := []float64{0.8, 0.4}
	if s := SurvivalAt(times, surv, 0.5); s != 1 {
		t.Fatalf("S(0.5) = %v, want 1", s)
	}
	if s := SurvivalAt(times, surv, 2); s != 0.8 {
		t.Fatalf("S(2) = %v, want 0.8", s)
	}
	if s := SurvivalAt(times, surv, 10); s != 0.4 {
		t.Fatalf("S(10) = %v, want 0.4", s)
	}
}

func TestKaplanMeierRecoversWeibull(t *testing.T) {
	// Sampling a Weibull and estimating with KM should recover the
	// parametric survival curve.
	src := rng.New(99)
	w := NewWeibull(3, 12)
	obs := make([]Observation, 5000)
	for i := range obs {
		obs[i] = Observation{Time: w.Sample(src), Failed: true}
	}
	times, surv := KaplanMeier(obs)
	for _, probe := range []float64{5, 10, 15} {
		got := SurvivalAt(times, surv, probe)
		want := w.Survival(probe)
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("KM S(%v) = %v, parametric %v", probe, got, want)
		}
	}
}

func TestArrheniusFactor(t *testing.T) {
	// At the reference temperature the factor is exactly 1.
	if f := ArrheniusFactor(25, 0.7); math.Abs(f-1) > 1e-12 {
		t.Fatalf("reference factor = %v", f)
	}
	// The classic rule of thumb: ~2x life consumption per +10°C at
	// typical activation energies.
	f35 := ArrheniusFactor(35, 0.7)
	if f35 < 1.8 || f35 > 2.8 {
		t.Fatalf("+10C factor = %v, want ~2", f35)
	}
	// Colder than reference slows aging.
	if f := ArrheniusFactor(5, 0.7); f >= 1 {
		t.Fatalf("cold factor = %v, want <1", f)
	}
	// Monotone in temperature.
	if ArrheniusFactor(60, 0.7) <= ArrheniusFactor(40, 0.7) {
		t.Fatal("factor not monotone in temperature")
	}
}

func TestArrheniusPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-ev":  func() { ArrheniusFactor(25, 0) },
		"below-0K": func() { ArrheniusFactor(-300, 0.7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeratedContractsLifetimes(t *testing.T) {
	base := NewWeibull(3, 12)
	hot := DeratedFor(base, 55, 0.7) // asphalt-potted: much hotter
	if hot.Factor <= 1 {
		t.Fatalf("hot-site factor = %v", hot.Factor)
	}
	if hot.Mean() >= base.Mean() {
		t.Fatalf("hot mean %v not below base %v", hot.Mean(), base.Mean())
	}
	// Survival contracts consistently: S_hot(t) == S_base(factor*t).
	for _, tt := range []float64{1, 5, 10, 20} {
		if got, want := hot.Survival(tt), base.Survival(hot.Factor*tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("S(%v) = %v, want %v", tt, got, want)
		}
	}
	// Sampled mean matches the analytic contraction.
	src := rng.New(3)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += hot.Sample(src)
	}
	got := sum / float64(n)
	if math.Abs(got-hot.Mean())/hot.Mean() > 0.03 {
		t.Fatalf("sampled mean %v vs analytic %v", got, hot.Mean())
	}
	// Hazard scaling identity.
	if got, want := hot.Hazard(5), hot.Factor*base.Hazard(hot.Factor*5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hazard = %v, want %v", got, want)
	}
}
