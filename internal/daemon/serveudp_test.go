package daemon

// ServeUDP edge cases: malformed-datagram accounting, the two clean
// return paths (context cancel vs socket closure) versus a genuine
// socket error, and oversized datagrams that truncate at the read
// buffer.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"centuryscale/internal/gateway"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func startGatewayUDP(t *testing.T, up gateway.Uplink) (*gateway.Gateway, net.PacketConn, context.CancelFunc, chan error) {
	t.Helper()
	gw := gateway.New(gateway.Config{ID: "gw-edge"}, up)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeUDP(ctx, conn, gw) }()
	return gw, conn, cancel, done
}

func TestServeUDPCountsMalformedDatagrams(t *testing.T) {
	gw, conn, cancel, done := startGatewayUDP(t, gateway.UplinkFunc(func([]byte) error { return nil }))
	defer cancel()

	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	garbage := [][]byte{
		{},                          // empty datagram
		{0x01},                      // single byte
		[]byte("definitely not a frame"), // junk text
		make([]byte, 100),           // zeroed block
	}
	for _, g := range garbage {
		if _, err := tx.WriteTo(g, conn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	// One valid frame proves the loop survived the garbage.
	id := lpwan.EUIFromUint64(0xE1)
	node := &SensorNode{ID: id, Key: telemetry.DeriveKey(master, id), Sensor: telemetry.SensorTemperature}
	if err := node.SendOnce(tx, conn.LocalAddr(), time.Now()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := gw.Stats()
		if s.DropMalformed == uint64(len(garbage)) && s.Forwarded == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s := gw.Stats(); s.DropMalformed != uint64(len(garbage)) || s.Forwarded != 1 {
		t.Fatalf("stats = %+v, want %d malformed and 1 forwarded", s, len(garbage))
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
}

func TestServeUDPOversizedDatagramDropsAsMalformed(t *testing.T) {
	gw, conn, cancel, done := startGatewayUDP(t, gateway.UplinkFunc(func([]byte) error { return nil }))
	defer cancel()

	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	// 4 KiB datagram: larger than the 2 KiB read buffer, so the kernel
	// truncates it and the remainder never parses as a frame.
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := tx.WriteTo(big, conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for gw.Stats().DropMalformed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	s := gw.Stats()
	if s.DropMalformed != 1 || s.Forwarded != 0 {
		t.Fatalf("stats = %+v, want the oversized datagram counted malformed", s)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
}

func TestServeUDPContextCancelReturnsNil(t *testing.T) {
	_, _, cancel, done := startGatewayUDP(t, gateway.UplinkFunc(func([]byte) error { return nil }))
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeUDP after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not return after context cancel")
	}
}

// faultyPacketConn returns a non-closure error from ReadFrom: the "NIC
// caught fire" path, distinct from a clean shutdown.
type faultyPacketConn struct {
	net.PacketConn
	err error
}

func (f *faultyPacketConn) ReadFrom([]byte) (int, net.Addr, error) {
	return 0, nil, f.err
}

func TestServeUDPSocketErrorSurfaces(t *testing.T) {
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	bang := errors.New("input/output error")
	conn := &faultyPacketConn{PacketConn: inner, err: bang}
	gw := gateway.New(gateway.Config{ID: "gw"}, gateway.UplinkFunc(func([]byte) error { return nil }))

	got := ServeUDP(context.Background(), conn, gw)
	if got == nil || !errors.Is(got, bang) {
		t.Fatalf("ServeUDP = %v, want wrapped %v", got, bang)
	}
}
