package daemon

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
)

// BenchmarkUplinkResilience measures the happy-path cost the resilience
// wrapper adds per send. "http/*" is the realistic comparison — a real
// HTTPUplink POSTing to a loopback endpoint, bare vs wrapped (budget:
// <5% overhead) — and "noop/*" isolates the wrapper's own bookkeeping
// (two mutex hops and an atomic) with the network removed.
func BenchmarkUplinkResilience(b *testing.B) {
	id := lpwan.EUIFromUint64(0xB0B)
	key := telemetry.DeriveKey(master, id)
	cfg := resilience.Config{
		MaxAttempts:      3,
		BackoffBase:      time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerOpenFor:   time.Second,
		QueueDepth:       1024,
		Seed:             1,
	}

	newEndpoint := func(b *testing.B) *httptest.Server {
		b.Helper()
		srv := httptest.NewServer(cloud.NewServer(cloud.NewStore(cloud.StaticKeys(master)), time.Now()))
		b.Cleanup(srv.Close)
		return srv
	}
	// Distinct sequence numbers per iteration so the endpoint's replay
	// guard accepts every packet.
	payloads := func(b *testing.B) [][]byte {
		b.Helper()
		out := make([][]byte, b.N)
		for i := range out {
			wire, err := telemetry.Packet{Device: id, Seq: uint32(i + 1), Sensor: telemetry.SensorTemperature, Value: 1}.Seal(key)
			if err != nil {
				b.Fatal(err)
			}
			out[i] = wire
		}
		return out
	}

	b.Run("http/bare", func(b *testing.B) {
		u := &HTTPUplink{URL: newEndpoint(b).URL}
		ps := payloads(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := u.Send(ps[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http/resilient", func(b *testing.B) {
		up := resilience.NewUplink(&HTTPUplink{URL: newEndpoint(b).URL}, cfg)
		defer up.Close(context.Background())
		ps := payloads(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := up.Send(ps[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := up.Stats(); st.Buffered != 0 || st.Retries != 0 {
			b.Fatalf("happy path buffered or retried: %+v", st)
		}
	})

	noop := resilience.SenderFunc(func([]byte) error { return nil })
	b.Run("noop/bare", func(b *testing.B) {
		p := []byte{1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = noop.Send(p)
		}
	})
	b.Run("noop/resilient", func(b *testing.B) {
		up := resilience.NewUplink(noop, cfg)
		defer up.Close(context.Background())
		p := []byte{1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = up.Send(p)
		}
	})
}
