package daemon

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/cloud"
	"centuryscale/internal/gateway"
	"centuryscale/internal/helium"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
)

// TestResilientDatapathZeroLossAcrossOutage is the acceptance test for
// the resilient datapath: the full loopback pipeline (sensornode UDP ->
// gatewayd -> endpointd) with a seeded chaos schedule that takes the
// endpoint down mid-stream — a hard outage window plus random
// connection drops — while the device keeps transmitting. Every packet
// the gateway accepts must land in the store exactly once: buffered
// during the outage, drained in order on recovery, no duplicates beyond
// the endpoint's existing dedup. Time is compressed (milliseconds where
// production uses seconds); with production backoff settings the same
// schedule spans a multi-minute outage.
func TestResilientDatapathZeroLossAcrossOutage(t *testing.T) {
	const packets = 40

	store := cloud.NewStore(cloud.StaticKeys(master))
	endpoint := httptest.NewServer(cloud.NewServer(store, time.Now()))
	defer endpoint.Close()

	chaosCfg := chaos.Config{
		Seed:        0xC0FFEE,
		OutageAfter: 8,  // outage begins mid-stream, after 8 requests
		OutageLen:   30, // and swallows the next 30
		DropProb:    0.05,
	}
	rt := chaos.NewRoundTripper(nil, chaosCfg)
	inner := &HTTPUplink{URL: endpoint.URL, Client: &http.Client{Transport: rt, Timeout: 2 * time.Second}}
	up := resilience.NewUplink(inner, resilience.Config{
		MaxAttempts:      2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerOpenFor:   20 * time.Millisecond,
		QueueDepth:       256,
		DrainInterval:    5 * time.Millisecond,
		Seed:             7,
	})
	defer up.Close(context.Background())

	gw := gateway.New(gateway.Config{ID: "gw-chaos"}, up)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ServeUDP(ctx, conn, gw) }()

	id := lpwan.EUIFromUint64(0xCAFE)
	node := &SensorNode{
		ID:     id,
		Key:    telemetry.DeriveKey(master, id),
		Sensor: telemetry.SensorStrain,
		Read:   func() float32 { return 3.14 },
	}
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	start := time.Now()
	for i := 0; i < packets; i++ {
		if err := node.SendOnce(tx, conn.LocalAddr(), start.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		// A short cadence keeps transmissions flowing through the whole
		// outage window rather than arriving in one burst.
		time.Sleep(2 * time.Millisecond)
	}

	// Zero loss: every accepted packet is eventually stored.
	deadline := time.Now().Add(30 * time.Second)
	for store.Count() < packets && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if store.Count() != packets {
		t.Fatalf("stored %d of %d (uplink %+v, chaos %+v)",
			store.Count(), packets, up.Stats(), rt.Injector().Stats())
	}

	// Exactly once: all sequence numbers present, none twice.
	hist := store.History(id)
	if len(hist) != packets {
		t.Fatalf("history length = %d", len(hist))
	}
	seen := make(map[uint32]int)
	for _, r := range hist {
		seen[r.Packet.Seq]++
	}
	for seq := uint32(1); seq <= packets; seq++ {
		if seen[seq] != 1 {
			t.Fatalf("seq %d stored %d times", seq, seen[seq])
		}
	}
	if st := store.Stats(); st.Duplicates != 0 || st.Accepted != packets {
		t.Fatalf("endpoint stats = %+v", st)
	}

	// The outage really happened and really exercised the machinery.
	ust := up.Stats()
	if ust.Queue.Enqueued == 0 {
		t.Fatalf("outage never forced buffering: %+v", ust)
	}
	if ust.Breaker.Trips == 0 {
		t.Fatalf("breaker never tripped: %+v", ust)
	}
	if ust.Queue.DroppedOldest != 0 {
		t.Fatalf("store-and-forward overflowed: %+v", ust)
	}
	cst := rt.Injector().Stats()
	if cst.Outages != uint64(chaosCfg.OutageLen) {
		t.Fatalf("outage window partially consumed: %+v", cst)
	}

	// Determinism: the schedule this run actually experienced is exactly
	// what the seed predicts, bit for bit — rerunning with the same seed
	// replays the same faults at the same request indices.
	history := rt.Injector().History()
	if !slices.Equal(history, chaos.Plan(chaosCfg, len(history))) {
		t.Fatal("injected fault schedule diverges from the seeded plan")
	}

	cancel()
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
	flushCtx, flushCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer flushCancel()
	if err := up.Close(flushCtx); err != nil {
		t.Fatalf("uplink close: %v", err)
	}
}

// TestResilientHotspotPathBuffersRouterOutage covers the third-party
// path: a RouterUplink wrapped in resilience survives a router outage
// without losing frames.
func TestResilientHotspotPathBuffersRouterOutage(t *testing.T) {
	const frames = 12
	fleetMaster := []byte("fleet-master-secret")
	store := cloud.NewStore(cloud.StaticKeys(fleetMaster))
	wallet := helium.NewWallet(1000)
	router, err := helium.NewRouter(abpMaster, wallet)
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(RouterHandler(router, func(p []byte) error {
		return store.Ingest(time.Hour, p)
	}))
	defer routerSrv.Close()

	chaosCfg := chaos.Config{Seed: 99, OutageAfter: 3, OutageLen: 10}
	rt := chaos.NewRoundTripper(nil, chaosCfg)
	up := resilience.NewUplink(
		&RouterUplink{URL: routerSrv.URL, Client: &http.Client{Transport: rt, Timeout: 2 * time.Second}},
		resilience.Config{
			MaxAttempts:      2,
			BackoffBase:      time.Millisecond,
			BackoffMax:       5 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerOpenFor:   10 * time.Millisecond,
			QueueDepth:       64,
			DrainInterval:    5 * time.Millisecond,
			Seed:             3,
		})
	defer up.Close(context.Background())

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hotspotDone := make(chan error, 1)
	go func() { hotspotDone <- ServeHotspotUplink(ctx, conn, up) }()

	id := lpwan.EUIFromUint64(0x88)
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	for seq := uint32(1); seq <= frames; seq++ {
		inner, err := telemetry.Packet{
			Device: id, Seq: seq, Sensor: telemetry.SensorVibration, Value: float32(seq),
		}.Seal(telemetry.DeriveKey(fleetMaster, id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.WriteTo(lorawanFrame(t, 0x88, uint16(seq), inner), conn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(30 * time.Second)
	for store.Count() < frames && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if store.Count() != frames {
		t.Fatalf("stored %d of %d (uplink %+v)", store.Count(), frames, up.Stats())
	}
	if ust := up.Stats(); ust.Queue.Enqueued == 0 {
		t.Fatalf("router outage never forced buffering: %+v", ust)
	}

	cancel()
	if err := <-hotspotDone; err != nil {
		t.Fatalf("hotspot: %v", err)
	}
}
