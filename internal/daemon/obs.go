package daemon

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"time"

	"centuryscale/internal/obs"
)

// ObsFlags carries the shared observability knob of one daemon. The
// debug surface is a separate listener from the service port on purpose:
// an operator firewalls it to localhost/ops networks, and a melting
// service port never takes the diagnostics down with it.
type ObsFlags struct {
	DebugAddr string
}

// RegisterObsFlags declares the standard -debug-addr flag on the process
// flag set and returns its destination.
func RegisterObsFlags() *ObsFlags {
	f := &ObsFlags{}
	flag.StringVar(&f.DebugAddr, "debug-addr", "",
		"debug HTTP listen address for /metrics, /healthz, and /debug/pprof (empty = disabled)")
	return f
}

// Enabled reports whether a debug server was requested.
func (f *ObsFlags) Enabled() bool { return f.DebugAddr != "" }

// Serve starts the debug server (obs.DebugMux over reg and health) on
// its own listener, shutting it down when ctx is cancelled. It returns
// immediately; with no -debug-addr it does nothing. Startup failures
// (port taken, bad address) are reported through logf rather than
// killing the daemon: the datapath must not die for want of diagnostics.
func (f *ObsFlags) Serve(ctx context.Context, logf func(string, ...any), reg *obs.Registry, health *obs.Health) {
	if !f.Enabled() {
		return
	}
	srv := &http.Server{Addr: f.DebugAddr, Handler: obs.DebugMux(reg, health)}
	//lint:lifecycle debug-server shutdown watcher is deliberately unjoined: Serve's contract is fire-and-forget so the datapath never waits on diagnostics, and the 2s Shutdown timeout bounds its tail
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	//lint:lifecycle debug listener is deliberately unsupervised: it stops via the watcher above, startup failure only logs, and the process — not a join — bounds its life; the datapath must not die or wait for want of diagnostics
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logf("debug server on %s: %v", f.DebugAddr, err)
		}
	}()
}
