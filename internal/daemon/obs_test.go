package daemon

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/telemetry"
)

var obsMaster = []byte("obs-test-master")

func obsSealed(t *testing.T, dev uint64, seq uint32) []byte {
	t.Helper()
	id := lpwan.EUIFromUint64(dev)
	wire, err := telemetry.Packet{Device: id, Seq: seq, Value: 1}.Seal(telemetry.DeriveKey(obsMaster, id))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// stepClock returns a deterministic obs.Clock: every reading advances it
// by 1ms, so a fixed observation sequence yields fixed latencies.
func stepClock() obs.Clock {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n) * time.Millisecond
	}
}

// driveSeededWorkload ingests a seed-determined mix of accepted,
// duplicate, malformed, and bad-signature packets.
func driveSeededWorkload(t *testing.T, store *cloud.Store, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seqs := make(map[uint64]uint32)
	for i := 0; i < 500; i++ {
		dev := uint64(rng.Intn(8) + 1)
		at := time.Duration(i) * time.Minute
		switch rng.Intn(4) {
		case 0, 1: // accepted
			seqs[dev]++
			if err := store.Ingest(at, obsSealed(t, dev, seqs[dev])); err != nil {
				t.Fatal(err)
			}
		case 2: // duplicate (replay of the device's last accepted seq)
			if seqs[dev] == 0 {
				seqs[dev]++
				_ = store.Ingest(at, obsSealed(t, dev, seqs[dev]))
			}
			_ = store.Ingest(at, obsSealed(t, dev, seqs[dev]))
		case 3: // malformed or tampered
			if rng.Intn(2) == 0 {
				_ = store.Ingest(at, []byte("garbage"))
			} else {
				wire := obsSealed(t, dev, seqs[dev]+1000)
				wire[13] ^= 0xff
				_ = store.Ingest(at, wire)
			}
		}
	}
}

// metricValue extracts one un-labelled sample value from an exposition.
func metricValue(t *testing.T, exp []byte, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(string(exp), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: parsing %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exp)
	return 0
}

// TestDebugMetricsMatchStoreStats boots the daemon debug surface over a
// live store, drives ingest, and checks the scraped counters agree with
// Store.Stats() exactly.
func TestDebugMetricsMatchStoreStats(t *testing.T) {
	store := cloud.NewStore(cloud.StaticKeys(obsMaster))
	reg := obs.NewRegistry()
	store.RegisterMetrics(reg, stepClock())
	store.DB().RegisterMetrics(reg)

	health := obs.NewHealth()
	health.Register("ingest", func() error { return nil })
	srv := httptest.NewServer(obs.DebugMux(reg, health))
	defer srv.Close()

	driveSeededWorkload(t, store, 1)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}

	st := store.Stats()
	for name, want := range map[string]uint64{
		"cloud_ingest_accepted_total":      st.Accepted,
		"cloud_ingest_duplicates_total":    st.Duplicates,
		"cloud_ingest_malformed_total":     st.Malformed,
		"cloud_ingest_bad_signature_total": st.BadSignature,
		"tsdb_appended_total":              st.Accepted, // every accept is one append
		"cloud_ingest_seconds_count":       st.Accepted + st.Duplicates + st.Malformed + st.BadSignature,
	} {
		if got := metricValue(t, exp, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if st.Accepted == 0 || st.Duplicates == 0 || st.Malformed == 0 || st.BadSignature == 0 {
		t.Fatalf("workload did not exercise every disposition: %+v", st)
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hr.StatusCode)
	}
}

// TestExpositionByteIdenticalAcrossRuns is the determinism acceptance
// check: two daemons running the identical seed-1 workload serve
// byte-identical /metrics expositions — the seed-identifies-the-run
// contract extended to the observability layer.
func TestExpositionByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		store := cloud.NewStore(cloud.StaticKeys(obsMaster))
		reg := obs.NewRegistry()
		store.RegisterMetrics(reg, stepClock())
		store.DB().RegisterMetrics(reg)
		driveSeededWorkload(t, store, 1)
		rec := httptest.NewRecorder()
		obs.MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.Bytes()
	}
	e1, e2 := run(), run()
	if !bytes.Equal(e1, e2) {
		t.Fatalf("two seed-1 runs rendered different /metrics bytes:\n%s\n---\n%s", e1, e2)
	}
	if len(e1) == 0 {
		t.Fatal("empty exposition")
	}
}
