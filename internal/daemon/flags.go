package daemon

import (
	"flag"
	"net/http"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/resilience"
)

// The real daemons share one resilience/chaos flag vocabulary so an
// operator tunes gatewayd, hotspotd, and routerd identically, and a
// drill rehearsed against one daemon replays against another.

// ResilienceFlags carries the retry/breaker/queue knobs of one daemon.
type ResilienceFlags struct {
	Queue       int
	Retries     int
	RetryBase   time.Duration
	RetryMax    time.Duration
	BreakerFail int
	BreakerOpen time.Duration
	Seed        uint64
	Batch       int
	BatchAge    time.Duration
}

// RegisterResilienceFlags declares the standard resilience flags on the
// process flag set and returns their destination.
func RegisterResilienceFlags() *ResilienceFlags {
	f := &ResilienceFlags{}
	flag.IntVar(&f.Queue, "queue", 4096, "store-and-forward queue depth (drop-oldest on overflow)")
	flag.IntVar(&f.Retries, "retries", 3, "synchronous send attempts before buffering")
	flag.DurationVar(&f.RetryBase, "retry-base", 200*time.Millisecond, "initial retry backoff (full jitter)")
	flag.DurationVar(&f.RetryMax, "retry-max", 30*time.Second, "retry backoff cap")
	flag.IntVar(&f.BreakerFail, "breaker-fails", 5, "consecutive failures that open the circuit breaker")
	flag.DurationVar(&f.BreakerOpen, "breaker-open", 5*time.Second, "how long the breaker stays open before probing")
	flag.Uint64Var(&f.Seed, "retry-seed", 1, "seed for retry jitter (reproducible recovery timing)")
	flag.IntVar(&f.Batch, "batch", 0,
		"packets per uplink batch frame (0 or 1 = unbatched; >1 amortizes one endpoint fsync over the frame)")
	flag.DurationVar(&f.BatchAge, "batch-age", 100*time.Millisecond,
		"max age of a pending batch frame before it is flushed part-full")
	return f
}

// Config converts the flags into a resilience.Config.
func (f *ResilienceFlags) Config() resilience.Config {
	return resilience.Config{
		MaxAttempts:      f.Retries,
		BackoffBase:      f.RetryBase,
		BackoffMax:       f.RetryMax,
		BreakerThreshold: f.BreakerFail,
		BreakerOpenFor:   f.BreakerOpen,
		QueueDepth:       f.Queue,
		Seed:             f.Seed,
		BatchSize:        f.Batch,
		BatchAge:         f.BatchAge,
	}
}

// ChaosFlags carries the seeded fault-injection knobs of one daemon.
// All zero (the default) means no injection.
type ChaosFlags struct {
	Seed        uint64
	Drop        float64
	Err         float64
	Slow        float64
	OutageAfter int
	OutageLen   int

	rt *chaos.RoundTripper // built by HTTPClient; see Injector
}

// RegisterChaosFlags declares the standard chaos flags on the process
// flag set and returns their destination.
func RegisterChaosFlags() *ChaosFlags {
	f := &ChaosFlags{}
	flag.Uint64Var(&f.Seed, "chaos-seed", 0, "fault-injection seed (same seed = same fault schedule)")
	flag.Float64Var(&f.Drop, "chaos-drop", 0, "injected per-request connection-drop probability")
	flag.Float64Var(&f.Err, "chaos-err", 0, "injected per-request 503 probability")
	flag.Float64Var(&f.Slow, "chaos-slow", 0, "injected per-request slow-response probability")
	flag.IntVar(&f.OutageAfter, "chaos-outage-after", 0, "request index at which an injected outage begins")
	flag.IntVar(&f.OutageLen, "chaos-outage-len", 0, "injected outage length in requests (0 = no outage)")
	return f
}

// Enabled reports whether any injection was requested.
func (f *ChaosFlags) Enabled() bool {
	return f.Drop > 0 || f.Err > 0 || f.Slow > 0 || f.OutageLen > 0
}

// Config converts the flags into a chaos.Config.
func (f *ChaosFlags) Config() chaos.Config {
	return chaos.Config{
		Seed:        f.Seed,
		DropProb:    f.Drop,
		ErrProb:     f.Err,
		SlowProb:    f.Slow,
		OutageAfter: f.OutageAfter,
		OutageLen:   f.OutageLen,
	}
}

// HTTPClient returns an outbound client with the chaos schedule wired
// into its transport, or nil when injection is disabled (letting the
// uplink construct its shared default client).
func (f *ChaosFlags) HTTPClient(timeout time.Duration) *http.Client {
	if !f.Enabled() {
		return nil
	}
	f.rt = chaos.NewRoundTripper(nil, f.Config())
	return &http.Client{
		Timeout:   timeout,
		Transport: f.rt,
	}
}

// Injector returns the client-side fault schedule HTTPClient built, so
// the daemon can export its counters as metrics. Nil until HTTPClient
// has run with injection enabled.
func (f *ChaosFlags) Injector() *chaos.Injector {
	if f.rt == nil {
		return nil
	}
	return f.rt.Injector()
}
