package daemon

import (
	"context"
	"flag"
	"strings"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/cluster"
	"centuryscale/internal/resilience"
)

// ClusterFlags carries the replicated-endpoint knobs of the router tier.
// An empty -cluster-peers (the default) leaves the daemon in classic
// single-endpoint mode.
type ClusterFlags struct {
	Peers          string
	Replicas       int
	WriteQuorum    int
	Secret         string
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
}

// RegisterClusterFlags declares the standard cluster flags on the
// process flag set and returns their destination.
func RegisterClusterFlags() *ClusterFlags {
	f := &ClusterFlags{}
	flag.StringVar(&f.Peers, "cluster-peers", "",
		"comma-separated endpoint base URLs; non-empty switches delivery to quorum-replicated cluster mode")
	flag.IntVar(&f.Replicas, "replicas", 2, "replicas per device partition (R)")
	flag.IntVar(&f.WriteQuorum, "write-quorum", 0, "durable appends required before ack (W; 0 = majority of -replicas)")
	flag.StringVar(&f.Secret, "cluster-secret", "", "shared secret for intra-cluster routes (required with -cluster-peers)")
	flag.DurationVar(&f.HeartbeatEvery, "heartbeat-every", 500*time.Millisecond, "peer heartbeat probe interval")
	flag.DurationVar(&f.SuspectAfter, "suspect-after", 2*time.Second, "heartbeat silence before a peer is suspected (down at 3x)")
	return f
}

// Enabled reports whether cluster mode was requested.
func (f *ClusterFlags) Enabled() bool { return f.Peers != "" }

// Coordinator builds the cluster coordinator from the flags. The
// daemon's resilience tuning is reused for the per-peer uplinks so one
// -retries/-breaker-* vocabulary covers both modes.
func (f *ClusterFlags) Coordinator(up resilience.Config) (*cluster.Coordinator, error) {
	return cluster.New(cluster.Config{
		Peers:        splitPeers(f.Peers),
		Replicas:     f.Replicas,
		WriteQuorum:  f.WriteQuorum,
		Secret:       f.Secret,
		SuspectAfter: f.SuspectAfter,
		Uplink:       up,
	})
}

// ClusterSender adapts the coordinator's quorum ingest to the resilience
// layer's Sender, so a store-and-forward Uplink can buffer payloads the
// cluster sheds during an outage instead of dropping them. Batch frames
// route to the coordinator's frame path (per-node sub-frames, per-packet
// quorum); bare packets keep the single-packet path.
func ClusterSender(c *cluster.Coordinator) resilience.Sender {
	return resilience.SenderFunc(func(payload []byte) error {
		if batch.IsFrame(payload) {
			return c.IngestBatch(context.Background(), payload)
		}
		return c.Ingest(context.Background(), payload)
	})
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}
