package daemon

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// TestKillRecoverBatchedZeroAcknowledgedLoss is the batched-frame twin
// of TestKillRecoverZeroAcknowledgedLoss: the uplink runs with -batch
// style frame building, so acknowledgements arrive per frame and the
// endpoint's durability unit is the WAL group commit. The hard kill
// lands between group fsyncs, with frames in every intermediate state —
// acknowledged, in flight, pending in the builder, buffered in the
// queue.
//
// The contract under test: a frame the endpoint acknowledged (202) had
// its group fsync complete first, so no packet of any acknowledged
// frame is lost across the kill; frames whose acknowledgement died with
// the connection are retried whole and deduplicated by the replay guard
// rebuilt from the WAL. Every sequence number ends up stored exactly
// once — group commit must be all-or-nothing per ack, never "some of
// the frame was durable".
func TestKillRecoverBatchedZeroAcknowledgedLoss(t *testing.T) {
	const packets = 96
	const killAfter = 32 // hard-kill once this many are acknowledged
	const frameSize = 8

	dir := t.TempDir()
	start := time.Now()

	open := func() (*cloud.Store, tsdb.ReplayStats) {
		t.Helper()
		db, err := tsdb.Open(tsdb.Options{Dir: dir, Shards: 4, Sync: tsdb.SyncAlways, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		store := cloud.NewStoreWithDB(cloud.StaticKeys(master), db)
		rs, err := store.ReplayWAL()
		if err != nil {
			t.Fatal(err)
		}
		return store, rs
	}

	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	endpointAddr := ln1.Addr().String()
	store1, _ := open()
	srv1 := &http.Server{Handler: cloud.NewServer(store1, start)}
	go srv1.Serve(ln1)

	up := resilience.NewUplink(
		&HTTPUplink{URL: "http://" + endpointAddr, Client: &http.Client{Timeout: 2 * time.Second}},
		resilience.Config{
			MaxAttempts:      2,
			BackoffBase:      time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerOpenFor:   20 * time.Millisecond,
			QueueDepth:       256,
			DrainInterval:    5 * time.Millisecond,
			Seed:             11,
			BatchSize:        frameSize,
			BatchAge:         5 * time.Millisecond,
		})
	defer up.Close(context.Background())

	dev := lpwan.EUIFromUint64(0xBA7C)
	key := telemetry.DeriveKey(master, dev)
	send := func(seq uint32) {
		t.Helper()
		wire, err := telemetry.Packet{Device: dev, Seq: seq, Sensor: telemetry.SensorStrain, Value: float32(seq)}.Seal(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := up.Send(wire); err != nil {
			t.Fatalf("seq %d surfaced permanent error: %v", seq, err)
		}
	}

	// Phase 1: traffic into the first instance until killAfter readings
	// are acknowledged — whole frames, each behind one group fsync.
	seq := uint32(1)
	for ; seq <= killAfter; seq++ {
		send(seq)
	}
	deadline := time.Now().Add(10 * time.Second)
	for store1.Count() < killAfter && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store1.Count() < killAfter {
		t.Fatalf("first instance stored %d of %d before kill (uplink %+v)", store1.Count(), killAfter, up.Stats())
	}
	if store1.BatchFrames() == 0 {
		t.Fatalf("acknowledged traffic never used the batch path: %+v", up.Stats())
	}

	// Hard kill between group fsyncs: listener and connections die,
	// store1's WAL handles are abandoned unclosed.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the device keeps transmitting into the outage. Frames
	// accumulate in the builder and, once full, buffer in the queue —
	// nothing is acknowledged, nothing surfaces as lost.
	for ; seq <= killAfter+2*frameSize; seq++ {
		send(seq)
		time.Sleep(time.Millisecond)
	}
	if st := up.Stats(); st.Buffered == 0 && st.PendingPackets == 0 {
		t.Fatalf("outage never forced buffering: %+v", st)
	}

	// Instance 2: recover from the WAL alone. Replay must hold every
	// acknowledged reading — an acknowledged frame's fsync preceded its
	// 202 — and nothing torn: Kept is a multiple of nothing in
	// particular (frames interleave shards), but >= killAfter always.
	store2, rs := open()
	defer store2.Close()
	if rs.Kept < killAfter {
		t.Fatalf("WAL replay recovered %d of %d acknowledged readings", rs.Kept, killAfter)
	}
	var ln2 net.Listener
	for attempt := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", endpointAddr)
		if err == nil {
			break
		}
		if time.Now().After(attempt) {
			t.Fatalf("rebind %s: %v", endpointAddr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv2 := &http.Server{Handler: cloud.NewServer(store2, start)}
	go srv2.Serve(ln2)
	defer srv2.Close()

	// Phase 3: the rest of the stream flows into the recovered instance.
	// Flush drives the pending part-frame and the queued frames out.
	for ; seq <= packets; seq++ {
		send(seq)
	}
	flushCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := up.Flush(flushCtx); err != nil {
		t.Fatalf("uplink flush: %v (stats %+v)", err, up.Stats())
	}

	// Zero acknowledged loss, exactly once — including frames that were
	// retried whole after their ack died with the first instance.
	if got := store2.Count(); got != packets {
		t.Fatalf("recovered instance holds %d of %d readings (uplink %+v)", got, packets, up.Stats())
	}
	seen := make(map[uint32]int)
	for _, r := range store2.History(dev) {
		seen[r.Packet.Seq]++
	}
	for s := uint32(1); s <= packets; s++ {
		if seen[s] != 1 {
			t.Fatalf("seq %d stored %d times after recovery", s, seen[s])
		}
	}
}
