// Package daemon contains the networked runtime shared by the real
// executables in cmd/: the UDP listener that turns a Linux box into an
// open gateway, the HTTP uplink that forwards device payloads to the
// public endpoint, and an emulated transmit-only sensor node.
//
// This is the deployable half of the reproduction: the simulator answers
// "what happens over 50 years", while these pieces are the actual
// sensornode -> gatewayd -> endpointd datapath, speaking the same lpwan
// frames and 24-byte telemetry packets over real sockets. The gateway is
// exactly what §3.2 asks for — a router that forwards any structurally
// valid device frame upstream and defers all decisions to the endpoint.
package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/gateway"
	"centuryscale/internal/lorawan"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
)

// HTTPUplink forwards gateway payloads to the endpoint's /ingest route.
// Errors are classified for retry loops: network failures and 5xx are
// transient (503/429 carry the endpoint's Retry-After hint), other 4xx
// are resilience.Permanent — the endpoint understood and refused, so
// retrying or buffering cannot help.
type HTTPUplink struct {
	// URL is the endpoint base, e.g. "http://127.0.0.1:8080".
	URL string
	// Client defaults to a shared 10-second-timeout client. Set it
	// before the first Send or not at all.
	Client *http.Client

	fallbackOnce sync.Once
	fallback     *http.Client
}

func (u *HTTPUplink) client() *http.Client {
	if u.Client != nil {
		return u.Client
	}
	// Construct the fallback exactly once so its transport's connection
	// pool is reused across sends instead of leaking one pool per call.
	u.fallbackOnce.Do(func() {
		u.fallback = &http.Client{Timeout: 10 * time.Second}
	})
	return u.fallback
}

// Send implements gateway.Uplink (and resilience.Sender). Bare packets
// post to /ingest; batch frames (built by a resilience.Uplink running
// with -batch) post to /ingest/batch — the shapes are structurally
// disjoint, so one sender serves both without configuration.
func (u *HTTPUplink) Send(payload []byte) error {
	route := "/ingest"
	if batch.IsFrame(payload) {
		route = "/ingest/batch"
	}
	resp, err := u.client().Post(u.URL+route, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("daemon: uplink post: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	// 422 means the endpoint saw the packet but rejected it (duplicate
	// via another gateway, bad signature): the gateway's job is done.
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusUnprocessableEntity {
		return nil
	}
	return classifyStatus("daemon: uplink", resp)
}

// classifyStatus turns a non-success HTTP response into a transient or
// permanent error for the resilience layer.
func classifyStatus(prefix string, resp *http.Response) error {
	err := fmt.Errorf("%s status %d", prefix, resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		return &resilience.RetryAfterError{After: parseRetryAfter(resp), Err: err}
	case resp.StatusCode >= 500:
		return err // transient
	default:
		return resilience.Permanent(err)
	}
}

// parseRetryAfter reads a delay-seconds Retry-After header, or zero.
func parseRetryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// ServeUDP reads link-layer frames from the socket and hands them to the
// gateway until the context is cancelled. Malformed datagrams are counted
// by the gateway and dropped; socket errors other than closure are
// returned.
func ServeUDP(ctx context.Context, conn net.PacketConn, gw *gateway.Gateway) error {
	done := make(chan struct{})
	watcherDone := make(chan struct{})
	defer func() {
		// Join the watcher: without this it could still be inside
		// conn.Close when we return and the caller reuses the socket.
		close(done)
		<-watcherDone
	}()
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 2048)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("daemon: udp read: %w", err)
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		// Forwarding errors (blocklist, uplink down) are the gateway's
		// statistics, not the listener's problem.
		_ = gw.HandleFrame(frame)
	}
}

// SensorNode emulates the paper's transmit-only device on a real network:
// it sends one signed 24-byte reading per interval over UDP and never
// listens for anything. By default readings ride the lpwan link frame
// (the owned-gateway path); with LoRaWAN enabled they ride a genuine
// LoRaWAN uplink instead (the third-party hotspot path).
type SensorNode struct {
	ID       lpwan.EUI64
	Key      telemetry.Key
	Sensor   telemetry.SensorType
	Interval time.Duration
	// Read produces the sensor value; nil sends a constant 1.
	Read func() float32

	// LoRaWAN, when non-nil, wraps readings in LoRaWAN uplinks.
	LoRaWAN *LoRaWANSession

	seq     uint32
	started time.Time
}

// LoRaWANSession is the ABP personalisation burned into a third-party-
// path device.
type LoRaWANSession struct {
	DevAddr          uint32
	NwkSKey, AppSKey []byte
}

// NewLoRaWANSession derives the session from an ABP master secret.
func NewLoRaWANSession(master []byte, devAddr uint32) (*LoRaWANSession, error) {
	nwk, app, err := lorawan.SessionKeys(master, devAddr)
	if err != nil {
		return nil, err
	}
	return &LoRaWANSession{DevAddr: devAddr, NwkSKey: nwk, AppSKey: app}, nil
}

// BuildFrame produces the next reading as an on-the-wire frame.
func (n *SensorNode) BuildFrame(now time.Time) ([]byte, error) {
	if n.started.IsZero() {
		n.started = now
	}
	value := float32(1)
	if n.Read != nil {
		value = n.Read()
	}
	n.seq++
	p := telemetry.Packet{
		Device:        n.ID,
		Seq:           n.seq,
		Sensor:        n.Sensor,
		Value:         value,
		UptimeSeconds: uint32(now.Sub(n.started) / time.Second),
	}
	payload, err := p.Seal(n.Key)
	if err != nil {
		return nil, err
	}
	if n.LoRaWAN != nil {
		u := lorawan.Uplink{
			DevAddr: n.LoRaWAN.DevAddr,
			FCnt:    uint16(n.seq),
			FPort:   1,
			Payload: payload,
		}
		return u.Encode(n.LoRaWAN.NwkSKey, n.LoRaWAN.AppSKey)
	}
	f := lpwan.Frame{
		Type:    lpwan.FrameData,
		Source:  n.ID,
		Seq:     uint16(n.seq),
		Payload: payload,
	}
	return f.Encode()
}

// SendOnce transmits a single reading to the gateway address.
func (n *SensorNode) SendOnce(conn net.PacketConn, to net.Addr, now time.Time) error {
	wire, err := n.BuildFrame(now)
	if err != nil {
		return err
	}
	if _, err := conn.WriteTo(wire, to); err != nil {
		return fmt.Errorf("daemon: sensor send: %w", err)
	}
	return nil
}

// Run transmits on the node's interval until the context is cancelled.
func (n *SensorNode) Run(ctx context.Context, conn net.PacketConn, to net.Addr) error {
	if n.Interval <= 0 {
		return fmt.Errorf("daemon: sensor interval must be positive")
	}
	tick := time.NewTicker(n.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case now := <-tick.C:
			if err := n.SendOnce(conn, to, now); err != nil {
				return err
			}
		}
	}
}
