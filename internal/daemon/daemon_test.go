package daemon

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/gateway"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

var master = []byte("integration-master-secret")

// TestEndToEndDatapath runs the real pipeline over loopback:
// sensornode (UDP) -> gatewayd (UDP->HTTP) -> endpointd (HTTP store).
func TestEndToEndDatapath(t *testing.T) {
	// Endpoint.
	store := cloud.NewStore(cloud.StaticKeys(master))
	endpoint := httptest.NewServer(cloud.NewServer(store, time.Now()))
	defer endpoint.Close()

	// Gateway on a loopback UDP socket.
	gw := gateway.New(gateway.Config{ID: "gw-integration"}, &HTTPUplink{URL: endpoint.URL})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ServeUDP(ctx, conn, gw) }()

	// Sensor node.
	id := lpwan.EUIFromUint64(0xBEEF)
	node := &SensorNode{
		ID:     id,
		Key:    telemetry.DeriveKey(master, id),
		Sensor: telemetry.SensorTemperature,
		Read:   func() float32 { return 21.5 },
	}
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := node.SendOnce(tx, conn.LocalAddr(), start.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for the datapath to drain.
	deadline := time.Now().Add(5 * time.Second)
	for store.Count() < 5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if store.Count() != 5 {
		t.Fatalf("endpoint stored %d of 5 packets", store.Count())
	}

	// The readings verified and carry the device's values.
	hist := store.History(id)
	if len(hist) != 5 {
		t.Fatalf("history length = %d", len(hist))
	}
	for i, r := range hist {
		if r.Packet.Value != 21.5 || r.Packet.Seq != uint32(i+1) {
			t.Fatalf("reading %d = %+v", i, r.Packet)
		}
	}
	if s := gw.Stats(); s.Forwarded != 5 {
		t.Fatalf("gateway stats = %+v", s)
	}

	cancel()
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
}

func TestGatewayDropsForgedTraffic(t *testing.T) {
	store := cloud.NewStore(cloud.StaticKeys(master))
	endpoint := httptest.NewServer(cloud.NewServer(store, time.Now()))
	defer endpoint.Close()

	gw := gateway.New(gateway.Config{ID: "gw"}, &HTTPUplink{URL: endpoint.URL})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ServeUDP(ctx, conn, gw) }()

	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	// Garbage datagram: dropped at the gateway (bad frame).
	if _, err := tx.WriteTo([]byte("not a frame"), conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Valid frame, forged payload signature: forwarded by the open
	// gateway (it routes, it doesn't judge) but rejected at the endpoint.
	id := lpwan.EUIFromUint64(0xBAD)
	forged := telemetry.Packet{Device: id, Seq: 1}
	payload, err := forged.Seal(telemetry.Key("wrong-key-wrong-key-wrong-key!!!"))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := (lpwan.Frame{Type: lpwan.FrameData, Source: id, Seq: 1, Payload: payload}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.WriteTo(frame, conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := store.Stats()
		gs := gw.Stats()
		if st.BadSignature >= 1 && gs.DropMalformed >= 1 {
			if st.Accepted != 0 {
				t.Fatalf("forged packet accepted: %+v", st)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("forged traffic not fully processed: store=%+v gw=%+v", store.Stats(), gw.Stats())
}

func TestHTTPUplinkErrors(t *testing.T) {
	// A dead endpoint must surface as an error.
	u := &HTTPUplink{URL: "http://127.0.0.1:1", Client: &http.Client{Timeout: 200 * time.Millisecond}}
	if err := u.Send([]byte("x")); err == nil {
		t.Fatal("send to dead endpoint succeeded")
	}
	// A 500 endpoint must surface as an error.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	u = &HTTPUplink{URL: bad.URL}
	if err := u.Send([]byte("x")); err == nil {
		t.Fatal("500 treated as success")
	}
}

func TestSensorNodeSeqAdvances(t *testing.T) {
	id := lpwan.EUIFromUint64(1)
	n := &SensorNode{ID: id, Key: telemetry.DeriveKey(master, id), Sensor: telemetry.SensorStrain}
	now := time.Now()
	for want := uint32(1); want <= 3; want++ {
		wire, err := n.BuildFrame(now.Add(time.Duration(want) * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		f, err := lpwan.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		p, err := telemetry.Verify(f.Payload, telemetry.DeriveKey(master, id))
		if err != nil {
			t.Fatal(err)
		}
		if p.Seq != want {
			t.Fatalf("seq = %d, want %d", p.Seq, want)
		}
	}
}

func TestSensorNodeRunRequiresInterval(t *testing.T) {
	n := &SensorNode{}
	if err := n.Run(context.Background(), nil, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSensorNodeRunLoop(t *testing.T) {
	// Drive the ticker loop for a few intervals against a live gateway.
	store := cloud.NewStore(cloud.StaticKeys(master))
	endpoint := httptest.NewServer(cloud.NewServer(store, time.Now()))
	defer endpoint.Close()
	gw := gateway.New(gateway.Config{ID: "gw"}, &HTTPUplink{URL: endpoint.URL})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ServeUDP(ctx, conn, gw) }()

	id := lpwan.EUIFromUint64(0xA1)
	node := &SensorNode{
		ID:       id,
		Key:      telemetry.DeriveKey(master, id),
		Sensor:   telemetry.SensorVibration,
		Interval: 20 * time.Millisecond,
	}
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	runCtx, stopRun := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run(runCtx, tx, conn.LocalAddr()) }()

	deadline := time.Now().Add(5 * time.Second)
	for store.Count() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stopRun()
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if store.Count() < 3 {
		t.Fatalf("stored %d packets from the run loop", store.Count())
	}
}

func TestServeUDPReturnsOnClose(t *testing.T) {
	gw := gateway.New(gateway.Config{ID: "gw"}, gateway.UplinkFunc(func([]byte) error { return nil }))
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeUDP(context.Background(), conn, gw) }()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeUDP after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not return after socket close")
	}
}
