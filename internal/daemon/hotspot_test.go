package daemon

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/helium"
	"centuryscale/internal/lorawan"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

var abpMaster = []byte("0123456789abcdef")

func lorawanFrame(t *testing.T, devAddr uint32, fcnt uint16, payload []byte) []byte {
	t.Helper()
	nwk, app, err := lorawan.SessionKeys(abpMaster, devAddr)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := (lorawan.Uplink{DevAddr: devAddr, FCnt: fcnt, FPort: 1, Payload: payload}).Encode(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestRouterHandlerHappyPath(t *testing.T) {
	wallet := helium.NewWallet(10)
	router, err := helium.NewRouter(abpMaster, wallet)
	if err != nil {
		t.Fatal(err)
	}
	var delivered [][]byte
	srv := httptest.NewServer(RouterHandler(router, func(p []byte) error {
		delivered = append(delivered, append([]byte(nil), p...))
		return nil
	}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/uplink", "application/octet-stream",
		bytes.NewReader(lorawanFrame(t, 0x99, 1, []byte("payload"))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(delivered) != 1 || string(delivered[0]) != "payload" {
		t.Fatalf("delivered = %q", delivered)
	}
	if wallet.Balance() != 9 {
		t.Fatalf("wallet = %d", wallet.Balance())
	}
}

func TestRouterHandlerPaymentRequired(t *testing.T) {
	router, _ := helium.NewRouter(abpMaster, helium.NewWallet(0))
	srv := httptest.NewServer(RouterHandler(router, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/uplink", "application/octet-stream",
		bytes.NewReader(lorawanFrame(t, 0x99, 1, []byte("x"))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("status = %d, want 402", resp.StatusCode)
	}
}

func TestRouterHandlerRejectsGarbage(t *testing.T) {
	router, _ := helium.NewRouter(abpMaster, helium.NewWallet(10))
	srv := httptest.NewServer(RouterHandler(router, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/uplink", "application/octet-stream",
		bytes.NewReader([]byte("not lorawan")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestThirdPartyEndToEnd runs the complete third-party datapath over
// loopback: sealed telemetry inside a LoRaWAN frame, UDP to a dumb
// hotspot, HTTP to the router, decrypted payload into the cloud store.
func TestThirdPartyEndToEnd(t *testing.T) {
	fleetMaster := []byte("fleet-master-secret")
	store := cloud.NewStore(cloud.StaticKeys(fleetMaster))
	wallet := helium.NewWallet(100)
	router, err := helium.NewRouter(abpMaster, wallet)
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(RouterHandler(router, func(p []byte) error {
		return store.Ingest(time.Hour, p)
	}))
	defer routerSrv.Close()

	// Hotspot: UDP in, HTTP out.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hotspotDone := make(chan error, 1)
	go func() { hotspotDone <- ServeHotspot(ctx, conn, routerSrv.URL, nil) }()

	// Device: telemetry inside LoRaWAN, fired at the hotspot.
	id := lpwan.EUIFromUint64(0x77)
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	for seq := uint32(1); seq <= 3; seq++ {
		inner, err := telemetry.Packet{
			Device: id, Seq: seq, Sensor: telemetry.SensorStrain, Value: float32(seq),
		}.Seal(telemetry.DeriveKey(fleetMaster, id))
		if err != nil {
			t.Fatal(err)
		}
		frame := lorawanFrame(t, 0x77, uint16(seq), inner)
		if _, err := tx.WriteTo(frame, conn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for store.Count() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if store.Count() != 3 {
		t.Fatalf("stored %d of 3", store.Count())
	}
	if wallet.Balance() != 97 {
		t.Fatalf("wallet = %d", wallet.Balance())
	}
	hist := store.History(id)
	if len(hist) != 3 || hist[2].Packet.Value != 3 {
		t.Fatalf("history = %+v", hist)
	}

	cancel()
	if err := <-hotspotDone; err != nil {
		t.Fatalf("hotspot: %v", err)
	}
}

func TestSensorNodeLoRaWANMode(t *testing.T) {
	fleetMaster := []byte("fleet-master-secret")
	id := lpwan.EUIFromUint64(0x55)
	sess, err := NewLoRaWANSession(abpMaster, 0x55)
	if err != nil {
		t.Fatal(err)
	}
	node := &SensorNode{
		ID:      id,
		Key:     telemetry.DeriveKey(fleetMaster, id),
		Sensor:  telemetry.SensorHumidity,
		LoRaWAN: sess,
	}
	wire, err := node.BuildFrame(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// The frame is a genuine LoRaWAN uplink the router accepts.
	router, _ := helium.NewRouter(abpMaster, helium.NewWallet(5))
	payload, err := router.HandleUplink(wire)
	if err != nil {
		t.Fatalf("router rejected sensornode frame: %v", err)
	}
	p, err := telemetry.Verify(payload, telemetry.DeriveKey(fleetMaster, id))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq != 1 || p.Sensor != telemetry.SensorHumidity {
		t.Fatalf("packet = %+v", p)
	}
}
