package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"centuryscale/internal/helium"
	"centuryscale/internal/resilience"
)

// Hotspot plumbing: the third-party path's real datapath. A hotspot is
// deliberately dumb — it lifts LoRaWAN frames off the air (here: off a
// UDP socket) and POSTs them to the network router, which owns all
// verification, accounting, and decryption. This mirrors the §4.2
// trust split: anyone can run a hotspot; only the router holds keys and
// money.

// RouterHandler exposes a helium.Router over HTTP for hotspots to POST
// raw LoRaWAN frames to /uplink. Decrypted application payloads are
// passed to deliver (e.g. a cloud.Store ingest).
func RouterHandler(r *helium.Router, deliver func(payload []byte) error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /uplink", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 1024))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload, err := r.HandleUplink(body)
		if err != nil {
			// The hotspot gets no credit for unverifiable or unfunded
			// traffic; 402 distinguishes "wallet dry" for operators.
			status := http.StatusUnprocessableEntity
			if errors.Is(err, helium.ErrInsufficientCredits) {
				status = http.StatusPaymentRequired
			}
			http.Error(w, err.Error(), status)
			return
		}
		if deliver != nil {
			if err := deliver(payload); err != nil {
				// Delivery problems are the owner's, not the hotspot's:
				// the frame was valid and paid for.
				w.WriteHeader(http.StatusAccepted)
				return
			}
		}
		w.WriteHeader(http.StatusAccepted)
	})
	return mux
}

// RouterUplink POSTs raw LoRaWAN frames to a network router's /uplink
// route. Like HTTPUplink it classifies failures for the resilience
// layer: network errors and 5xx are transient, while 422 (unverifiable)
// and 402 (wallet dry) are resilience.Permanent — the router saw the
// frame and refused it, so a retry earns the hotspot nothing.
type RouterUplink struct {
	// URL is the router base, e.g. "http://127.0.0.1:9000".
	URL string
	// Client defaults to a shared 10-second-timeout client.
	Client *http.Client

	fallbackOnce sync.Once
	fallback     *http.Client
}

func (r *RouterUplink) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	r.fallbackOnce.Do(func() {
		r.fallback = &http.Client{Timeout: 10 * time.Second}
	})
	return r.fallback
}

// Send implements gateway.Uplink (and resilience.Sender).
func (r *RouterUplink) Send(frame []byte) error {
	resp, err := r.client().Post(r.URL+"/uplink", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("daemon: hotspot post: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	if resp.StatusCode == http.StatusAccepted {
		return nil
	}
	return classifyStatus("daemon: hotspot", resp)
}

// ServeHotspotUplink forwards raw LoRaWAN frames from a UDP socket into
// up until the context is cancelled. Send errors are the uplink's
// problem (a resilience.Uplink buffers them; a bare RouterUplink drops
// them): the devices retry by cadence, not by ACK, and the hotspot
// itself stays faithfully dumb.
func ServeHotspotUplink(ctx context.Context, conn net.PacketConn, up resilience.Sender) error {
	done := make(chan struct{})
	watcherDone := make(chan struct{})
	defer func() {
		// Join the watcher: without this it could still be inside
		// conn.Close when we return and the caller reuses the socket.
		close(done)
		<-watcherDone
	}()
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 2048)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("daemon: hotspot read: %w", err)
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		_ = up.Send(frame)
	}
}

// ServeHotspot forwards raw LoRaWAN frames from a UDP socket to the
// router URL until the context is cancelled: the entire hotspot,
// faithfully small. Failed POSTs are dropped; wrap a RouterUplink in a
// resilience.Uplink and use ServeHotspotUplink for the buffered variant.
func ServeHotspot(ctx context.Context, conn net.PacketConn, routerURL string, client *http.Client) error {
	return ServeHotspotUplink(ctx, conn, &RouterUplink{URL: routerURL, Client: client})
}
