package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"

	"centuryscale/internal/helium"
)

// Hotspot plumbing: the third-party path's real datapath. A hotspot is
// deliberately dumb — it lifts LoRaWAN frames off the air (here: off a
// UDP socket) and POSTs them to the network router, which owns all
// verification, accounting, and decryption. This mirrors the §4.2
// trust split: anyone can run a hotspot; only the router holds keys and
// money.

// RouterHandler exposes a helium.Router over HTTP for hotspots to POST
// raw LoRaWAN frames to /uplink. Decrypted application payloads are
// passed to deliver (e.g. a cloud.Store ingest).
func RouterHandler(r *helium.Router, deliver func(payload []byte) error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /uplink", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 1024))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload, err := r.HandleUplink(body)
		if err != nil {
			// The hotspot gets no credit for unverifiable or unfunded
			// traffic; 402 distinguishes "wallet dry" for operators.
			status := http.StatusUnprocessableEntity
			if errors.Is(err, helium.ErrInsufficientCredits) {
				status = http.StatusPaymentRequired
			}
			http.Error(w, err.Error(), status)
			return
		}
		if deliver != nil {
			if err := deliver(payload); err != nil {
				// Delivery problems are the owner's, not the hotspot's:
				// the frame was valid and paid for.
				w.WriteHeader(http.StatusAccepted)
				return
			}
		}
		w.WriteHeader(http.StatusAccepted)
	})
	return mux
}

// ServeHotspot forwards raw LoRaWAN frames from a UDP socket to the
// router URL until the context is cancelled: the entire hotspot,
// faithfully small.
func ServeHotspot(ctx context.Context, conn net.PacketConn, routerURL string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 2048)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("daemon: hotspot read: %w", err)
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		resp, err := client.Post(routerURL+"/uplink", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			// Backhaul hiccup: drop and carry on; the devices retry by
			// cadence, not by ACK.
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		resp.Body.Close()
	}
}
