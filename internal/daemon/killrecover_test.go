package daemon

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// TestKillRecoverZeroAcknowledgedLoss is the acceptance test for the
// WAL: endpointd is hard-killed mid-traffic — listener and every live
// connection torn down, the store abandoned without any orderly close,
// exactly as a power cut would leave it — then a second instance boots
// on the same data directory, replays the WAL, and takes over the same
// address. A resilient uplink (the PR 1 datapath) keeps transmitting
// throughout, buffering across the outage.
//
// The contract under test: with -wal-fsync=always, a reading the
// endpoint acknowledged (HTTP 202) is on stable storage before the
// acknowledgement, so no acknowledged reading is lost across the kill;
// and the replay guard rebuilt from the WAL dedups retries of readings
// whose acknowledgement died with the connection. Every sequence number
// ends up stored exactly once.
func TestKillRecoverZeroAcknowledgedLoss(t *testing.T) {
	const packets = 60
	const killAfter = 20 // hard-kill once this many are acknowledged

	dir := t.TempDir()
	start := time.Now()

	// open boots an endpoint store on the shared data directory with
	// per-append fsync (the ack-durability configuration) and replays
	// whatever the WAL holds.
	open := func() (*cloud.Store, tsdb.ReplayStats) {
		t.Helper()
		db, err := tsdb.Open(tsdb.Options{Dir: dir, Shards: 4, Sync: tsdb.SyncAlways, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		store := cloud.NewStoreWithDB(cloud.StaticKeys(master), db)
		rs, err := store.ReplayWAL()
		if err != nil {
			t.Fatal(err)
		}
		return store, rs
	}

	// Instance 1: bind explicitly so the address can be reclaimed by
	// instance 2 after the kill.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	endpointAddr := ln1.Addr().String()
	store1, _ := open()
	srv1 := &http.Server{Handler: cloud.NewServer(store1, start)}
	go srv1.Serve(ln1)

	up := resilience.NewUplink(
		&HTTPUplink{URL: "http://" + endpointAddr, Client: &http.Client{Timeout: 2 * time.Second}},
		resilience.Config{
			MaxAttempts:      2,
			BackoffBase:      time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerOpenFor:   20 * time.Millisecond,
			QueueDepth:       256,
			DrainInterval:    5 * time.Millisecond,
			Seed:             11,
		})
	defer up.Close(context.Background())

	dev := lpwan.EUIFromUint64(0xDEAD)
	key := telemetry.DeriveKey(master, dev)
	send := func(seq uint32) {
		t.Helper()
		wire, err := telemetry.Packet{Device: dev, Seq: seq, Sensor: telemetry.SensorStrain, Value: float32(seq)}.Seal(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := up.Send(wire); err != nil {
			t.Fatalf("seq %d surfaced permanent error: %v", seq, err)
		}
	}

	// Phase 1: traffic into the first instance until killAfter readings
	// are acknowledged and stored.
	seq := uint32(1)
	for ; seq <= killAfter; seq++ {
		send(seq)
	}
	deadline := time.Now().Add(10 * time.Second)
	for store1.Count() < killAfter && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store1.Count() < killAfter {
		t.Fatalf("first instance stored %d of %d before kill", store1.Count(), killAfter)
	}

	// Hard kill: the listener and every live connection die at once.
	// store1 is deliberately NOT closed — its WAL file handles are
	// simply abandoned, the way a crashed process leaves them.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the device keeps transmitting into the outage. The
	// uplink buffers (connection refused is transient) — nothing is
	// acknowledged, nothing surfaces as lost.
	for ; seq <= killAfter+10; seq++ {
		send(seq)
		time.Sleep(time.Millisecond)
	}
	if up.QueueLen() == 0 {
		t.Fatalf("outage never forced buffering: %+v", up.Stats())
	}

	// Instance 2: boot on the same data directory, recover from the WAL
	// alone, and take over the same address (retrying briefly while the
	// kernel releases it).
	store2, rs := open()
	defer store2.Close()
	if rs.Kept < killAfter {
		t.Fatalf("WAL replay recovered %d of %d acknowledged readings", rs.Kept, killAfter)
	}
	var ln2 net.Listener
	for attempt := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", endpointAddr)
		if err == nil {
			break
		}
		if time.Now().After(attempt) {
			t.Fatalf("rebind %s: %v", endpointAddr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv2 := &http.Server{Handler: cloud.NewServer(store2, start)}
	go srv2.Serve(ln2)
	defer srv2.Close()

	// Phase 3: the rest of the stream flows into the recovered
	// instance, behind whatever is still buffered.
	for ; seq <= packets; seq++ {
		send(seq)
	}
	flushCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := up.Flush(flushCtx); err != nil {
		t.Fatalf("uplink flush: %v (stats %+v)", err, up.Stats())
	}

	// Zero acknowledged loss, exactly once: every sequence number the
	// device ever sent is present in the recovered instance, none twice
	// — the pre-kill readings via WAL replay, the rest via the drain.
	if got := store2.Count(); got != packets {
		t.Fatalf("recovered instance holds %d of %d readings (uplink %+v)", got, packets, up.Stats())
	}
	seen := make(map[uint32]int)
	for _, r := range store2.History(dev) {
		seen[r.Packet.Seq]++
	}
	for s := uint32(1); s <= packets; s++ {
		if seen[s] != 1 {
			t.Fatalf("seq %d stored %d times after recovery", s, seen[s])
		}
	}
}
