// Package telemetry defines the sensor data unit of the system: a signed,
// exactly-24-byte packet, sized to the paper's Helium economics (§4.4: "one
// (up to 24-byte) packet every one hour ... 438,000 data credits" over 50
// years).
//
// The devices are transmit-only (§4.1): they can never receive key
// updates, so their security envelope is fixed at manufacture. The paper
// frames this as "minimal security risk, but limited longitudinal trust."
// We encode that trade-off directly: each packet carries a truncated
// HMAC-SHA256 tag under a per-device key provisioned at manufacture, plus
// a monotone sequence number the endpoint uses for replay rejection. A
// 24-bit tag is no defence against a determined on-path forger — the point
// is integrity against corruption and casual spoofing, with the endpoint
// free to quarantine devices whose keys must be presumed stale.
package telemetry

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math"

	"centuryscale/internal/lpwan"
)

// SensorType identifies what quantity a reading reports.
type SensorType uint8

// Sensor types for the infrastructure-monitoring workloads the paper
// motivates: concrete health (§1), traffic, environment (§2).
const (
	SensorConcreteEMI SensorType = iota // electromechanical impedance, concrete health
	SensorStrain
	SensorVibration
	SensorTemperature
	SensorHumidity
	SensorAirQuality
	SensorTraffic
	SensorBinFill // waste-bin fill level (Seoul case study, §2)
)

var sensorNames = map[SensorType]string{
	SensorConcreteEMI: "concrete-emi",
	SensorStrain:      "strain",
	SensorVibration:   "vibration",
	SensorTemperature: "temperature",
	SensorHumidity:    "humidity",
	SensorAirQuality:  "air-quality",
	SensorTraffic:     "traffic",
	SensorBinFill:     "bin-fill",
}

// String implements fmt.Stringer.
func (s SensorType) String() string {
	if n, ok := sensorNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sensor(%d)", uint8(s))
}

// PacketSize is the exact wire size of a telemetry packet: the paper's
// 24-byte Helium data-credit unit.
const PacketSize = 24

// tagBytes is the truncated HMAC length.
const tagBytes = 3

// Packet is one sensor reading.
//
// Wire layout (big-endian):
//
//	0:8   device EUI-64
//	8:12  sequence number
//	12    sensor type
//	13:17 value (IEEE-754 float32)
//	17:21 device uptime at sampling, seconds
//	21:24 truncated HMAC-SHA256 over bytes 0:21
type Packet struct {
	Device        lpwan.EUI64
	Seq           uint32
	Sensor        SensorType
	Value         float32
	UptimeSeconds uint32
}

// Errors returned by Verify and Decode.
var (
	ErrBadSize  = errors.New("telemetry: wrong packet size")
	ErrBadTag   = errors.New("telemetry: authentication tag mismatch")
	ErrReplay   = errors.New("telemetry: stale or replayed sequence number")
	ErrValueNaN = errors.New("telemetry: NaN value rejected")
	ErrShortKey = errors.New("telemetry: key shorter than 16 bytes")
	ErrWrongDev = errors.New("telemetry: packet from unexpected device")
)

// Key is a per-device signing key provisioned at manufacture.
type Key []byte

// DeriveKey deterministically derives a device key from a fleet master
// secret and the device address — how a manufacturer provisions keys
// without a per-device database.
func DeriveKey(master []byte, dev lpwan.EUI64) Key {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte("centuryscale-device-key"))
	mac.Write(dev[:])
	return Key(mac.Sum(nil))
}

// Seal encodes and signs the packet. The key must be at least 16 bytes.
func (p Packet) Seal(key Key) ([]byte, error) {
	if len(key) < 16 {
		return nil, ErrShortKey
	}
	if math.IsNaN(float64(p.Value)) {
		return nil, ErrValueNaN
	}
	buf := make([]byte, PacketSize)
	copy(buf[0:8], p.Device[:])
	binary.BigEndian.PutUint32(buf[8:12], p.Seq)
	buf[12] = uint8(p.Sensor)
	binary.BigEndian.PutUint32(buf[13:17], math.Float32bits(p.Value))
	binary.BigEndian.PutUint32(buf[17:21], p.UptimeSeconds)
	mac := hmac.New(sha256.New, key)
	mac.Write(buf[:21])
	copy(buf[21:24], mac.Sum(nil)[:tagBytes])
	return buf, nil
}

// Parse decodes a packet without verifying its tag; use Verify for
// authenticated decoding. It validates only structure.
func Parse(wire []byte) (Packet, error) {
	var p Packet
	if len(wire) != PacketSize {
		return p, fmt.Errorf("%w: %d bytes", ErrBadSize, len(wire))
	}
	copy(p.Device[:], wire[0:8])
	p.Seq = binary.BigEndian.Uint32(wire[8:12])
	p.Sensor = SensorType(wire[12])
	p.Value = math.Float32frombits(binary.BigEndian.Uint32(wire[13:17]))
	p.UptimeSeconds = binary.BigEndian.Uint32(wire[17:21])
	return p, nil
}

// Verify parses the packet and checks its tag against the key.
func Verify(wire []byte, key Key) (Packet, error) {
	p, err := Parse(wire)
	if err != nil {
		return p, err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(wire[:21])
	if !hmac.Equal(wire[21:24], mac.Sum(nil)[:tagBytes]) {
		return p, ErrBadTag
	}
	return p, nil
}

// Verifier authenticates packets under one device key without per-call
// allocation: the keyed HMAC state and the digest buffer are built once
// and reused via Reset. Device keys are burned in at manufacture and
// never rotate (the devices are transmit-only), so a cached Verifier
// stays valid for the device's whole life. Not safe for concurrent use;
// callers verifying from multiple goroutines hold one Verifier each.
type Verifier struct {
	mac hash.Hash
	sum [sha256.Size]byte
}

// NewVerifier builds a reusable verifier for one device key.
func NewVerifier(key Key) (*Verifier, error) {
	if len(key) < 16 {
		return nil, ErrShortKey
	}
	v := &Verifier{mac: hmac.New(sha256.New, key)}
	// Run one throwaway Sum/Reset cycle: crypto/hmac snapshots its keyed
	// pad states lazily on the first Reset after a Sum, so priming here
	// makes every real Verify allocation-free.
	_ = v.mac.Sum(v.sum[:0])
	v.mac.Reset()
	return v, nil
}

// Verify parses the packet and checks its tag, reusing the keyed state.
//
//lint:hotpath budget=0 batched-ingest inner loop: Reset/Write/Sum into the preallocated digest buffer
func (v *Verifier) Verify(wire []byte) (Packet, error) {
	p, err := Parse(wire)
	if err != nil {
		return p, err
	}
	v.mac.Reset()
	v.mac.Write(wire[:21])
	if !hmac.Equal(wire[21:24], v.mac.Sum(v.sum[:0])[:tagBytes]) {
		return p, ErrBadTag
	}
	return p, nil
}

// ReplayGuard tracks the highest sequence number accepted per device and
// rejects anything at or below it. Transmit-only devices count strictly
// upward from deployment, so a simple high-water mark suffices; a bounded
// reordering window admits gateway races.
type ReplayGuard struct {
	// Window allows a packet whose seq is up to Window below an already
	// accepted successor to still land (out-of-order delivery via two
	// gateways). 0 means strict monotone.
	Window uint32

	highWater map[lpwan.EUI64]uint32
	seen      map[lpwan.EUI64]map[uint32]bool
}

// NewReplayGuard returns a guard admitting the given reordering window.
func NewReplayGuard(window uint32) *ReplayGuard {
	return &ReplayGuard{
		Window:    window,
		highWater: make(map[lpwan.EUI64]uint32),
		seen:      make(map[lpwan.EUI64]map[uint32]bool),
	}
}

// Fresh reports whether Admit would accept the packet, without mutating
// the guard. Callers that must do fallible work between the freshness
// check and the commitment (e.g. a WAL append) use Fresh first and Admit
// only once the work succeeded, holding their own lock across both.
func (g *ReplayGuard) Fresh(p Packet) error {
	hw, known := g.highWater[p.Device]
	if !known {
		return nil
	}
	// Window arithmetic is done in uint64: a device that has counted to
	// the top of the uint32 sequence space (hw near MaxUint32) would
	// otherwise wrap hw+1 to 0 and admit arbitrarily stale replays as
	// "within the window".
	switch {
	case p.Seq > hw:
		return nil
	case uint64(p.Seq)+uint64(g.Window) >= uint64(hw)+1: // within window below high water
		if g.seen[p.Device][p.Seq] {
			return fmt.Errorf("%w: seq %d already seen", ErrReplay, p.Seq)
		}
		return nil
	default:
		return fmt.Errorf("%w: seq %d <= high water %d", ErrReplay, p.Seq, hw)
	}
}

// Admit records and admits the packet if its sequence number is fresh,
// returning ErrReplay otherwise.
func (g *ReplayGuard) Admit(p Packet) error {
	if err := g.Fresh(p); err != nil {
		return err
	}
	hw, known := g.highWater[p.Device]
	g.markSeen(p.Device, p.Seq)
	if !known || p.Seq > hw {
		g.highWater[p.Device] = p.Seq
		if known {
			g.pruneSeen(p.Device, p.Seq)
		}
	}
	return nil
}

func (g *ReplayGuard) markSeen(dev lpwan.EUI64, seq uint32) {
	m := g.seen[dev]
	if m == nil {
		m = make(map[uint32]bool)
		g.seen[dev] = m
	}
	m[seq] = true
}

// pruneSeen drops seen entries that fell out of the window to bound
// memory over a 50-year run. As in Fresh, the comparison is widened to
// uint64: with hw near MaxUint32 the narrow s+Window would wrap and
// prune entries still inside the window, forgetting sequence numbers
// that must stay rejected.
func (g *ReplayGuard) pruneSeen(dev lpwan.EUI64, hw uint32) {
	m := g.seen[dev]
	for s := range m {
		if uint64(s)+uint64(g.Window) < uint64(hw) {
			delete(m, s)
		}
	}
}

// Seed raises a device's sequence high-water mark without replaying the
// individual packets — rebuilding replay protection for readings whose
// raw copies were folded into rollup buckets, where only the maximum
// sequence number survives. The seeded sequence itself is marked seen
// (so an exact replay of the last folded packet is still rejected);
// unseen sequence numbers inside the reordering window below it remain
// admissible, the same bounded tolerance live ingest grants. A seed
// never lowers an existing mark.
func (g *ReplayGuard) Seed(dev lpwan.EUI64, seq uint32) {
	hw, known := g.highWater[dev]
	if known && seq <= hw {
		return
	}
	g.highWater[dev] = seq
	g.markSeen(dev, seq)
	if known {
		g.pruneSeen(dev, seq)
	}
}

// Devices reports how many distinct devices the guard has seen.
func (g *ReplayGuard) Devices() int { return len(g.highWater) }
