package telemetry

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"centuryscale/internal/lpwan"
)

var testKey = Key(bytes.Repeat([]byte{0xAB}, 32))

func TestPacketIsExactly24Bytes(t *testing.T) {
	p := Packet{Device: lpwan.EUIFromUint64(1), Seq: 1, Sensor: SensorStrain, Value: 3.14, UptimeSeconds: 100}
	wire, err := p.Seal(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 24 {
		t.Fatalf("packet = %d bytes, the paper's data-credit unit is 24", len(wire))
	}
}

func TestSealVerifyRoundTrip(t *testing.T) {
	p := Packet{
		Device:        lpwan.EUIFromUint64(0xfeed),
		Seq:           987654,
		Sensor:        SensorConcreteEMI,
		Value:         -42.5,
		UptimeSeconds: 1577836800, // ~50 years of seconds fits uint32
	}
	wire, err := p.Seal(testKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Verify(wire, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	p := Packet{Device: lpwan.EUIFromUint64(1), Seq: 1}
	wire, _ := p.Seal(testKey)
	other := Key(bytes.Repeat([]byte{0xCD}, 32))
	if _, err := Verify(wire, other); !errors.Is(err, ErrBadTag) {
		t.Fatalf("wrong key err = %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	p := Packet{Device: lpwan.EUIFromUint64(1), Seq: 1, Value: 20}
	wire, _ := p.Seal(testKey)
	for _, idx := range []int{0, 8, 12, 13, 17, 21} {
		bad := append([]byte(nil), wire...)
		bad[idx] ^= 0x01
		if _, err := Verify(bad, testKey); err == nil {
			t.Fatalf("tamper at byte %d undetected", idx)
		}
	}
}

func TestBadSizes(t *testing.T) {
	if _, err := Parse(make([]byte, 23)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short err = %v", err)
	}
	if _, err := Verify(make([]byte, 25), testKey); !errors.Is(err, ErrBadSize) {
		t.Fatalf("long err = %v", err)
	}
}

func TestSealShortKey(t *testing.T) {
	if _, err := (Packet{}).Seal(Key("short")); !errors.Is(err, ErrShortKey) {
		t.Fatalf("short key err = %v", err)
	}
}

func TestSealRejectsNaN(t *testing.T) {
	p := Packet{Value: float32(math.NaN())}
	if _, err := p.Seal(testKey); !errors.Is(err, ErrValueNaN) {
		t.Fatalf("NaN err = %v", err)
	}
}

func TestDeriveKeyStableAndDistinct(t *testing.T) {
	master := []byte("fleet-master-secret")
	a1 := DeriveKey(master, lpwan.EUIFromUint64(1))
	a2 := DeriveKey(master, lpwan.EUIFromUint64(1))
	b := DeriveKey(master, lpwan.EUIFromUint64(2))
	if !bytes.Equal(a1, a2) {
		t.Fatal("key derivation not deterministic")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("different devices derived the same key")
	}
	if len(a1) != 32 {
		t.Fatalf("derived key length = %d", len(a1))
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(dev uint64, seq uint32, sensor uint8, value float32, up uint32) bool {
		if math.IsNaN(float64(value)) {
			return true // NaN rejected by design, covered elsewhere
		}
		p := Packet{
			Device:        lpwan.EUIFromUint64(dev),
			Seq:           seq,
			Sensor:        SensorType(sensor % 8),
			Value:         value,
			UptimeSeconds: up,
		}
		wire, err := p.Seal(testKey)
		if err != nil {
			return false
		}
		got, err := Verify(wire, testKey)
		return err == nil && got == p
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSensorTypeNames(t *testing.T) {
	if SensorBinFill.String() != "bin-fill" || SensorConcreteEMI.String() != "concrete-emi" {
		t.Fatal("sensor names wrong")
	}
	if SensorType(200).String() != "sensor(200)" {
		t.Fatal("unknown sensor fallback wrong")
	}
}

func mkPacket(dev uint64, seq uint32) Packet {
	return Packet{Device: lpwan.EUIFromUint64(dev), Seq: seq}
}

func TestReplayGuardMonotone(t *testing.T) {
	g := NewReplayGuard(0)
	if err := g.Admit(mkPacket(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit(mkPacket(1, 6)); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit(mkPacket(1, 6)); !errors.Is(err, ErrReplay) {
		t.Fatalf("duplicate seq admitted: %v", err)
	}
	if err := g.Admit(mkPacket(1, 4)); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale seq admitted: %v", err)
	}
}

func TestReplayGuardPerDevice(t *testing.T) {
	g := NewReplayGuard(0)
	if err := g.Admit(mkPacket(1, 100)); err != nil {
		t.Fatal(err)
	}
	// A different device with a lower seq is fine.
	if err := g.Admit(mkPacket(2, 5)); err != nil {
		t.Fatal(err)
	}
	if g.Devices() != 2 {
		t.Fatalf("devices = %d", g.Devices())
	}
}

func TestReplayGuardWindow(t *testing.T) {
	g := NewReplayGuard(4)
	if err := g.Admit(mkPacket(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrival within the window: admitted once.
	if err := g.Admit(mkPacket(1, 8)); err != nil {
		t.Fatalf("in-window seq rejected: %v", err)
	}
	if err := g.Admit(mkPacket(1, 8)); !errors.Is(err, ErrReplay) {
		t.Fatal("in-window duplicate admitted")
	}
	// Far below the window: rejected.
	if err := g.Admit(mkPacket(1, 2)); !errors.Is(err, ErrReplay) {
		t.Fatal("below-window seq admitted")
	}
}

// TestReplayGuardWraparound pins the uint64-widened window arithmetic at
// the top of the uint32 sequence space. The narrow forms overflowed two
// ways: Fresh's p.Seq+Window >= hw+1 wrapped hw+1 to 0 once hw hit
// MaxUint32, admitting arbitrarily stale replays, and pruneSeen's
// s+Window < hw wrapped s+Window small, forgetting in-window sequence
// numbers that must stay rejected.
func TestReplayGuardWraparound(t *testing.T) {
	const max = math.MaxUint32

	cases := []struct {
		name   string
		window uint32
		admit  []uint32 // admitted in order; all must succeed
		seq    uint32   // then probed via Admit
		replay bool     // probe must be rejected as a replay
	}{
		{"stale far below hw at MaxUint32", 16, []uint32{max}, 100, true},
		{"stale just below window at MaxUint32", 16, []uint32{max}, max - 16, true},
		{"in-window fresh at MaxUint32", 16, []uint32{max}, max - 15, false},
		{"in-window duplicate at MaxUint32", 16, []uint32{max, max - 8}, max - 8, true},
		{"duplicate hw at MaxUint32", 16, []uint32{max}, max, true},
		{"strict monotone at MaxUint32", 0, []uint32{max}, max - 1, true},
		{"hw just under the wrap", 16, []uint32{max - 1}, max, false},
		{"low-seq window unchanged", 16, []uint32{20}, 10, false},
		{"low-seq stale unchanged", 16, []uint32{20}, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewReplayGuard(tc.window)
			for _, s := range tc.admit {
				if err := g.Admit(mkPacket(1, s)); err != nil {
					t.Fatalf("setup admit seq %d: %v", s, err)
				}
			}
			err := g.Admit(mkPacket(1, tc.seq))
			if tc.replay && !errors.Is(err, ErrReplay) {
				t.Fatalf("seq %d admitted, want replay rejection (err=%v)", tc.seq, err)
			}
			if !tc.replay && err != nil {
				t.Fatalf("seq %d rejected: %v", tc.seq, err)
			}
		})
	}
}

// TestReplayGuardPruneNearWrap drives the high-water mark to the top of
// the sequence space and checks pruning keeps exactly the in-window seen
// set: entries inside the window survive (their replays stay rejected)
// and the set stays bounded.
func TestReplayGuardPruneNearWrap(t *testing.T) {
	g := NewReplayGuard(8)
	dev := lpwan.EUIFromUint64(1)
	for _, s := range []uint32{math.MaxUint32 - 10, math.MaxUint32 - 4, math.MaxUint32} {
		if err := g.Admit(mkPacket(1, s)); err != nil {
			t.Fatalf("admit %d: %v", s, err)
		}
	}
	seen := g.seen[dev]
	// MaxUint32-4 is within window 8 of hw=MaxUint32: it must still be
	// remembered, so replaying it is rejected.
	if !seen[math.MaxUint32-4] {
		t.Fatal("in-window seen entry pruned near the wrap")
	}
	if err := g.Admit(mkPacket(1, math.MaxUint32-4)); !errors.Is(err, ErrReplay) {
		t.Fatal("replay of in-window seq admitted after prune near the wrap")
	}
	// MaxUint32-10 fell out of the window and must have been pruned.
	if seen[math.MaxUint32-10] {
		t.Fatal("out-of-window seen entry survived pruning")
	}
}

func TestReplayGuardPrunes(t *testing.T) {
	g := NewReplayGuard(8)
	for seq := uint32(1); seq <= 10000; seq++ {
		if err := g.Admit(mkPacket(1, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(g.seen[lpwan.EUIFromUint64(1)]); n > 16 {
		t.Fatalf("seen set grew to %d entries; replay guard must stay bounded over 50-year runs", n)
	}
}

func BenchmarkSealVerify(b *testing.B) {
	p := Packet{Device: lpwan.EUIFromUint64(1), Seq: 1, Value: 1.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seq = uint32(i)
		wire, err := p.Seal(testKey)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Verify(wire, testKey); err != nil {
			b.Fatal(err)
		}
	}
}
