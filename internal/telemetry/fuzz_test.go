package telemetry

import (
	"bytes"
	"testing"
)

// FuzzVerify drives the packet verifier with arbitrary bytes: never
// panic, never verify anything that wasn't sealed with the key.
func FuzzVerify(f *testing.F) {
	key := Key(bytes.Repeat([]byte{0x5A}, 32))
	valid, err := Packet{Seq: 1, Value: 3.5}.Seal(key)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:20])
	f.Add(bytes.Repeat([]byte{0}, PacketSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Verify(data, key)
		if err != nil {
			return
		}
		// Anything that verifies must re-seal to the same bytes: the
		// format is canonical and the tag is deterministic.
		wire, err := p.Seal(key)
		if err != nil {
			t.Fatalf("verified packet failed to re-seal: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("round trip not canonical:\n in: %x\nout: %x", data, wire)
		}
	})
}
