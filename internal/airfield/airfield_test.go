package airfield

import (
	"math"
	"testing"
	"time"

	"centuryscale/internal/rng"
)

func testField() *Field {
	return Synthetic(4000, 25, rng.New(1))
}

func TestFieldAboveBackground(t *testing.T) {
	f := testField()
	for probe := 0; probe < 100; probe++ {
		x := float64(probe) * 40
		v := f.At(x, x, 12*time.Hour)
		if v < f.Background*0.5 {
			t.Fatalf("field at (%v,%v) = %v, below background", x, x, v)
		}
	}
}

func TestFieldPeaksAtSources(t *testing.T) {
	f := &Field{
		SideMeters: 1000, Background: 8,
		Sources: []Source{{X: 500, Y: 500, Strength: 40, Radius: 100}},
	}
	center := f.At(500, 500, 0)
	if math.Abs(center-48) > 1e-9 {
		t.Fatalf("center = %v, want background+strength", center)
	}
	far := f.At(0, 0, 0)
	if far > 8.1 {
		t.Fatalf("far field = %v, want ~background", far)
	}
	// Localized: one radius away the plume has decayed to 1/e.
	at1r := f.At(600, 500, 0)
	if math.Abs(at1r-(8+40/math.E)) > 0.1 {
		t.Fatalf("1-radius value = %v", at1r)
	}
}

func TestDiurnalCycle(t *testing.T) {
	f := &Field{
		SideMeters: 1000, Background: 0, DiurnalSwing: 0.4,
		Sources: []Source{{X: 500, Y: 500, Strength: 10, Radius: 100, TrafficLinked: true}},
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		v := f.At(500, 500, time.Duration(h)*time.Hour)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 1.5 {
		t.Fatalf("diurnal swing too small: %v..%v", lo, hi)
	}
	// Non-traffic sources are steady.
	steady := &Field{
		SideMeters: 1000, DiurnalSwing: 0.4,
		Sources: []Source{{X: 500, Y: 500, Strength: 10, Radius: 100}},
	}
	if steady.At(500, 500, 0) != steady.At(500, 500, 8*time.Hour) {
		t.Fatal("industrial source varied with time of day")
	}
}

func TestIDWInterpolates(t *testing.T) {
	samples := []Sample{
		{X: 0, Y: 0, V: 10},
		{X: 100, Y: 0, V: 20},
	}
	// Exactly at a sample: its value.
	if v := IDW(samples, 0, 0, 2); v != 10 {
		t.Fatalf("at sample = %v", v)
	}
	// Midpoint: average.
	if v := IDW(samples, 50, 0, 2); math.Abs(v-15) > 1e-9 {
		t.Fatalf("midpoint = %v", v)
	}
	// Near one sample: close to it.
	if v := IDW(samples, 95, 0, 2); v < 18 {
		t.Fatalf("near-sample estimate = %v", v)
	}
}

func TestIDWPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty IDW did not panic")
		}
	}()
	IDW(nil, 0, 0, 2)
}

func TestReconstructionImprovesWithDensity(t *testing.T) {
	// The §2 claim: block-granularity measurement is required. Error
	// must fall substantially as density rises to block scale.
	f := testField()
	res := f.DensityStudy([]int{5, 50, 500, 5000}, 0.05, rng.New(2))
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].RMSE >= res[i-1].RMSE {
			t.Fatalf("RMSE not decreasing with density: %+v", res)
		}
	}
	// Sparse (city-scale spacing): poor correlation. Dense (block-scale
	// spacing): good.
	if res[0].Corr > 0.6 {
		t.Fatalf("5 sensors correlate too well: %v", res[0].Corr)
	}
	if res[3].Corr < 0.9 {
		t.Fatalf("5000 sensors correlate too poorly: %v", res[3].Corr)
	}
	// The knee: by the time spacing reaches ~source radius (block
	// scale), correlation exceeds 0.8.
	if res[2].MetersPerSide > 200 {
		t.Fatalf("500-sensor spacing = %v m", res[2].MetersPerSide)
	}
	if res[2].Corr < 0.75 {
		t.Fatalf("block-scale correlation = %v", res[2].Corr)
	}
}

func TestSampleNoise(t *testing.T) {
	f := testField()
	clean := f.SampleGrid(200, 0, 0, rng.New(3))
	noisy := f.SampleGrid(200, 0, 0.3, rng.New(3))
	// Same positions (same seed), different values on average.
	diff := 0
	for i := range clean {
		if clean[i].X != noisy[i].X {
			t.Fatal("positions diverged under same seed")
		}
		if clean[i].V != noisy[i].V {
			diff++
		}
	}
	if diff < 190 {
		t.Fatalf("only %d of 200 samples perturbed by noise", diff)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(4000, 25, rng.New(7))
	b := Synthetic(4000, 25, rng.New(7))
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatal("fields differ under same seed")
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty-field": func() { Synthetic(0, 5, rng.New(1)) },
		"no-sensors":  func() { testField().SampleGrid(0, 0, 0, rng.New(1)) },
		"tiny-grid":   func() { testField().ReconstructionError([]Sample{{V: 1}}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkDensityStudy(b *testing.B) {
	f := testField()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.DensityStudy([]int{50, 500}, 0.05, rng.New(uint64(i)))
	}
}
