// Package airfield models urban air pollution as a spatial field and the
// sensing-density question the paper raises in §2: "Air pollution is
// highly localized, and requires measurement at city-block granularity."
//
// The ground truth is a synthetic but structured field: a city-wide
// background plus Gaussian plumes around emission sources (arterial
// roads, industry) whose footprints are block-scale, modulated by a
// diurnal traffic cycle. A deployment samples the field at sensor
// positions (with instrument noise); an analyst reconstructs the full
// field from those samples with inverse-distance weighting. The
// experiment the package supports: reconstruction error versus sensor
// density, which quantifies why instrumenting one intersection "will not
// give city planners an accurate picture."
package airfield

import (
	"math"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/stats"
)

// Source is one pollution emitter: a Gaussian plume of the given peak
// strength (µg/m³ above background at the center) and radius (meters to
// the 1/e point).
type Source struct {
	X, Y     float64
	Strength float64
	Radius   float64
	// TrafficLinked sources follow the diurnal cycle; others (industry)
	// emit steadily.
	TrafficLinked bool
}

// Field is a synthetic ground-truth pollution field over a square city.
type Field struct {
	// SideMeters is the city square's side.
	SideMeters float64
	// Background is the city-wide floor in µg/m³.
	Background float64
	// DiurnalSwing in [0,1): traffic-linked sources swing ±this fraction
	// over the day (rush-hour peaks at 8am and 6pm).
	DiurnalSwing float64
	Sources      []Source
}

// Synthetic builds a field with the given number of block-scale sources
// scattered deterministically from the seed source.
func Synthetic(sideMeters float64, nSources int, src *rng.Source) *Field {
	if sideMeters <= 0 || nSources <= 0 {
		panic("airfield: empty field config")
	}
	f := &Field{
		SideMeters:   sideMeters,
		Background:   8, // typical urban PM2.5 floor
		DiurnalSwing: 0.4,
	}
	for i := 0; i < nSources; i++ {
		f.Sources = append(f.Sources, Source{
			X:             src.Uniform(0, sideMeters),
			Y:             src.Uniform(0, sideMeters),
			Strength:      src.Uniform(10, 60),
			Radius:        src.Uniform(60, 180), // block-scale footprints
			TrafficLinked: src.Bernoulli(0.7),
		})
	}
	return f
}

// diurnal returns the traffic modulation factor at virtual time t:
// 1 ± swing with peaks near 8:00 and 18:00.
func (f *Field) diurnal(t time.Duration) float64 {
	if f.DiurnalSwing <= 0 {
		return 1
	}
	dayFrac := math.Mod(float64(t)/float64(sim.Day), 1)
	// Two peaks per day, shifted so maxima land near 8am and 6pm.
	cycle := math.Sin(2*2*math.Pi*dayFrac - 1.3)
	return 1 + f.DiurnalSwing*cycle
}

// At returns the concentration at (x, y) at time t in µg/m³.
func (f *Field) At(x, y float64, t time.Duration) float64 {
	v := f.Background
	mod := f.diurnal(t)
	for _, s := range f.Sources {
		dx, dy := x-s.X, y-s.Y
		g := s.Strength * math.Exp(-(dx*dx+dy*dy)/(s.Radius*s.Radius))
		if s.TrafficLinked {
			g *= mod
		}
		v += g
	}
	return v
}

// Sample is one sensor observation.
type Sample struct {
	X, Y float64
	V    float64
}

// SampleGrid places n sensors uniformly at random in the city and samples
// the field at time t with multiplicative log-normal instrument noise of
// the given sigma (0 disables noise).
func (f *Field) SampleGrid(n int, t time.Duration, noiseSigma float64, src *rng.Source) []Sample {
	if n <= 0 {
		panic("airfield: non-positive sensor count")
	}
	// Positions come from the primary stream and noise from a split
	// child, so the same seed places sensors identically whether or not
	// noise is enabled — comparisons then isolate the noise effect.
	noise := src.Split("instrument-noise")
	out := make([]Sample, n)
	for i := range out {
		x := src.Uniform(0, f.SideMeters)
		y := src.Uniform(0, f.SideMeters)
		v := f.At(x, y, t)
		if noiseSigma > 0 {
			v *= noise.LogNormal(0, noiseSigma)
		}
		out[i] = Sample{X: x, Y: y, V: v}
	}
	return out
}

// IDW estimates the field at (x, y) from samples by inverse-distance
// weighting with the given power (2 is the standard choice). A sample
// within 1 m returns its value directly.
func IDW(samples []Sample, x, y, power float64) float64 {
	if len(samples) == 0 {
		panic("airfield: IDW with no samples")
	}
	num, den := 0.0, 0.0
	for _, s := range samples {
		dx, dy := x-s.X, y-s.Y
		d2 := dx*dx + dy*dy
		if d2 < 1 {
			return s.V
		}
		w := 1 / math.Pow(d2, power/2)
		num += w * s.V
		den += w
	}
	return num / den
}

// ReconstructionError evaluates IDW reconstruction from the samples
// against ground truth on a res×res grid at time t, returning RMSE
// (µg/m³) and Pearson correlation.
func (f *Field) ReconstructionError(samples []Sample, res int, t time.Duration) (rmse, corr float64) {
	if res <= 1 {
		panic("airfield: evaluation grid too small")
	}
	truth := make([]float64, 0, res*res)
	est := make([]float64, 0, res*res)
	step := f.SideMeters / float64(res-1)
	for i := 0; i < res; i++ {
		for j := 0; j < res; j++ {
			x, y := float64(i)*step, float64(j)*step
			truth = append(truth, f.At(x, y, t))
			est = append(est, IDW(samples, x, y, 2))
		}
	}
	return stats.RMSE(truth, est), stats.Pearson(truth, est)
}

// DensityResult is one row of the density study.
type DensityResult struct {
	Sensors       int
	MetersPerSide float64 // mean inter-sensor spacing (side/sqrt(n))
	RMSE          float64
	Corr          float64
}

// DensityStudy sweeps sensor counts and reports reconstruction quality.
// The paper's claim corresponds to the knee: error stays high until mean
// sensor spacing approaches the source radius (a city block).
func (f *Field) DensityStudy(counts []int, noiseSigma float64, src *rng.Source) []DensityResult {
	out := make([]DensityResult, 0, len(counts))
	t := 8 * time.Hour // morning rush: the hardest, most structured field
	for _, n := range counts {
		samples := f.SampleGrid(n, t, noiseSigma, src.Split("density"))
		rmse, corr := f.ReconstructionError(samples, 30, t)
		out = append(out, DensityResult{
			Sensors:       n,
			MetersPerSide: f.SideMeters / math.Sqrt(float64(n)),
			RMSE:          rmse,
			Corr:          corr,
		})
	}
	return out
}
