package rollup

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/tsdb"
)

func dev(n uint64) lpwan.EUI64 { return lpwan.EUIFromUint64(n) }

func pt(d lpwan.EUI64, at time.Duration, seq uint32, v float32) tsdb.Point {
	return tsdb.Point{Device: d, At: at, Seq: seq, Value: v}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Hourly: time.Hour, Daily: 90 * time.Minute}); err == nil {
		t.Fatal("daily not a multiple of hourly: want error")
	}
	if _, err := New(Config{Hourly: -time.Hour}); err == nil {
		t.Fatal("negative width: want error")
	}
	e := mustNew(t, Config{})
	if e.Config().Hourly != DefaultHourly || e.Config().Daily != DefaultDaily {
		t.Fatalf("defaults not applied: %+v", e.Config())
	}
}

func TestFoldBasicAggregates(t *testing.T) {
	e := mustNew(t, Config{})
	d := dev(1)
	pts := []tsdb.Point{
		pt(d, 10*time.Minute, 1, 2.0),
		pt(d, 20*time.Minute, 2, 8.0),
		pt(d, 50*time.Minute, 3, -1.0),
		pt(d, 70*time.Minute, 4, 5.0), // second hour
	}
	e.Advance(2 * time.Hour)
	n := e.Fold([]tsdb.DrainedSeries{{Device: d, Points: pts}})
	if n != 4 {
		t.Fatalf("folded %d, want 4", n)
	}
	hourly, daily := e.Series(d)
	if len(hourly) != 2 {
		t.Fatalf("hourly buckets = %d, want 2", len(hourly))
	}
	b := hourly[0]
	if b.Start != 0 || b.Count != 3 || b.Sum != 9.0 || b.Min != -1 || b.Max != 8 {
		t.Fatalf("bucket 0 = %+v", b)
	}
	if b.First != 10*time.Minute || b.Last != 50*time.Minute || b.MaxGap != 30*time.Minute {
		t.Fatalf("bucket 0 gap stats = %+v", b)
	}
	if b.MaxSeq != 3 {
		t.Fatalf("bucket 0 MaxSeq = %d", b.MaxSeq)
	}
	if hourly[1].Start != time.Hour || hourly[1].Count != 1 {
		t.Fatalf("bucket 1 = %+v", hourly[1])
	}
	if len(daily) != 0 {
		t.Fatalf("daily buckets before a full day sealed: %+v", daily)
	}
	if e.FoldedBefore() != 2*time.Hour {
		t.Fatalf("FoldedBefore = %v", e.FoldedBefore())
	}
}

func TestAdvanceAlignsAndNeverRegresses(t *testing.T) {
	e := mustNew(t, Config{})
	if got := e.Advance(90 * time.Minute); got != time.Hour {
		t.Fatalf("Advance(90m) = %v, want 1h", got)
	}
	if got := e.Advance(30 * time.Minute); got != time.Hour {
		t.Fatalf("watermark regressed to %v", got)
	}
	if got := e.Advance(-time.Hour); got != time.Hour {
		t.Fatalf("negative advance moved watermark to %v", got)
	}
}

func TestDailyDerivation(t *testing.T) {
	e := mustNew(t, Config{})
	d := dev(7)
	// One point per hour for 26 hours.
	var pts []tsdb.Point
	for h := 0; h < 26; h++ {
		pts = append(pts, pt(d, time.Duration(h)*time.Hour+time.Minute, uint32(h+1), float32(h)))
	}
	e.Advance(26 * time.Hour)
	e.Fold([]tsdb.DrainedSeries{{Device: d, Points: pts}})
	hourly, daily := e.Series(d)
	if len(hourly) != 26 {
		t.Fatalf("hourly = %d", len(hourly))
	}
	if len(daily) != 1 {
		t.Fatalf("daily = %d, want 1 (only the first full day is sealed)", len(daily))
	}
	db := daily[0]
	if db.Start != 0 || db.Count != 24 {
		t.Fatalf("daily bucket = %+v", db)
	}
	if db.Sum != float64(0+23)*24/2 {
		t.Fatalf("daily Sum = %v", db.Sum)
	}
	if db.First != time.Minute || db.Last != 23*time.Hour+time.Minute {
		t.Fatalf("daily First/Last = %v/%v", db.First, db.Last)
	}
	if db.MaxGap != time.Hour {
		t.Fatalf("daily MaxGap = %v (cross-hourly gaps must merge)", db.MaxGap)
	}
	if db.MaxSeq != 24 {
		t.Fatalf("daily MaxSeq = %d", db.MaxSeq)
	}
	if e.DailyFoldedBefore() != sim.Day {
		t.Fatalf("DailyFoldedBefore = %v", e.DailyFoldedBefore())
	}
}

// Incremental folds (many small advances) must converge on exactly the
// state one big fold produces — this is what makes crash-replay-refold
// and checkpoint-cadence folding equivalent.
func TestIncrementalEqualsBatch(t *testing.T) {
	src := rng.New(42)
	var pts []tsdb.Point
	d := dev(3)
	at := time.Duration(0)
	for i := 0; i < 500; i++ {
		at += time.Duration(src.Intn(int(2*time.Hour))) + time.Second
		pts = append(pts, pt(d, at, uint32(i+1), float32(src.Float64())*100-50))
	}
	horizon := at + time.Hour

	batch := mustNew(t, Config{})
	batch.Advance(horizon)
	batch.Fold([]tsdb.DrainedSeries{{Device: d, Points: append([]tsdb.Point(nil), pts...)}})

	incr := mustNew(t, Config{})
	prev := time.Duration(0)
	for cut := 5 * time.Hour; ; cut += 5 * time.Hour {
		if cut > horizon {
			cut = horizon
		}
		incr.Advance(cut)
		wm := incr.FoldedBefore()
		var chunk []tsdb.Point
		for _, p := range pts {
			if p.At >= prev && p.At < wm {
				chunk = append(chunk, p)
			}
		}
		incr.Fold([]tsdb.DrainedSeries{{Device: d, Points: chunk}})
		prev = wm
		if cut == horizon {
			break
		}
	}

	if !reflect.DeepEqual(batch.Snapshot(), incr.Snapshot()) {
		t.Fatal("incremental folds diverged from one batch fold")
	}
	if incr.StaleDrops() != 0 {
		t.Fatalf("StaleDrops = %d", incr.StaleDrops())
	}
}

// Two engines fed the same points in different arrival orders must
// produce byte-identical snapshots: the fold's sort is the determinism
// guarantee checkpoint byte-stability rests on.
func TestFoldOrderIndependentAndByteDeterministic(t *testing.T) {
	src := rng.New(7)
	var pts []tsdb.Point
	for i := 0; i < 300; i++ {
		d := dev(uint64(src.Intn(5) + 1))
		at := time.Duration(src.Int63n(int64(3 * sim.Day)))
		pts = append(pts, pt(d, at, uint32(i+1), float32(src.Float64())))
	}
	shuffled := append([]tsdb.Point(nil), pts...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}

	fold := func(in []tsdb.Point) EngineState {
		e := mustNew(t, Config{})
		e.Advance(4 * sim.Day)
		byDev := map[lpwan.EUI64][]tsdb.Point{}
		for _, p := range in {
			byDev[p.Device] = append(byDev[p.Device], p)
		}
		var ds []tsdb.DrainedSeries
		for d, ps := range byDev {
			ds = append(ds, tsdb.DrainedSeries{Device: d, Points: ps})
		}
		e.Fold(ds)
		return e.Snapshot()
	}

	a, b := fold(pts), fold(shuffled)
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatal("snapshots differ across fold input orders")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := mustNew(t, Config{})
	d1, d2 := dev(1), dev(2)
	e.Advance(30 * time.Hour)
	e.Fold([]tsdb.DrainedSeries{
		{Device: d1, Points: []tsdb.Point{pt(d1, time.Minute, 1, 1), pt(d1, 25*time.Hour, 2, 2)}},
		{Device: d2, Points: []tsdb.Point{pt(d2, 2*time.Hour, 9, 3)}},
	})
	st := e.Snapshot()

	r, err := Restore(e.Config(), st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !reflect.DeepEqual(r.Snapshot(), st) {
		t.Fatal("restore round trip diverged")
	}
	if r.FoldedBefore() != 30*time.Hour || r.DailyFoldedBefore() != sim.Day {
		t.Fatalf("watermarks lost: %v / %v", r.FoldedBefore(), r.DailyFoldedBefore())
	}
	if r.MaxSeq(d1) != 2 || r.MaxSeq(d2) != 9 || r.MaxSeq(dev(3)) != 0 {
		t.Fatalf("MaxSeq after restore: %d %d %d", r.MaxSeq(d1), r.MaxSeq(d2), r.MaxSeq(dev(3)))
	}

	if _, err := Restore(Config{Hourly: 30 * time.Minute, Daily: sim.Day}, st); err == nil {
		t.Fatal("geometry change must refuse to restore")
	}
}

func TestStaleFoldRefused(t *testing.T) {
	e := mustNew(t, Config{})
	d := dev(1)
	e.Advance(2 * time.Hour)
	e.Fold([]tsdb.DrainedSeries{{Device: d, Points: []tsdb.Point{pt(d, 90*time.Minute, 1, 1)}}})
	// A point below the sealed hourly bucket arrives in a later fold:
	// must be dropped, not folded into (or before) the sealed bucket.
	e.Advance(3 * time.Hour)
	e.Fold([]tsdb.DrainedSeries{{Device: d, Points: []tsdb.Point{pt(d, 10*time.Minute, 2, 5)}}})
	if e.StaleDrops() != 1 {
		t.Fatalf("StaleDrops = %d, want 1", e.StaleDrops())
	}
	hourly, _ := e.Series(d)
	if len(hourly) != 1 || hourly[0].Count != 1 || hourly[0].MaxSeq != 1 {
		t.Fatalf("sealed bucket mutated: %+v", hourly)
	}
}

// Century horizon: daily bucketing at year 100 must not overflow or
// misalign (At values near 3.16e18 ns).
func TestCenturyAlignment(t *testing.T) {
	e := mustNew(t, Config{})
	d := dev(1)
	at := 100*sim.Year - time.Minute
	e.Advance(100 * sim.Year)
	e.Fold([]tsdb.DrainedSeries{{Device: d, Points: []tsdb.Point{pt(d, at, 1, 1)}}})
	hourly, daily := e.Series(d)
	if len(hourly) != 1 || hourly[0].Start != AlignDown(at, time.Hour) {
		t.Fatalf("hourly at century: %+v", hourly)
	}
	if len(daily) != 1 || daily[0].Start != AlignDown(at, sim.Day) {
		t.Fatalf("daily at century: %+v", daily)
	}
	if hb, db := e.Buckets(); hb != 1 || db != 1 {
		t.Fatalf("Buckets() = %d, %d", hb, db)
	}
}
