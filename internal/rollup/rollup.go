// Package rollup is the read-side half of the storage engine's century
// story: tiered downsampling of raw points into hourly and daily
// aggregate buckets, computed incrementally at compaction/checkpoint
// time and persisted through the endpoint's snapshot machinery.
//
// The paper's premise is sensor data that outlives its writers, and the
// long-lived value of such data is aggregate questions — uptime, gaps,
// trends over decades (the CDBB digital-twin and Signpost city-sensing
// workloads). Keeping every raw point hot forever makes those questions
// linear scans over a half-century of appends; dropping old points (the
// old KeepOnePer retention) makes them wrong. Rollups resolve the
// tension: every point older than the fold watermark is summarized —
// exactly once — into an hourly bucket carrying count/sum/min/max plus
// gap statistics (first/last arrival and the largest in-bucket
// inter-arrival gap), hourly buckets older than a day are additionally
// merged into daily buckets, and the raw points may then be dropped
// entirely. A windowed aggregate over any sealed span is answered from
// O(buckets) instead of O(points), and is bit-equal to the same
// aggregate computed from the raw points it replaced.
//
// Determinism is load-bearing: the fold sorts each device's drained
// points into a total order before summing, so two seed-identical runs
// produce byte-identical bucket state (and therefore byte-identical
// checkpoints), and a crash-reboot that re-folds replayed points
// converges on the same bytes. Nothing in this package reads the wall
// clock — bucketing is pure virtual-time Duration arithmetic, safe at
// the daily tier across 100-year spans (well inside the ±292-year
// int64 horizon centurylint enforces).
//
// The sealed region is immutable by contract: once the watermark has
// passed a bucket, no new point may land below it (internal/cloud
// refuses such arrivals before acknowledging them), so a bucket's bytes
// never change after the fold that completes it.
package rollup

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/tsdb"
)

// Defaults for Config zero values.
const (
	DefaultHourly = time.Hour
	DefaultDaily  = 24 * time.Hour
)

// Config fixes the two tier widths. The daily width must be a positive
// multiple of the hourly width; both are persisted with the bucket
// state, and a snapshot folded at one geometry refuses to load into an
// engine configured with another (re-bucketing summarized data exactly
// is impossible once the raw points are gone).
type Config struct {
	// Hourly is the fine tier's bucket width (default one hour).
	Hourly time.Duration
	// Daily is the coarse tier's bucket width (default 24 hours); it
	// must be a multiple of Hourly.
	Daily time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Hourly == 0 {
		c.Hourly = DefaultHourly
	}
	if c.Daily == 0 {
		c.Daily = DefaultDaily
	}
	if c.Hourly <= 0 || c.Daily <= 0 {
		return c, fmt.Errorf("rollup: tier widths must be positive (hourly %v, daily %v)", c.Hourly, c.Daily)
	}
	if c.Daily%c.Hourly != 0 {
		return c, fmt.Errorf("rollup: daily width %v is not a multiple of hourly width %v", c.Daily, c.Hourly)
	}
	return c, nil
}

// Bucket is one aggregate bucket at some tier. Start is aligned to the
// tier width; only non-empty buckets are stored, so an absent bucket
// means "no point arrived in this span". First/Last/MaxGap are the gap
// statistics: together with its neighbors' Last/First, a walk over a
// tier reconstructs every inter-arrival gap in the sealed region
// exactly, without the points.
type Bucket struct {
	Start  time.Duration // tier-aligned bucket start
	Count  uint64        // points folded in
	Sum    float64       // sum of values, accumulated in sorted order
	Min    float32       // smallest value
	Max    float32       // largest value
	First  time.Duration // earliest arrival in the bucket
	Last   time.Duration // latest arrival in the bucket
	MaxGap time.Duration // largest gap between consecutive in-bucket arrivals
	MaxSeq uint32        // highest sequence number folded (replay-guard seed)
}

// addPoint folds one point into the bucket. Points must arrive in
// ascending (At, Seq) order within the bucket — the fold sorts.
func (b *Bucket) addPoint(p tsdb.Point) {
	if b.Count == 0 {
		b.Min, b.Max = p.Value, p.Value
		b.First, b.Last = p.At, p.At
	} else {
		if p.Value < b.Min {
			b.Min = p.Value
		}
		if p.Value > b.Max {
			b.Max = p.Value
		}
		if g := p.At - b.Last; g > b.MaxGap {
			b.MaxGap = g
		}
		b.Last = p.At
	}
	b.Count++
	b.Sum += float64(p.Value)
	if p.Seq > b.MaxSeq {
		b.MaxSeq = p.Seq
	}
}

// merge folds a later bucket into b (the daily-tier derivation). The
// argument's span must lie entirely after b's Last.
func (b *Bucket) merge(o Bucket) {
	if b.Count == 0 {
		start := b.Start
		*b = o
		b.Start = start
		return
	}
	if o.Count == 0 {
		return
	}
	if o.Min < b.Min {
		b.Min = o.Min
	}
	if o.Max > b.Max {
		b.Max = o.Max
	}
	if g := o.First - b.Last; g > b.MaxGap {
		b.MaxGap = g
	}
	if o.MaxGap > b.MaxGap {
		b.MaxGap = o.MaxGap
	}
	b.Last = o.Last
	b.Count += o.Count
	b.Sum += o.Sum
	if o.MaxSeq > b.MaxSeq {
		b.MaxSeq = o.MaxSeq
	}
}

// devState is one device's tiers: sorted, non-overlapping, non-empty
// buckets. Hourly covers [0, FoldedBefore); Daily covers the hourly
// buckets below DailyFoldedBefore, 24 at a time.
type devState struct {
	hourly []Bucket
	daily  []Bucket
}

// Engine holds the per-device tier state. All methods are safe for
// concurrent use; the fold serializes against itself and against
// readers on one mutex (folds are checkpoint-cadence rare, and a
// reader's copy of a device's tiers is a small memcpy).
type Engine struct {
	cfg Config

	// folded is FoldedBefore in nanoseconds, readable lock-free: the
	// ingest hot path checks every arrival stamp against it.
	folded atomic.Int64

	mu          sync.Mutex
	dailyFolded time.Duration
	dev         map[lpwan.EUI64]*devState
	staleDrops  atomic.Uint64 // points below the watermark refused by Fold (invariant breach guard)
}

// New returns an empty engine. The config is normalized (zero widths
// take defaults) and validated.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, dev: make(map[lpwan.EUI64]*devState)}, nil
}

// Config returns the engine's normalized tier geometry.
func (e *Engine) Config() Config { return e.cfg }

// FoldedBefore is the fold watermark: every point with At below it has
// been summarized into the hourly tier (and the raw copy may be gone).
// Lock-free — the ingest path reads it per packet.
func (e *Engine) FoldedBefore() time.Duration {
	return time.Duration(e.folded.Load())
}

// DailyFoldedBefore is the coarse watermark: hourly buckets below it
// have been merged into daily buckets.
func (e *Engine) DailyFoldedBefore() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dailyFolded
}

// StaleDrops counts points Fold refused because they were below the
// already-published watermark. Non-zero means the caller's sealed-
// region admission barrier has a hole; the crash-safety suite asserts
// it stays zero.
func (e *Engine) StaleDrops() uint64 { return e.staleDrops.Load() }

// AlignDown truncates t to a multiple of width.
func AlignDown(t, width time.Duration) time.Duration {
	if t < 0 {
		return 0
	}
	return t - t%width
}

// Advance publishes a new fold watermark WITHOUT folding anything yet.
// The caller's protocol (see cloud.Store.FoldRollups) is: publish the
// watermark, run a barrier over the ingest admission locks so no
// in-flight append straddles it, then drain the storage engine below
// the watermark and hand the drained points to Fold. upTo is clamped
// down to the hourly grid; a watermark never moves backwards.
func (e *Engine) Advance(upTo time.Duration) time.Duration {
	upTo = AlignDown(upTo, e.cfg.Hourly)
	for {
		cur := e.folded.Load()
		if int64(upTo) <= cur {
			return time.Duration(cur)
		}
		if e.folded.CompareAndSwap(cur, int64(upTo)) {
			return upTo
		}
	}
}

// Fold summarizes drained raw points into the hourly tier and then
// derives any newly completable daily buckets. Every point must lie
// below the published watermark (that is what DrainBelow guarantees)
// and at or above the previous watermark (what the sealed-region
// admission check guarantees); a point below an already-folded bucket
// would double-count, so it is dropped and counted in StaleDrops
// instead of corrupting a sealed bucket.
//
// The fold is deterministic: each device's batch is sorted by
// (At, Seq, Sensor, value bits) — a total order over distinct points —
// before accumulation, so the floating-point sums and gap statistics
// are byte-stable across runs and across crash-replay-refold cycles.
//lint:hotpath budget=3 per-drain-batch scaffolding only (sort closure, first-contact devState); per-point accumulation appends into existing buckets
func (e *Engine) Fold(drained []tsdb.DrainedSeries) (folded int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	watermark := time.Duration(e.folded.Load())
	for _, ds := range drained {
		pts := ds.Points
		if len(pts) == 0 {
			continue
		}
		sortPoints(pts)
		st := e.dev[ds.Device]
		if st == nil {
			st = &devState{}
			e.dev[ds.Device] = st
		}
		sealedBelow := e.dailyFolded // hourly below this is already in daily buckets
		if n := len(st.hourly); n > 0 {
			if end := st.hourly[n-1].Start + e.cfg.Hourly; end > sealedBelow {
				sealedBelow = end
			}
		}
		for _, p := range pts {
			if p.At >= watermark {
				continue // not sealed yet; the drain should not have included it
			}
			start := AlignDown(p.At, e.cfg.Hourly)
			n := len(st.hourly)
			switch {
			case n > 0 && st.hourly[n-1].Start == start:
				st.hourly[n-1].addPoint(p)
			case start < sealedBelow:
				// Below a bucket that is already complete: folding it in
				// would change sealed bytes and double-count the point
				// against a span the query layer may have served.
				e.staleDrops.Add(1)
				continue
			default:
				st.hourly = append(st.hourly, Bucket{Start: start})
				st.hourly[n].addPoint(p)
			}
			folded++
		}
	}
	e.deriveDailyLocked(time.Duration(e.folded.Load()))
	return folded
}

// deriveDailyLocked merges hourly buckets below AlignDown(watermark,
// Daily) into daily buckets. Called with e.mu held.
func (e *Engine) deriveDailyLocked(watermark time.Duration) {
	upTo := AlignDown(watermark, e.cfg.Daily)
	if upTo <= e.dailyFolded {
		return
	}
	from := e.dailyFolded
	for _, st := range e.dev {
		// Hourly buckets are sorted; find the [from, upTo) run.
		lo := sort.Search(len(st.hourly), func(i int) bool { return st.hourly[i].Start >= from })
		hi := sort.Search(len(st.hourly), func(i int) bool { return st.hourly[i].Start >= upTo })
		for _, hb := range st.hourly[lo:hi] {
			day := AlignDown(hb.Start, e.cfg.Daily)
			n := len(st.daily)
			if n == 0 || st.daily[n-1].Start != day {
				st.daily = append(st.daily, Bucket{Start: day})
				n++
			}
			st.daily[n-1].merge(hb)
		}
	}
	e.dailyFolded = upTo
}

// sortPoints orders a batch into the fold's total order.
func sortPoints(pts []tsdb.Point) {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		return a.Value < b.Value
	})
}

// Series returns copies of one device's tiers (hourly, daily), each
// sorted by Start. Nil slices mean no sealed data for the device.
func (e *Engine) Series(dev lpwan.EUI64) (hourly, daily []Bucket) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.dev[dev]
	if st == nil {
		return nil, nil
	}
	return append([]Bucket(nil), st.hourly...), append([]Bucket(nil), st.daily...)
}

// SeriesView returns one device's tiers WITHOUT copying — the read-path
// fast lane (a century of hourly buckets is ~1M entries; copying that
// per query would cost more than the query). Safe because sealed
// buckets are append-only: a fold only ever appends new buckets and
// mutates buckets it created in the same call, beyond the length any
// earlier view captured, so a returned slice is an immutable snapshot
// of the tiers as of the call. Callers must not modify the buckets.
func (e *Engine) SeriesView(dev lpwan.EUI64) (hourly, daily []Bucket) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.dev[dev]
	if st == nil {
		return nil, nil
	}
	return st.hourly, st.daily
}

// Devices returns every device with sealed buckets, sorted by address.
func (e *Engine) Devices() []lpwan.EUI64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]lpwan.EUI64, 0, len(e.dev))
	for d := range e.dev {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint64() < out[j].Uint64() })
	return out
}

// Buckets counts stored buckets per tier — the engine's memory story.
func (e *Engine) Buckets() (hourly, daily int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.dev {
		hourly += len(st.hourly)
		daily += len(st.daily)
	}
	return hourly, daily
}

// DeviceState is one device's exported tier state.
type DeviceState struct {
	Device lpwan.EUI64
	Hourly []Bucket
	Daily  []Bucket
}

// EngineState is the engine's full exported state: what a checkpoint
// persists. Devices are sorted by address and buckets by Start, so the
// same tier state always exports the same bytes.
type EngineState struct {
	Config            Config
	FoldedBefore      time.Duration
	DailyFoldedBefore time.Duration
	Devices           []DeviceState
}

// Snapshot deep-copies the engine state in deterministic order.
func (e *Engine) Snapshot() EngineState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineState{
		Config:            e.cfg,
		FoldedBefore:      time.Duration(e.folded.Load()),
		DailyFoldedBefore: e.dailyFolded,
		Devices:           make([]DeviceState, 0, len(e.dev)),
	}
	for d, ds := range e.dev {
		st.Devices = append(st.Devices, DeviceState{
			Device: d,
			Hourly: append([]Bucket(nil), ds.hourly...),
			Daily:  append([]Bucket(nil), ds.daily...),
		})
	}
	sort.Slice(st.Devices, func(i, j int) bool {
		return st.Devices[i].Device.Uint64() < st.Devices[j].Device.Uint64()
	})
	return st
}

// Restore builds an engine from exported state. The configured geometry
// must match the state's: summarized buckets cannot be re-cut.
func Restore(cfg Config, st EngineState) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if st.Config != (Config{}) && st.Config != e.cfg {
		return nil, fmt.Errorf("rollup: tier geometry changed: snapshot folded at hourly=%v daily=%v, configured hourly=%v daily=%v",
			st.Config.Hourly, st.Config.Daily, e.cfg.Hourly, e.cfg.Daily)
	}
	e.folded.Store(int64(st.FoldedBefore))
	e.dailyFolded = st.DailyFoldedBefore
	for _, ds := range st.Devices {
		e.dev[ds.Device] = &devState{
			hourly: append([]Bucket(nil), ds.Hourly...),
			daily:  append([]Bucket(nil), ds.Daily...),
		}
	}
	return e, nil
}

// MaxSeq returns the highest sequence number folded for dev (0 if none):
// the seed for rebuilding replay protection over records whose raw
// copies are gone.
func (e *Engine) MaxSeq(dev lpwan.EUI64) uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.dev[dev]
	if st == nil {
		return 0
	}
	var max uint32
	for _, b := range st.hourly {
		if b.MaxSeq > max {
			max = b.MaxSeq
		}
	}
	for _, b := range st.daily {
		if b.MaxSeq > max {
			max = b.MaxSeq
		}
	}
	return max
}
