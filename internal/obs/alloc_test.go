package obs

import "testing"

// TestMetricPrimitivesAllocFree pins the alloc-free contract the
// allocfree analyzer enforces statically: every metric primitive that
// may sit on a per-packet path — a counter bump per disposition, a
// gauge publish, a latency sample — performs zero heap allocations.
// This is the machine-independent half of BENCH_obs.json's 0 allocs/op
// baselines; a regression here (a fmt call, a boxed value, a closure)
// fails on any host. Run with -count=2+ to shake out warm-up noise.
func TestMetricPrimitivesAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_test_total", "alloc regression counter")
	g := reg.Gauge("alloc_test_depth", "alloc regression gauge")
	h := reg.Histogram("alloc_test_seconds", "alloc regression histogram", nil, nil)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.25) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
		{"Histogram.ObserveSince", func() { h.ObserveSince(h.Now()) }},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(1000, tc.fn); got != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", tc.name, got)
		}
	}
}
