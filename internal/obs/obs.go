// Package obs is the dependency-free observability core of the runtime
// datapath: atomic counters and gauges, fixed-bucket histograms, and a
// named registry with byte-deterministic Prometheus-text exposition.
//
// The paper's 50-year experiment (§4) is only operable if, decades in,
// whoever has inherited it can ask a live process whether the "some data
// every week" contract is still being met — without attaching a
// debugger, and without the answer depending on which of three rewrites
// of a metrics vendor's client library is current that decade. So this
// package is stdlib-only and deliberately small: the exposition format
// is the plain Prometheus text format (readable by a human with curl if
// every scraper has bit-rotted), metric values are plain atomics cheap
// enough for the ingest hot path, and exposition is byte-deterministic
// for a given sequence of observations, so two runs of a seeded workload
// produce identical /metrics bytes — the same seed-identifies-the-run
// contract the simulator keeps.
//
// Time never leaks in ambiently: histograms that measure durations take
// an injectable Clock, so instrumented code hosted inside the simulator's
// virtual-time packages stays deterministic and centurylint-clean, while
// daemons pass ProcessClock (process-relative wall time).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is an injectable monotone time source: it returns the elapsed
// duration since some fixed origin (process start, simulation zero).
// Durations measured as differences of its readings are origin-free.
type Clock func() time.Duration

// ProcessClock returns the daemons' default clock: monotone time since
// the moment this function was called.
func ProcessClock() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// the range an ingest/IO path plausibly spans.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (convention: seconds). Buckets are set at construction and never
// reallocated; Observe is a bounded scan over them plus two atomics —
// cheap enough for a hot path, and allocation-free.
type Histogram struct {
	clock  Clock
	uppers []float64       // sorted inclusive upper bounds; +Inf implicit
	counts []atomic.Uint64 // one per upper bound
	count  atomic.Uint64   // total observations (the +Inf bucket)
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64, clock Clock) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	for i := 1; i < len(uppers); i++ {
		if uppers[i] == uppers[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v", uppers[i]))
		}
	}
	if clock == nil {
		clock = ProcessClock()
	}
	return &Histogram{clock: clock, uppers: uppers, counts: make([]atomic.Uint64, len(uppers))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for i, u := range h.uppers {
		if v <= u {
			h.counts[i].Add(1)
			return
		}
	}
}

// Now reads the histogram's clock: the start of a timed section.
func (h *Histogram) Now() time.Duration { return h.clock() }

// ObserveSince records the elapsed seconds from start (a prior Now
// reading) to the clock's current reading.
func (h *Histogram) ObserveSince(start time.Duration) {
	h.Observe((h.clock() - start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is anything the registry can expose.
type metric interface {
	metricType() string                     // "counter" | "gauge" | "histogram"
	sample(name string, b *strings.Builder) // exposition lines, no HELP/TYPE
}

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) sample(name string, b *strings.Builder) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.Value(), 10))
	b.WriteByte('\n')
}

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) sample(name string, b *strings.Builder) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) sample(name string, b *strings.Builder) {
	// Cumulative bucket counts, per the exposition format. Reading the
	// buckets while observations race is allowed to tear between buckets
	// (each bucket is individually atomic); a deterministic workload
	// scraped at quiescence is exactly reproducible.
	var cum uint64
	for i, u := range h.uppers {
		cum += h.counts[i].Load()
		b.WriteString(name)
		b.WriteString(`_bucket{le="`)
		b.WriteString(formatFloat(u))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString(`_bucket{le="+Inf"} `)
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum ")
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteByte('\n')
}

// counterFunc exposes an externally owned monotone counter (an atomic a
// subsystem already keeps privately) without copying or double counting.
type counterFunc func() uint64

func (f counterFunc) metricType() string { return "counter" }
func (f counterFunc) sample(name string, b *strings.Builder) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(f(), 10))
	b.WriteByte('\n')
}

// gaugeFunc exposes an externally owned instantaneous value.
type gaugeFunc func() float64

func (f gaugeFunc) metricType() string { return "gauge" }
func (f gaugeFunc) sample(name string, b *strings.Builder) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Registry is a named set of metrics. Registration panics on an invalid
// or duplicate name — both are programming errors, caught at daemon
// boot, exactly like a duplicate flag. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
}

type entry struct {
	name, help string
	m          metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, m metric) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = &entry{name: name, help: help, m: m}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time: the bridge for counters a subsystem already keeps.
// fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, counterFunc(fn))
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, gaugeFunc(fn))
}

// Histogram registers and returns a histogram with the given inclusive
// upper bounds (nil means DefBuckets) and clock (nil means a fresh
// ProcessClock). The clock only matters to ObserveSince/Now; Observe
// takes pre-measured values.
func (r *Registry) Histogram(name, help string, buckets []float64, clock Clock) *Histogram {
	h := newHistogram(buckets, clock)
	r.register(name, help, h)
	return h
}

// Exposition renders every registered metric in the Prometheus text
// format, sorted by metric name. For a fixed sequence of observations
// the output is byte-identical run to run: names are sorted, integer
// samples render via FormatUint, floats via the shortest round-trip
// form. Value reads happen after the registry lock is released, so a
// CounterFunc may take its subsystem's own locks freely.
func (r *Registry) Exposition() []byte {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.metrics))
	for _, e := range r.metrics {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var b strings.Builder
	for _, e := range entries {
		b.WriteString("# HELP ")
		b.WriteString(e.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(e.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(e.name)
		b.WriteByte(' ')
		b.WriteString(e.m.metricType())
		b.WriteByte('\n')
		e.m.sample(e.name, &b)
	}
	return []byte(b.String())
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validName checks the Prometheus metric-name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
