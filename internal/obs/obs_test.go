package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests seen")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	exp := string(r.Exposition())
	want := "# HELP requests_total requests seen\n# TYPE requests_total counter\nrequests_total 42\n"
	if exp != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", exp, want)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "buffered payloads")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	if !strings.Contains(string(r.Exposition()), "queue_depth 2\n") {
		t.Fatalf("exposition missing gauge sample:\n%s", r.Exposition())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("external_total", "externally owned", func() uint64 { return n })
	r.GaugeFunc("level", "externally owned", func() float64 { return 1.5 })
	exp := string(r.Exposition())
	for _, want := range []string{"external_total 7\n", "level 1.5\n"} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
}

func TestHistogramBucketsAndClock(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	r := NewRegistry()
	h := r.Histogram("op_seconds", "op latency", []float64{0.25, 0.5, 1}, clock)

	h.Observe(0.125) // le=0.25
	h.Observe(0.375) // le=0.5
	h.Observe(0.75)  // le=1
	h.Observe(5)     // +Inf only

	start := h.Now()
	now += 250 * time.Millisecond
	h.ObserveSince(start) // 0.25 -> le=0.25

	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	exp := string(r.Exposition())
	for _, want := range []string{
		`op_seconds_bucket{le="0.25"} 2`,
		`op_seconds_bucket{le="0.5"} 3`,
		`op_seconds_bucket{le="1"} 4`,
		`op_seconds_bucket{le="+Inf"} 5`,
		"op_seconds_count 5",
	} {
		if !strings.Contains(exp, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
	// All observed values are binary-exact, so the sum is too: the
	// shortest-form formatter renders it identically on every run.
	if !strings.Contains(exp, "op_seconds_sum 6.5\n") {
		t.Fatalf("exposition sum line wrong:\n%s", exp)
	}
}

// TestExpositionDeterministic is the byte-identity contract: two
// registries fed the identical observation sequence render identical
// bytes, and re-scraping an idle registry is stable.
func TestExpositionDeterministic(t *testing.T) {
	build := func() *Registry {
		var now time.Duration
		r := NewRegistry()
		c := r.Counter("a_total", "a")
		g := r.Gauge("b", "b")
		h := r.Histogram("c_seconds", "c", nil, func() time.Duration { return now })
		for i := 0; i < 100; i++ {
			c.Add(uint64(i))
			g.Set(float64(i) / 3)
			start := h.Now()
			now += time.Duration(i) * time.Millisecond
			h.ObserveSince(start)
		}
		return r
	}
	r1, r2 := build(), build()
	e1, e2 := r1.Exposition(), r2.Exposition()
	if !bytes.Equal(e1, e2) {
		t.Fatalf("two identical runs rendered different bytes:\n%s\n---\n%s", e1, e2)
	}
	if !bytes.Equal(e1, r1.Exposition()) {
		t.Fatal("re-scraping an idle registry changed the bytes")
	}
}

func TestExpositionSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "last")
	r.Counter("aaa_total", "first")
	r.Gauge("mmm", "middle")
	exp := string(r.Exposition())
	ia, im, iz := strings.Index(exp, "aaa_total"), strings.Index(exp, "mmm"), strings.Index(exp, "zzz_total")
	if !(ia < im && im < iz) {
		t.Fatalf("metrics not sorted by name:\n%s", exp)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	mustPanic(t, "duplicate name", func() { r.Counter("x_total", "x") })
	mustPanic(t, "invalid name", func() { r.Counter("1bad", "x") })
	mustPanic(t, "empty name", func() { r.Counter("", "x") })
	mustPanic(t, "bad rune", func() { r.Counter("sp ace", "x") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestConcurrentObservations exercises every mutable metric kind from
// many goroutines under -race and checks the totals are exact.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", []float64{0.5}, nil)

	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()

	if c.Value() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if got := h.Sum(); got != workers*each*0.25 {
		t.Fatalf("histogram sum = %v, want %v", got, workers*each*0.25)
	}
}

func TestHistogramDefaultsAndDupBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "d", nil, nil)
	if len(h.uppers) != len(DefBuckets) {
		t.Fatalf("default buckets not applied: %d", len(h.uppers))
	}
	mustPanic(t, "duplicate buckets", func() {
		r.Histogram("e_seconds", "e", []float64{1, 1}, nil)
	})
}
