package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Add(3)
	srv := httptest.NewServer(DebugMux(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(body), "hits_total 3\n") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestDebugMuxHealthz(t *testing.T) {
	h := NewHealth()
	failing := errors.New("wal disk gone")
	var broken bool
	h.Register("storage", func() error {
		if broken {
			return failing
		}
		return nil
	})
	h.Register("ingest", func() error { return nil })

	srv := httptest.NewServer(DebugMux(NewRegistry(), h))
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || body != "ok ingest\nok storage\n" {
		t.Fatalf("healthy: code=%d body=%q", code, body)
	}
	broken = true
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "fail storage: wal disk gone") {
		t.Fatalf("unhealthy: code=%d body=%q", code, body)
	}
}

func TestHealthDuplicatePanics(t *testing.T) {
	h := NewHealth()
	h.Register("x", func() error { return nil })
	mustPanic(t, "duplicate health check", func() { h.Register("x", func() error { return nil }) })
}

func TestDebugMuxPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

func TestNilHealthAlwaysOK(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("nil health: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
