package obs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDebugMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Add(3)
	srv := httptest.NewServer(DebugMux(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(body), "hits_total 3\n") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestDebugMuxHealthz(t *testing.T) {
	h := NewHealth()
	failing := errors.New("wal disk gone")
	var broken bool
	h.Register("storage", func() error {
		if broken {
			return failing
		}
		return nil
	})
	h.Register("ingest", func() error { return nil })

	srv := httptest.NewServer(DebugMux(NewRegistry(), h))
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || body != "ok ingest\nok storage\n" {
		t.Fatalf("healthy: code=%d body=%q", code, body)
	}
	broken = true
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "fail storage: wal disk gone") {
		t.Fatalf("unhealthy: code=%d body=%q", code, body)
	}
}

func TestHealthDuplicatePanics(t *testing.T) {
	h := NewHealth()
	h.Register("x", func() error { return nil })
	mustPanic(t, "duplicate health check", func() { h.Register("x", func() error { return nil }) })
}

func TestDebugMuxPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

func TestNilHealthAlwaysOK(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("nil health: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestHealthDegradedStatus(t *testing.T) {
	h := NewHealth()
	h.Register("cluster", func() error { return Degraded(errors.New("1 of 3 nodes down")) })
	h.Register("ingest", func() error { return nil })

	body, status := h.ReportStatus()
	if status != StatusDegraded {
		t.Fatalf("status = %v, want degraded", status)
	}
	if !strings.Contains(body, "degraded cluster: 1 of 3 nodes down") || !strings.Contains(body, "ok ingest") {
		t.Fatalf("body = %q", body)
	}
	// Degraded still serves the contract: Report says healthy, the
	// handler answers 200 with the distinction in body and header.
	if _, healthy := h.Report(); !healthy {
		t.Fatal("degraded reported as not serving")
	}
	rec := httptest.NewRecorder()
	HealthHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("X-Health"); got != "degraded" {
		t.Fatalf("X-Health = %q", got)
	}

	// A plain failure dominates degraded.
	h.Register("storage", func() error { return errors.New("wal disk gone") })
	if _, status := h.ReportStatus(); status != StatusFailed {
		t.Fatalf("status = %v, want failed", status)
	}
	rec = httptest.NewRecorder()
	HealthHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("X-Health") != "failed" {
		t.Fatalf("failed /healthz: code=%d X-Health=%q", rec.Code, rec.Header().Get("X-Health"))
	}
}

func TestDegradedWrapping(t *testing.T) {
	if Degraded(nil) != nil {
		t.Fatal("Degraded(nil) != nil")
	}
	base := errors.New("margin low")
	d := Degraded(base)
	if !IsDegraded(d) {
		t.Fatal("Degraded not detected")
	}
	if !errors.Is(d, base) {
		t.Fatal("Degraded does not unwrap")
	}
	if IsDegraded(base) {
		t.Fatal("plain error reported degraded")
	}
}

// TestHealthConcurrentRegisterAndScrape hammers check registration and
// scraping from many goroutines at once; run under -race. Registration
// during a scrape must neither corrupt the set nor deadlock — checks run
// outside the Health lock, so other goroutines may register while a
// scrape is mid-flight.
func TestHealthConcurrentRegisterAndScrape(t *testing.T) {
	h := NewHealth()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: render reports continuously.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, status := h.ReportStatus()
				if body == "" {
					t.Error("empty health report")
					return
				}
				if status != StatusHealthy && status != StatusDegraded {
					t.Errorf("unexpected status %v", status)
					return
				}
			}
		}()
	}

	// Registrars: add checks while scrapes run.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("check-%d-%d", g, i)
				if i%7 == 0 {
					h.Register(name, func() error { return Degraded(errors.New("margin")) })
				} else {
					h.Register(name, func() error { return nil })
				}
			}
		}(g)
	}

	// Let registrars finish, then stop scrapers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		select {
		case <-done:
			t.Fatal("scrapers exited early")
		default:
		}
		if body, _ := h.ReportStatus(); strings.Count(body, "\n") == 200 {
			break
		}
		if i > 1_000_000 {
			t.Fatal("registrations never completed")
		}
	}
	close(stop)
	<-done

	body, status := h.ReportStatus()
	if got := strings.Count(body, "\n"); got != 200 {
		t.Fatalf("final report has %d lines, want 200", got)
	}
	if status != StatusDegraded {
		t.Fatalf("final status = %v", status)
	}
}

// TestDebugMuxServesWhileCheckFlips scrapes /healthz from concurrent
// clients while the checked subsystem flips failed -> ok, asserting
// every response is internally consistent: 503 iff the body says fail,
// and the handler never serves a torn mixture.
func TestDebugMuxServesWhileCheckFlips(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	h := NewHealth()
	h.Register("flappy", func() error {
		if failing.Load() {
			return errors.New("recovering")
		}
		return nil
	})
	srv := httptest.NewServer(DebugMux(NewRegistry(), h))
	defer srv.Close()

	var wg sync.WaitGroup
	sawFail := make([]atomic.Bool, 4)
	sawOK := make([]atomic.Bool, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !sawFail[g].Load() || !sawOK[g].Load() {
				resp, err := http.Get(srv.URL + "/healthz")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusServiceUnavailable:
					if !strings.Contains(string(body), "fail flappy") {
						t.Errorf("503 with body %q", body)
						return
					}
					sawFail[g].Store(true)
				case http.StatusOK:
					if !strings.Contains(string(body), "ok flappy") {
						t.Errorf("200 with body %q", body)
						return
					}
					sawOK[g].Store(true)
				default:
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}

	// Flip failed -> ok once every scraper has seen the failure; the
	// scrapers then keep going until each has also seen a 200.
	deadline := time.After(10 * time.Second)
	for {
		all := true
		for g := range sawFail {
			if !sawFail[g].Load() {
				all = false
			}
		}
		if all {
			break
		}
		select {
		case <-deadline:
			t.Fatal("scrapers never observed the failure")
		case <-time.After(time.Millisecond):
		}
	}
	failing.Store(false)
	wg.Wait()
	for g := range sawOK {
		if !sawOK[g].Load() || !sawFail[g].Load() {
			t.Fatalf("scraper %d: sawFail=%v sawOK=%v", g, sawFail[g].Load(), sawOK[g].Load())
		}
	}
}
