package obs

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Health is a named set of liveness checks backing /healthz. A check
// returns nil when its subsystem is serving its contract and an error
// describing the degradation otherwise. Safe for concurrent use.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty health check set.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// Register adds a named check; duplicate names panic (a boot-time
// programming error, like a duplicate metric).
func (h *Health) Register(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.checks[name]; dup {
		panic("obs: duplicate health check " + name)
	}
	h.checks[name] = check
}

// Report runs every check and renders one line per check in name order
// ("ok <name>" or "fail <name>: <error>"), reporting whether all passed.
// Checks run after the lock is released, so a check may take its
// subsystem's locks freely.
func (h *Health) Report() (string, bool) {
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for n := range h.checks {
		names = append(names, n)
	}
	checks := make([]func() error, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		checks = append(checks, h.checks[n])
	}
	h.mu.Unlock()

	var b strings.Builder
	healthy := true
	for i, n := range names {
		if err := checks[i](); err != nil {
			healthy = false
			b.WriteString("fail ")
			b.WriteString(n)
			b.WriteString(": ")
			b.WriteString(err.Error())
		} else {
			b.WriteString("ok ")
			b.WriteString(n)
		}
		b.WriteByte('\n')
	}
	if len(names) == 0 {
		b.WriteString("ok\n")
	}
	return b.String(), healthy
}

// MetricsHandler serves a registry's exposition on GET.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(reg.Exposition())
	})
}

// HealthHandler serves a health set: 200 with per-check lines when every
// check passes, 503 otherwise. A nil Health always answers 200 "ok".
func HealthHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h == nil {
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		body, healthy := h.Report()
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_, _ = w.Write([]byte(body))
	})
}

// DebugMux assembles the standard debug surface every daemon mounts
// behind its -debug-addr flag:
//
//	GET /metrics        Prometheus-text exposition of reg
//	GET /healthz        aggregate health (503 on any failing check)
//	GET /debug/pprof/*  the standard Go profiler endpoints
//
// The profiler is mounted explicitly rather than via net/http/pprof's
// DefaultServeMux side effect, so nothing leaks onto a mux the daemon
// did not ask for.
func DebugMux(reg *Registry, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /healthz", HealthHandler(health))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
