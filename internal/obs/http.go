package obs

import (
	"errors"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Status is the three-state outcome of a health report. The middle
// state exists for exactly the situation a replicated cluster lives in
// during a node outage: the contract is still being served (so load
// balancers and alerting must NOT treat the endpoint as dead), but with
// reduced margin — the operator should look, the pager should not fire
// as a total outage.
type Status int

// Health statuses, ordered by severity.
const (
	StatusHealthy Status = iota
	StatusDegraded
	StatusFailed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusDegraded:
		return "degraded"
	case StatusFailed:
		return "failed"
	default:
		return "status(?)"
	}
}

// degradedError marks a check failure as degradation rather than
// outright failure: the subsystem is still serving, with reduced margin.
type degradedError struct{ err error }

func (e *degradedError) Error() string { return e.err.Error() }
func (e *degradedError) Unwrap() error { return e.err }

// Degraded wraps err so a health check can report "serving, but with
// reduced margin" — /healthz stays 200 and the check line reads
// "degraded <name>: ..." instead of "fail". A nil err returns nil.
func Degraded(err error) error {
	if err == nil {
		return nil
	}
	return &degradedError{err: err}
}

// IsDegraded reports whether err (or anything it wraps) was marked
// Degraded.
func IsDegraded(err error) bool {
	var d *degradedError
	return errors.As(err, &d)
}

// Health is a named set of liveness checks backing /healthz. A check
// returns nil when its subsystem is serving its contract, an error
// wrapped in Degraded when it is serving with reduced margin, and a
// plain error when it is failing outright. Safe for concurrent use.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty health check set.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// Register adds a named check; duplicate names panic (a boot-time
// programming error, like a duplicate metric).
func (h *Health) Register(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.checks[name]; dup {
		panic("obs: duplicate health check " + name)
	}
	h.checks[name] = check
}

// ReportStatus runs every check and renders one line per check in name
// order ("ok <name>", "degraded <name>: <error>", or
// "fail <name>: <error>"), returning the worst status seen. Checks run
// after the lock is released, so a check may take its subsystem's locks
// freely.
func (h *Health) ReportStatus() (string, Status) {
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for n := range h.checks {
		names = append(names, n)
	}
	checks := make([]func() error, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		checks = append(checks, h.checks[n])
	}
	h.mu.Unlock()

	var b strings.Builder
	status := StatusHealthy
	for i, n := range names {
		switch err := checks[i](); {
		case err == nil:
			b.WriteString("ok ")
			b.WriteString(n)
		case IsDegraded(err):
			if status < StatusDegraded {
				status = StatusDegraded
			}
			b.WriteString("degraded ")
			b.WriteString(n)
			b.WriteString(": ")
			b.WriteString(err.Error())
		default:
			status = StatusFailed
			b.WriteString("fail ")
			b.WriteString(n)
			b.WriteString(": ")
			b.WriteString(err.Error())
		}
		b.WriteByte('\n')
	}
	if len(names) == 0 {
		b.WriteString("ok\n")
	}
	return b.String(), status
}

// Report runs every check and reports whether the process is serving its
// contract: true for healthy AND degraded (still serving), false only on
// outright failure. Use ReportStatus to distinguish the middle state.
func (h *Health) Report() (string, bool) {
	body, status := h.ReportStatus()
	return body, status != StatusFailed
}

// MetricsHandler serves a registry's exposition on GET.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(reg.Exposition())
	})
}

// HealthHandler serves a health set: 200 with per-check lines while the
// process is serving its contract — including degraded (the body's
// "degraded" lines and an X-Health header carry the distinction) — and
// 503 only on outright failure. A nil Health always answers 200 "ok".
func HealthHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h == nil {
			w.Header().Set("X-Health", StatusHealthy.String())
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		body, status := h.ReportStatus()
		w.Header().Set("X-Health", status.String())
		if status == StatusFailed {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_, _ = w.Write([]byte(body))
	})
}

// DebugMux assembles the standard debug surface every daemon mounts
// behind its -debug-addr flag:
//
//	GET /metrics        Prometheus-text exposition of reg
//	GET /healthz        aggregate health (503 on any failing check)
//	GET /debug/pprof/*  the standard Go profiler endpoints
//
// The profiler is mounted explicitly rather than via net/http/pprof's
// DefaultServeMux side effect, so nothing leaks onto a mux the daemon
// did not ask for.
func DebugMux(reg *Registry, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /healthz", HealthHandler(health))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
