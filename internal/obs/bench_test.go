package obs

import (
	"fmt"
	"testing"
)

// BenchmarkObsCounterInc is the floor for a hot-path disposition count:
// one uncontended atomic add.
func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogramObserve is the cost of recording one latency
// sample: count add, CAS sum, bounded bucket scan. Must stay
// allocation-free — a histogram on the ingest path may fire per packet.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench histogram", nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1e6)
	}
}

// BenchmarkObsHistogramTimed is Observe plus the two clock readings a
// timed section pays (Now + ObserveSince) — the full per-call price of
// wrapping a code path with latency instrumentation.
func BenchmarkObsHistogramTimed(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench histogram", nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(h.Now())
	}
}

// BenchmarkObsExposition renders a registry shaped like endpointd's
// (a couple dozen counters/gauges plus a populated default-bucket
// histogram). This is the scrape cost, paid off the hot path.
func BenchmarkObsExposition(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 16; i++ {
		reg.Counter(fmt.Sprintf("bench_c%02d_total", i), "bench counter").Add(uint64(i) * 1_000_003)
	}
	for i := 0; i < 4; i++ {
		reg.Gauge(fmt.Sprintf("bench_g%d", i), "bench gauge").Set(float64(i) * 1.5)
	}
	h := reg.Histogram("bench_seconds", "bench histogram", nil, nil)
	for i := 0; i < 10_000; i++ {
		h.Observe(float64(i%700) / 1e5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := reg.Exposition(); len(out) == 0 {
			b.Fatal("empty exposition")
		}
	}
}
