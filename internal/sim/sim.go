// Package sim implements the discrete-event simulation engine underlying
// every century-scale experiment in this repository.
//
// The paper's core argument is about processes that play out over decades —
// component wear-out, maintenance batches, backhaul sunsets, prepaid-wallet
// drain — so the engine's job is to advance a virtual clock across 50-100
// years while executing scheduled events in deterministic order. Virtual
// time is a time.Duration offset from the simulation epoch, which gives
// nanosecond resolution over roughly 290 years: comfortably past the
// century mark the paper contemplates.
//
// Determinism contract: given the same initial schedule and the same seeds,
// two runs execute the identical event sequence. Ties in time are broken by
// insertion order (a monotone sequence number), never by map iteration or
// pointer values.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Common durations used throughout the simulator. A "year" is the Julian
// year (365.25 days), the convention used for long-horizon reliability
// figures.
const (
	Day  = 24 * time.Hour
	Week = 7 * Day
	Year = time.Duration(365.25 * 24 * float64(time.Hour))
)

// MaxHorizon is the longest representable virtual time: 2^63-1
// nanoseconds, about 292.47 Julian years. Horizon arithmetic that could
// pass it must saturate (Mul) or move to the coarse Tick clock — the
// centurytime analyzer enforces this at build time.
const MaxHorizon = time.Duration(1<<63 - 1)

// Years converts a (possibly fractional) number of Julian years to a
// Duration, clamping at ±MaxHorizon: a 300-year request yields the
// horizon ceiling, never a wrapped negative time.
func Years(y float64) time.Duration {
	ns := y * float64(Year)
	if ns >= float64(MaxHorizon) {
		return MaxHorizon
	}
	if ns <= -float64(MaxHorizon) {
		return -MaxHorizon
	}
	return time.Duration(ns)
}

// Seconds converts a (possibly fractional, possibly enormous) number of
// seconds to a Duration, clamping at ±MaxHorizon: the safe form of
// `time.Duration(s * float64(time.Second))` for values that cross a
// trust boundary, where an out-of-range float→int64 conversion is
// implementation-defined. NaN yields 0 — callers that must distinguish
// it reject NaN before converting.
func Seconds(s float64) time.Duration {
	ns := s * float64(time.Second)
	if ns != ns { // NaN
		return 0
	}
	if ns >= float64(MaxHorizon) {
		return MaxHorizon
	}
	if ns <= -float64(MaxHorizon) {
		return -MaxHorizon
	}
	return time.Duration(ns)
}

// ToYears converts a Duration to fractional Julian years.
func ToYears(d time.Duration) float64 {
	return float64(d) / float64(Year)
}

// Mul multiplies a unitless count by a duration unit, saturating at
// ±MaxHorizon instead of wrapping. This is the safe form of
// `time.Duration(n) * unit` for counts that may be century-scale:
// Mul(293, sim.Year) returns MaxHorizon where the raw multiplication
// returns a negative time 292 years in the past.
func Mul(count int64, unit time.Duration) time.Duration {
	if count == 0 || unit == 0 {
		return 0
	}
	sat := MaxHorizon
	if (count < 0) != (unit < 0) {
		sat = -MaxHorizon
	}
	// MinInt64 edge cases overflow in a way the division check below
	// cannot see (MinInt64 / -1 == MinInt64 in two's complement).
	if (count == -1 && unit == -MaxHorizon-1) || (int64(unit) == -1 && count == int64(-MaxHorizon-1)) {
		return sat
	}
	p := unit * time.Duration(count)
	if p/time.Duration(count) != unit {
		return sat
	}
	return p
}

// A Tick is virtual time counted in whole seconds: the coarse clock for
// quantities that can outgrow the nanosecond Duration. One-second
// resolution covers ±292 billion years, so Tick arithmetic cannot
// meaningfully overflow on any horizon this repository simulates.
// Maintenance ledgers, wear-out schedules, and anything else carrying
// multi-century spans should accumulate in Ticks and convert to
// Duration only at the edge, where Duration saturates the excess.
type Tick int64

// TickOf truncates d to whole virtual seconds.
func TickOf(d time.Duration) Tick { return Tick(d / time.Second) }

// YearTicks converts (possibly fractional) Julian years to Ticks.
func YearTicks(y float64) Tick { return Tick(y * 365.25 * 24 * 3600) }

// Duration converts back to nanosecond resolution, saturating at
// ±MaxHorizon for spans beyond ~292 years.
func (t Tick) Duration() time.Duration { return Mul(int64(t), time.Second) }

// Years converts to fractional Julian years without a Duration
// intermediate, so it stays exact far past the 292-year ceiling.
func (t Tick) Years() float64 { return float64(t) / (365.25 * 24 * 3600) }

// Event is a scheduled callback. The callback runs with the clock set to
// the event's time.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() time.Duration { return e.at }

// Cancel marks the event so it will be skipped when its time comes.
// Cancelling an already-fired event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	stopped bool
	// Executed counts events that have fired (not cancelled ones).
	executed uint64
}

// NewEngine returns an engine with the clock at zero and an empty schedule.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time as an offset from the epoch.
func (e *Engine) Now() time.Duration { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled (including cancelled ones
// not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPastEvent is returned by At when asked to schedule before Now.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute virtual time t. Events at the same
// time run in scheduling order.
func (e *Engine) At(t time.Duration, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, e.now)
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After schedules fn to run d after the current time. Negative d is
// clamped to zero (run "immediately", i.e. after currently queued events at
// the same timestamp).
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := e.At(e.now+d, fn)
	if err != nil {
		// Unreachable: now+d >= now when d >= 0.
		panic(err)
	}
	return ev
}

// Every schedules fn to run every interval, starting interval from now,
// until the returned Ticker is stopped or the simulation ends.
type Ticker struct {
	stopped bool
	current *Event
}

// Stop cancels future firings of the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.current != nil {
		t.current.Cancel()
	}
}

// Every schedules fn at now+interval, now+2*interval, ... . fn receives the
// firing time's engine implicitly via closure; the Ticker allows
// cancellation. Interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	t := &Ticker{}
	var schedule func()
	schedule = func() {
		if t.stopped {
			return
		}
		t.current = e.After(interval, func() {
			if t.stopped {
				return
			}
			fn()
			schedule()
		})
	}
	schedule()
	return t
}

// Stop halts the run loop after the current event completes. Intended to be
// called from within an event callback (e.g. a stop condition firing).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, Stop is
// called, or the clock would pass horizon. Events scheduled exactly at the
// horizon still run. It returns the final virtual time (the horizon if the
// run was horizon-limited, otherwise the time of the last event).
func (e *Engine) Run(horizon time.Duration) time.Duration {
	e.run(horizon)
	if !e.stopped && e.now < horizon {
		// The queue drained (or only post-horizon events remain):
		// advance the clock to the horizon so callers see a full run.
		if len(e.queue) == 0 || e.queue[0].at > horizon {
			e.now = horizon
		}
	}
	return e.now
}

// RunAll executes events until the queue is empty or Stop is called, with
// no horizon, and leaves the clock at the last executed event. Use only for
// schedules known to terminate.
func (e *Engine) RunAll() time.Duration {
	e.run(MaxHorizon)
	return e.now
}

func (e *Engine) run(horizon time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.executed++
		next.fn()
	}
}
