package sim

import (
	"math"
	"testing"
	"time"
)

// TestMulBoundary pins the 292/293-year line: the largest whole-year
// count that fits int64 nanoseconds is 292, and the first count past it
// must saturate instead of wrapping negative.
func TestMulBoundary(t *testing.T) {
	if got := Mul(292, Year); got != 292*Year {
		t.Fatalf("Mul(292, Year) = %v, want exact %v", got, 292*Year)
	}
	if got := Mul(293, Year); got != MaxHorizon {
		t.Fatalf("Mul(293, Year) = %v, want MaxHorizon", got)
	}
	// The raw multiplication this replaces really does wrap. (Computed
	// through a variable: as a constant expression the compiler rejects
	// it, which is exactly the check centurytime extends to runtime
	// values.)
	years := int64(293)
	if raw := time.Duration(years) * Year; raw >= 0 {
		t.Fatalf("expected raw 293*Year to wrap negative, got %v", raw)
	}
}

func TestMul(t *testing.T) {
	tests := []struct {
		count int64
		unit  time.Duration
		want  time.Duration
	}{
		{0, Year, 0},
		{1 << 40, 0, 0},
		{100, Year, 100 * Year},
		{-100, Year, -100 * Year},
		{100, -Year, -100 * Year},
		{-100, -Year, 100 * Year},
		{math.MaxInt64, Year, MaxHorizon},
		{math.MaxInt64, -Year, -MaxHorizon},
		{-math.MaxInt64, -Year, MaxHorizon},
		{-1, math.MinInt64, MaxHorizon},
		{math.MinInt64, -1, MaxHorizon},
		{math.MinInt64, time.Nanosecond, math.MinInt64},
	}
	for _, tt := range tests {
		if got := Mul(tt.count, tt.unit); got != tt.want {
			t.Errorf("Mul(%d, %d) = %d, want %d", tt.count, tt.unit, got, tt.want)
		}
	}
}

// TestYearsClamp: the float conversion must clamp at the horizon, not
// hit the implementation-defined out-of-range float->int conversion.
func TestYearsClamp(t *testing.T) {
	if got := Years(100); got != time.Duration(100*float64(Year)) {
		t.Fatalf("Years(100) = %v", got)
	}
	if got := Years(300); got != MaxHorizon {
		t.Fatalf("Years(300) = %v, want MaxHorizon", got)
	}
	if got := Years(-300); got != -MaxHorizon {
		t.Fatalf("Years(-300) = %v, want -MaxHorizon", got)
	}
	if got := Years(1e30); got != MaxHorizon {
		t.Fatalf("Years(1e30) = %v, want MaxHorizon", got)
	}
}

// TestTick: the coarse clock holds multi-century spans exactly and
// saturates only when converted back to nanoseconds.
func TestTick(t *testing.T) {
	if got := TickOf(90 * time.Second); got != 90 {
		t.Fatalf("TickOf(90s) = %d", got)
	}
	if got := Tick(90).Duration(); got != 90*time.Second {
		t.Fatalf("Tick(90).Duration() = %v", got)
	}
	century := YearTicks(100)
	if got := century.Years(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("YearTicks(100).Years() = %v", got)
	}
	// A millennium is fine in Ticks and exact in Years...
	millennium := YearTicks(1000)
	if got := millennium.Years(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("YearTicks(1000).Years() = %v", got)
	}
	// ...and saturates instead of wrapping when forced into a Duration.
	if got := millennium.Duration(); got != MaxHorizon {
		t.Fatalf("YearTicks(1000).Duration() = %v, want MaxHorizon", got)
	}
	if got := TickOf(MaxHorizon).Duration(); got > MaxHorizon || got < MaxHorizon-time.Second {
		t.Fatalf("TickOf(MaxHorizon).Duration() = %v", got)
	}
}
