package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestYearsRoundTrip(t *testing.T) {
	for _, y := range []float64{0, 1, 25, 50, 100, 290} {
		d := Years(y)
		got := ToYears(d)
		if diff := got - y; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Years/ToYears(%v) = %v", y, got)
		}
	}
}

func TestFiftyYearsFitsInDuration(t *testing.T) {
	d := Years(100)
	if d <= 0 {
		t.Fatalf("100 years overflowed to %v", d)
	}
	if ToYears(d) < 99.9 {
		t.Fatalf("100 years = %v years after round trip", ToYears(d))
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestTieBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(time.Second, func() { order = append(order, "a") })
	e.After(time.Second, func() { order = append(order, "b") })
	e.After(time.Second, func() { order = append(order, "c") })
	e.RunAll()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	e.After(5*time.Minute, func() { at = append(at, e.Now()) })
	e.After(time.Hour, func() { at = append(at, e.Now()) })
	end := e.Run(2 * time.Hour)
	if at[0] != 5*time.Minute || at[1] != time.Hour {
		t.Fatalf("callback times %v", at)
	}
	if end != 2*time.Hour {
		t.Fatalf("final time %v, want horizon 2h", end)
	}
}

func TestHorizonCutsOff(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(10*time.Hour, func() { ran = true })
	e.Run(time.Hour)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if e.Now() != time.Hour {
		t.Fatalf("clock = %v, want horizon", e.Now())
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(time.Hour, func() { ran = true })
	e.Run(time.Hour)
	if !ran {
		t.Fatal("event exactly at horizon should run")
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := NewEngine()
	e.After(time.Hour, func() {
		if _, err := e.At(time.Minute, func() {}); err == nil {
			t.Error("scheduling in the past succeeded")
		}
	})
	e.RunAll()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.After(time.Second, func() { ran = true })
	ev.Cancel()
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", e.Executed())
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	later := e.After(2*time.Second, func() { ran = true })
	e.After(time.Second, func() { later.Cancel() })
	e.RunAll()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var fires []time.Duration
	e.Every(time.Hour, func() { fires = append(fires, e.Now()) })
	e.Run(5 * time.Hour)
	if len(fires) != 5 {
		t.Fatalf("ticker fired %d times in 5h, want 5", len(fires))
	}
	for i, f := range fires {
		want := time.Duration(i+1) * time.Hour
		if f != want {
			t.Fatalf("fire %d at %v, want %v", i, f, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Hour, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run(10 * time.Hour)
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestEveryPanicsOnZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestNestedScheduling(t *testing.T) {
	// An event that schedules another event at the same timestamp: the
	// child must run in the same pass, after the parent.
	e := NewEngine()
	var order []string
	e.After(time.Second, func() {
		order = append(order, "parent")
		e.After(0, func() { order = append(order, "child") })
	})
	e.RunAll()
	if len(order) != 2 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("nested order = %v", order)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-time.Hour, func() { ran = true })
	e.RunAll()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestLongHorizonRun(t *testing.T) {
	// 50 simulated years of weekly events: 2608 firings, fast.
	e := NewEngine()
	count := 0
	e.Every(Week, func() { count++ })
	e.Run(Years(50))
	want := int(Years(50) / Week)
	if count != want {
		t.Fatalf("weekly ticker fired %d times in 50y, want %d", count, want)
	}
}

func TestOrderingProperty(t *testing.T) {
	// Property: any batch of random delays executes in sorted order.
	if err := quick.Check(func(raw []uint32) bool {
		e := NewEngine()
		var ran []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			e.After(d, func() { ran = append(ran, e.Now()) })
		}
		e.RunAll()
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return len(ran) == len(raw)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.RunAll()
	if e.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", e.Executed())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(j)*time.Second, func() {})
		}
		e.RunAll()
	}
}

func BenchmarkWeeklyTickerFiftyYears(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		count := 0
		e.Every(Week, func() { count++ })
		e.Run(Years(50))
	}
}
