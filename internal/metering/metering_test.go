package metering

import (
	"math"
	"testing"
	"time"

	"centuryscale/internal/rng"
)

func TestDailyShapeNormalised(t *testing.T) {
	sum := 0.0
	for _, v := range dailyShape {
		sum += v
	}
	if math.Abs(sum/24-1) > 0.02 {
		t.Fatalf("daily shape mean = %v, want ~1", sum/24)
	}
	// Evening peak must exceed the overnight trough substantially.
	if dailyShape[19] < 2.5*dailyShape[3] {
		t.Fatal("daily shape lacks an evening peak")
	}
}

func TestFleetConstruction(t *testing.T) {
	f := NewFleet(1000, 0.3, rng.New(1))
	if len(f.Meters) != 1000 {
		t.Fatalf("meters = %d", len(f.Meters))
	}
	enrolled := 0
	meanBase := 0.0
	for _, m := range f.Meters {
		if m.DRParticipant {
			enrolled++
		}
		if m.BaseKW <= 0 {
			t.Fatalf("meter %d base load %v", m.ID, m.BaseKW)
		}
		meanBase += m.BaseKW
	}
	meanBase /= 1000
	if math.Abs(meanBase-1.2) > 0.15 {
		t.Fatalf("mean base load = %v, want ~1.2 kW", meanBase)
	}
	if enrolled < 250 || enrolled > 350 {
		t.Fatalf("DR enrollment = %d of 1000 at 30%%", enrolled)
	}
}

func TestRunAccountsEnergy(t *testing.T) {
	f := NewFleet(100, 0, rng.New(2))
	res := f.Run(7, DefaultTariff(), nil)
	// ~100 meters * 1.2 kW * 24h * 7d ≈ 20,160 kWh.
	if res.TotalKWh < 15000 || res.TotalKWh > 26000 {
		t.Fatalf("total = %v kWh", res.TotalKWh)
	}
	// System peak lands in the evening window.
	if res.PeakKW <= 0 {
		t.Fatal("no peak recorded")
	}
	if res.FlatBillCents <= 0 || res.TOUBillCents <= 0 {
		t.Fatalf("bills = %v / %v", res.FlatBillCents, res.TOUBillCents)
	}
}

func TestTOUBillExceedsFlatForEveningPeakers(t *testing.T) {
	// Residential shape concentrates load in the evening peak window, so
	// a TOU tariff calibrated with a cheap off-peak rate should still
	// bill roughly comparably; the interesting check is both are
	// computed from identical energy.
	f := NewFleet(200, 0, rng.New(3))
	res := f.Run(30, DefaultTariff(), nil)
	ratio := float64(res.TOUBillCents) / float64(res.FlatBillCents)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("TOU/flat ratio = %v", ratio)
	}
}

func TestDemandResponseCutsPeak(t *testing.T) {
	mk := func(events []DREvent) RunResult {
		f := NewFleet(500, 0.5, rng.New(4))
		return f.Run(3, DefaultTariff(), events)
	}
	base := mk(nil)
	// Shed 30% on every day's evening peak.
	var events []DREvent
	for d := 0; d < 3; d++ {
		events = append(events, DREvent{Day: d, StartHour: 17, Hours: 4, ShedFraction: 0.3})
	}
	dr := mk(events)
	if dr.PeakKW >= base.PeakKW {
		t.Fatalf("DR did not cut the peak: %v vs %v", dr.PeakKW, base.PeakKW)
	}
	// 50% participation shedding 30%: expect roughly 15% peak cut.
	cut := 1 - dr.PeakKW/base.PeakKW
	if cut < 0.08 || cut > 0.25 {
		t.Fatalf("peak cut = %v, want ~0.15", cut)
	}
	if dr.ShedKWh <= 0 {
		t.Fatal("no shed energy recorded")
	}
}

func TestDRNeedsParticipants(t *testing.T) {
	f := NewFleet(200, 0, rng.New(5)) // nobody enrolled
	ev := []DREvent{{Day: 0, StartHour: 17, Hours: 4, ShedFraction: 0.5}}
	res := f.Run(1, DefaultTariff(), ev)
	if res.ShedKWh != 0 {
		t.Fatalf("shed %v kWh with zero enrollment", res.ShedKWh)
	}
}

func TestOutageDetectionLatency(t *testing.T) {
	// Hourly reporting, alarm on 2 consecutive misses, outage at 10:30.
	res := DetectOutage(OutageParams{
		ReportEvery:   time.Hour,
		MissesToAlarm: 2,
		OutageAt:      10*time.Hour + 30*time.Minute,
		MetersOut:     120,
	})
	// First missed report at 11:00; second miss at 12:00 -> detected.
	if res.DetectedAt != 12*time.Hour {
		t.Fatalf("detected at %v", res.DetectedAt)
	}
	if res.Latency != 90*time.Minute {
		t.Fatalf("latency = %v", res.Latency)
	}
	if res.MetersSeen != 120 {
		t.Fatalf("meters = %d", res.MetersSeen)
	}
}

func TestOutageLatencyScalesWithCadence(t *testing.T) {
	// The AMI value proposition: daily manual reads detect outages a day
	// late; hourly AMI reads detect within hours.
	daily := DetectOutage(OutageParams{
		ReportEvery: 24 * time.Hour, MissesToAlarm: 1,
		OutageAt: 6 * time.Hour, MetersOut: 10,
	})
	hourly := DetectOutage(OutageParams{
		ReportEvery: time.Hour, MissesToAlarm: 1,
		OutageAt: 6 * time.Hour, MetersOut: 10,
	})
	if hourly.Latency >= daily.Latency {
		t.Fatalf("hourly latency %v not below daily %v", hourly.Latency, daily.Latency)
	}
	if daily.Latency > 24*time.Hour || hourly.Latency > time.Hour {
		t.Fatalf("latencies: daily %v hourly %v", daily.Latency, hourly.Latency)
	}
}

func TestDetectOutagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	DetectOutage(OutageParams{})
}

func TestRunDeterministic(t *testing.T) {
	a := NewFleet(100, 0.3, rng.New(9)).Run(5, DefaultTariff(), nil)
	b := NewFleet(100, 0.3, rng.New(9)).Run(5, DefaultTariff(), nil)
	if a.TotalKWh != b.TotalKWh || a.PeakKW != b.PeakKW {
		t.Fatal("same seed diverged")
	}
}

func TestFleetPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty fleet did not panic")
		}
	}()
	NewFleet(0, 0, rng.New(1))
}

func BenchmarkFleetMonth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewFleet(500, 0.3, rng.New(uint64(i)))
		_ = f.Run(30, DefaultTariff(), nil)
	}
}
