// Package metering models advanced metering infrastructure (AMI), the
// paper's flagship example of deployed smart infrastructure (§2: "One of
// the most widespread examples today is advanced metering infrastructure,
// which enables two-way communication between utilities and customers").
//
// Three AMI capabilities are modelled, each with the outcome metric a
// utility buys it for:
//
//   - Interval metering: hourly consumption reads enable time-of-use
//     billing; the package compares TOU bills against flat-rate bills
//     computed from the same load.
//   - Demand response: the two-way channel lets the utility ask
//     participating meters to shed load during system peaks; the metric
//     is peak-kW reduction.
//   - Outage detection: a meter that stops reporting is a sensor for
//     grid failures (the Chattanooga smart-grid story the paper cites);
//     the metric is detection latency as a function of reporting cadence.
//
// Load is simulated hourly: per-meter base load times a shared residential
// daily shape, with multiplicative noise. Everything is deterministic
// from the seed.
package metering

import (
	"fmt"
	"time"

	"centuryscale/internal/econ"
	"centuryscale/internal/rng"
)

// dailyShape is a normalised residential load profile by hour of day
// (mean 1.0): overnight trough, morning shoulder, evening peak.
var dailyShape = [24]float64{
	0.62, 0.56, 0.53, 0.52, 0.54, 0.62, 0.84, 1.04,
	1.02, 1.00, 1.00, 1.02, 1.06, 1.04, 1.02, 1.05,
	1.12, 1.42, 1.68, 1.72, 1.56, 1.28, 0.98, 0.76,
}

// Meter is one endpoint.
type Meter struct {
	ID int
	// BaseKW is the meter's average demand.
	BaseKW float64
	// DRParticipant meters shed load when asked.
	DRParticipant bool
}

// Fleet is a population of meters plus its load randomness.
type Fleet struct {
	Meters []Meter
	noise  *rng.Source
}

// NewFleet builds n meters with log-normally distributed base loads
// (mean ~1.2 kW) and the given demand-response enrollment fraction.
func NewFleet(n int, drFraction float64, src *rng.Source) *Fleet {
	if n <= 0 {
		panic("metering: empty fleet")
	}
	f := &Fleet{noise: src.Split("load-noise")}
	base := src.Split("base-loads")
	enroll := src.Split("enrollment")
	for i := 0; i < n; i++ {
		f.Meters = append(f.Meters, Meter{
			ID:            i,
			BaseKW:        1.2 * base.LogNormal(-0.08, 0.4), // mean ~1.2
			DRParticipant: enroll.Bernoulli(drFraction),
		})
	}
	return f
}

// DemandKW returns meter m's demand during the given absolute hour,
// optionally shedding shedFraction (demand response).
func (f *Fleet) DemandKW(m *Meter, hour int, shedFraction float64) float64 {
	d := m.BaseKW * dailyShape[hour%24] * f.noise.Uniform(0.85, 1.15)
	if shedFraction > 0 {
		d *= 1 - shedFraction
	}
	return d
}

// Tariff prices energy. All rates are cents per kWh.
type Tariff struct {
	FlatRate float64
	// TOU rates: peak applies during [PeakStart, PeakEnd) hours.
	PeakRate, OffPeakRate float64
	PeakStart, PeakEnd    int
}

// DefaultTariff uses representative residential rates: 15¢ flat, or
// 28¢ on-peak (16:00-21:00) / 11¢ off-peak.
func DefaultTariff() Tariff {
	return Tariff{FlatRate: 15, PeakRate: 28, OffPeakRate: 11, PeakStart: 16, PeakEnd: 21}
}

// peak reports whether hour-of-day h is on-peak.
func (t Tariff) peak(h int) bool { return h >= t.PeakStart && h < t.PeakEnd }

// DREvent asks participating meters to shed a fraction of load during
// [StartHour, StartHour+Hours) on the given day.
type DREvent struct {
	Day          int
	StartHour    int
	Hours        int
	ShedFraction float64
}

// covers reports whether the event is active at (day, hourOfDay).
func (e DREvent) covers(day, hour int) bool {
	return day == e.Day && hour >= e.StartHour && hour < e.StartHour+e.Hours
}

// RunResult summarises a billing-period simulation.
type RunResult struct {
	Days        int
	TotalKWh    float64
	PeakKW      float64 // highest system demand in any hour
	PeakHourDay string  // "day/hour" of the system peak

	FlatBillCents econ.Cents // sum over meters at the flat rate
	TOUBillCents  econ.Cents // sum over meters at TOU rates
	ShedKWh       float64    // energy shed by demand response
}

// Run simulates the fleet for days days under the tariff, applying any
// DR events, and returns system-level results.
func (f *Fleet) Run(days int, tariff Tariff, events []DREvent) RunResult {
	if days <= 0 {
		panic("metering: non-positive days")
	}
	res := RunResult{Days: days}
	for day := 0; day < days; day++ {
		for hour := 0; hour < 24; hour++ {
			shed := 0.0
			for _, e := range events {
				if e.covers(day, hour) {
					shed = e.ShedFraction
					break
				}
			}
			sysKW := 0.0
			for i := range f.Meters {
				m := &f.Meters[i]
				applied := 0.0
				if shed > 0 && m.DRParticipant {
					applied = shed
				}
				kw := f.DemandKW(m, hour, applied)
				if applied > 0 {
					res.ShedKWh += kw / (1 - applied) * applied
				}
				sysKW += kw
				res.TotalKWh += kw
				rate := tariff.OffPeakRate
				if tariff.peak(hour) {
					rate = tariff.PeakRate
				}
				res.TOUBillCents += econ.Cents(kw * rate)
				res.FlatBillCents += econ.Cents(kw * tariff.FlatRate)
			}
			if sysKW > res.PeakKW {
				res.PeakKW = sysKW
				res.PeakHourDay = fmt.Sprintf("%d/%02d:00", day, hour)
			}
		}
	}
	return res
}

// OutageParams configures a detection study.
type OutageParams struct {
	// ReportEvery is the meter reporting cadence.
	ReportEvery time.Duration
	// MissesToAlarm is how many consecutive missed reads trigger the
	// outage alarm for a meter (tolerating radio loss).
	MissesToAlarm int
	// OutageAt is when the feeder fails.
	OutageAt time.Duration
	// MetersOut is how many meters lose power.
	MetersOut int
}

// OutageResult reports the detection outcome.
type OutageResult struct {
	DetectedAt time.Duration
	Latency    time.Duration
	MetersSeen int // meters confirmed out at detection time
}

// DetectOutage computes when the headend notices the outage: each dark
// meter misses every report after OutageAt; the alarm fires once any
// meter accumulates MissesToAlarm consecutive misses. With synchronized
// cadences this is deterministic: detection happens at the first
// scheduled report time ≥ OutageAt plus (MissesToAlarm-1) further
// periods.
func DetectOutage(p OutageParams) OutageResult {
	if p.ReportEvery <= 0 || p.MissesToAlarm <= 0 || p.MetersOut <= 0 {
		panic("metering: bad outage params")
	}
	// First missed report boundary at or after the outage instant.
	// periods is a unitless count (duration over duration), typed as
	// such so the count-times-unit multiplications below cannot be
	// misread as nanoseconds-squared.
	periods := int64(p.OutageAt / p.ReportEvery)
	firstMiss := time.Duration(periods+1) * p.ReportEvery
	detected := firstMiss + time.Duration(p.MissesToAlarm-1)*p.ReportEvery
	return OutageResult{
		DetectedAt: detected,
		Latency:    detected - p.OutageAt,
		MetersSeen: p.MetersOut,
	}
}
