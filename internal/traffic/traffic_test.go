package traffic

import (
	"math"
	"testing"

	"centuryscale/internal/rng"
)

func testNet() *Network {
	return Synthesize(20, 50000, rng.New(1))
}

func TestSynthesizeConservation(t *testing.T) {
	n := testNet()
	if len(n.Flow) != 400 {
		t.Fatalf("flow cells = %d", len(n.Flow))
	}
	// Every trip crosses at least one intersection.
	if n.Total() < 50000 {
		t.Fatalf("total = %v, want >= trips", n.Total())
	}
	// No negative flows.
	for i, f := range n.Flow {
		if f < 0 {
			t.Fatalf("flow[%d] = %v", i, f)
		}
	}
}

func TestArterialStructure(t *testing.T) {
	n := testNet()
	// Center-weighted OD demand concentrates flow: a real Gini, and the
	// busiest intersection carries far more than the median.
	g := n.GiniIndex()
	if g < 0.2 || g > 0.9 {
		t.Fatalf("Gini = %v, want heavy-tailed structure", g)
	}
	max, median := 0.0, make([]float64, len(n.Flow))
	copy(median, n.Flow)
	for _, f := range n.Flow {
		if f > max {
			max = f
		}
	}
	mid := median[len(median)/2]
	if max < 3*mid {
		t.Fatalf("max %v vs median %v: no arterials", max, mid)
	}
}

func TestGiniBounds(t *testing.T) {
	uniform := &Network{N: 2, Flow: []float64{5, 5, 5, 5}}
	if g := uniform.GiniIndex(); math.Abs(g) > 1e-9 {
		t.Fatalf("uniform Gini = %v", g)
	}
	concentrated := &Network{N: 2, Flow: []float64{0, 0, 0, 100}}
	if g := concentrated.GiniIndex(); g < 0.7 {
		t.Fatalf("concentrated Gini = %v", g)
	}
	empty := &Network{N: 2, Flow: []float64{0, 0, 0, 0}}
	if g := empty.GiniIndex(); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
}

func TestFullInstrumentationIsExact(t *testing.T) {
	n := testNet()
	est, rel := n.EstimateTotal(len(n.Flow), SampleRandom, rng.New(2))
	if math.Abs(rel) > 1e-12 {
		t.Fatalf("full coverage error = %v (est %v vs %v)", rel, est, n.Total())
	}
}

func TestBusiestSamplingBiasesHigh(t *testing.T) {
	n := testNet()
	_, rel := n.EstimateTotal(10, SampleBusiest, rng.New(3))
	if rel <= 0.5 {
		t.Fatalf("busiest-10 bias = %v, expected strongly positive", rel)
	}
}

func TestRandomSamplingConverges(t *testing.T) {
	// The §2 point: error falls as coverage grows.
	n := testNet()
	res := n.CoverageStudy([]int{4, 40, 400}, 30, rng.New(4))
	byCount := map[int]float64{}
	for _, r := range res {
		if r.Strategy == SampleRandom {
			byCount[r.Instrumented] = r.AbsRelErr
		}
	}
	if !(byCount[400] < byCount[40] && byCount[40] < byCount[4]) {
		t.Fatalf("random-sampling error not decreasing: %v", byCount)
	}
	if byCount[400] > 1e-9 {
		t.Fatalf("full-coverage error = %v", byCount[400])
	}
	// One intersection in 100 (k=4) is badly wrong on average: the
	// paper's "one intersection" claim.
	if byCount[4] < 0.1 {
		t.Fatalf("sparse error = %v, expected substantial", byCount[4])
	}
}

func TestBusiestNeverBeatsItsBias(t *testing.T) {
	n := testNet()
	res := n.CoverageStudy([]int{10}, 10, rng.New(5))
	var random, busiest float64
	for _, r := range res {
		if r.Strategy == SampleRandom {
			random = r.AbsRelErr
		} else {
			busiest = r.AbsRelErr
		}
	}
	// Instrumenting only arterials is systematically worse for citywide
	// estimation than an unbiased sample of the same size.
	if busiest <= random {
		t.Fatalf("busiest %v should err more than random %v", busiest, random)
	}
}

func TestStrategyString(t *testing.T) {
	if SampleRandom.String() != "random" || SampleBusiest.String() != "busiest" {
		t.Fatal("strategy names wrong")
	}
	if SamplingStrategy(9).String() != "strategy(9)" {
		t.Fatal("unknown strategy fallback")
	}
}

func TestPanics(t *testing.T) {
	n := testNet()
	for name, fn := range map[string]func(){
		"bad-grid":     func() { Synthesize(1, 10, rng.New(1)) },
		"zero-sample":  func() { n.EstimateTotal(0, SampleRandom, rng.New(1)) },
		"over-sample":  func() { n.EstimateTotal(len(n.Flow)+1, SampleRandom, rng.New(1)) },
		"zero-trials":  func() { n.CoverageStudy([]int{1}, 0, rng.New(1)) },
		"bad-strategy": func() { n.EstimateTotal(1, SamplingStrategy(9), rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeterministic(t *testing.T) {
	a := Synthesize(10, 1000, rng.New(7))
	b := Synthesize(10, 1000, rng.New(7))
	for i := range a.Flow {
		if a.Flow[i] != b.Flow[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Synthesize(20, 50000, rng.New(uint64(i)))
	}
}
