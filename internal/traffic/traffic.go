// Package traffic models city traffic flows and the coverage question
// the paper raises in §2: "Instrumenting one intersection will not give
// city planners an accurate picture of the overall city traffic."
//
// The city is a grid of intersections joined by road segments. Demand is
// origin-destination flows between zone pairs, routed along shortest
// (Manhattan) paths, producing per-intersection throughput with the
// heavy-tailed structure real cities show (a few arterials carry much of
// the load). A deployment instruments a subset of intersections; a
// planner estimates citywide vehicle-throughput by scaling the
// instrumented sample. The package quantifies estimation error versus
// instrumented fraction — and versus *which* intersections are picked,
// since sampling only arterials biases high.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"centuryscale/internal/rng"
	"centuryscale/internal/stats"
)

// Network is a grid of intersections with accumulated daily flows.
type Network struct {
	// N is the grid side: N×N intersections.
	N int
	// Flow[i] is vehicles/day through intersection i (row-major).
	Flow []float64
}

// idx maps grid coordinates to the flow slice.
func (n *Network) idx(x, y int) int { return y*n.N + x }

// Synthesize builds a network by routing OD trips. Trip endpoints are
// drawn with a center-weighted distribution (downtown attracts), and
// each trip adds one vehicle to every intersection along an L-shaped
// Manhattan route (x first, then y). The result is heavy-tailed: central
// arterials carry far more than edge streets.
func Synthesize(gridSide, trips int, src *rng.Source) *Network {
	if gridSide < 2 || trips <= 0 {
		panic("traffic: bad network config")
	}
	n := &Network{N: gridSide, Flow: make([]float64, gridSide*gridSide)}
	draw := func() int {
		// Triangular toward the center.
		a, b := src.Intn(gridSide), src.Intn(gridSide)
		return (a + b) / 2
	}
	for t := 0; t < trips; t++ {
		ox, oy := draw(), draw()
		dx, dy := draw(), draw()
		// Route: along x at oy, then along y at dx.
		step := 1
		if dx < ox {
			step = -1
		}
		for x := ox; ; x += step {
			n.Flow[n.idx(x, oy)]++
			if x == dx {
				break
			}
		}
		step = 1
		if dy < oy {
			step = -1
		}
		for y := oy; y != dy; y += step {
			n.Flow[n.idx(dx, y+step)]++
		}
	}
	return n
}

// Total returns citywide vehicle-intersection crossings per day.
func (n *Network) Total() float64 {
	sum := 0.0
	for _, f := range n.Flow {
		sum += f
	}
	return sum
}

// GiniIndex measures flow concentration across intersections (0 =
// uniform, →1 = all flow through one point). Real arterial structure
// shows up as a substantial Gini.
func (n *Network) GiniIndex() float64 {
	sorted := append([]float64(nil), n.Flow...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	if total == 0 {
		return 0
	}
	// Gini = (2*sum(i*x_i)/(n*sum x) - (n+1)/n) for 1-indexed sorted x.
	acc := 0.0
	for i, v := range sorted {
		acc += float64(i+1) * v
	}
	nn := float64(len(sorted))
	return 2*acc/(nn*total) - (nn+1)/nn
}

// SamplingStrategy selects which intersections get sensors.
type SamplingStrategy int

// Strategies.
const (
	// SampleRandom instruments a uniform random subset — the unbiased
	// design.
	SampleRandom SamplingStrategy = iota
	// SampleBusiest instruments the top-flow intersections — what a
	// deployment chasing "important" intersections does.
	SampleBusiest
)

// String implements fmt.Stringer.
func (s SamplingStrategy) String() string {
	switch s {
	case SampleRandom:
		return "random"
	case SampleBusiest:
		return "busiest"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// EstimateTotal instruments k intersections per the strategy, observes
// their true flows, and estimates the citywide total by mean-scaling.
// It returns the estimate and its relative error (signed).
func (n *Network) EstimateTotal(k int, strategy SamplingStrategy, src *rng.Source) (estimate, relErr float64) {
	if k <= 0 || k > len(n.Flow) {
		panic(fmt.Sprintf("traffic: sample size %d of %d", k, len(n.Flow)))
	}
	var sample []float64
	switch strategy {
	case SampleRandom:
		perm := src.Perm(len(n.Flow))
		for _, i := range perm[:k] {
			sample = append(sample, n.Flow[i])
		}
	case SampleBusiest:
		sorted := append([]float64(nil), n.Flow...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		sample = sorted[:k]
	default:
		panic(fmt.Sprintf("traffic: unknown strategy %d", int(strategy)))
	}
	estimate = stats.Mean(sample) * float64(len(n.Flow))
	truth := n.Total()
	relErr = (estimate - truth) / truth
	return estimate, relErr
}

// CoverageResult is one row of a coverage study.
type CoverageResult struct {
	Instrumented int
	Fraction     float64
	Strategy     SamplingStrategy
	// AbsRelErr is |relative error| of the citywide estimate, averaged
	// over trials.
	AbsRelErr float64
}

// CoverageStudy sweeps instrumented counts for both strategies, averaging
// the absolute relative error over trials random draws (busiest is
// deterministic but is still reported per row for comparison).
func (n *Network) CoverageStudy(counts []int, trials int, src *rng.Source) []CoverageResult {
	if trials <= 0 {
		panic("traffic: non-positive trials")
	}
	var out []CoverageResult
	for _, k := range counts {
		for _, strat := range []SamplingStrategy{SampleRandom, SampleBusiest} {
			sumErr := 0.0
			for tr := 0; tr < trials; tr++ {
				_, rel := n.EstimateTotal(k, strat, src.Split(fmt.Sprintf("t%d", tr)))
				sumErr += math.Abs(rel)
			}
			out = append(out, CoverageResult{
				Instrumented: k,
				Fraction:     float64(k) / float64(len(n.Flow)),
				Strategy:     strat,
				AbsRelErr:    sumErr / float64(trials),
			})
		}
	}
	return out
}
