// Package helium models the third-party, semi-federated LoRa network the
// paper leans on for its hedged "third-party infrastructure" design point
// (§4.2-4.4): a population of independently-operated hotspots, a prepaid
// data-credit wallet with fixed pricing, and the operator-churn dynamics
// that make an emergent network both attractive and risky.
//
// Three measured/stated facts from the paper anchor the model:
//
//   - Economics (§4.4): data credits are fixed-price once purchased; one
//     credit moves one up-to-24-byte packet, and $5 buys 500,000 credits —
//     so hourly uplink for 50 years (438,000 packets) can be prepaid today.
//   - Backhaul diversity (§4.3): of ~12,400 hotspots with public IPs,
//     roughly half sit in just ten ASes while the long tail spans ~200
//     ASes. We reproduce that with a Zipf(1.0) AS assignment.
//   - Federation (§4.2): because anyone — including the deployment's own
//     operator — can run a hotspot, the network is a hedge: if commercial
//     interest collapses, owned hotspots can supplant it.
package helium

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Pricing constants from §4.4.
const (
	// MaxPacketBytes is the largest payload one data credit moves.
	MaxPacketBytes = 24
	// CreditsPerPacket is the cost of one uplink.
	CreditsPerPacket = 1
	// CreditsPerCent: $5 buys 500,000 DC, so one cent buys 1,000.
	CreditsPerCent = 1000
)

// CreditsForUplink returns the data credits consumed by one packet every
// interval across span, assuming every scheduled uplink happens.
func CreditsForUplink(interval, span time.Duration) int64 {
	if interval <= 0 {
		panic("helium: non-positive interval")
	}
	return int64(span/interval) * CreditsPerPacket
}

// ErrInsufficientCredits is returned by Charge when the wallet is dry.
var ErrInsufficientCredits = errors.New("helium: insufficient data credits")

// Wallet is a prepaid data-credit balance. The paper's point is that the
// price of data "once purchased is fixed": a wallet provisioned at
// deployment pays for decades of uplink with no counterparty able to
// reprice it.
type Wallet struct {
	balance int64
	spent   int64
}

// NewWallet returns a wallet holding the given credits.
func NewWallet(credits int64) *Wallet {
	if credits < 0 {
		panic("helium: negative initial balance")
	}
	return &Wallet{balance: credits}
}

// Provision converts a cash amount (cents) into credits at the fixed rate
// and adds them.
func (w *Wallet) Provision(cents int64) {
	if cents < 0 {
		panic("helium: negative provision")
	}
	w.balance += cents * CreditsPerCent
}

// Charge deducts the credits for n packets, or fails atomically.
func (w *Wallet) Charge(packets int64) error {
	cost := packets * CreditsPerPacket
	if cost > w.balance {
		return fmt.Errorf("%w: need %d, have %d", ErrInsufficientCredits, cost, w.balance)
	}
	w.balance -= cost
	w.spent += cost
	return nil
}

// Balance returns the remaining credits.
func (w *Wallet) Balance() int64 { return w.balance }

// Spent returns the credits consumed so far.
func (w *Wallet) Spent() int64 { return w.spent }

// Hotspot is one third-party (or owned) gateway in the network.
type Hotspot struct {
	ID      int
	AS      int // autonomous-system rank of its ISP
	JoinAt  time.Duration
	LeaveAt time.Duration // when its operator unplugs it; 0 = never
	Owned   bool          // operated by the deployment itself (the hedge)
}

// AliveAt reports whether the hotspot is serving at time t.
func (h Hotspot) AliveAt(t time.Duration) bool {
	if t < h.JoinAt {
		return false
	}
	return h.LeaveAt == 0 || t < h.LeaveAt
}

// NetworkConfig parameterises a synthetic hotspot population.
type NetworkConfig struct {
	// InitialHotspots is the population at time zero (the paper measures
	// 12,400 public-IP hotspots).
	InitialHotspots int
	// ASes is the number of distinct provider ASes (~200 measured).
	ASes int
	// ZipfAlpha skews hotspots toward the big ISPs; 1.0 reproduces the
	// measured "top-10 carry ~half" distribution.
	ZipfAlpha float64
	// ChurnMeanYears is the mean operator tenure of a third-party
	// hotspot. Crypto-incentivised operators churn in single-digit years.
	ChurnMeanYears float64
	// GrowthStopsAfterYears: new third-party hotspots keep arriving (at
	// the steady-state replacement rate) until this point; afterwards the
	// network decays — the "emerging technology fails" scenario. 0 means
	// arrivals continue for the whole horizon.
	GrowthStopsAfterYears float64
	// Horizon bounds arrival generation.
	Horizon time.Duration
}

// DefaultNetworkConfig reproduces the paper's measured snapshot with churn
// plausible for an emergent crypto-incentivised network.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		InitialHotspots: 12400,
		ASes:            200,
		ZipfAlpha:       1.0,
		ChurnMeanYears:  3,
		Horizon:         sim.Years(50),
	}
}

// Network is a synthetic hotspot population over a simulation horizon.
type Network struct {
	cfg      NetworkConfig
	hotspots []Hotspot
	nextID   int

	// Sorted join/leave timelines for O(log n) alive-count queries;
	// rebuilt lazily after mutation. Owned hotspots are tracked in a
	// parallel pair so AliveAt can split the count.
	timelineDirty bool
	joins, leaves []time.Duration // third-party
	ojoins        []time.Duration // owned (never leave)
}

// NewNetwork synthesises the population: the initial cohort joins at time
// zero and replacement arrivals follow a Poisson process at the
// steady-state rate until growth stops.
func NewNetwork(cfg NetworkConfig, src *rng.Source) *Network {
	if cfg.InitialHotspots <= 0 || cfg.ASes <= 0 {
		panic("helium: empty network config")
	}
	n := &Network{cfg: cfg}
	zipf := rng.NewZipf(src.Split("as-assignment"), cfg.ASes, cfg.ZipfAlpha)
	churn := src.Split("churn")

	lifeOf := func() time.Duration {
		if cfg.ChurnMeanYears <= 0 {
			return 0 // never leaves
		}
		return sim.Years(churn.Exponential(cfg.ChurnMeanYears))
	}

	for i := 0; i < cfg.InitialHotspots; i++ {
		h := Hotspot{ID: n.nextID, AS: zipf.Draw()}
		if l := lifeOf(); l > 0 {
			h.LeaveAt = l
		}
		n.hotspots = append(n.hotspots, h)
		n.nextID++
	}

	// Replacement arrivals: rate = population / mean tenure keeps the
	// population stationary while arrivals continue.
	if cfg.ChurnMeanYears > 0 {
		growthEnd := cfg.Horizon
		if cfg.GrowthStopsAfterYears > 0 {
			if g := sim.Years(cfg.GrowthStopsAfterYears); g < growthEnd {
				growthEnd = g
			}
		}
		arrivals := src.Split("arrivals")
		meanGap := cfg.ChurnMeanYears / float64(cfg.InitialHotspots)
		t := time.Duration(0)
		for {
			t += sim.Years(arrivals.Exponential(meanGap))
			if t >= growthEnd {
				break
			}
			h := Hotspot{ID: n.nextID, AS: zipf.Draw(), JoinAt: t}
			if l := lifeOf(); l > 0 {
				h.LeaveAt = t + l
			}
			n.hotspots = append(n.hotspots, h)
			n.nextID++
		}
	}
	return n
}

// AddOwned deploys count operator-owned hotspots at time at; they never
// churn. This is the paper's hedge: "own and operate gateway devices that
// we could use to supplant infrastructure if the commercial network were
// to become unusable."
func (n *Network) AddOwned(count int, at time.Duration) {
	for i := 0; i < count; i++ {
		n.hotspots = append(n.hotspots, Hotspot{ID: n.nextID, AS: -1, JoinAt: at, Owned: true})
		n.nextID++
	}
	n.timelineDirty = true
}

// Size returns the total number of hotspots ever present.
func (n *Network) Size() int { return len(n.hotspots) }

// rebuildTimeline sorts join/leave instants so AliveAt is a pair of
// binary searches: with tens of thousands of hotspots queried once per
// packet over 50 simulated years, the O(n) scan dominates whole runs.
func (n *Network) rebuildTimeline() {
	n.joins = n.joins[:0]
	n.leaves = n.leaves[:0]
	n.ojoins = n.ojoins[:0]
	for _, h := range n.hotspots {
		if h.Owned {
			n.ojoins = append(n.ojoins, h.JoinAt)
			continue
		}
		n.joins = append(n.joins, h.JoinAt)
		if h.LeaveAt > 0 {
			n.leaves = append(n.leaves, h.LeaveAt)
		}
	}
	sortDurations(n.joins)
	sortDurations(n.leaves)
	sortDurations(n.ojoins)
	n.timelineDirty = false
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// countAtOrBefore returns how many sorted instants are <= t.
func countAtOrBefore(ds []time.Duration, t time.Duration) int {
	return sort.Search(len(ds), func(i int) bool { return ds[i] > t })
}

// AliveAt counts hotspots serving at time t.
func (n *Network) AliveAt(t time.Duration) (total, owned int) {
	if n.timelineDirty || (n.joins == nil && len(n.hotspots) > 0) {
		n.rebuildTimeline()
	}
	third := countAtOrBefore(n.joins, t) - countAtOrBefore(n.leaves, t)
	owned = countAtOrBefore(n.ojoins, t)
	return third + owned, owned
}

// ASDistribution returns per-AS hotspot counts at time t for third-party
// hotspots, sorted descending.
func (n *Network) ASDistribution(t time.Duration) []int {
	counts := make(map[int]int)
	for _, h := range n.hotspots {
		if !h.Owned && h.AliveAt(t) {
			counts[h.AS]++
		}
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// TopShare returns the fraction of alive third-party hotspots carried by
// the k largest ASes at time t.
func (n *Network) TopShare(k int, t time.Duration) float64 {
	dist := n.ASDistribution(t)
	total, top := 0, 0
	for i, c := range dist {
		total += c
		if i < k {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// UniqueASes returns how many distinct ASes host alive third-party
// hotspots at time t.
func (n *Network) UniqueASes(t time.Duration) int {
	return len(n.ASDistribution(t))
}

// CoverageAt reports whether a device sees service at time t: at least
// minHotspots alive (owned hotspots count), and — if a wallet is given —
// credits available. It does not charge the wallet.
func (n *Network) CoverageAt(t time.Duration, minHotspots int, w *Wallet) bool {
	if w != nil && w.Balance() < CreditsPerPacket {
		return false
	}
	total, _ := n.AliveAt(t)
	return total >= minHotspots
}
