package helium

import (
	"errors"
	"testing"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

func TestPaperWalletMath(t *testing.T) {
	// §4.4: one 24-byte packet hourly for 50 years costs 438,000 DC
	// (the paper uses 365-day years), prepaid by a $5 wallet of 500,000.
	span := 50 * 365 * 24 * time.Hour
	credits := CreditsForUplink(time.Hour, span)
	if credits != 438000 {
		t.Fatalf("50-year hourly uplink = %d DC, paper says 438,000", credits)
	}
	w := NewWallet(0)
	w.Provision(500) // $5.00
	if w.Balance() != 500000 {
		t.Fatalf("$5 = %d DC, paper says 500,000", w.Balance())
	}
	if err := w.Charge(credits); err != nil {
		t.Fatalf("prepaid wallet could not cover 50 years: %v", err)
	}
	if w.Balance() != 62000 {
		t.Fatalf("remaining = %d, want 62,000", w.Balance())
	}
}

func TestWalletCharge(t *testing.T) {
	w := NewWallet(10)
	if err := w.Charge(7); err != nil {
		t.Fatal(err)
	}
	if w.Balance() != 3 || w.Spent() != 7 {
		t.Fatalf("balance=%d spent=%d", w.Balance(), w.Spent())
	}
	if err := w.Charge(4); !errors.Is(err, ErrInsufficientCredits) {
		t.Fatalf("overdraft err = %v", err)
	}
	// Failed charge must not mutate.
	if w.Balance() != 3 || w.Spent() != 7 {
		t.Fatal("failed charge mutated wallet")
	}
}

func TestWalletPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative-balance":   func() { NewWallet(-1) },
		"negative-provision": func() { NewWallet(0).Provision(-1) },
		"zero-interval":      func() { CreditsForUplink(0, time.Hour) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHotspotAliveWindows(t *testing.T) {
	h := Hotspot{JoinAt: 10 * time.Hour, LeaveAt: 20 * time.Hour}
	if h.AliveAt(5 * time.Hour) {
		t.Fatal("alive before join")
	}
	if !h.AliveAt(15 * time.Hour) {
		t.Fatal("dead inside window")
	}
	if h.AliveAt(20 * time.Hour) {
		t.Fatal("alive after leave")
	}
	forever := Hotspot{}
	if !forever.AliveAt(sim.Years(100)) {
		t.Fatal("never-leaving hotspot died")
	}
}

func TestPaperASDistribution(t *testing.T) {
	// §4.3: ~12,400 hotspots, top-10 ASes ~50%, ~200 unique ASes.
	n := NewNetwork(DefaultNetworkConfig(), rng.New(42))
	share := n.TopShare(10, 0)
	if share < 0.42 || share > 0.58 {
		t.Fatalf("top-10 AS share = %v, paper measures ~0.50", share)
	}
	unique := n.UniqueASes(0)
	if unique < 170 || unique > 200 {
		t.Fatalf("unique ASes = %d, paper measures ~200", unique)
	}
	total, _ := n.AliveAt(0)
	if total != 12400 {
		t.Fatalf("initial population = %d", total)
	}
}

func TestChurnStationaryWhileGrowing(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.InitialHotspots = 2000
	cfg.Horizon = sim.Years(20)
	n := NewNetwork(cfg, rng.New(7))
	at0, _ := n.AliveAt(0)
	at10, _ := n.AliveAt(sim.Years(10))
	// Replacement arrivals keep the population within ~15% of initial.
	ratio := float64(at10) / float64(at0)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("population drifted: %d -> %d (ratio %v)", at0, at10, ratio)
	}
}

func TestNetworkDecayAfterGrowthStops(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.InitialHotspots = 2000
	cfg.GrowthStopsAfterYears = 10
	cfg.Horizon = sim.Years(50)
	n := NewNetwork(cfg, rng.New(8))
	at10, _ := n.AliveAt(sim.Years(10))
	at20, _ := n.AliveAt(sim.Years(20))
	at40, _ := n.AliveAt(sim.Years(40))
	if at20 >= at10/2 {
		// Mean tenure 3y: ten years after arrivals stop, ~3.6% remain.
		t.Fatalf("network not decaying: %d at 10y, %d at 20y", at10, at20)
	}
	if at40 > at10/100 {
		t.Fatalf("network should be nearly gone at 40y: %d", at40)
	}
}

func TestOwnedHotspotsHedge(t *testing.T) {
	cfg := DefaultNetworkConfig()
	cfg.InitialHotspots = 500
	cfg.GrowthStopsAfterYears = 5
	cfg.Horizon = sim.Years(50)
	n := NewNetwork(cfg, rng.New(9))
	// Third-party network collapses; owned hotspots deployed at year 12
	// keep coverage alive forever.
	n.AddOwned(3, sim.Years(12))
	if n.CoverageAt(sim.Years(40), 1, nil) == false {
		t.Fatal("owned hotspots did not preserve coverage")
	}
	total, owned := n.AliveAt(sim.Years(40))
	if owned != 3 {
		t.Fatalf("owned alive = %d, want 3", owned)
	}
	if total < 3 {
		t.Fatalf("total alive = %d", total)
	}
	// Owned hotspots are excluded from the third-party AS census.
	for _, c := range n.ASDistribution(sim.Years(40)) {
		if c > 2 {
			t.Fatalf("AS census suspiciously large after collapse: %d", c)
		}
	}
}

func TestCoverageRequiresCredits(t *testing.T) {
	n := NewNetwork(NetworkConfig{
		InitialHotspots: 10, ASes: 5, ZipfAlpha: 1, Horizon: sim.Years(1),
	}, rng.New(10))
	w := NewWallet(0)
	if n.CoverageAt(0, 1, w) {
		t.Fatal("coverage with empty wallet")
	}
	w.Provision(1)
	if !n.CoverageAt(0, 1, w) {
		t.Fatal("no coverage despite credits and hotspots")
	}
}

func TestCoverageMinHotspots(t *testing.T) {
	n := NewNetwork(NetworkConfig{
		InitialHotspots: 2, ASes: 2, ZipfAlpha: 1, Horizon: sim.Years(1),
	}, rng.New(11))
	if !n.CoverageAt(0, 2, nil) {
		t.Fatal("2 hotspots should satisfy min 2")
	}
	if n.CoverageAt(0, 3, nil) {
		t.Fatal("2 hotspots cannot satisfy min 3")
	}
}

func TestDeterministicNetwork(t *testing.T) {
	a := NewNetwork(DefaultNetworkConfig(), rng.New(5))
	b := NewNetwork(DefaultNetworkConfig(), rng.New(5))
	if a.Size() != b.Size() {
		t.Fatal("same seed produced different networks")
	}
	ta, _ := a.AliveAt(sim.Years(25))
	tb, _ := b.AliveAt(sim.Years(25))
	if ta != tb {
		t.Fatal("alive counts diverge")
	}
}

func TestEmptyConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty config did not panic")
		}
	}()
	NewNetwork(NetworkConfig{}, rng.New(1))
}

func BenchmarkNetworkSynthesis(b *testing.B) {
	cfg := DefaultNetworkConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewNetwork(cfg, rng.New(uint64(i)))
	}
}

func BenchmarkAliveQuery(b *testing.B) {
	n := NewNetwork(DefaultNetworkConfig(), rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = n.AliveAt(sim.Years(25))
	}
}
