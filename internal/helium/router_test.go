package helium

import (
	"bytes"
	"errors"
	"testing"

	"centuryscale/internal/lorawan"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

var routerMaster = []byte("0123456789abcdef") // 16 bytes

func encodeUplink(t *testing.T, devAddr uint32, fcnt uint16, payload []byte) []byte {
	t.Helper()
	nwk, app, err := lorawan.SessionKeys(routerMaster, devAddr)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := (lorawan.Uplink{DevAddr: devAddr, FCnt: fcnt, FPort: 1, Payload: payload}).Encode(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestRouterDeliversAndCharges(t *testing.T) {
	w := NewWallet(10)
	r, err := NewRouter(routerMaster, w)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("telemetry-24-bytes-here!")
	got, err := r.HandleUplink(encodeUplink(t, 0x11, 1, payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if w.Balance() != 9 || r.Stats().Delivered != 1 {
		t.Fatalf("balance=%d delivered=%d", w.Balance(), r.Stats().Delivered)
	}
}

func TestRouterRejectsForgery(t *testing.T) {
	r, _ := NewRouter(routerMaster, NewWallet(10))
	wire := encodeUplink(t, 0x11, 1, []byte("x"))
	wire[len(wire)-1] ^= 0xff
	if _, err := r.HandleUplink(wire); !errors.Is(err, lorawan.ErrBadMIC) {
		t.Fatalf("forged frame err = %v", err)
	}
	if r.Stats().BadFrames != 1 || r.Stats().Delivered != 0 {
		t.Fatalf("stats = %+v", r)
	}
}

func TestRouterRejectsReplay(t *testing.T) {
	w := NewWallet(10)
	r, _ := NewRouter(routerMaster, w)
	wire := encodeUplink(t, 0x22, 5, []byte("x"))
	if _, err := r.HandleUplink(wire); err != nil {
		t.Fatal(err)
	}
	// The same frame via a second hotspot: rejected, not double-charged.
	if _, err := r.HandleUplink(wire); !errors.Is(err, lorawan.ErrFCntReplay) {
		t.Fatalf("replay err = %v", err)
	}
	if w.Balance() != 9 {
		t.Fatalf("balance = %d, double-charged", w.Balance())
	}
}

func TestRouterStopsWhenWalletDry(t *testing.T) {
	w := NewWallet(1)
	r, _ := NewRouter(routerMaster, w)
	if _, err := r.HandleUplink(encodeUplink(t, 0x33, 1, []byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleUplink(encodeUplink(t, 0x33, 2, []byte("b"))); !errors.Is(err, ErrInsufficientCredits) {
		t.Fatalf("dry wallet err = %v", err)
	}
	if r.Stats().Unfunded != 1 {
		t.Fatalf("unfunded = %d", r.Stats().Unfunded)
	}
}

func TestRouterOversizeCostsMore(t *testing.T) {
	r, _ := NewRouter(routerMaster, NewWallet(10))
	if _, err := r.HandleUplink(encodeUplink(t, 0x44, 1, make([]byte, 25))); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestEndToEndTelemetryOverLoRaWAN(t *testing.T) {
	// The full third-party path: device seals 24-byte telemetry, wraps
	// it in a LoRaWAN uplink, the router verifies/charges/decrypts, and
	// the inner telemetry packet still verifies against the fleet key.
	fleetMaster := []byte("fleet-master-secret")
	id := lpwan.EUIFromUint64(0xABCD)
	inner, err := telemetry.Packet{
		Device: id, Seq: 7, Sensor: telemetry.SensorConcreteEMI, Value: 0.97,
	}.Seal(telemetry.DeriveKey(fleetMaster, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(inner) != MaxPacketBytes {
		t.Fatalf("telemetry = %d bytes", len(inner))
	}

	w := NewWallet(5)
	r, _ := NewRouter(routerMaster, w)
	payload, err := r.HandleUplink(encodeUplink(t, 0xABCD, 1, inner))
	if err != nil {
		t.Fatal(err)
	}
	p, err := telemetry.Verify(payload, telemetry.DeriveKey(fleetMaster, id))
	if err != nil {
		t.Fatalf("inner telemetry failed verification: %v", err)
	}
	if p.Seq != 7 || p.Value != 0.97 {
		t.Fatalf("telemetry = %+v", p)
	}
	if w.Balance() != 4 {
		t.Fatalf("wallet = %d", w.Balance())
	}
}

func TestRouterConstruction(t *testing.T) {
	if _, err := NewRouter([]byte("short"), NewWallet(1)); err == nil {
		t.Fatal("short master accepted")
	}
	if _, err := NewRouter(routerMaster, nil); err == nil {
		t.Fatal("nil wallet accepted")
	}
}

func TestRouterConcurrentHotspots(t *testing.T) {
	w := NewWallet(10000)
	r, _ := NewRouter(routerMaster, w)
	// Pre-encode distinct frames (one device per goroutine so FCnt
	// tracking stays per-stream).
	const workers, frames = 8, 50
	wires := make([][][]byte, workers)
	for g := 0; g < workers; g++ {
		for f := 0; f < frames; f++ {
			wires[g] = append(wires[g], encodeUplink(t, uint32(0x100+g), uint16(f+1), []byte("x")))
		}
	}
	done := make(chan struct{})
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for _, wire := range wires[g] {
				if _, err := r.HandleUplink(wire); err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	if got := r.Stats().Delivered; got != workers*frames {
		t.Fatalf("delivered = %d, want %d", got, workers*frames)
	}
	if w.Balance() != 10000-workers*frames {
		t.Fatalf("balance = %d", w.Balance())
	}
}
