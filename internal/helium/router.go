package helium

import (
	"errors"
	"fmt"
	"sync"

	"centuryscale/internal/lorawan"
)

// Router is the network-side packet handler of the semi-federated
// network: hotspots are dumb RF forwarders; the router MIC-verifies each
// LoRaWAN uplink, enforces frame-counter freshness, charges the device
// owner's prepaid wallet, and releases the decrypted application payload
// to the owner's endpoint. This is the §4.2-4.4 money-and-trust path: the
// hotspot is paid per verified packet, and the owner's 24-byte telemetry
// comes out the other side.
// Router is safe for concurrent use: many hotspots POST to it at once.
// (Wallet itself is not synchronised; the router's lock covers it.)
type Router struct {
	master []byte

	mu      sync.Mutex
	tracker *lorawan.FCntTracker
	wallet  *Wallet

	// Stats, guarded by mu; read them via Stats.
	delivered   uint64
	badFrames   uint64
	replays     uint64
	unfunded    uint64
	oversizePay uint64
}

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	Delivered   uint64
	BadFrames   uint64
	Replays     uint64
	Unfunded    uint64
	OversizePay uint64
}

// Stats returns a consistent snapshot.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RouterStats{
		Delivered: r.delivered, BadFrames: r.badFrames, Replays: r.replays,
		Unfunded: r.unfunded, OversizePay: r.oversizePay,
	}
}

// NewRouter builds a router for one owner: their ABP master secret and
// their prepaid wallet.
func NewRouter(master []byte, wallet *Wallet) (*Router, error) {
	if len(master) != 16 {
		return nil, lorawan.ErrBadKey
	}
	if wallet == nil {
		return nil, fmt.Errorf("helium: router needs a wallet")
	}
	return &Router{
		master:  master,
		tracker: lorawan.NewFCntTracker(1024),
		wallet:  wallet,
	}, nil
}

// ErrOversize is returned for payloads exceeding the one-credit size.
var ErrOversize = errors.New("helium: payload exceeds 24-byte data-credit unit")

// HandleUplink processes one forwarded LoRaWAN frame, returning the
// decrypted application payload on success.
func (r *Router) HandleUplink(wire []byte) ([]byte, error) {
	keys := func(devAddr uint32) ([]byte, []byte, bool) {
		nwk, app, err := lorawan.SessionKeys(r.master, devAddr)
		if err != nil {
			return nil, nil, false
		}
		return nwk, app, true
	}
	// Cryptographic verification happens outside the lock; only the
	// counter/wallet state transitions are serialised.
	u, err := lorawan.Decode(wire, keys)
	if err != nil {
		r.mu.Lock()
		r.badFrames++
		r.mu.Unlock()
		return nil, err
	}
	if len(u.Payload) > MaxPacketBytes {
		r.mu.Lock()
		r.oversizePay++
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(u.Payload))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.tracker.Accept(u.DevAddr, u.FCnt); err != nil {
		r.replays++
		return nil, err
	}
	if err := r.wallet.Charge(CreditsPerPacket); err != nil {
		r.unfunded++
		return nil, err
	}
	r.delivered++
	return u.Payload, nil
}
