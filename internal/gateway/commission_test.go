package gateway

import (
	"errors"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

var secret = []byte("network-operator-secret-0123456789")

func TestEnrollVerifyRoundTrip(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	blob, err := Enroll(secret, "gw-42", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := VerifyEnrollment(secret, blob, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GatewayID != "gw-42" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestEnrollmentExpiry(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	blob, _ := Enroll(secret, "gw", now, time.Hour)
	if _, err := VerifyEnrollment(secret, blob, now.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired record err = %v", err)
	}
	if _, err := VerifyEnrollment(secret, blob, now.Add(-time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("not-yet-valid record err = %v", err)
	}
}

func TestEnrollmentWrongSecret(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	blob, _ := Enroll(secret, "gw", now, time.Hour)
	if _, err := VerifyEnrollment([]byte("other-secret-0123456789abcdef"), blob, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong secret err = %v", err)
	}
}

func TestEnrollmentTamper(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	blob, _ := Enroll(secret, "gw", now, time.Hour)
	// Flip a byte inside the body portion.
	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)/2] ^= 0x01
	if _, err := VerifyEnrollment(secret, tampered, now); err == nil {
		t.Fatal("tampered enrollment verified")
	}
}

func TestShortSecretRejected(t *testing.T) {
	if _, err := Enroll([]byte("tiny"), "gw", time.Unix(0, 0), time.Hour); !errors.Is(err, ErrShortSecret) {
		t.Fatalf("short secret err = %v", err)
	}
}

func TestHandoffMigratesRegistry(t *testing.T) {
	old := New(Config{ID: "gw-old"}, UplinkFunc(func([]byte) error { return nil }))
	// The old gateway has carried three devices and blocked one.
	for _, dev := range []uint64{10, 11, 12} {
		if err := old.HandleFrame(frameFrom(dev, "x")); err != nil {
			t.Fatal(err)
		}
	}
	old.Block(lpwan.EUIFromUint64(666))

	now := time.Unix(2_000_000, 0)
	blob, err := old.ExportHandoff(secret, "gw-new", now)
	if err != nil {
		t.Fatal(err)
	}

	nw := New(Config{ID: "gw-new"}, UplinkFunc(func([]byte) error { return nil }))
	rec, err := nw.ImportHandoff(secret, blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FromGateway != "gw-old" || len(rec.Devices) != 3 || len(rec.Blocklist) != 1 {
		t.Fatalf("record = %+v", rec)
	}
	// The new gateway inherits the registry and the blocklist.
	if got := len(nw.Devices()); got != 3 {
		t.Fatalf("imported %d devices", got)
	}
	if err := nw.HandleFrame(frameFrom(666, "evil")); !errors.Is(err, ErrBlocked) {
		t.Fatalf("inherited blocklist not enforced: %v", err)
	}
}

func TestHandoffWrongRecipient(t *testing.T) {
	old := New(Config{ID: "gw-old"}, UplinkFunc(func([]byte) error { return nil }))
	blob, _ := old.ExportHandoff(secret, "gw-new", time.Unix(0, 0))
	imposter := New(Config{ID: "gw-imposter"}, UplinkFunc(func([]byte) error { return nil }))
	if _, err := imposter.ImportHandoff(secret, blob); err == nil {
		t.Fatal("handoff accepted by wrong recipient")
	}
}

func TestHandoffWrongSecret(t *testing.T) {
	old := New(Config{ID: "gw-old"}, UplinkFunc(func([]byte) error { return nil }))
	blob, _ := old.ExportHandoff(secret, "gw-new", time.Unix(0, 0))
	nw := New(Config{ID: "gw-new"}, UplinkFunc(func([]byte) error { return nil }))
	if _, err := nw.ImportHandoff([]byte("other-secret-0123456789abcdef"), blob); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong-secret handoff err = %v", err)
	}
}

func TestHandoffDeterministicOrder(t *testing.T) {
	// Two exports of the same registry must be byte-identical (sorted
	// device lists), so operators can diff and audit them.
	old := New(Config{ID: "gw-old"}, UplinkFunc(func([]byte) error { return nil }))
	for _, dev := range []uint64{5, 3, 9, 1} {
		_ = old.HandleFrame(frameFrom(dev, "x"))
	}
	now := time.Unix(0, 0)
	a, _ := old.ExportHandoff(secret, "gw-new", now)
	b, _ := old.ExportHandoff(secret, "gw-new", now)
	if string(a) != string(b) {
		t.Fatal("handoff export not deterministic")
	}
}
