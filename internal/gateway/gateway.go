// Package gateway implements the gateway layer: frame validation and
// forwarding, blocklists, vendor-association policy, commissioning, and
// the trusted-third-party migration handoff.
//
// The paper's takeaways for this tier (§3.2) are that gateways should act
// primarily as routers, deferring decision-making to other components, and
// that coverage multiplies when gateways serve any manufacturer's devices
// rather than only their own. Both takeaways are encoded here: the
// Forwarder does structural validation and routing only (plus a blocklist,
// the one filtering job the paper grants it), and the association Policy
// lets experiments compare open gateways against vendor-locked ones that
// only carry frames whose source EUI-64 bears their vendor's OUI prefix.
package gateway

import (
	"errors"
	"fmt"
	"sync"

	"centuryscale/internal/lpwan"
)

// Uplink is where a gateway sends validated frames: the backhaul. The
// real daemon implements it with an HTTP client; simulations implement it
// with a function.
type Uplink interface {
	Send(payload []byte) error
}

// UplinkFunc adapts a function to the Uplink interface.
type UplinkFunc func(payload []byte) error

// Send implements Uplink.
func (f UplinkFunc) Send(payload []byte) error { return f(payload) }

// Policy decides which devices a gateway will carry traffic for.
type Policy int

// Association policies.
const (
	// PolicyOpen forwards any structurally valid frame: the paper's
	// recommended design.
	PolicyOpen Policy = iota
	// PolicyVendorLocked forwards only devices whose EUI-64 carries the
	// gateway vendor's OUI: the ecosystem-lock the paper criticises.
	PolicyVendorLocked
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicyVendorLocked:
		return "vendor-locked"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// OUI is the 24-bit organisationally unique identifier prefix of an
// EUI-64: the vendor stamp.
type OUI [3]byte

// OUIOf extracts the vendor prefix from a device address.
func OUIOf(e lpwan.EUI64) OUI { return OUI{e[0], e[1], e[2]} }

// Stats counts a gateway's forwarding activity.
type Stats struct {
	Forwarded     uint64
	DropMalformed uint64
	DropBlocked   uint64
	DropPolicy    uint64
	UplinkErrors  uint64
}

// Config describes a gateway.
type Config struct {
	ID     string
	Policy Policy
	// VendorOUI is required when Policy is PolicyVendorLocked.
	VendorOUI OUI
}

// Gateway validates and forwards device frames. It is safe for concurrent
// use: the real daemon feeds it from multiple UDP readers.
type Gateway struct {
	cfg    Config
	uplink Uplink

	mu        sync.Mutex
	stats     Stats
	blocklist map[lpwan.EUI64]bool
	devices   map[lpwan.EUI64]bool // devices seen, for handoff export
}

// New returns a gateway forwarding to the given uplink.
func New(cfg Config, uplink Uplink) *Gateway {
	if uplink == nil {
		panic("gateway: nil uplink")
	}
	return &Gateway{
		cfg:       cfg,
		uplink:    uplink,
		blocklist: make(map[lpwan.EUI64]bool),
		devices:   make(map[lpwan.EUI64]bool),
	}
}

// ID returns the configured gateway identity.
func (g *Gateway) ID() string { return g.cfg.ID }

// Block adds a device to the blocklist ("minding a blocklist of known-bad
// devices", §3.2).
func (g *Gateway) Block(dev lpwan.EUI64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocklist[dev] = true
}

// Unblock removes a device from the blocklist.
func (g *Gateway) Unblock(dev lpwan.EUI64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.blocklist, dev)
}

// Errors surfaced by HandleFrame.
var (
	ErrBlocked      = errors.New("gateway: device blocklisted")
	ErrPolicyReject = errors.New("gateway: vendor policy rejects device")
)

// HandleFrame validates a raw link-layer frame and forwards its payload
// upstream. The returned error describes why a frame was not forwarded;
// callers in the datapath typically only count it.
func (g *Gateway) HandleFrame(wire []byte) error {
	f, err := lpwan.Decode(wire)
	if err != nil {
		g.mu.Lock()
		g.stats.DropMalformed++
		g.mu.Unlock()
		return err
	}
	g.mu.Lock()
	if g.blocklist[f.Source] {
		g.stats.DropBlocked++
		g.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrBlocked, f.Source)
	}
	if g.cfg.Policy == PolicyVendorLocked && OUIOf(f.Source) != g.cfg.VendorOUI {
		g.stats.DropPolicy++
		g.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrPolicyReject, f.Source)
	}
	g.devices[f.Source] = true
	g.mu.Unlock()

	if err := g.uplink.Send(f.Payload); err != nil {
		g.mu.Lock()
		g.stats.UplinkErrors++
		g.mu.Unlock()
		return fmt.Errorf("gateway %s uplink: %w", g.cfg.ID, err)
	}
	g.mu.Lock()
	g.stats.Forwarded++
	g.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Devices returns the set of device addresses this gateway has carried,
// in unspecified order.
func (g *Gateway) Devices() []lpwan.EUI64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]lpwan.EUI64, 0, len(g.devices))
	for d := range g.devices {
		out = append(out, d)
	}
	return out
}

// Blocklist returns the currently blocked devices, in unspecified order.
func (g *Gateway) Blocklist() []lpwan.EUI64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]lpwan.EUI64, 0, len(g.blocklist))
	for d := range g.blocklist {
		out = append(out, d)
	}
	return out
}
