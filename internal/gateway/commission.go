package gateway

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/lpwan"
)

// Commissioning and migration (§3.2): "The process should allow newer
// gateways to establish links with the backhaul using secure mechanisms
// similar to those used for home router commissioning. Additionally, when
// replacing existing gateway units, we can have a process in place to
// utilize the outgoing gateway as a trusted third party for easy migration
// of existing connected devices."
//
// The implementation keeps to the stdlib: enrollment and handoff records
// are JSON envelopes authenticated with HMAC-SHA256 under a network
// operator secret. The outgoing gateway acts as the trusted third party by
// signing its device registry into a HandoffRecord that the incoming
// gateway verifies and imports, so devices keep flowing without
// re-provisioning anything on the (untouchable, transmit-only) devices.

// Errors from the commissioning protocol.
var (
	ErrBadSignature = errors.New("gateway: record signature invalid")
	ErrExpired      = errors.New("gateway: record outside validity window")
	ErrShortSecret  = errors.New("gateway: network secret shorter than 16 bytes")
)

// EnrollmentRecord is the operator's authorisation for a gateway to join
// the backhaul.
type EnrollmentRecord struct {
	GatewayID string `json:"gateway_id"`
	// IssuedAtUnix / ExpiresAtUnix bound the record's validity. Virtual
	// (simulation) or real timestamps both work; the caller supplies
	// "now" at verification.
	IssuedAtUnix  int64 `json:"issued_at"`
	ExpiresAtUnix int64 `json:"expires_at"`
}

type signedEnvelope struct {
	Body []byte `json:"body"`
	Tag  string `json:"tag"`
}

func sign(secret, body []byte) ([]byte, error) {
	if len(secret) < 16 {
		return nil, ErrShortSecret
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	env := signedEnvelope{Body: body, Tag: base64.StdEncoding.EncodeToString(mac.Sum(nil))}
	return json.Marshal(env)
}

func verify(secret, blob []byte) ([]byte, error) {
	if len(secret) < 16 {
		return nil, ErrShortSecret
	}
	var env signedEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("gateway: malformed envelope: %w", err)
	}
	tag, err := base64.StdEncoding.DecodeString(env.Tag)
	if err != nil {
		return nil, fmt.Errorf("gateway: malformed tag: %w", err)
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(env.Body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrBadSignature
	}
	return env.Body, nil
}

// Enroll issues a signed enrollment record for a gateway, valid for ttl
// from now.
func Enroll(secret []byte, gatewayID string, now time.Time, ttl time.Duration) ([]byte, error) {
	rec := EnrollmentRecord{
		GatewayID:     gatewayID,
		IssuedAtUnix:  now.Unix(),
		ExpiresAtUnix: now.Add(ttl).Unix(),
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return sign(secret, body)
}

// VerifyEnrollment checks an enrollment blob's signature and validity at
// time now, returning the record.
func VerifyEnrollment(secret, blob []byte, now time.Time) (EnrollmentRecord, error) {
	var rec EnrollmentRecord
	body, err := verify(secret, blob)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("gateway: malformed enrollment: %w", err)
	}
	if now.Unix() < rec.IssuedAtUnix || now.Unix() > rec.ExpiresAtUnix {
		return rec, fmt.Errorf("%w: now=%d window=[%d,%d]", ErrExpired, now.Unix(), rec.IssuedAtUnix, rec.ExpiresAtUnix)
	}
	return rec, nil
}

// HandoffRecord is the outgoing gateway's signed registry export: the
// trusted-third-party migration payload.
type HandoffRecord struct {
	FromGateway  string   `json:"from_gateway"`
	ToGateway    string   `json:"to_gateway"`
	Devices      []string `json:"devices"`
	Blocklist    []string `json:"blocklist"`
	IssuedAtUnix int64    `json:"issued_at"`
}

// ExportHandoff builds and signs a handoff of this gateway's device
// registry and blocklist to a successor gateway.
func (g *Gateway) ExportHandoff(secret []byte, toGateway string, now time.Time) ([]byte, error) {
	devs := g.Devices()
	blocked := g.Blocklist()
	rec := HandoffRecord{
		FromGateway:  g.cfg.ID,
		ToGateway:    toGateway,
		IssuedAtUnix: now.Unix(),
	}
	for _, d := range devs {
		rec.Devices = append(rec.Devices, d.String())
	}
	for _, d := range blocked {
		rec.Blocklist = append(rec.Blocklist, d.String())
	}
	sort.Strings(rec.Devices)
	sort.Strings(rec.Blocklist)
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return sign(secret, body)
}

// ImportHandoff verifies a handoff blob addressed to this gateway and
// imports the registry: known devices are pre-registered and the
// blocklist is merged.
func (g *Gateway) ImportHandoff(secret, blob []byte) (HandoffRecord, error) {
	var rec HandoffRecord
	body, err := verify(secret, blob)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("gateway: malformed handoff: %w", err)
	}
	if rec.ToGateway != g.cfg.ID {
		return rec, fmt.Errorf("gateway: handoff addressed to %q, this is %q", rec.ToGateway, g.cfg.ID)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range rec.Devices {
		e, err := lpwan.ParseEUI64(s)
		if err != nil {
			return rec, fmt.Errorf("gateway: handoff device %q: %w", s, err)
		}
		g.devices[e] = true
	}
	for _, s := range rec.Blocklist {
		e, err := lpwan.ParseEUI64(s)
		if err != nil {
			return rec, fmt.Errorf("gateway: handoff blocklist %q: %w", s, err)
		}
		g.blocklist[e] = true
	}
	return rec, nil
}
