package gateway

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"centuryscale/internal/lpwan"
)

func frameFrom(dev uint64, payload string) []byte {
	wire, err := lpwan.Frame{
		Type:    lpwan.FrameData,
		Source:  lpwan.EUIFromUint64(dev),
		Seq:     1,
		Payload: []byte(payload),
	}.Encode()
	if err != nil {
		panic(err)
	}
	return wire
}

func TestForwardsValidFrame(t *testing.T) {
	var got [][]byte
	g := New(Config{ID: "gw1"}, UplinkFunc(func(p []byte) error {
		got = append(got, p)
		return nil
	}))
	if err := g.HandleFrame(frameFrom(1, "hello")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("uplink got %q", got)
	}
	if s := g.Stats(); s.Forwarded != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropsMalformed(t *testing.T) {
	g := New(Config{ID: "gw1"}, UplinkFunc(func([]byte) error {
		t.Fatal("malformed frame reached uplink")
		return nil
	}))
	if err := g.HandleFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed frame accepted")
	}
	corrupt := frameFrom(1, "x")
	corrupt[len(corrupt)-1] ^= 0xff
	if err := g.HandleFrame(corrupt); err == nil {
		t.Fatal("bad CRC accepted")
	}
	if s := g.Stats(); s.DropMalformed != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBlocklist(t *testing.T) {
	forwarded := 0
	g := New(Config{ID: "gw1"}, UplinkFunc(func([]byte) error {
		forwarded++
		return nil
	}))
	bad := lpwan.EUIFromUint64(666)
	g.Block(bad)
	if err := g.HandleFrame(frameFrom(666, "evil")); !errors.Is(err, ErrBlocked) {
		t.Fatalf("blocked device err = %v", err)
	}
	if err := g.HandleFrame(frameFrom(7, "good")); err != nil {
		t.Fatal(err)
	}
	g.Unblock(bad)
	if err := g.HandleFrame(frameFrom(666, "redeemed")); err != nil {
		t.Fatalf("unblocked device rejected: %v", err)
	}
	if forwarded != 2 {
		t.Fatalf("forwarded = %d", forwarded)
	}
	if s := g.Stats(); s.DropBlocked != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestVendorLockPolicy(t *testing.T) {
	// Vendor OUI aa:bb:cc.
	vendorDev := uint64(0xaabbcc0000000001)
	otherDev := uint64(0x1122330000000001)
	g := New(Config{
		ID:        "locked",
		Policy:    PolicyVendorLocked,
		VendorOUI: OUI{0xaa, 0xbb, 0xcc},
	}, UplinkFunc(func([]byte) error { return nil }))

	if err := g.HandleFrame(frameFrom(vendorDev, "mine")); err != nil {
		t.Fatalf("own-vendor device rejected: %v", err)
	}
	if err := g.HandleFrame(frameFrom(otherDev, "foreign")); !errors.Is(err, ErrPolicyReject) {
		t.Fatalf("foreign device err = %v", err)
	}
	if s := g.Stats(); s.DropPolicy != 1 || s.Forwarded != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOpenPolicyForwardsAnyVendor(t *testing.T) {
	g := New(Config{ID: "open", Policy: PolicyOpen}, UplinkFunc(func([]byte) error { return nil }))
	for _, dev := range []uint64{0xaabbcc0000000001, 0x1122330000000001, 42} {
		if err := g.HandleFrame(frameFrom(dev, "x")); err != nil {
			t.Fatalf("open gateway rejected %x: %v", dev, err)
		}
	}
	if s := g.Stats(); s.Forwarded != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUplinkErrorCounted(t *testing.T) {
	g := New(Config{ID: "gw"}, UplinkFunc(func([]byte) error {
		return errors.New("backhaul down")
	}))
	if err := g.HandleFrame(frameFrom(1, "x")); err == nil {
		t.Fatal("uplink error swallowed")
	}
	if s := g.Stats(); s.UplinkErrors != 1 || s.Forwarded != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDevicesTracked(t *testing.T) {
	g := New(Config{ID: "gw"}, UplinkFunc(func([]byte) error { return nil }))
	for _, dev := range []uint64{1, 2, 2, 3} {
		_ = g.HandleFrame(frameFrom(dev, "x"))
	}
	if got := len(g.Devices()); got != 3 {
		t.Fatalf("tracked %d devices, want 3", got)
	}
}

func TestConcurrentHandling(t *testing.T) {
	g := New(Config{ID: "gw"}, UplinkFunc(func([]byte) error { return nil }))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = g.HandleFrame(frameFrom(uint64(w*1000+i), "x"))
			}
		}(w)
	}
	wg.Wait()
	if s := g.Stats(); s.Forwarded != 800 {
		t.Fatalf("forwarded = %d, want 800", s.Forwarded)
	}
}

func TestNilUplinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil uplink did not panic")
		}
	}()
	New(Config{}, nil)
}

func TestPolicyString(t *testing.T) {
	if PolicyOpen.String() != "open" || PolicyVendorLocked.String() != "vendor-locked" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy fallback")
	}
}

func TestOUIOf(t *testing.T) {
	e := lpwan.EUIFromUint64(0xaabbccddeeff0011)
	if OUIOf(e) != (OUI{0xaa, 0xbb, 0xcc}) {
		t.Fatalf("OUI = %v", OUIOf(e))
	}
}

func BenchmarkHandleFrame(b *testing.B) {
	g := New(Config{ID: "gw"}, UplinkFunc(func([]byte) error { return nil }))
	wire := frameFrom(1, string(bytes.Repeat([]byte("x"), 24)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.HandleFrame(wire); err != nil {
			b.Fatal(err)
		}
	}
}
