package gateway

import "centuryscale/internal/obs"

// RegisterMetrics exposes the gateway's forwarding counters on reg under
// the gateway_ prefix, as scrape-time closures over the stats the
// gateway already keeps — HandleFrame gains nothing.
func (g *Gateway) RegisterMetrics(reg *obs.Registry) {
	count := func(read func(Stats) uint64) func() uint64 {
		return func() uint64 { return read(g.Stats()) }
	}
	reg.CounterFunc("gateway_forwarded_total", "frames validated and forwarded upstream",
		count(func(s Stats) uint64 { return s.Forwarded }))
	reg.CounterFunc("gateway_drop_malformed_total", "frames failing link-layer decode",
		count(func(s Stats) uint64 { return s.DropMalformed }))
	reg.CounterFunc("gateway_drop_blocked_total", "frames from blocklisted devices",
		count(func(s Stats) uint64 { return s.DropBlocked }))
	reg.CounterFunc("gateway_drop_policy_total", "frames rejected by vendor policy",
		count(func(s Stats) uint64 { return s.DropPolicy }))
	reg.CounterFunc("gateway_uplink_errors_total", "forwards permanently refused by the uplink",
		count(func(s Stats) uint64 { return s.UplinkErrors }))
}
