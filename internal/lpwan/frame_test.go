package lpwan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEUI64RoundTrip(t *testing.T) {
	e := EUIFromUint64(0xdeadbeefcafef00d)
	if e.Uint64() != 0xdeadbeefcafef00d {
		t.Fatalf("Uint64 round trip: %x", e.Uint64())
	}
	s := e.String()
	if s != "de:ad:be:ef:ca:fe:f0:0d" {
		t.Fatalf("String() = %q", s)
	}
	parsed, err := ParseEUI64(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != e {
		t.Fatalf("parse round trip: %v != %v", parsed, e)
	}
}

func TestParseEUI64Errors(t *testing.T) {
	for _, bad := range []string{"", "de:ad", "de:ad:be:ef:ca:fe:f0:0", "zz:ad:be:ef:ca:fe:f0:0d", "de-ad-be-ef-ca-fe-f0-0d"} {
		if _, err := ParseEUI64(bad); err == nil {
			t.Fatalf("ParseEUI64(%q) accepted", bad)
		}
	}
}

func TestEUI64StringParseProperty(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		e := EUIFromUint64(v)
		p, err := ParseEUI64(e.String())
		return err == nil && p == e
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameData.String() != "data" || FrameMigrate.String() != "migrate" {
		t.Fatal("frame type names wrong")
	}
	if FrameType(9).String() != "frametype(9)" {
		t.Fatal("unknown frame type fallback wrong")
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	f := Frame{
		Type:    FrameData,
		Flags:   0x02,
		Source:  EUIFromUint64(42),
		Seq:     1234,
		Payload: []byte("hello century"),
	}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Flags != f.Flags || got.Source != f.Source || got.Seq != f.Seq {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(src uint64, seq uint16, ty uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		f := Frame{
			Type:    FrameType(ty % 4),
			Source:  EUIFromUint64(src),
			Seq:     seq,
			Payload: payload,
		}
		wire, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Source == f.Source && got.Seq == f.Seq &&
			got.Type == f.Type && bytes.Equal(got.Payload, f.Payload)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	f := Frame{Type: FrameHeartbeat, Source: EUIFromUint64(7)}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != Overhead {
		t.Fatalf("empty frame = %d bytes, want %d", len(wire), Overhead)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatal("payload should be empty")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("err = %v, want ErrPayloadTooBig", err)
	}
}

func TestMaxFrameFitsMTU(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload)}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 127 {
		t.Fatalf("max frame = %d bytes, want exactly the 127-byte MTU", len(wire))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("short frame err = %v", err)
	}
	wire, _ := Frame{Source: EUIFromUint64(1), Payload: []byte("x")}.Encode()

	bad := append([]byte(nil), wire...)
	bad[0] = 0x20 // version 2
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version err = %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Decode(bad); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("crc err = %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[12] = 5 // length field lies
	if _, err := Decode(bad); !errors.Is(err, ErrBadLength) {
		t.Fatalf("length err = %v", err)
	}
}

func TestCorruptionDetectedProperty(t *testing.T) {
	// Flipping any single bit must be detected (CRC or structural check).
	f := Frame{Type: FrameData, Source: EUIFromUint64(99), Seq: 7, Payload: []byte("payload!")}
	wire, _ := f.Encode()
	for bit := 0; bit < len(wire)*8; bit++ {
		corrupt := append([]byte(nil), wire...)
		corrupt[bit/8] ^= 1 << (bit % 8)
		if got, err := Decode(corrupt); err == nil {
			// A flip that decodes cleanly must reproduce the original
			// frame exactly (impossible for a single flip), so fail.
			t.Fatalf("bit flip %d undetected: %+v", bit, got)
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %04x, want 29b1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Fatalf("CRC16(empty) = %04x, want ffff (init)", got)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := Frame{Type: FrameData, Source: EUIFromUint64(1), Seq: 1, Payload: make([]byte, 24)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
