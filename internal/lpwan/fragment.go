package lpwan

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Fragmentation: payloads larger than MaxPayload are carried as a sequence
// of fragment-bearing frames. Each fragment payload is prefixed with a
// 5-byte fragment header (datagram tag, total length, offset), in the
// spirit of 6LoWPAN's FRAG1/FRAGN dispatch. The FlagFragment bit marks
// frames whose payload carries a fragment header.

// FlagFragment marks a frame payload as a fragment.
const FlagFragment = 1 << 0

const fragHeaderBytes = 5 // tag(1) total(2) offset(2)

// MaxDatagram is the largest reassembled datagram the stack supports.
const MaxDatagram = 2048

// Fragment splits a datagram into frames from the given source, using tag
// to associate fragments and seq as the starting sequence number.
// Datagrams that fit a single frame are returned as one unfragmented
// frame.
func Fragment(t FrameType, src EUI64, seq uint16, tag uint8, datagram []byte) ([]Frame, error) {
	if len(datagram) > MaxDatagram {
		return nil, fmt.Errorf("%w: datagram of %d bytes exceeds %d", ErrPayloadTooBig, len(datagram), MaxDatagram)
	}
	if len(datagram) <= MaxPayload {
		return []Frame{{Type: t, Source: src, Seq: seq, Payload: datagram}}, nil
	}
	chunk := MaxPayload - fragHeaderBytes
	var frames []Frame
	for off := 0; off < len(datagram); off += chunk {
		end := off + chunk
		if end > len(datagram) {
			end = len(datagram)
		}
		payload := make([]byte, fragHeaderBytes+end-off)
		payload[0] = tag
		binary.BigEndian.PutUint16(payload[1:3], uint16(len(datagram)))
		binary.BigEndian.PutUint16(payload[3:5], uint16(off))
		copy(payload[fragHeaderBytes:], datagram[off:end])
		frames = append(frames, Frame{
			Type:    t,
			Flags:   FlagFragment,
			Source:  src,
			Seq:     seq,
			Payload: payload,
		})
		seq++
	}
	return frames, nil
}

// Reassemble rebuilds a datagram from fragment frames (any order). All
// frames must share the same source and tag; it returns
// ErrReassemblyGaps if bytes are missing.
func Reassemble(frames []Frame) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: no frames", ErrFragmentation)
	}
	if len(frames) == 1 && frames[0].Flags&FlagFragment == 0 {
		return frames[0].Payload, nil
	}
	type frag struct {
		off  int
		data []byte
	}
	var (
		frags []frag
		total = -1
		tag   = -1
		src   = frames[0].Source
	)
	for _, f := range frames {
		if f.Flags&FlagFragment == 0 {
			return nil, fmt.Errorf("%w: unfragmented frame mixed into fragment set", ErrFragmentation)
		}
		if f.Source != src {
			return nil, fmt.Errorf("%w: fragments from multiple sources", ErrFragmentation)
		}
		if len(f.Payload) < fragHeaderBytes {
			return nil, fmt.Errorf("%w: fragment payload too short", ErrFragmentation)
		}
		ftag := int(f.Payload[0])
		ftotal := int(binary.BigEndian.Uint16(f.Payload[1:3]))
		foff := int(binary.BigEndian.Uint16(f.Payload[3:5]))
		if tag == -1 {
			tag, total = ftag, ftotal
		}
		if ftag != tag || ftotal != total {
			return nil, fmt.Errorf("%w: tag/length mismatch", ErrFragmentation)
		}
		if foff+len(f.Payload)-fragHeaderBytes > total {
			return nil, fmt.Errorf("%w: fragment overruns datagram", ErrFragmentation)
		}
		frags = append(frags, frag{off: foff, data: f.Payload[fragHeaderBytes:]})
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].off < frags[j].off })
	out := make([]byte, total)
	covered := 0
	for _, fr := range frags {
		if fr.off != covered {
			return nil, fmt.Errorf("%w: gap at offset %d", ErrReassemblyGaps, covered)
		}
		copy(out[fr.off:], fr.data)
		covered = fr.off + len(fr.data)
	}
	if covered != total {
		return nil, fmt.Errorf("%w: have %d of %d bytes", ErrReassemblyGaps, covered, total)
	}
	return out, nil
}
