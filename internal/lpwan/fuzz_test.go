package lpwan

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the frame parser with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the identical wire
// bytes (canonical round trip).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a valid frame, a truncation, a corrupted CRC.
	valid, err := Frame{
		Type:    FrameData,
		Flags:   FlagFragment,
		Source:  EUIFromUint64(0x0102030405060708),
		Seq:     999,
		Payload: []byte("seed payload"),
	}.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-1] ^= 0xff
	f.Add(corrupted)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		wire, err := frame.Encode()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("round trip not canonical:\n in: %x\nout: %x", data, wire)
		}
	})
}

// FuzzReassemble drives the fragment reassembler with arbitrary frame
// payload splits: it must never panic and never fabricate bytes.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte("a datagram that spans multiple fragments when chunked"), uint8(3))
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, datagram []byte, tag uint8) {
		if len(datagram) > MaxDatagram {
			datagram = datagram[:MaxDatagram]
		}
		frames, err := Fragment(FrameData, EUIFromUint64(1), 0, tag, datagram)
		if err != nil {
			t.Fatalf("fragmenting %d bytes: %v", len(datagram), err)
		}
		out, err := Reassemble(frames)
		if err != nil {
			t.Fatalf("reassembling own fragments: %v", err)
		}
		if !bytes.Equal(out, datagram) {
			t.Fatal("reassembly mismatch")
		}
		// Dropping any one fragment of a multi-fragment datagram must
		// fail loudly, not fabricate data.
		if len(frames) > 1 {
			_, err := Reassemble(frames[1:])
			if err == nil {
				t.Fatal("reassembly succeeded with a missing fragment")
			}
		}
	})
}
