// Package lpwan implements the compact link-layer framing shared by the
// simulator and the real daemons: EUI-64 addressing, a versioned frame
// header, CRC-16 integrity, and fragmentation down to the 127-byte
// 802.15.4 MTU.
//
// One of the paper's takeaways (§3.1, citing Hui & Culler) is that even
// severely resource-constrained devices should speak standards-compliant,
// IP-compatible framing so that *any* gateway can forward their traffic
// rather than devices being bound to a specific vendor's gateway. The
// frame format here is the moral equivalent: self-describing, stateless to
// parse, with a device-global source address — a gateway needs no
// pairing or per-device state to route it.
package lpwan

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// EUI64 is a device-global 64-bit identifier, as burned into 802.15.4 and
// LoRaWAN radios.
type EUI64 [8]byte

// EUIFromUint64 builds an EUI64 from an integer (big-endian).
func EUIFromUint64(v uint64) EUI64 {
	var e EUI64
	binary.BigEndian.PutUint64(e[:], v)
	return e
}

// Uint64 returns the address as a big-endian integer.
func (e EUI64) Uint64() uint64 { return binary.BigEndian.Uint64(e[:]) }

// String renders the conventional colon-separated hex form.
func (e EUI64) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 0, 23)
	for i, b := range e {
		if i > 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hexdigits[b>>4], hexdigits[b&0xf])
	}
	return string(buf)
}

// ParseEUI64 parses the colon-separated hex form.
func ParseEUI64(s string) (EUI64, error) {
	var e EUI64
	if len(s) != 23 {
		return e, fmt.Errorf("lpwan: EUI64 %q: wrong length", s)
	}
	for i := 0; i < 8; i++ {
		b, err := hex.DecodeString(s[i*3 : i*3+2])
		if err != nil {
			return e, fmt.Errorf("lpwan: EUI64 %q: %v", s, err)
		}
		if i < 7 && s[i*3+2] != ':' {
			return e, fmt.Errorf("lpwan: EUI64 %q: missing separator", s)
		}
		e[i] = b[0]
	}
	return e, nil
}

// FrameType discriminates link-layer frames.
type FrameType uint8

// Frame types. Data carries telemetry; Heartbeat is an empty liveness
// frame; Commission and Migrate are used by the gateway commissioning and
// trusted-third-party handoff protocols (§3.2).
const (
	FrameData FrameType = iota
	FrameHeartbeat
	FrameCommission
	FrameMigrate
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameCommission:
		return "commission"
	case FrameMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("frametype(%d)", uint8(t))
	}
}

// Version is the only wire format version this implementation speaks.
const Version = 1

// Header and trailer sizes of the wire format.
const (
	headerBytes  = 13 // ver/type(1) flags(1) src(8) seq(2) len(1)
	trailerBytes = 2  // CRC-16
	// Overhead is the non-payload bytes per frame.
	Overhead = headerBytes + trailerBytes
	// MaxPayload is the largest payload that fits an 802.15.4 frame.
	MaxPayload = 127 - Overhead
)

// Frame is one link-layer frame.
type Frame struct {
	Type    FrameType
	Flags   uint8
	Source  EUI64
	Seq     uint16
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrFrameTooShort  = errors.New("lpwan: frame too short")
	ErrBadVersion     = errors.New("lpwan: unsupported frame version")
	ErrBadCRC         = errors.New("lpwan: CRC mismatch")
	ErrBadLength      = errors.New("lpwan: length field disagrees with frame size")
	ErrPayloadTooBig  = errors.New("lpwan: payload exceeds MTU")
	ErrFragmentation  = errors.New("lpwan: bad fragment")
	ErrReassemblyGaps = errors.New("lpwan: datagram incomplete")
)

// Encode serialises the frame, appending the CRC-16 trailer.
func (f Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooBig, len(f.Payload), MaxPayload)
	}
	buf := make([]byte, headerBytes+len(f.Payload)+trailerBytes)
	buf[0] = Version<<4 | uint8(f.Type)&0x0f
	buf[1] = f.Flags
	copy(buf[2:10], f.Source[:])
	binary.BigEndian.PutUint16(buf[10:12], f.Seq)
	buf[12] = uint8(len(f.Payload))
	copy(buf[headerBytes:], f.Payload)
	crc := CRC16(buf[:headerBytes+len(f.Payload)])
	binary.BigEndian.PutUint16(buf[headerBytes+len(f.Payload):], crc)
	return buf, nil
}

// Decode parses and validates a frame.
func Decode(buf []byte) (Frame, error) {
	var f Frame
	if len(buf) < Overhead {
		return f, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(buf))
	}
	if buf[0]>>4 != Version {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, buf[0]>>4)
	}
	plen := int(buf[12])
	if len(buf) != Overhead+plen {
		return f, fmt.Errorf("%w: header says %d, frame holds %d", ErrBadLength, plen, len(buf)-Overhead)
	}
	wantCRC := binary.BigEndian.Uint16(buf[len(buf)-2:])
	if got := CRC16(buf[:len(buf)-2]); got != wantCRC {
		return f, fmt.Errorf("%w: got %04x want %04x", ErrBadCRC, got, wantCRC)
	}
	f.Type = FrameType(buf[0] & 0x0f)
	f.Flags = buf[1]
	copy(f.Source[:], buf[2:10])
	f.Seq = binary.BigEndian.Uint16(buf[10:12])
	if plen > 0 {
		f.Payload = make([]byte, plen)
		copy(f.Payload, buf[headerBytes:headerBytes+plen])
	}
	return f, nil
}

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the CRC
// used by 802.15.4-style link layers.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
