package lpwan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSmallDatagramUnfragmented(t *testing.T) {
	frames, err := Fragment(FrameData, EUIFromUint64(1), 0, 1, []byte("small"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Flags&FlagFragment != 0 {
		t.Fatalf("small datagram fragmented: %d frames flags %x", len(frames), frames[0].Flags)
	}
	out, err := Reassemble(frames)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "small" {
		t.Fatalf("reassembled %q", out)
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	datagram := make([]byte, 500)
	for i := range datagram {
		datagram[i] = byte(i * 7)
	}
	frames, err := Fragment(FrameCommission, EUIFromUint64(2), 100, 9, datagram)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("500B datagram produced %d frames", len(frames))
	}
	for i, f := range frames {
		if f.Flags&FlagFragment == 0 {
			t.Fatalf("frame %d missing fragment flag", i)
		}
		if f.Seq != uint16(100+i) {
			t.Fatalf("frame %d seq = %d", i, f.Seq)
		}
		// Every fragment must fit the MTU after encoding.
		wire, err := f.Encode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(wire) > 127 {
			t.Fatalf("frame %d is %d bytes on the wire", i, len(wire))
		}
	}
	out, err := Reassemble(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, datagram) {
		t.Fatal("reassembly mismatch")
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	datagram := make([]byte, 400)
	for i := range datagram {
		datagram[i] = byte(i)
	}
	frames, err := Fragment(FrameData, EUIFromUint64(3), 0, 4, datagram)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the fragment order.
	rev := make([]Frame, len(frames))
	for i, f := range frames {
		rev[len(frames)-1-i] = f
	}
	out, err := Reassemble(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, datagram) {
		t.Fatal("out-of-order reassembly mismatch")
	}
}

func TestReassembleMissingFragment(t *testing.T) {
	datagram := make([]byte, 400)
	frames, _ := Fragment(FrameData, EUIFromUint64(4), 0, 4, datagram)
	if _, err := Reassemble(frames[:len(frames)-1]); !errors.Is(err, ErrReassemblyGaps) {
		t.Fatalf("missing tail fragment err = %v", err)
	}
	if _, err := Reassemble(append([]Frame{}, frames[1:]...)); !errors.Is(err, ErrReassemblyGaps) {
		t.Fatalf("missing head fragment err = %v", err)
	}
}

func TestReassembleMixedSources(t *testing.T) {
	a, _ := Fragment(FrameData, EUIFromUint64(5), 0, 4, make([]byte, 300))
	b, _ := Fragment(FrameData, EUIFromUint64(6), 0, 4, make([]byte, 300))
	mixed := append(append([]Frame{}, a...), b...)
	if _, err := Reassemble(mixed); !errors.Is(err, ErrFragmentation) {
		t.Fatalf("mixed-source err = %v", err)
	}
}

func TestReassembleMixedTags(t *testing.T) {
	a, _ := Fragment(FrameData, EUIFromUint64(5), 0, 1, make([]byte, 300))
	b, _ := Fragment(FrameData, EUIFromUint64(5), 0, 2, make([]byte, 300))
	mixed := append(append([]Frame{}, a...), b...)
	if _, err := Reassemble(mixed); !errors.Is(err, ErrFragmentation) {
		t.Fatalf("mixed-tag err = %v", err)
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	if _, err := Fragment(FrameData, EUIFromUint64(1), 0, 1, make([]byte, MaxDatagram+1)); !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("oversize datagram err = %v", err)
	}
}

func TestReassembleEmptyInput(t *testing.T) {
	if _, err := Reassemble(nil); !errors.Is(err, ErrFragmentation) {
		t.Fatalf("empty input err = %v", err)
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	src := EUIFromUint64(77)
	if err := quick.Check(func(data []byte, tag uint8) bool {
		if len(data) > MaxDatagram {
			data = data[:MaxDatagram]
		}
		frames, err := Fragment(FrameData, src, 0, tag, data)
		if err != nil {
			return false
		}
		out, err := Reassemble(frames)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFragmentReassemble(b *testing.B) {
	datagram := make([]byte, 1024)
	src := EUIFromUint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frames, err := Fragment(FrameData, src, 0, uint8(i), datagram)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Reassemble(frames); err != nil {
			b.Fatal(err)
		}
	}
}
