package chaos

import (
	"reflect"
	"testing"
)

func TestPlanNodesDeterministic(t *testing.T) {
	cfg := NodeConfig{Seed: 42, Nodes: 5, Kills: 4, Partitions: 3}
	a := PlanNodes(cfg)
	b := PlanNodes(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 2*4+2*3 {
		t.Fatalf("got %d events, want %d", len(a), 2*4+2*3)
	}
	c := PlanNodes(NodeConfig{Seed: 43, Nodes: 5, Kills: 4, Partitions: 3})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanNodesInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := NodeConfig{Seed: seed, Nodes: 3, Kills: 6, Partitions: 4,
			FirstKillAfter: 5, KillEvery: 30, DownFor: 12,
			FirstPartitionAfter: 9, PartitionEvery: 25, HealAfter: 8}
		events := PlanNodes(cfg)

		prev := -1
		downUntil := map[int]int{}
		kills, restarts := 0, 0
		for _, ev := range events {
			if ev.After < prev {
				t.Fatalf("seed %d: events not ordered by After: %v", seed, events)
			}
			prev = ev.After
			if ev.Node < 0 || ev.Node >= cfg.Nodes {
				t.Fatalf("seed %d: node %d out of range", seed, ev.Node)
			}
			switch ev.Op {
			case NodeKill:
				kills++
				if downUntil[ev.Node] > ev.After {
					t.Fatalf("seed %d: node %d killed while already down", seed, ev.Node)
				}
				downUntil[ev.Node] = ev.After + cfg.DownFor
			case NodeRestart:
				restarts++
				if downUntil[ev.Node] != ev.After {
					t.Fatalf("seed %d: restart of node %d at %d, want %d", seed, ev.Node, ev.After, downUntil[ev.Node])
				}
			case NodePartition, NodeHeal:
				if ev.Peer < 0 || ev.Peer >= cfg.Nodes || ev.Peer == ev.Node {
					t.Fatalf("seed %d: bad partition pair (%d,%d)", seed, ev.Node, ev.Peer)
				}
				if ev.Op == NodePartition && (downUntil[ev.Node] > ev.After || downUntil[ev.Peer] > ev.After) {
					t.Fatalf("seed %d: partition (%d,%d) targets a down node", seed, ev.Node, ev.Peer)
				}
			}
		}
		if kills != restarts {
			t.Fatalf("seed %d: %d kills but %d restarts", seed, kills, restarts)
		}
	}
}

func TestPlanNodesZeroAndPathological(t *testing.T) {
	if got := PlanNodes(NodeConfig{}); got != nil {
		t.Fatalf("zero config planned %v", got)
	}
	if got := PlanNodes(NodeConfig{Seed: 1, Nodes: 1, Partitions: 5}); len(got) != 0 {
		t.Fatalf("single node planned partitions: %v", got)
	}
	// DownFor far beyond KillEvery with more kills than nodes: cycles
	// where everyone is down must be skipped, never a corpse re-kill.
	got := PlanNodes(NodeConfig{Seed: 7, Nodes: 2, Kills: 6, KillEvery: 1, DownFor: 1000, FirstKillAfter: 1})
	kills := 0
	for _, ev := range got {
		if ev.Op == NodeKill {
			kills++
		}
	}
	if kills != 2 {
		t.Fatalf("pathological config scheduled %d kills, want 2 (one per node): %v", kills, got)
	}
}

func TestNodeScheduleDue(t *testing.T) {
	cfg := NodeConfig{Seed: 3, Nodes: 3, Kills: 2, FirstKillAfter: 10, KillEvery: 40, DownFor: 15}
	planned := PlanNodes(cfg)
	s := NewNodeSchedule(cfg)

	if due := s.Due(9); len(due) != 0 {
		t.Fatalf("events before FirstKillAfter: %v", due)
	}
	var fired []NodeEvent
	for n := 10; n <= 100; n++ {
		fired = append(fired, s.Due(n)...)
		// Re-polling the same count must be idempotent.
		if dup := s.Due(n); len(dup) != 0 {
			t.Fatalf("Due(%d) fired twice: %v", n, dup)
		}
	}
	if !reflect.DeepEqual(fired, planned) {
		t.Fatalf("fired %v != planned %v", fired, planned)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after draining", s.Remaining())
	}
}

func TestNodeScheduleSkipsAhead(t *testing.T) {
	cfg := NodeConfig{Seed: 3, Nodes: 3, Kills: 2, FirstKillAfter: 10, KillEvery: 40, DownFor: 15}
	s := NewNodeSchedule(cfg)
	// A burst of acks can jump the counter past several events; all of
	// them come due at once, still in order.
	due := s.Due(10_000)
	if !reflect.DeepEqual(due, PlanNodes(cfg)) {
		t.Fatalf("jump did not drain schedule: %v", due)
	}
}
