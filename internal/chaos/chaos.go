// Package chaos is the deterministic fault-injection harness for the
// real datapath: the adversary that internal/resilience is built to
// beat. It wraps the seams the daemons already use — an http.RoundTripper
// for any HTTP hop, a net.PacketConn for the radio/UDP hop, and an
// http.Handler middleware for the serving side — and injects outages,
// dropped datagrams, slow responses, and error bursts.
//
// Every decision is drawn from an internal/rng stream in arrival order,
// so a seed fully determines the fault schedule: the same seed replays
// the same faults bit-for-bit (see Plan), which is what lets integration
// tests assert "zero telemetry loss across this exact outage" instead of
// "usually survives some flakiness". This is the real-network counterpart
// of the simulator's seeded failure models.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"centuryscale/internal/rng"
)

// Fault is one injected decision.
type Fault uint8

// Fault kinds, in evaluation order.
const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = iota
	// FaultOutage fails the request as if the peer were unreachable
	// (scheduled window, not probabilistic).
	FaultOutage
	// FaultDrop fails a single request as if the connection died.
	FaultDrop
	// FaultErr answers HTTP 503 without reaching the peer.
	FaultErr
	// FaultSlow delays the request before passing it through.
	FaultSlow
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultOutage:
		return "outage"
	case FaultDrop:
		return "drop"
	case FaultErr:
		return "err"
	case FaultSlow:
		return "slow"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Config describes a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic draw. The same Config (seed
	// included) always yields the same schedule.
	Seed uint64

	// OutageAfter/OutageLen schedule one hard outage window in request
	// order: requests [OutageAfter, OutageAfter+OutageLen) fail as
	// unreachable. OutageLen == 0 disables the window.
	OutageAfter int
	OutageLen   int

	// DropProb is the per-request probability of a connection-level
	// failure outside the outage window.
	DropProb float64
	// ErrProb is the per-request probability of starting a 503 burst.
	ErrProb float64
	// ErrBurst is the length of each 503 burst; 0 means 1.
	ErrBurst int
	// SlowProb is the per-request probability of a delayed response.
	SlowProb float64
	// SlowDelay is the injected latency for FaultSlow; 0 means 50ms.
	SlowDelay time.Duration
}

func (c Config) slowDelay() time.Duration {
	if c.SlowDelay <= 0 {
		return 50 * time.Millisecond
	}
	return c.SlowDelay
}

func (c Config) errBurst() int {
	if c.ErrBurst <= 0 {
		return 1
	}
	return c.ErrBurst
}

// schedule is the shared deterministic decision core: faults are a pure
// function of (Config, request index).
type schedule struct {
	cfg   Config
	src   *rng.Source
	n     int // requests decided so far
	burst int // remaining 503s in the current burst
}

func newSchedule(cfg Config) *schedule {
	return &schedule{cfg: cfg, src: rng.New(cfg.Seed)}
}

// next decides the fault for the next request in order. Draw order is
// fixed (drop, err, slow — one draw each, always consumed) so that the
// stream position depends only on the request index, never on which
// faults happened to fire.
func (s *schedule) next() Fault {
	i := s.n
	s.n++
	drop := s.src.Bernoulli(s.cfg.DropProb)
	errStart := s.src.Bernoulli(s.cfg.ErrProb)
	slow := s.src.Bernoulli(s.cfg.SlowProb)

	if s.cfg.OutageLen > 0 && i >= s.cfg.OutageAfter && i < s.cfg.OutageAfter+s.cfg.OutageLen {
		return FaultOutage
	}
	if s.burst > 0 {
		s.burst--
		return FaultErr
	}
	if drop {
		return FaultDrop
	}
	if errStart {
		s.burst = s.cfg.errBurst() - 1
		return FaultErr
	}
	if slow {
		return FaultSlow
	}
	return FaultNone
}

// Plan returns the fault decision for each of the first n requests under
// cfg. It is a pure function: Plan(cfg, n) is always identical for the
// same inputs, and an Injector that has served k requests has a History
// equal to Plan(cfg, k) — the bit-for-bit reproducibility contract.
func Plan(cfg Config, n int) []Fault {
	s := newSchedule(cfg)
	out := make([]Fault, n)
	for i := range out {
		out[i] = s.next()
	}
	return out
}

// Stats counts injected faults by kind.
type Stats struct {
	Requests uint64
	Outages  uint64
	Drops    uint64
	Errs     uint64
	Slows    uint64
}

// Injector tracks a live fault schedule over a request stream. It is the
// engine inside RoundTripper, PacketConn, and Handler; safe for
// concurrent use (concurrent requests are serialised into one decision
// order).
type Injector struct {
	mu      sync.Mutex
	sched   *schedule
	history []Fault
	stats   Stats
}

// NewInjector returns an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{sched: newSchedule(cfg)}
}

// Next draws the next fault in request order and records it.
func (in *Injector) Next() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.sched.next()
	in.history = append(in.history, f)
	in.stats.Requests++
	switch f {
	case FaultOutage:
		in.stats.Outages++
	case FaultDrop:
		in.stats.Drops++
	case FaultErr:
		in.stats.Errs++
	case FaultSlow:
		in.stats.Slows++
	}
	return f
}

// History returns the faults injected so far, in request order. It
// always equals Plan(cfg, len(History())).
func (in *Injector) History() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.history...)
}

// Stats returns a snapshot of the counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Config returns the injector's schedule configuration.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sched.cfg
}

// injectedError distinguishes chaos failures from real network errors in
// test logs.
type injectedError struct{ f Fault }

func (e *injectedError) Error() string { return "chaos: injected " + e.f.String() }

// IsInjected reports whether err was produced by this package.
func IsInjected(err error) bool {
	_, ok := err.(*injectedError)
	return ok
}

// RoundTripper injects faults into an HTTP client path. Wrap any
// daemon's transport with it to rehearse endpoint or router outages.
type RoundTripper struct {
	next     http.RoundTripper
	injector *Injector
	sleep    func(time.Duration)
}

// NewRoundTripper wraps next (nil means http.DefaultTransport) with the
// fault schedule cfg.
func NewRoundTripper(next http.RoundTripper, cfg Config) *RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &RoundTripper{next: next, injector: NewInjector(cfg), sleep: time.Sleep}
}

// Injector exposes the underlying schedule for assertions.
func (rt *RoundTripper) Injector() *Injector { return rt.injector }

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f := rt.injector.Next(); f {
	case FaultOutage, FaultDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &injectedError{f: f}
	case FaultErr:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable (chaos)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": []string{"1"}},
			Body:    io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request: req,
		}, nil
	case FaultSlow:
		rt.sleep(rt.injector.Config().slowDelay())
	}
	return rt.next.RoundTrip(req)
}

// Handler injects faults on the serving side: outage/drop/err all become
// 503 + Retry-After before h runs (a server cannot "drop" an accepted
// TCP request, so unreachable kinds degrade to refusal), and slow
// responses delay h. This is the operator's endpoint-overload drill.
func Handler(h http.Handler, cfg Config) http.Handler {
	return HandlerWith(h, NewInjector(cfg))
}

// HandlerWith is Handler with a caller-owned injector, for hosts that
// need to keep a handle on the schedule — to assert its History, or to
// export its Stats as metrics — after wiring the middleware in.
func HandlerWith(h http.Handler, in *Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch in.Next() {
		case FaultOutage, FaultDrop, FaultErr:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "chaos: injected unavailability", http.StatusServiceUnavailable)
			return
		case FaultSlow:
			time.Sleep(in.Config().slowDelay())
		}
		h.ServeHTTP(w, r)
	})
}
