package chaos

import "net"

// PacketConn injects datagram loss on the radio/UDP hop: writes decided
// against the fault schedule vanish "in the air" — the write reports
// success, nothing reaches the wire — exactly how a transmit-only
// device experiences a collision or a dead gateway. Outage windows and
// drops both lose the datagram; HTTP-only kinds (err, slow) pass
// through, keeping the decision stream position identical to an HTTP
// injector with the same Config.
type PacketConn struct {
	net.PacketConn
	injector *Injector
}

// WrapPacketConn wraps conn with the fault schedule cfg.
func WrapPacketConn(conn net.PacketConn, cfg Config) *PacketConn {
	return &PacketConn{PacketConn: conn, injector: NewInjector(cfg)}
}

// Injector exposes the underlying schedule for assertions.
func (c *PacketConn) Injector() *Injector { return c.injector }

// WriteTo implements net.PacketConn.
func (c *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	switch c.injector.Next() {
	case FaultOutage, FaultDrop:
		// Lost in the air: the sender cannot tell.
		return len(p), nil
	}
	return c.PacketConn.WriteTo(p, addr)
}
