package chaos

import "centuryscale/internal/obs"

// RegisterMetrics exposes the injector's fault counters on reg under the
// given prefix (e.g. "chaos_client"), so a daemon injecting faults on
// both its client and serving sides can export both schedules. Values
// are scrape-time closures over Stats; the request path gains nothing.
func (in *Injector) RegisterMetrics(reg *obs.Registry, prefix string) {
	count := func(read func(Stats) uint64) func() uint64 {
		return func() uint64 { return read(in.Stats()) }
	}
	reg.CounterFunc(prefix+"_requests_total", "requests that passed through the fault schedule",
		count(func(s Stats) uint64 { return s.Requests }))
	reg.CounterFunc(prefix+"_outages_total", "requests failed by the scheduled outage window",
		count(func(s Stats) uint64 { return s.Outages }))
	reg.CounterFunc(prefix+"_drops_total", "requests failed as dropped connections",
		count(func(s Stats) uint64 { return s.Drops }))
	reg.CounterFunc(prefix+"_errs_total", "requests answered with injected 503s",
		count(func(s Stats) uint64 { return s.Errs }))
	reg.CounterFunc(prefix+"_slows_total", "requests delayed by injected latency",
		count(func(s Stats) uint64 { return s.Slows }))
}
