package chaos

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.2, ErrProb: 0.1, ErrBurst: 3, SlowProb: 0.15, OutageAfter: 50, OutageLen: 20}
	a := Plan(cfg, 500)
	b := Plan(cfg, 500)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	// A prefix plan matches the long plan: decisions depend only on index.
	if !slices.Equal(a[:100], Plan(cfg, 100)) {
		t.Fatal("plan prefix diverges")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	if slices.Equal(a, Plan(cfg2, 500)) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The outage window is hard-scheduled regardless of draws.
	for i := 50; i < 70; i++ {
		if a[i] != FaultOutage {
			t.Fatalf("request %d = %v inside outage window", i, a[i])
		}
	}
	for i := 0; i < 50; i++ {
		if a[i] == FaultOutage {
			t.Fatalf("request %d = outage before window", i)
		}
	}
}

func TestPlanZeroConfigInjectsNothing(t *testing.T) {
	for i, f := range Plan(Config{Seed: 9}, 200) {
		if f != FaultNone {
			t.Fatalf("request %d = %v with zero config", i, f)
		}
	}
}

func TestErrBurstRuns(t *testing.T) {
	cfg := Config{Seed: 7, ErrProb: 0.05, ErrBurst: 4}
	plan := Plan(cfg, 2000)
	// Every error run must be a multiple-of-burst length (runs can chain
	// if a new burst starts as one ends, so check: no isolated short run).
	run := 0
	sawErr := false
	for _, f := range plan {
		if f == FaultErr {
			run++
			sawErr = true
			continue
		}
		if run > 0 && run < 4 {
			t.Fatalf("error burst of length %d, want >= 4", run)
		}
		run = 0
	}
	if !sawErr {
		t.Fatal("no error bursts drawn; raise ErrProb or n")
	}
}

func TestInjectorHistoryMatchesPlan(t *testing.T) {
	cfg := Config{Seed: 11, DropProb: 0.3, SlowProb: 0.1, OutageAfter: 5, OutageLen: 5}
	in := NewInjector(cfg)
	for i := 0; i < 137; i++ {
		in.Next()
	}
	if !slices.Equal(in.History(), Plan(cfg, 137)) {
		t.Fatal("injector history diverges from pure plan")
	}
	st := in.Stats()
	if st.Requests != 137 || st.Outages != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRoundTripperInjectsAgainstRealServer(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	cfg := Config{Seed: 3, OutageAfter: 2, OutageLen: 3}
	rt := NewRoundTripper(nil, cfg)
	client := &http.Client{Transport: rt, Timeout: 2 * time.Second}

	var got []Fault
	for i := 0; i < 8; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			got = append(got, FaultOutage)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got = append(got, FaultNone)
	}
	want := []Fault{FaultNone, FaultNone, FaultOutage, FaultOutage, FaultOutage, FaultNone, FaultNone, FaultNone}
	if !slices.Equal(got, want) {
		t.Fatalf("observed = %v, want %v", got, want)
	}
	if served.Load() != 5 {
		t.Fatalf("server saw %d requests, want 5", served.Load())
	}
	if !slices.Equal(rt.Injector().History(), Plan(cfg, 8)) {
		t.Fatal("round tripper history diverges from plan")
	}
}

func TestRoundTripper503CarriesRetryAfter(t *testing.T) {
	cfg := Config{Seed: 1, ErrProb: 1} // every request: 503
	rt := NewRoundTripper(nil, cfg)
	client := &http.Client{Transport: rt}
	resp, err := client.Get("http://127.0.0.1:1/never-reached")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
}

func TestRoundTripperSlow(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	var slept atomic.Int64
	rt := NewRoundTripper(nil, Config{Seed: 5, SlowProb: 1, SlowDelay: 5 * time.Millisecond})
	rt.sleep = func(d time.Duration) { slept.Add(int64(d)) }
	client := &http.Client{Transport: rt}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept.Load() != int64(5*time.Millisecond) {
		t.Fatalf("slept %v", time.Duration(slept.Load()))
	}
}

func TestHandlerMiddleware(t *testing.T) {
	var served atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusAccepted)
	})
	cfg := Config{Seed: 2, OutageAfter: 0, OutageLen: 2}
	srv := httptest.NewServer(Handler(inner, cfg))
	defer srv.Close()

	codes := []int{}
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	want := []int{503, 503, 202, 202}
	if !slices.Equal(codes, want) {
		t.Fatalf("codes = %v, want %v", codes, want)
	}
	if served.Load() != 2 {
		t.Fatalf("inner handler ran %d times", served.Load())
	}
}

func TestPacketConnDropsWrites(t *testing.T) {
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 4, OutageAfter: 1, OutageLen: 2}
	wrapped := WrapPacketConn(tx, cfg)
	defer wrapped.Close()

	for i := 0; i < 4; i++ {
		if _, err := wrapped.WriteTo([]byte{byte(i)}, rx.LocalAddr()); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Datagrams 1 and 2 were dropped in the air; 0 and 3 arrive.
	rx.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	var got []byte
	for len(got) < 2 {
		n, _, err := rx.ReadFrom(buf)
		if err != nil {
			t.Fatalf("received %v then: %v", got, err)
		}
		got = append(got, buf[:n]...)
	}
	if got[0] != 0 || got[1] != 3 {
		t.Fatalf("received %v, want [0 3]", got)
	}
	if st := wrapped.Injector().Stats(); st.Outages != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectorConcurrent(t *testing.T) {
	// Concurrent draws must serialise cleanly (run under -race) and
	// consume exactly one schedule slot each.
	in := NewInjector(Config{Seed: 8, DropProb: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Next()
			}
		}()
	}
	wg.Wait()
	if st := in.Stats(); st.Requests != 800 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if len(in.History()) != 800 {
		t.Fatalf("history = %d", len(in.History()))
	}
}
