package chaos

import (
	"fmt"
	"sort"

	"centuryscale/internal/rng"
)

// NodeOp is one cluster-level fault action. Where Fault describes what
// happens to a single request, NodeOp describes what happens to a whole
// node: it dies, it comes back, it loses sight of a peer, it heals.
type NodeOp uint8

// Node operations.
const (
	// NodeKill crashes the node: process gone, no shutdown, WAL left
	// as-is on disk. The cluster's view of it decays via heartbeats.
	NodeKill NodeOp = iota
	// NodeRestart boots the killed node again from its surviving state
	// directory (WAL replay path).
	NodeRestart
	// NodePartition cuts the link between Node and Peer in both
	// directions; each side sees the other as unreachable.
	NodePartition
	// NodeHeal restores the link between Node and Peer.
	NodeHeal
)

// String implements fmt.Stringer.
func (op NodeOp) String() string {
	switch op {
	case NodeKill:
		return "kill"
	case NodeRestart:
		return "restart"
	case NodePartition:
		return "partition"
	case NodeHeal:
		return "heal"
	default:
		return fmt.Sprintf("nodeop(%d)", uint8(op))
	}
}

// NodeEvent schedules one NodeOp. Events are keyed by accepted-ingest
// count, not wall time: "kill node 2 after the cluster has accepted 40
// packets" replays identically on any machine at any speed, which is
// what lets the failover test assert exact loss accounting instead of
// racing a timer.
type NodeEvent struct {
	// After is the accepted-ingest count at which the event fires: the
	// event is due once the cluster has acknowledged >= After packets.
	After int
	// Node is the target node index in [0, Nodes).
	Node int
	// Peer is the other end of a partition/heal; -1 for kill/restart.
	Peer int
	Op   NodeOp
}

// NodeConfig describes a node-level fault schedule. The zero value
// schedules nothing.
type NodeConfig struct {
	// Seed drives victim selection. The same NodeConfig always yields
	// the same schedule.
	Seed uint64
	// Nodes is the cluster size; victims are drawn from [0, Nodes).
	Nodes int

	// Kills is the number of kill→restart cycles. Victims are drawn
	// uniformly per cycle, never killing a node that is already down.
	Kills int
	// FirstKillAfter is the accepted-ingest count before the first kill.
	// Default 10.
	FirstKillAfter int
	// KillEvery spaces successive kills (in accepted ingests). Default 50.
	KillEvery int
	// DownFor is how many accepted ingests a killed node stays down
	// before its restart. Default 20.
	DownFor int

	// Partitions is the number of partition→heal cycles, interleaved on
	// the same request axis. Pairs are drawn uniformly from live links.
	Partitions int
	// FirstPartitionAfter, PartitionEvery, HealAfter mirror the kill
	// spacing knobs. Defaults 25 / 60 / 15.
	FirstPartitionAfter int
	PartitionEvery      int
	HealAfter           int
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.FirstKillAfter <= 0 {
		c.FirstKillAfter = 10
	}
	if c.KillEvery <= 0 {
		c.KillEvery = 50
	}
	if c.DownFor <= 0 {
		c.DownFor = 20
	}
	if c.FirstPartitionAfter <= 0 {
		c.FirstPartitionAfter = 25
	}
	if c.PartitionEvery <= 0 {
		c.PartitionEvery = 60
	}
	if c.HealAfter <= 0 {
		c.HealAfter = 15
	}
	return c
}

// PlanNodes expands cfg into its full event list, ordered by After (ties
// keep kill/restart before partition/heal, then schedule order). It is a
// pure function: the same config always returns the identical slice, the
// reproducibility contract the request-level Plan already makes.
//
// Invariants the generator maintains:
//   - every NodeKill is followed by exactly one NodeRestart of the same
//     node, DownFor accepted ingests later;
//   - a node already down is never chosen as the next victim (the draw
//     rotates deterministically to the next live node);
//   - every NodePartition is healed, and a partition never targets a
//     node that is down when it starts.
func PlanNodes(cfg NodeConfig) []NodeEvent {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil
	}
	src := rng.New(cfg.Seed)
	var events []NodeEvent

	// Kill/restart cycles. downUntil[n] is the After index at which node
	// n is live again; used to steer victim selection away from corpses.
	downUntil := make([]int, cfg.Nodes)
	at := cfg.FirstKillAfter
	for k := 0; k < cfg.Kills; k++ {
		victim := src.Intn(cfg.Nodes)
		for probe := 0; probe < cfg.Nodes && downUntil[victim] > at; probe++ {
			victim = (victim + 1) % cfg.Nodes
		}
		if downUntil[victim] > at {
			// Every node is down at this index (pathological config:
			// DownFor >> KillEvery with Kills >= Nodes). Skip the cycle
			// rather than violate the never-kill-a-corpse invariant.
			at += cfg.KillEvery
			continue
		}
		events = append(events,
			NodeEvent{After: at, Node: victim, Peer: -1, Op: NodeKill},
			NodeEvent{After: at + cfg.DownFor, Node: victim, Peer: -1, Op: NodeRestart},
		)
		downUntil[victim] = at + cfg.DownFor
		at += cfg.KillEvery
	}

	// Partition/heal cycles on the same axis. Only pairs both live at
	// the cut index are eligible.
	at = cfg.FirstPartitionAfter
	for p := 0; p < cfg.Partitions && cfg.Nodes >= 2; p++ {
		a := src.Intn(cfg.Nodes)
		b := src.Intn(cfg.Nodes - 1)
		if b >= a {
			b++
		}
		for probe := 0; probe < cfg.Nodes && downUntil[a] > at; probe++ {
			a = (a + 1) % cfg.Nodes
		}
		for probe := 0; probe < cfg.Nodes && (downUntil[b] > at || b == a); probe++ {
			b = (b + 1) % cfg.Nodes
		}
		if downUntil[a] > at || downUntil[b] > at || a == b {
			at += cfg.PartitionEvery
			continue
		}
		events = append(events,
			NodeEvent{After: at, Node: a, Peer: b, Op: NodePartition},
			NodeEvent{After: at + cfg.HealAfter, Node: a, Peer: b, Op: NodeHeal},
		)
		at += cfg.PartitionEvery
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].After < events[j].After })
	return events
}

// NodeSchedule walks a planned event list against a live accepted-ingest
// counter. It is the runtime half of PlanNodes: the chaos test bumps the
// counter per acknowledged packet and applies whatever comes due. Not
// safe for concurrent use — drive it from the single ingest loop.
type NodeSchedule struct {
	events []NodeEvent
	next   int
}

// NewNodeSchedule plans cfg and wraps the result.
func NewNodeSchedule(cfg NodeConfig) *NodeSchedule {
	return &NodeSchedule{events: PlanNodes(cfg)}
}

// Due returns the events that fire at an accepted-ingest count of n,
// in order, advancing past them. Subsequent calls with the same n return
// nothing.
func (s *NodeSchedule) Due(n int) []NodeEvent {
	start := s.next
	for s.next < len(s.events) && s.events[s.next].After <= n {
		s.next++
	}
	return s.events[start:s.next]
}

// Remaining returns how many events have not yet fired.
func (s *NodeSchedule) Remaining() int { return len(s.events) - s.next }
