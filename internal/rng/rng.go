// Package rng provides a deterministic, seedable pseudo-random number
// generator and the statistical distributions the simulator needs.
//
// The simulator must be reproducible bit-for-bit across runs and across
// machines: every experiment in EXPERIMENTS.md is identified by a seed, and
// re-running with that seed must regenerate the identical event sequence.
// To guarantee that independently of Go release changes to math/rand, this
// package implements its own generator: a splitmix64 seeder feeding a
// xoshiro256** core, with explicit stream splitting so that independent
// subsystems (radio noise, component lifetimes, hotspot churn, ...) draw
// from decorrelated streams derived from one experiment seed.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random source.
//
// The zero value is not usable; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the state and returns the next splitmix64 output.
// It is used only to expand seeds into full generator state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds produce
// decorrelated streams; the same seed always produces the same stream.
func New(seed uint64) *Source {
	sm := seed
	return &Source{
		s0: splitmix64(&sm),
		s1: splitmix64(&sm),
		s2: splitmix64(&sm),
		s3: splitmix64(&sm),
	}
}

// Split derives an independent child source from the parent without
// perturbing the parent's primary stream more than one draw. The label
// ensures that two children split at the same point with different labels
// are decorrelated.
func (s *Source) Split(label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(s.Uint64() ^ h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns a draw from an exponential distribution with the
// given mean (mean = 1/rate). It panics if mean <= 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential with non-positive mean")
	}
	// Inverse CDF. 1-Float64() is in (0,1], avoiding log(0).
	return -mean * math.Log(1-s.Float64())
}

// Weibull returns a draw from a Weibull distribution with the given shape k
// and scale lambda. Shape < 1 models infant mortality, shape == 1 is
// exponential (random failures), shape > 1 models wear-out.
func (s *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(1-s.Float64()), 1/shape)
}

// Normal returns a draw from a normal distribution N(mu, sigma^2) using the
// Marsaglia polar method.
func (s *Source) Normal(mu, sigma float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mu + sigma*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns a draw whose logarithm is N(mu, sigma^2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Poisson returns a draw from a Poisson distribution with the given mean.
// For large means it uses a normal approximation, which is accurate to
// within the simulator's needs (counts of packets, failures per interval).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth's algorithm.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// alpha > 0: rank r is drawn with probability proportional to 1/(r+1)^alpha.
// It is used to assign hotspots to autonomous systems (§4.3 of the paper
// measures a heavily skewed AS distribution).
type Zipf struct {
	src   *Source
	n     int
	alpha float64
	cdf   []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
// It panics if n <= 0 or alpha <= 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 || alpha <= 0 {
		panic("rng: NewZipf with non-positive parameter")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), alpha)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return &Zipf{src: src, n: n, alpha: alpha, cdf: cdf}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the n elements using the Fisher-Yates algorithm,
// calling swap for each exchange.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
