package rng_test

import (
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"

	"centuryscale/internal/rng"
)

// These tests document the contract the seedflow analyzer
// (internal/lint/seedflow) enforces at construction sites: a seed fully
// determines the stream — across goroutine interleavings, across
// processes, across machines. seedflow guards the input side (no
// wall-clock or ambient-random seeds can reach rng.New); these tests pin
// the output side (given the seed, nothing else influences the draws).

// streamDigest runs a representative mix of the generator's methods —
// raw draws, distributions, and stream splitting — and folds the results
// into one hash.
func streamDigest(seed uint64) uint64 {
	src := rng.New(seed)
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	child := src.Split("determinism-test")
	for i := 0; i < 4096; i++ {
		put(src.Uint64())
		put(uint64(src.Intn(1_000_003)))
		put(uint64(int64(src.Exponential(7.5) * 1e9)))
		put(child.Uint64())
	}
	return h.Sum64()
}

// TestSameSeedSameStreamAcrossGoroutines drives many generators with the
// same seed concurrently, under deliberate scheduler churn, and requires
// bit-identical streams. A generator that shared hidden global state, or
// was perturbed by anything other than its own seed, fails here.
func TestSameSeedSameStreamAcrossGoroutines(t *testing.T) {
	const goroutines = 16
	const seed = 0xC0FFEE

	digests := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			digests[g] = streamDigest(seed)
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if digests[g] != digests[0] {
			t.Fatalf("goroutine %d produced digest %#x, goroutine 0 produced %#x: stream depends on interleaving", g, digests[g], digests[0])
		}
	}
	if digests[0] != streamDigest(seed) {
		t.Fatalf("concurrent digest differs from sequential digest for the same seed")
	}
}

// TestSameSeedSameStreamAcrossProcesses re-executes this test binary
// twice as child processes, each printing the digest for a fixed seed,
// and requires the two independent process outputs to match each other
// and the in-process value. This is the strongest offline approximation
// of the real contract: a seed logged in EXPERIMENTS.md regenerates the
// run on another machine, another day.
func TestSameSeedSameStreamAcrossProcesses(t *testing.T) {
	const seed = 1889 // the Eiffel Tower: infrastructure that outlived its design horizon
	if os.Getenv("RNG_DETERMINISM_CHILD") == "1" {
		fmt.Printf("digest=%#x\n", streamDigest(seed))
		return
	}

	run := func() string {
		cmd := exec.Command(os.Args[0], "-test.run=TestSameSeedSameStreamAcrossProcesses$", "-test.v")
		cmd.Env = append(os.Environ(), "RNG_DETERMINISM_CHILD=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child process: %v\n%s", err, out)
		}
		return string(out)
	}

	first, second := run(), run()
	if first != second {
		t.Fatalf("two processes with the same seed diverged:\n%s\nvs\n%s", first, second)
	}
	want := fmt.Sprintf("digest=%#x\n", streamDigest(seed))
	if !strings.Contains(first, want) {
		t.Fatalf("child output %q does not contain in-process digest %q", first, want)
	}
}
