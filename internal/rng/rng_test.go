package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(7)
	a := parent.Split("radio")
	b := parent.Split("failures")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams share %d of 1000 draws", same)
	}
}

func TestSplitSameLabelSamePoint(t *testing.T) {
	a := New(7).Split("x")
	b := New(7).Split("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed + same label must reproduce the same child stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialMean(t *testing.T) {
	s := New(6)
	const mean = 13.0
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	got := sum / float64(n)
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean = %v, want ~%v", got, mean)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// Weibull with shape 1 has mean == scale.
	s := New(8)
	const scale = 10.0
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Weibull(1, scale)
	}
	got := sum / float64(n)
	if math.Abs(got-scale)/scale > 0.02 {
		t.Fatalf("Weibull(1, %v) mean = %v, want ~%v", scale, got, scale)
	}
}

func TestWeibullWearOutMean(t *testing.T) {
	// Mean of Weibull(k, lambda) is lambda * Gamma(1 + 1/k).
	s := New(9)
	const shape, scale = 3.0, 15.0
	want := scale * math.Gamma(1+1/shape)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Weibull(shape, scale)
	}
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Weibull(%v,%v) mean = %v, want ~%v", shape, scale, got, want)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(10)
	const mu, sigma = 5.0, 2.0
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-mu) > 0.03 {
		t.Fatalf("normal mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.03 {
		t.Fatalf("normal sigma = %v, want ~%v", math.Sqrt(variance), sigma)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 40, 800} {
		s := New(11)
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestZipfSkew(t *testing.T) {
	// With alpha around 1, the head ranks should dominate: the paper
	// observes the top 10 of ~200 ASes carrying ~50% of hotspots.
	s := New(12)
	z := NewZipf(s, 200, 1.0)
	counts := make([]int, 200)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	top10 := 0
	for r := 0; r < 10; r++ {
		top10 += counts[r]
	}
	share := float64(top10) / float64(n)
	if share < 0.4 || share > 0.65 {
		t.Fatalf("top-10 Zipf share = %v, want ~0.5", share)
	}
	if counts[0] <= counts[100] {
		t.Fatal("Zipf rank 0 should be far more likely than rank 100")
	}
}

func TestZipfRange(t *testing.T) {
	s := New(13)
	z := NewZipf(s, 7, 1.5)
	for i := 0; i < 10000; i++ {
		r := z.Draw()
		if r < 0 || r >= 7 {
			t.Fatalf("Zipf draw out of range: %d", r)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%50) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(15)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(16)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform(-3,9) = %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkWeibull(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Weibull(2.5, 15)
	}
}
