// Package resilience turns the best-effort datapath into infrastructure:
// exponential backoff with full jitter, a three-state circuit breaker,
// and a bounded store-and-forward queue, composed into an Uplink wrapper
// that any layer of the real datapath (gateway backhaul, hotspot→router,
// router→endpoint) can put in front of its sender.
//
// The paper's core claim is that a century-scale deployment survives
// because every layer above the transmit-only device tolerates failure:
// gateways die, backhauls sunset, endpoints move hosts. Devices retry by
// cadence, not by ACK — so once a packet has made it off the air, the
// wired side owes it better than "drop on the first failed POST". The
// policy encoded here is the classic one (Signpost, self-healing LoRa
// meshes): retry transient failures briefly, trip a breaker when the
// peer is clearly down so we stop hammering it, buffer in arrival order
// while the breaker is open, and drain the buffer in order on recovery.
// Overflow drops the oldest reading first: for cadence telemetry the
// newest value is the one the endpoint's weekly-uptime metric needs.
//
// All randomness (retry jitter) comes from an internal/rng stream, so a
// seeded run of the datapath is reproducible; the matching fault side
// lives in internal/chaos.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// Sender is the downstream half of a datapath hop. It is structurally
// identical to gateway.Uplink so the same implementations satisfy both.
type Sender interface {
	Send(payload []byte) error
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(payload []byte) error

// Send implements Sender.
func (f SenderFunc) Send(payload []byte) error { return f(payload) }

// permanentError marks an error as not worth retrying or buffering: the
// peer understood the request and rejected it (bad frame, unknown device,
// dry wallet). Retrying cannot change the outcome.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so IsPermanent reports true. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent. Unmarked errors are treated as transient.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryAfterError is a transient failure that carries the peer's own
// back-pressure hint (an HTTP 503/429 Retry-After). Retry loops honour
// After in place of their computed backoff when it is longer.
type RetryAfterError struct {
	After time.Duration
	Err   error
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

// Unwrap exposes the underlying cause.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryHint extracts a peer-supplied delay from err, or zero.
func retryHint(err error) time.Duration {
	var ra *RetryAfterError
	if errors.As(err, &ra) && ra.After > 0 {
		return ra.After
	}
	return 0
}
