package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer is presumed down; calls are rejected without
	// touching the network until OpenFor elapses.
	BreakerOpen
	// BreakerHalfOpen: probe traffic is allowed; a failure re-opens, a
	// run of successes closes.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "breaker(?)"
	}
}

// BreakerConfig tunes a Breaker. Zero fields take the defaults noted.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive failures that trips the
	// breaker open. Default 5.
	FailureThreshold int
	// OpenFor is how long the breaker stays open before letting probe
	// traffic through. Default 5s.
	OpenFor time.Duration
	// HalfOpenSuccesses is the run of consecutive probe successes that
	// closes the breaker again. Default 1.
	HalfOpenSuccesses int
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	Trips       uint64 // closed/half-open -> open transitions
	Rejected    uint64 // calls refused while open
	Transitions uint64 // every state change, trips included
}

// Breaker is a three-state circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive, in closed state
	successes int // consecutive, in half-open state
	openedAt  time.Time
	stats     BreakerStats
}

// NewBreaker returns a closed breaker with cfg's thresholds.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.HalfOpenSuccesses <= 0 {
		cfg.HalfOpenSuccesses = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed now, transitioning
// open -> half-open once OpenFor has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
			b.state = BreakerHalfOpen
			b.successes = 0
			b.stats.Transitions++
			return true
		}
		b.stats.Rejected++
		return false
	}
}

// Success records a completed call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.state = BreakerClosed
			b.failures = 0
			b.stats.Transitions++
		}
	}
}

// Failure records a failed call, tripping the breaker when the closed
// threshold is reached or immediately when a half-open probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	}
}

// trip moves to open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.successes = 0
	b.stats.Trips++
	b.stats.Transitions++
}

// State returns the current position (resolving an elapsed open window
// the same way Allow would, but without consuming a probe slot).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
