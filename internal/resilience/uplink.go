package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/batch"
)

// Config tunes an Uplink. Zero fields take the defaults noted.
type Config struct {
	// MaxAttempts bounds the synchronous tries per Send before the
	// payload is handed to the store-and-forward queue. Default 3.
	MaxAttempts int
	// BackoffBase / BackoffMax shape the retry delays (full jitter).
	// Defaults 100ms / 30s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold / BreakerOpenFor / BreakerProbes tune the circuit
	// breaker; see BreakerConfig. Defaults 5 / 5s / 1.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	BreakerProbes    int
	// QueueDepth bounds the store-and-forward buffer. Default 1024.
	QueueDepth int
	// DrainInterval is how often the drain loop re-checks the queue when
	// nothing has kicked it. Default 250ms.
	DrainInterval time.Duration
	// BatchSize, when > 1, enables gateway-side batching: packet-sized
	// payloads (exactly batch.PacketSize bytes) accumulate into a batch
	// frame that is flushed downstream once it holds this many packets
	// or once the oldest pending packet is BatchAge old. Other payload
	// sizes bypass the batcher. Capped at batch.DefaultMaxPackets.
	BatchSize int
	// BatchAge bounds how long a pending frame may wait for more
	// packets before it is flushed anyway. Default 100ms when batching
	// is enabled — small enough that a trickle-rate fleet still meets
	// its delivery cadence, large enough to fill frames under load.
	BatchAge time.Duration
	// Seed feeds the jitter stream; the same seed replays the same
	// delays. Default 1.
	Seed uint64
	// Now is the breaker clock; nil means time.Now.
	Now func() time.Time
	// Sleep is the retry sleeper; nil means a context-aware timer sleep.
	// Tests inject an instant fake.
	Sleep func(ctx context.Context, d time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.DrainInterval <= 0 {
		c.DrainInterval = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchSize > batch.DefaultMaxPackets {
		c.BatchSize = batch.DefaultMaxPackets
	}
	if c.BatchSize > 1 && c.BatchAge <= 0 {
		c.BatchAge = 100 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) {
			if d <= 0 {
				return
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		}
	}
	return c
}

// UplinkStats counts an Uplink's disposition of payloads.
type UplinkStats struct {
	// Sent counts payloads delivered on the synchronous fast path.
	Sent uint64
	// Drained counts payloads delivered from the buffer after an outage.
	Drained uint64
	// Retries counts extra synchronous attempts beyond the first.
	Retries uint64
	// Buffered counts payloads that entered the store-and-forward queue.
	Buffered uint64
	// RejectedPermanent counts payloads the peer permanently refused
	// (from either path); they are not buffered or retried.
	RejectedPermanent uint64
	// BatchedPackets counts packets that entered the pending frame;
	// FramesBuilt counts the frames sealed from them. Their ratio is
	// the realized batching factor.
	BatchedPackets uint64
	FramesBuilt    uint64
	// PendingPackets is the open frame's current fill.
	PendingPackets int
	Queue          QueueStats
	Breaker        BreakerStats
	QueueLen       int
	State          BreakerState
}

// Uplink wraps an inner Sender with retry, circuit breaking, and
// store-and-forward buffering. It satisfies gateway.Uplink, so it drops
// into any hop of the real datapath.
//
// Send semantics: on the happy path the payload goes straight through
// (with a few jittered retries on transient failure). When the peer is
// down — breaker open, or retries exhausted — the payload is buffered
// and Send returns nil: the packet made it off the air and is now this
// hop's responsibility. A background drain loop replays the buffer in
// arrival order once the peer recovers. Once anything is buffered, new
// payloads queue behind it, preserving order. Only Permanent errors
// (peer understood and refused) surface to the caller.
//
// Close flushes what it can and stops the drain loop; use Flush for a
// mid-run barrier. Safe for concurrent use.
type Uplink struct {
	inner   Sender
	cfg     Config
	backoff *Backoff
	breaker *Breaker
	queue   *Queue

	kick chan struct{}
	stop context.CancelFunc
	done chan struct{}

	sent    atomic.Uint64
	drained atomic.Uint64
	retries atomic.Uint64
	rejects atomic.Uint64
	batched atomic.Uint64
	frames  atomic.Uint64

	// sendMu serialises fast-path sends with the drain loop so buffered
	// payloads cannot be overtaken by fresh ones.
	sendMu sync.Mutex

	// pending is the open batch frame (nil = batching disabled), guarded
	// by sendMu like everything else on the send path. pendingSince is
	// when its oldest packet arrived, for the age flush.
	pending      *batch.Builder
	pendingSince time.Time
}

// NewUplink wraps inner and starts the drain loop. Callers must Close it.
func NewUplink(inner Sender, cfg Config) *Uplink {
	if inner == nil {
		panic("resilience: nil inner sender")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	u := &Uplink{
		inner:   inner,
		cfg:     cfg,
		backoff: NewBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
		breaker: NewBreaker(BreakerConfig{
			FailureThreshold:  cfg.BreakerThreshold,
			OpenFor:           cfg.BreakerOpenFor,
			HalfOpenSuccesses: cfg.BreakerProbes,
			Now:               cfg.Now,
		}),
		queue: NewQueue(cfg.QueueDepth),
		kick:  make(chan struct{}, 1),
		stop:  cancel,
		done:  make(chan struct{}),
	}
	if cfg.BatchSize > 1 {
		u.pending = &batch.Builder{MaxPackets: cfg.BatchSize}
	}
	go u.drainLoop(ctx)
	return u
}

func (u *Uplink) now() time.Time {
	if u.cfg.Now != nil {
		return u.cfg.Now()
	}
	return time.Now()
}

// Send implements Sender (and gateway.Uplink).
//
// With batching enabled (Config.BatchSize > 1), packet-sized payloads
// are copied into the pending frame and Send returns nil immediately —
// the packet is this hop's responsibility, exactly as if it had been
// buffered. The frame flushes downstream at BatchSize packets or
// BatchAge, whichever first; a peer's permanent refusal of a frame is
// then counted, not returned (there is no caller left to return it to —
// the same trade the drain loop has always made for buffered payloads).
//lint:hotpath budget=0 gateway datapath: the happy path hands payload to the breaker-guarded trySend without copying; batched packets append into the builder's reused buffer; buffering happens only on failure
func (u *Uplink) Send(payload []byte) error {
	u.sendMu.Lock()
	if u.pending != nil && len(payload) == batch.PacketSize {
		if u.pending.Count() == 0 {
			u.pendingSince = u.now()
		}
		// Add copies the packet and cannot fail here: the size matched
		// and the flush below keeps the frame strictly under its cap.
		_ = u.pending.Add(payload)
		u.batched.Add(1)
		if u.pending.Count() >= u.cfg.BatchSize {
			u.flushPendingLocked(context.Background())
		}
		u.sendMu.Unlock()
		return nil
	}
	err := u.sendNowLocked(context.Background(), payload)
	u.sendMu.Unlock()
	return err
}

// sendNowLocked is Send's delivery core, called with sendMu held: try
// the peer now, buffer on transient failure, surface only permanent
// refusals.
func (u *Uplink) sendNowLocked(ctx context.Context, payload []byte) error {
	// Anything already buffered must go first: queue behind it.
	if u.queue.Len() > 0 || !u.breaker.Allow() {
		u.buffer(payload)
		return nil
	}
	err := u.trySend(ctx, payload, u.cfg.MaxAttempts)
	switch {
	case err == nil:
		u.sent.Add(1)
	case IsPermanent(err):
		u.rejects.Add(1)
		return err
	default:
		u.buffer(payload)
	}
	return nil
}

// flushPendingLocked seals the pending frame and pushes it through the
// normal delivery core, with sendMu held. The builder hands over the
// frame's buffer (it allocates a fresh one next cycle), so the frame
// can sit in the store-and-forward queue indefinitely. A permanent
// refusal is counted via sendNowLocked; there is no caller to surface
// it to.
func (u *Uplink) flushPendingLocked(ctx context.Context) {
	frame := u.pending.Take()
	if frame == nil {
		return
	}
	u.frames.Add(1)
	_ = u.sendNowLocked(ctx, frame)
}

// flushAged flushes the pending frame if its oldest packet has waited
// at least BatchAge. Called from the drain loop's age ticker.
func (u *Uplink) flushAged(ctx context.Context) {
	u.sendMu.Lock()
	if u.pending != nil && u.pending.Count() > 0 && u.now().Sub(u.pendingSince) >= u.cfg.BatchAge {
		u.flushPendingLocked(ctx)
	}
	u.sendMu.Unlock()
}

// ErrPeerDown reports that SendSync could not attempt delivery because
// the circuit breaker is open: the peer is known-down and probing is not
// yet due. It is transient — callers treat it like any failed send.
var ErrPeerDown = errors.New("resilience: peer down (breaker open)")

// SendSync attempts synchronous delivery only and reports the true
// outcome: unlike Send it never buffers, so a nil return means the peer
// accepted the payload before SendSync returned. This is the primitive
// quorum replication needs — an acknowledgement upstream must mean
// "durably delivered to W peers", and a payload parked in a
// store-and-forward queue is not that. Retries, jitter, Retry-After
// hints, and the circuit breaker all apply exactly as in Send.
//lint:hotpath budget=0 quorum replication primitive: one synchronous delivery attempt chain, no buffering, no copies
func (u *Uplink) SendSync(ctx context.Context, payload []byte) error {
	u.sendMu.Lock()
	defer u.sendMu.Unlock()
	if !u.breaker.Allow() {
		return ErrPeerDown
	}
	err := u.trySend(ctx, payload, u.cfg.MaxAttempts)
	switch {
	case err == nil:
		u.sent.Add(1)
	case IsPermanent(err):
		u.rejects.Add(1)
	}
	return err
}

// buffer enqueues payload and wakes the drain loop.
func (u *Uplink) buffer(payload []byte) {
	u.queue.Push(payload)
	select {
	case u.kick <- struct{}{}:
	default:
	}
}

// trySend makes up to attempts tries against the inner sender, sleeping
// between them, and keeps the breaker informed. When the previous
// failure carried the peer's own Retry-After hint, that hint governs —
// the peer knows its recovery timeline better than our jitter schedule
// does — but in two different ways. A hint shorter than the local
// backoff IS the sleep: an endpoint asking for 1s must not be kept
// waiting behind a 30s schedule. A hint longer than the local backoff
// ends the synchronous loop instead — trySend runs inline on datapaths
// (a gateway's UDP handler, a router's ingest), and a peer asking for
// more patience than the backoff schedule budgeted must not stall the
// caller; the hinted error is returned so Send parks the payload for
// the drain loop (which waits out the full hint off the hot path) and
// SendSync surfaces the hint for the caller's own shedding.
func (u *Uplink) trySend(ctx context.Context, payload []byte, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := u.backoff.Delay(i - 1)
			if hint := retryHint(err); hint > 0 {
				if hint > d {
					return err
				}
				d = hint
			}
			u.retries.Add(1)
			u.cfg.Sleep(ctx, d)
			if ctx.Err() != nil {
				return err
			}
			if !u.breaker.Allow() {
				return err
			}
		}
		err = u.inner.Send(payload)
		if err == nil {
			u.breaker.Success()
			return nil
		}
		if IsPermanent(err) {
			// The peer made a decision; that is not an outage.
			u.breaker.Success()
			return err
		}
		u.breaker.Failure()
	}
	return err
}

// drainLoop replays the buffer in order whenever the peer allows. With
// batching enabled it also owns the age flush: a second ticker at
// BatchAge bounds how long a pending frame waits for more packets. One
// goroutine carries both duties, so the uplink's lifecycle surface is
// unchanged — Close cancels ctx and joins done exactly as before.
func (u *Uplink) drainLoop(ctx context.Context) {
	defer close(u.done)
	tick := time.NewTicker(u.cfg.DrainInterval)
	defer tick.Stop()
	var ageC <-chan time.Time
	if u.pending != nil {
		age := time.NewTicker(u.cfg.BatchAge)
		defer age.Stop()
		ageC = age.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-u.kick:
		case <-tick.C:
		case <-ageC:
			u.flushAged(ctx)
		}
		u.drainOnce(ctx)
	}
}

// drainOnce sends buffered payloads head-first until the queue empties,
// the breaker rejects, or a transient failure says the peer is still
// down. Payloads are only popped after a definitive outcome, so a crash
// mid-send never loses the head silently.
func (u *Uplink) drainOnce(ctx context.Context) {
	for ctx.Err() == nil {
		u.sendMu.Lock()
		p, ok := u.queue.Peek()
		if !ok {
			u.sendMu.Unlock()
			return
		}
		if !u.breaker.Allow() {
			u.sendMu.Unlock()
			return
		}
		err := u.trySend(ctx, p, 1)
		switch {
		case err == nil:
			u.queue.Pop()
			u.drained.Add(1)
			u.sendMu.Unlock()
		case IsPermanent(err):
			u.queue.Pop()
			u.rejects.Add(1)
			u.sendMu.Unlock()
		default:
			u.sendMu.Unlock()
			// Peer still down: wait out a backoff before the next probe
			// rather than spinning — or exactly the peer's own hint, when
			// the failure carried one.
			d := u.backoff.Delay(0)
			if hint := retryHint(err); hint > 0 {
				d = hint
			}
			u.cfg.Sleep(ctx, d)
		}
	}
}

// Flush blocks until the pending frame is dispatched and the buffer is
// empty, or ctx expires — returning an error describing what is still
// stranded in the latter case.
func (u *Uplink) Flush(ctx context.Context) error {
	if u.pending != nil {
		u.sendMu.Lock()
		u.flushPendingLocked(ctx)
		u.sendMu.Unlock()
	}
	for {
		if u.queue.Len() == 0 {
			return nil
		}
		select {
		case u.kick <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("resilience: flush: %d payloads still buffered: %w", u.queue.Len(), ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close flushes until ctx expires, then stops the drain loop. The flush
// error (if any) is returned after shutdown completes.
func (u *Uplink) Close(ctx context.Context) error {
	err := u.Flush(ctx)
	u.stop()
	<-u.done
	return err
}

// QueueLen returns the number of buffered payloads.
func (u *Uplink) QueueLen() int { return u.queue.Len() }

// Stats returns a snapshot of the uplink's counters.
func (u *Uplink) Stats() UplinkStats {
	st := UplinkStats{
		Sent:              u.sent.Load(),
		Drained:           u.drained.Load(),
		Retries:           u.retries.Load(),
		Buffered:          u.queue.Stats().Enqueued,
		RejectedPermanent: u.rejects.Load(),
		BatchedPackets:    u.batched.Load(),
		FramesBuilt:       u.frames.Load(),
		Queue:             u.queue.Stats(),
		Breaker:           u.breaker.Stats(),
		QueueLen:          u.queue.Len(),
		State:             u.breaker.State(),
	}
	if u.pending != nil {
		u.sendMu.Lock()
		st.PendingPackets = u.pending.Count()
		u.sendMu.Unlock()
	}
	return st
}
