package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPermanentMarking(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	base := errors.New("rejected")
	p := Permanent(base)
	if !IsPermanent(p) {
		t.Fatal("Permanent not detected")
	}
	if !errors.Is(p, base) {
		t.Fatal("Permanent does not unwrap to cause")
	}
	wrapped := fmt.Errorf("hop: %w", p)
	if !IsPermanent(wrapped) {
		t.Fatal("Permanent lost through wrapping")
	}
	if IsPermanent(base) {
		t.Fatal("plain error reported permanent")
	}
}

func TestRetryAfterHint(t *testing.T) {
	e := &RetryAfterError{After: 3 * time.Second, Err: errors.New("overloaded")}
	if got := retryHint(fmt.Errorf("send: %w", e)); got != 3*time.Second {
		t.Fatalf("retryHint = %v", got)
	}
	if got := retryHint(errors.New("plain")); got != 0 {
		t.Fatalf("retryHint(plain) = %v", got)
	}
	if !errors.As(error(e), new(*RetryAfterError)) {
		t.Fatal("RetryAfterError not As-able")
	}
}

func TestBackoffBoundsAndDeterminism(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 7)
	for attempt := 0; attempt < 10; attempt++ {
		ceil := b.ceiling(attempt)
		want := 100 * time.Millisecond << uint(attempt)
		if want > time.Second || want < 0 {
			want = time.Second
		}
		if ceil != want {
			t.Fatalf("ceiling(%d) = %v, want %v", attempt, ceil, want)
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [0,%v]", attempt, d, ceil)
			}
		}
	}
	// Same seed replays the same jitter sequence.
	x, y := NewBackoff(time.Millisecond, time.Second, 42), NewBackoff(time.Millisecond, time.Second, 42)
	for i := 0; i < 100; i++ {
		if x.Delay(i%8) != y.Delay(i%8) {
			t.Fatalf("seeded backoff diverged at draw %d", i)
		}
	}
}

func TestBackoffOverflowGuard(t *testing.T) {
	b := NewBackoff(time.Hour, 100*365*24*time.Hour, 1)
	if got := b.ceiling(200); got != b.max {
		t.Fatalf("overflowed ceiling = %v", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute, HalfOpenSuccesses: 2, Now: clock})

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed")
	}
	// Two failures, then a success: the consecutive count resets.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("tripped before threshold of consecutive failures")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	// Window elapses: probes allowed.
	now = now.Add(time.Minute)
	if !b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatalf("no half-open transition: %v", b.State())
	}
	// A probe failure re-opens immediately.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("probe failure did not re-open")
	}
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe window refused")
	}
	b.Success()
	if b.State() != BreakerHalfOpen {
		t.Fatal("closed before enough probe successes")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("did not close after probe successes")
	}
	st := b.Stats()
	if st.Trips != 2 || st.Rejected == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueFIFOAndDropOldest(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 3; i++ {
		if q.Push([]byte{byte(i)}) {
			t.Fatalf("push %d evicted", i)
		}
	}
	if !q.Push([]byte{3}) {
		t.Fatal("overflow push did not evict")
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	// Oldest (0) evicted: order is 1,2,3.
	for want := byte(1); want <= 3; want++ {
		p, ok := q.Pop()
		if !ok || p[0] != want {
			t.Fatalf("pop = %v %v, want [%d]", p, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	st := q.Stats()
	if st.Enqueued != 4 || st.Dequeued != 3 || st.DroppedOldest != 1 || st.HighWater != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue(4)
	seq := byte(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			q.Push([]byte{seq})
			seq++
		}
		for i := 0; i < 3; i++ {
			p, ok := q.Pop()
			if !ok {
				t.Fatal("pop failed")
			}
			if want := seq - 3 + byte(i); p[0] != want {
				t.Fatalf("round %d: pop = %d, want %d", round, p[0], want)
			}
		}
	}
}

// flakySender fails transiently for the first failN calls, then succeeds,
// recording the order payloads arrive in.
type flakySender struct {
	mu    sync.Mutex
	failN int
	calls int
	got   [][]byte
}

func (f *flakySender) Send(p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failN {
		return errors.New("transient")
	}
	f.got = append(f.got, append([]byte(nil), p...))
	return nil
}

func (f *flakySender) received() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]byte(nil), f.got...)
}

func instantSleep(context.Context, time.Duration) {}

func testConfig() Config {
	return Config{
		MaxAttempts:      2,
		BackoffBase:      time.Microsecond,
		BackoffMax:       10 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerOpenFor:   time.Millisecond,
		QueueDepth:       64,
		DrainInterval:    time.Millisecond,
		Seed:             1,
		Sleep:            instantSleep,
	}
}

func TestUplinkHappyPath(t *testing.T) {
	inner := &flakySender{}
	u := NewUplink(inner, testConfig())
	defer u.Close(context.Background())
	for i := 0; i < 5; i++ {
		if err := u.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := u.Stats()
	if st.Sent != 5 || st.Buffered != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUplinkRetriesTransient(t *testing.T) {
	inner := &flakySender{failN: 1} // first call fails, retry succeeds
	u := NewUplink(inner, testConfig())
	defer u.Close(context.Background())
	if err := u.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.Sent != 1 || st.Retries != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUplinkPermanentSurfaces(t *testing.T) {
	reject := Permanent(errors.New("unknown device"))
	u := NewUplink(SenderFunc(func([]byte) error { return reject }), testConfig())
	defer u.Close(context.Background())
	err := u.Send([]byte{1})
	if err == nil || !IsPermanent(err) {
		t.Fatalf("err = %v", err)
	}
	st := u.Stats()
	if st.Buffered != 0 || st.RejectedPermanent != 1 || st.Retries != 0 {
		t.Fatalf("permanent error buffered or retried: %+v", st)
	}
}

func TestUplinkBuffersOutageAndDrainsInOrder(t *testing.T) {
	var down sync.Mutex
	isDown := true
	var got [][]byte
	inner := SenderFunc(func(p []byte) error {
		down.Lock()
		defer down.Unlock()
		if isDown {
			return errors.New("connection refused")
		}
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	cfg := testConfig()
	// Threshold 2 = the first Send's two failed attempts trip the breaker
	// deterministically, before the recovery below.
	cfg.BreakerThreshold = 2
	u := NewUplink(inner, cfg)
	defer u.Close(context.Background())

	for i := 0; i < 20; i++ {
		if err := u.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d during outage: %v", i, err)
		}
	}
	if st := u.Stats(); st.Queue.Enqueued == 0 {
		t.Fatalf("nothing buffered during outage: %+v", st)
	}

	down.Lock()
	isDown = false
	down.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := u.Flush(ctx); err != nil {
		t.Fatalf("flush: %v (stats %+v)", err, u.Stats())
	}
	down.Lock()
	defer down.Unlock()
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, p[0])
		}
	}
	st := u.Stats()
	if st.Breaker.Trips == 0 {
		t.Fatalf("breaker never tripped during outage: %+v", st)
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue not empty after flush: %+v", st)
	}
}

func TestUplinkOrderPreservedWhenQueueNonEmpty(t *testing.T) {
	// While anything is buffered, new sends must queue behind it even if
	// the peer is healthy again — no overtaking.
	inner := &flakySender{}
	cfg := testConfig()
	cfg.DrainInterval = time.Hour // drain only when kicked by Send/Flush
	u := NewUplink(inner, cfg)
	defer u.Close(context.Background())

	u.queue.Push([]byte{0}) // pre-buffered payload, drain not yet kicked
	if err := u.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := inner.received()
	if len(got) != 2 || got[0][0] != 0 || got[1][0] != 1 {
		t.Fatalf("order = %v", got)
	}
}

func TestUplinkCloseReportsStranded(t *testing.T) {
	u := NewUplink(SenderFunc(func([]byte) error { return errors.New("down forever") }), testConfig())
	for i := 0; i < 4; i++ {
		_ = u.Send([]byte{byte(i)})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := u.Close(ctx); err == nil {
		t.Fatal("close with stranded payloads reported success")
	}
}

func TestUplinkConcurrentSends(t *testing.T) {
	// Hammer the uplink from many goroutines across an outage window;
	// run under -race to check the locking. Every payload must come out
	// exactly once.
	var down sync.Mutex
	isDown := true
	seen := make(map[byte]int)
	inner := SenderFunc(func(p []byte) error {
		down.Lock()
		defer down.Unlock()
		if isDown {
			return errors.New("outage")
		}
		seen[p[0]]++
		return nil
	})
	cfg := testConfig()
	cfg.QueueDepth = 256
	u := NewUplink(inner, cfg)
	defer u.Close(context.Background())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				_ = u.Send([]byte{byte(g*16 + i)})
			}
		}(g)
	}
	wg.Wait()
	down.Lock()
	isDown = false
	down.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := u.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	down.Lock()
	defer down.Unlock()
	if len(seen) != 128 {
		t.Fatalf("delivered %d distinct of 128", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("payload %d delivered %d times", k, n)
		}
	}
}

// TestBackoffCeilingBoundary is the overflow boundary table for the
// exponential ceiling: a node that has been down for hours drives the
// attempt counter far past the point where base<<attempt wraps int64,
// and the ceiling must clamp to max instead of wrapping negative (which
// would panic the jitter draw) or tiny (which would turn a 30s cap into
// a hot retry loop).
func TestBackoffCeilingBoundary(t *testing.T) {
	maxDur := time.Duration(math.MaxInt64)
	cases := []struct {
		name      string
		base, max time.Duration
		attempt   int
		want      time.Duration
	}{
		{"attempt0", 100 * time.Millisecond, 30 * time.Second, 0, 100 * time.Millisecond},
		{"negativeAttempt", 100 * time.Millisecond, 30 * time.Second, -5, 100 * time.Millisecond},
		{"doubling", 100 * time.Millisecond, 30 * time.Second, 3, 800 * time.Millisecond},
		{"hitsCapExactly", time.Second, 8 * time.Second, 3, 8 * time.Second},
		{"justUnderCap", time.Second, 9 * time.Second, 3, 8 * time.Second},
		{"pastCap", 100 * time.Millisecond, 30 * time.Second, 20, 30 * time.Second},
		{"shiftBoundary62", 1, maxDur, 62, 1 << 62},
		{"shiftBoundary63", 1, maxDur, 63, maxDur},
		{"shiftBoundary64", 1, maxDur, 64, maxDur},
		{"hoursOfAttempts", 100 * time.Millisecond, 30 * time.Second, 100_000, 30 * time.Second},
		{"hugeBaseHugeAttempt", maxDur / 2, maxDur, 1 << 30, maxDur},
		{"intMaxAttempt", 100 * time.Millisecond, 30 * time.Second, math.MaxInt, 30 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBackoff(tc.base, tc.max, 1)
			if got := b.ceiling(tc.attempt); got != tc.want {
				t.Fatalf("ceiling(%d) with base=%v max=%v: got %v, want %v", tc.attempt, tc.base, tc.max, got, tc.want)
			}
		})
	}

	// The ceiling must be monotone non-decreasing in attempt — a wrap
	// anywhere shows up as a decrease.
	b := NewBackoff(3*time.Millisecond, maxDur, 1)
	prev := time.Duration(0)
	for attempt := 0; attempt < 200; attempt++ {
		c := b.ceiling(attempt)
		if c < prev {
			t.Fatalf("ceiling decreased at attempt %d: %v -> %v", attempt, prev, c)
		}
		if c <= 0 {
			t.Fatalf("non-positive ceiling at attempt %d: %v", attempt, c)
		}
		prev = c
	}
}

// TestBackoffDelayAtMaxInt64Ceiling drives Delay at the topmost ceiling,
// where the exclusive-bound adjustment int64(ceil)+1 would overflow.
func TestBackoffDelayAtMaxInt64Ceiling(t *testing.T) {
	b := NewBackoff(time.Duration(math.MaxInt64), time.Duration(math.MaxInt64), 7)
	for i := 0; i < 10; i++ {
		d := b.Delay(100)
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

// recordingSleep captures the durations a retry loop decides to sleep.
type recordingSleep struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (r *recordingSleep) sleep(_ context.Context, d time.Duration) {
	r.mu.Lock()
	r.durs = append(r.durs, d)
	r.mu.Unlock()
}

func (r *recordingSleep) slept() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.durs...)
}

// TestUplinkHonorsPeerRetryAfter sends through Uplink.Send against a
// peer whose 503s carry a Retry-After hint, with the uplink's own
// backoff schedule configured far larger than the hint. The retry sleep
// must be exactly the peer's hint — the hint replaces the local
// schedule, it is not merely a floor under it.
func TestUplinkHonorsPeerRetryAfter(t *testing.T) {
	const hint = 700 * time.Millisecond
	rec := &recordingSleep{}
	calls := 0
	inner := SenderFunc(func([]byte) error {
		calls++
		if calls == 1 {
			return &RetryAfterError{After: hint, Err: errors.New("shedding")}
		}
		return nil
	})
	cfg := testConfig()
	cfg.MaxAttempts = 2
	// Own schedule would sleep somewhere in (1h, 2h]: full jitter can
	// draw small values from a large ceiling, so force the floor up to
	// make "used own backoff" and "used peer hint" disjoint.
	cfg.BackoffBase = 2 * time.Hour
	cfg.BackoffMax = 2 * time.Hour
	cfg.Sleep = rec.sleep
	u := NewUplink(inner, cfg)
	defer u.Close(context.Background())

	if err := u.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	slept := rec.slept()
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1 (%v)", len(slept), slept)
	}
	if slept[0] != hint {
		t.Fatalf("slept %v, want the peer hint %v", slept[0], hint)
	}

	// The converse direction must NOT block the caller: a hint longer
	// than the local schedule ends the synchronous loop, Send parks the
	// payload, and the drain loop delivers it — the peer is still not
	// hammered before its hint, but the datapath calling Send (a
	// gateway's UDP handler) is never held hostage for 90 minutes.
	rec2 := &recordingSleep{}
	var calls2 atomic.Int64
	long := 90 * time.Minute
	inner2 := SenderFunc(func([]byte) error {
		if calls2.Add(1) == 1 {
			return &RetryAfterError{After: long, Err: errors.New("shedding")}
		}
		return nil
	})
	cfg2 := testConfig()
	cfg2.MaxAttempts = 2
	cfg2.BackoffBase = time.Millisecond
	cfg2.BackoffMax = time.Millisecond
	cfg2.Sleep = rec2.sleep
	u2 := NewUplink(inner2, cfg2)
	defer u2.Close(context.Background())
	if err := u2.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := u2.Flush(flushCtx); err != nil {
		t.Fatal(err)
	}
	for _, d := range rec2.slept() {
		if d == long {
			t.Fatalf("synchronous path slept the full %v hint; it must hand off to the buffer instead", long)
		}
	}
	st := u2.Stats()
	if st.Buffered != 1 || st.Drained != 1 {
		t.Fatalf("payload not delivered via the buffer: %+v", st)
	}
}

// TestUplinkSendSyncNeverBuffers pins the quorum-replication contract:
// SendSync reports the true delivery outcome and leaves nothing in the
// store-and-forward queue.
func TestUplinkSendSyncNeverBuffers(t *testing.T) {
	inner := &flakySender{failN: 1000} // down for the whole test
	u := NewUplink(inner, testConfig())
	defer u.Close(context.Background())

	if err := u.SendSync(context.Background(), []byte{1}); err == nil {
		t.Fatal("SendSync against a dead peer reported success")
	}
	if n := u.QueueLen(); n != 0 {
		t.Fatalf("SendSync buffered %d payloads", n)
	}
	st := u.Stats()
	if st.Sent != 0 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUplinkSendSyncDelivers(t *testing.T) {
	inner := &flakySender{failN: 1} // first try fails, retry lands
	u := NewUplink(inner, testConfig())
	defer u.Close(context.Background())
	if err := u.SendSync(context.Background(), []byte{42}); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.Sent != 1 || st.Retries != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
	got := inner.received()
	if len(got) != 1 || got[0][0] != 42 {
		t.Fatalf("received %v", got)
	}
}

func TestUplinkSendSyncBreakerOpen(t *testing.T) {
	inner := &flakySender{failN: 1000}
	cfg := testConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerOpenFor = time.Hour
	u := NewUplink(inner, cfg)
	defer u.Close(context.Background())
	_ = u.SendSync(context.Background(), []byte{1}) // trips the breaker
	err := u.SendSync(context.Background(), []byte{2})
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
}

func TestUplinkSendSyncPermanentSurfaces(t *testing.T) {
	u := NewUplink(SenderFunc(func([]byte) error { return Permanent(errors.New("refused")) }), testConfig())
	defer u.Close(context.Background())
	err := u.SendSync(context.Background(), []byte{1})
	if err == nil || !IsPermanent(err) {
		t.Fatalf("err = %v", err)
	}
	if st := u.Stats(); st.RejectedPermanent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
