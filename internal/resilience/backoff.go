package resilience

import (
	"sync"
	"time"

	"centuryscale/internal/rng"
)

// Backoff computes retry delays: exponential growth capped at Max, with
// full jitter (delay drawn uniformly from [0, cap]) so a fleet of
// gateways recovering from the same endpoint outage does not reconverge
// in lockstep. Jitter comes from a deterministic rng stream, so a seeded
// datapath run replays the same delays.
//
// Safe for concurrent use.
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	src *rng.Source
}

// NewBackoff returns a backoff starting at base, capped at max, with
// jitter drawn from the stream seeded by seed. Non-positive base or max
// fall back to 100ms and 30s respectively.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, src: rng.New(seed)}
}

// Delay returns the sleep before retry number attempt (0-based: the
// delay after the first failure is Delay(0)).
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.ceiling(attempt)
	b.mu.Lock()
	d := time.Duration(b.src.Int63n(int64(ceil) + 1))
	b.mu.Unlock()
	return d
}

// ceiling is the un-jittered exponential cap for attempt.
func (b *Backoff) ceiling(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	ceil := b.base
	for i := 0; i < attempt; i++ {
		ceil *= 2
		if ceil >= b.max || ceil < 0 { // overflow guard
			return b.max
		}
	}
	if ceil > b.max {
		return b.max
	}
	return ceil
}
