package resilience

import (
	"math"
	"sync"
	"time"

	"centuryscale/internal/rng"
)

// Backoff computes retry delays: exponential growth capped at Max, with
// full jitter (delay drawn uniformly from [0, cap]) so a fleet of
// gateways recovering from the same endpoint outage does not reconverge
// in lockstep. Jitter comes from a deterministic rng stream, so a seeded
// datapath run replays the same delays.
//
// Safe for concurrent use.
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	src *rng.Source
}

// NewBackoff returns a backoff starting at base, capped at max, with
// jitter drawn from the stream seeded by seed. Non-positive base or max
// fall back to 100ms and 30s respectively.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, src: rng.New(seed)}
}

// Delay returns the sleep before retry number attempt (0-based: the
// delay after the first failure is Delay(0)).
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.ceiling(attempt)
	// Int63n's bound is exclusive, so the draw range is [0, ceil] via
	// ceil+1 — except when ceil is already the int64 maximum, where +1
	// would wrap negative and panic the source. Dropping the single
	// topmost value there is indistinguishable in practice.
	n := int64(ceil)
	if n < math.MaxInt64 {
		n++
	}
	b.mu.Lock()
	d := time.Duration(b.src.Int63n(n))
	b.mu.Unlock()
	return d
}

// ceiling is the un-jittered exponential cap for attempt: base<<attempt,
// clamped to max. A node that has been down for hours drives attempt
// into the hundreds, where a naive left shift wraps int64 and could hand
// the jitter draw a negative (or tiny) ceiling — so the clamp is decided
// by comparison (base > max>>attempt) before any shift happens, and any
// attempt ≥ 63 clamps outright. O(1) regardless of attempt.
func (b *Backoff) ceiling(attempt int) time.Duration {
	if attempt <= 0 {
		return b.base
	}
	if attempt >= 63 || b.base > b.max>>uint(attempt) {
		return b.max
	}
	return b.base << uint(attempt)
}
