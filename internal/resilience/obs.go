package resilience

import "centuryscale/internal/obs"

// RegisterMetrics exposes the uplink's counters on reg under the given
// prefix (e.g. "gateway_uplink"), so a daemon running two uplinks can
// register both. All values are bridged as scrape-time closures over the
// counters the uplink, queue, and breaker already keep: Send's hot path
// gains nothing.
//
// uplink_breaker_state encodes the position numerically: 0 closed,
// 1 open, 2 half-open — the BreakerState values themselves, so the gauge
// and BreakerState.String agree forever.
func (u *Uplink) RegisterMetrics(reg *obs.Registry, prefix string) {
	name := func(suffix string) string { return prefix + "_" + suffix }
	reg.CounterFunc(name("sent_total"), "payloads delivered on the synchronous fast path", u.sent.Load)
	reg.CounterFunc(name("drained_total"), "payloads delivered from the buffer after an outage", u.drained.Load)
	reg.CounterFunc(name("retries_total"), "extra synchronous attempts beyond the first", u.retries.Load)
	reg.CounterFunc(name("rejected_total"), "payloads the peer permanently refused", u.rejects.Load)
	reg.CounterFunc(name("buffered_total"), "payloads that entered the store-and-forward queue", func() uint64 {
		return u.queue.Stats().Enqueued
	})
	reg.CounterFunc(name("queue_dropped_oldest_total"), "buffered payloads evicted by overflow", func() uint64 {
		return u.queue.Stats().DroppedOldest
	})
	reg.CounterFunc(name("breaker_trips_total"), "breaker transitions to open", func() uint64 {
		return u.breaker.Stats().Trips
	})
	reg.CounterFunc(name("breaker_rejected_total"), "calls refused while the breaker was open", func() uint64 {
		return u.breaker.Stats().Rejected
	})
	reg.CounterFunc(name("breaker_transitions_total"), "breaker state changes, trips included", func() uint64 {
		return u.breaker.Stats().Transitions
	})
	reg.CounterFunc(name("batched_packets_total"), "packets copied into the pending batch frame", u.batched.Load)
	reg.CounterFunc(name("frames_built_total"), "batch frames sealed and dispatched downstream", u.frames.Load)
	reg.GaugeFunc(name("queue_depth"), "payloads currently buffered", func() float64 {
		return float64(u.queue.Len())
	})
	reg.GaugeFunc(name("breaker_state"), "breaker position: 0 closed, 1 open, 2 half-open", func() float64 {
		return float64(u.breaker.State())
	})
}
