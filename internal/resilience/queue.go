package resilience

import "sync"

// QueueStats counts store-and-forward activity.
type QueueStats struct {
	Enqueued      uint64
	Dequeued      uint64
	DroppedOldest uint64 // overflow evictions
	HighWater     int    // deepest the queue has been
}

// Queue is a bounded FIFO of payloads with drop-oldest backpressure: when
// full, Push evicts the oldest buffered payload to admit the newest. For
// cadence telemetry that is the right loss order — the most recent
// reading is the one that keeps the endpoint's weekly-uptime metric
// alive, and devices will transmit again next interval regardless.
//
// Implemented as a fixed ring buffer; safe for concurrent use.
type Queue struct {
	mu    sync.Mutex
	buf   [][]byte
	head  int // index of oldest element
	n     int // elements in buffer
	stats QueueStats
}

// NewQueue returns a queue holding at most depth payloads. Non-positive
// depth falls back to 1024.
func NewQueue(depth int) *Queue {
	if depth <= 0 {
		depth = 1024
	}
	return &Queue{buf: make([][]byte, depth)}
}

// Cap returns the configured depth.
func (q *Queue) Cap() int { return len(q.buf) }

// Len returns the number of buffered payloads.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Push appends p, evicting the oldest payload if the queue is full.
// It reports whether an eviction happened.
func (q *Queue) Push(p []byte) (evicted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == len(q.buf) {
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.stats.DroppedOldest++
		evicted = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	q.stats.Enqueued++
	if q.n > q.stats.HighWater {
		q.stats.HighWater = q.n
	}
	return evicted
}

// Peek returns the oldest payload without removing it.
func (q *Queue) Peek() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest payload.
func (q *Queue) Pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.stats.Dequeued++
	return p, true
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}
