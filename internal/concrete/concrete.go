// Package concrete models the physical asset the paper's headline sensor
// lives in: reinforced concrete that cures, is attacked by chlorides,
// and eventually corrodes its rebar — while that same corrosion cell
// powers the embedded sensor (§1: a sensor "physically embedded in the
// concrete matrix of a road (median service life of 25 years) or a bridge
// (median service life of 50 years) that reports on the actual concrete
// health and powers itself — for literally as long as the structure
// lasts — off of the corrosion of the embedded rebar").
//
// Three standard civil-engineering models are composed:
//
//   - Curing: compressive strength follows the ACI hyperbolic maturity
//     curve, saturating toward the 28-day design strength.
//   - Chloride ingress: Fick's second law; corrosion initiates when the
//     chloride concentration at rebar depth crosses the threshold.
//   - Propagation: after initiation, rebar section loss accrues at a
//     rate set by the corrosion current density (Faraday's law,
//     ~11.6 µm/year per µA/cm²); the structure reaches end of service
//     life at a critical loss.
//
// The same corrosion current, multiplied by electrode area and cell
// voltage, is the sensor's harvestable power — the package exports it in
// the units internal/energy uses.
package concrete

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/sim"
)

// Structure describes one reinforced-concrete asset.
type Structure struct {
	Name string

	// DesignStrengthMPa is the 28-day compressive strength.
	DesignStrengthMPa float64

	// CoverMM is the concrete cover over the rebar.
	CoverMM float64
	// DiffusionMM2PerYear is the chloride diffusion coefficient.
	DiffusionMM2PerYear float64
	// SurfaceChloride and ThresholdChloride are in % by cement weight.
	SurfaceChloride   float64
	ThresholdChloride float64

	// CorrosionCurrentUAcm2 is the active-corrosion current density.
	CorrosionCurrentUAcm2 float64
	// CriticalLossUM is the rebar section loss (µm) ending service life.
	CriticalLossUM float64
}

// Bridge returns a highway-bridge deck parameterisation whose median
// service life lands at the paper's ~50 years.
func Bridge() Structure {
	return Structure{
		Name:                  "bridge",
		DesignStrengthMPa:     45,
		CoverMM:               60,
		DiffusionMM2PerYear:   25,
		SurfaceChloride:       2.0, // deicing-salt exposure
		ThresholdChloride:     0.4,
		CorrosionCurrentUAcm2: 1.0,
		CriticalLossUM:        100,
	}
}

// RoadDeck returns a road-pavement parameterisation whose median service
// life lands at the paper's ~25 years: thinner cover, saltier surface.
func RoadDeck() Structure {
	return Structure{
		Name:                  "road-deck",
		DesignStrengthMPa:     35,
		CoverMM:               40,
		DiffusionMM2PerYear:   22,
		SurfaceChloride:       2.5, // direct salt application
		ThresholdChloride:     0.4,
		CorrosionCurrentUAcm2: 1.5,
		CriticalLossUM:        100,
	}
}

// StrengthMPa returns compressive strength at age t (ACI hyperbolic
// maturity: S(t) = S28 · d/(4 + 0.85·d), d in days).
func (s Structure) StrengthMPa(t time.Duration) float64 {
	d := float64(t) / float64(sim.Day)
	if d <= 0 {
		return 0
	}
	return s.DesignStrengthMPa * d / (4 + 0.85*d)
}

// ChlorideAt returns the chloride concentration (% cement weight) at
// depth mm after time t, from Fick's second law:
// C(x,t) = Cs · (1 − erf(x / (2·sqrt(D·t)))).
func (s Structure) ChlorideAt(depthMM float64, t time.Duration) float64 {
	years := sim.ToYears(t)
	if years <= 0 {
		return 0
	}
	return s.SurfaceChloride * (1 - math.Erf(depthMM/(2*math.Sqrt(s.DiffusionMM2PerYear*years))))
}

// InitiationYears returns when corrosion begins at the rebar: the time at
// which the chloride at cover depth reaches the threshold. Returns +Inf
// if the threshold is unreachable (threshold ≥ surface concentration).
func (s Structure) InitiationYears() float64 {
	if s.ThresholdChloride >= s.SurfaceChloride {
		return math.Inf(1)
	}
	// Invert: erf(u) = 1 - Cth/Cs where u = cover / (2 sqrt(D t)).
	target := 1 - s.ThresholdChloride/s.SurfaceChloride
	u := erfInv(target)
	if u <= 0 {
		return 0
	}
	root := s.CoverMM / (2 * u)
	return root * root / s.DiffusionMM2PerYear
}

// erfInv inverts math.Erf on (0, 1) by bisection; 60 iterations are
// exact to float64 for our argument range.
func erfInv(y float64) float64 {
	if y <= 0 {
		return 0
	}
	if y >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 6.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// micronsPerYearPerUAcm2 is Faraday's-law steel loss for 1 µA/cm².
const micronsPerYearPerUAcm2 = 11.6

// SectionLossUM returns accumulated rebar section loss (µm) at age t.
func (s Structure) SectionLossUM(t time.Duration) float64 {
	years := sim.ToYears(t)
	init := s.InitiationYears()
	if years <= init {
		return 0
	}
	return (years - init) * s.CorrosionCurrentUAcm2 * micronsPerYearPerUAcm2
}

// ServiceLifeYears returns initiation plus propagation to critical loss.
func (s Structure) ServiceLifeYears() float64 {
	init := s.InitiationYears()
	if math.IsInf(init, 1) {
		return math.Inf(1)
	}
	prop := s.CriticalLossUM / (s.CorrosionCurrentUAcm2 * micronsPerYearPerUAcm2)
	return init + prop
}

// HealthIndex returns the sensor observable in [0, 1]: 1 is sound,
// declining with rebar loss toward 0 at end of service life, with a
// rising segment during the first month of curing. This is the quantity
// an embedded EMI sensor tracks.
func (s Structure) HealthIndex(t time.Duration) float64 {
	curing := s.StrengthMPa(t) / s.DesignStrengthMPa
	if curing > 1 {
		curing = 1
	}
	damage := s.SectionLossUM(t) / s.CriticalLossUM
	if damage > 1 {
		damage = 1
	}
	h := curing * (1 - damage)
	if h < 0 {
		return 0
	}
	return h
}

// HarvestMicroWatts returns the power available to an embedded sensor
// from the rebar corrosion cell: current density × electrode area ×
// cell voltage. Before initiation, passive-film leakage supplies roughly
// a tenth of the active current. This feeds energy.Constant-style
// budgets.
func (s Structure) HarvestMicroWatts(electrodeCM2, cellVolts float64, t time.Duration) float64 {
	if electrodeCM2 <= 0 || cellVolts <= 0 {
		panic(fmt.Sprintf("concrete: bad harvester geometry %v cm² %v V", electrodeCM2, cellVolts))
	}
	density := s.CorrosionCurrentUAcm2
	if sim.ToYears(t) < s.InitiationYears() {
		density *= 0.1
	}
	return density * electrodeCM2 * cellVolts
}
