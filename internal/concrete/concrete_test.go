package concrete

import (
	"math"
	"testing"

	"centuryscale/internal/sim"
)

func TestCuringCurve(t *testing.T) {
	b := Bridge()
	if s := b.StrengthMPa(0); s != 0 {
		t.Fatalf("strength at pour = %v", s)
	}
	// ACI hyperbolic: at 28 days, d/(4+0.85d) = 28/27.8 ≈ 1.007 of S28.
	at28 := b.StrengthMPa(28 * sim.Day)
	if math.Abs(at28-b.DesignStrengthMPa)/b.DesignStrengthMPa > 0.05 {
		t.Fatalf("28-day strength = %v, want ~%v", at28, b.DesignStrengthMPa)
	}
	// Monotone through curing.
	if b.StrengthMPa(3*sim.Day) >= b.StrengthMPa(14*sim.Day) {
		t.Fatal("curing not monotone")
	}
}

func TestChlorideProfile(t *testing.T) {
	b := Bridge()
	// Surface concentration at depth 0.
	if c := b.ChlorideAt(0, sim.Years(1)); math.Abs(c-b.SurfaceChloride) > 1e-9 {
		t.Fatalf("surface chloride = %v", c)
	}
	// Decreasing with depth, increasing with time.
	if b.ChlorideAt(20, sim.Years(10)) <= b.ChlorideAt(60, sim.Years(10)) {
		t.Fatal("chloride not decreasing with depth")
	}
	if b.ChlorideAt(40, sim.Years(10)) >= b.ChlorideAt(40, sim.Years(40)) {
		t.Fatal("chloride not increasing with time")
	}
	if c := b.ChlorideAt(40, 0); c != 0 {
		t.Fatalf("chloride before exposure = %v", c)
	}
}

func TestPaperServiceLives(t *testing.T) {
	// §1: road median service life 25 years, bridge 50 years.
	bridge := Bridge().ServiceLifeYears()
	road := RoadDeck().ServiceLifeYears()
	if bridge < 45 || bridge > 58 {
		t.Fatalf("bridge service life = %v years, paper cites 50", bridge)
	}
	if road < 20 || road > 30 {
		t.Fatalf("road service life = %v years, paper cites 25", road)
	}
	if road >= bridge {
		t.Fatal("roads must wear out before bridges")
	}
}

func TestInitiationConsistent(t *testing.T) {
	// At the computed initiation time the chloride at rebar depth equals
	// the threshold.
	b := Bridge()
	ti := b.InitiationYears()
	c := b.ChlorideAt(b.CoverMM, sim.Years(ti))
	if math.Abs(c-b.ThresholdChloride) > 1e-6 {
		t.Fatalf("chloride at initiation = %v, want threshold %v", c, b.ThresholdChloride)
	}
}

func TestInitiationUnreachable(t *testing.T) {
	s := Bridge()
	s.ThresholdChloride = s.SurfaceChloride + 1
	if !math.IsInf(s.InitiationYears(), 1) {
		t.Fatal("unreachable threshold must never initiate")
	}
	if !math.IsInf(s.ServiceLifeYears(), 1) {
		t.Fatal("service life should be infinite without initiation")
	}
	if s.SectionLossUM(sim.Years(100)) != 0 {
		t.Fatal("loss accrued without initiation")
	}
}

func TestSectionLossRate(t *testing.T) {
	b := Bridge()
	init := b.InitiationYears()
	// No loss before initiation.
	if l := b.SectionLossUM(sim.Years(init - 1)); l != 0 {
		t.Fatalf("loss before initiation = %v", l)
	}
	// Faraday: 1 µA/cm² = 11.6 µm/year.
	l := b.SectionLossUM(sim.Years(init + 10))
	if math.Abs(l-116) > 1 {
		t.Fatalf("10-year loss = %v µm, want ~116", l)
	}
}

func TestHealthIndexLifecycle(t *testing.T) {
	b := Bridge()
	// Rises during curing...
	if b.HealthIndex(sim.Day) >= b.HealthIndex(60*sim.Day) {
		t.Fatal("health not rising during curing")
	}
	// ...holds near 1 mid-life...
	if h := b.HealthIndex(sim.Years(20)); h < 0.95 {
		t.Fatalf("mid-life health = %v", h)
	}
	// ...and declines to 0 at end of service life.
	eol := b.ServiceLifeYears()
	if h := b.HealthIndex(sim.Years(eol)); h > 0.01 {
		t.Fatalf("end-of-life health = %v", h)
	}
	if h := b.HealthIndex(sim.Years(eol + 20)); h != 0 {
		t.Fatalf("post-EOL health = %v", h)
	}
}

func TestHarvestPower(t *testing.T) {
	b := Bridge()
	// Active corrosion: 1 µA/cm² × 100 cm² × 0.5 V = 50 µW — the design
	// point the paper's ambient-battery work targets.
	active := b.HarvestMicroWatts(100, 0.5, sim.Years(b.InitiationYears()+5))
	if math.Abs(active-50) > 1e-9 {
		t.Fatalf("active harvest = %v µW", active)
	}
	// Passive (pre-initiation): about a tenth.
	passive := b.HarvestMicroWatts(100, 0.5, sim.Years(1))
	if math.Abs(passive-5) > 1e-9 {
		t.Fatalf("passive harvest = %v µW", passive)
	}
}

func TestHarvestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	Bridge().HarvestMicroWatts(0, 0.5, 0)
}

func TestErfInv(t *testing.T) {
	for _, y := range []float64{0.1, 0.3333, 0.5, 0.8, 0.99} {
		u := erfInv(y)
		if math.Abs(math.Erf(u)-y) > 1e-12 {
			t.Fatalf("erfInv(%v) = %v, erf back = %v", y, u, math.Erf(u))
		}
	}
	if erfInv(0) != 0 {
		t.Fatal("erfInv(0) != 0")
	}
	if !math.IsInf(erfInv(1), 1) {
		t.Fatal("erfInv(1) != +Inf")
	}
}

func TestHealthMonotoneDeclineAfterInitiation(t *testing.T) {
	r := RoadDeck()
	init := r.InitiationYears()
	prev := r.HealthIndex(sim.Years(init))
	for y := init + 1; y < r.ServiceLifeYears(); y++ {
		h := r.HealthIndex(sim.Years(y))
		if h > prev {
			t.Fatalf("health rose after initiation at year %v", y)
		}
		prev = h
	}
}

func BenchmarkHealthIndex(b *testing.B) {
	s := Bridge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.HealthIndex(sim.Years(25))
	}
}
