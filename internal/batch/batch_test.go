package batch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func pkt(fill byte) []byte {
	p := make([]byte, PacketSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	frame, err := AppendFrame(nil, pkt(1), pkt(2), pkt(3))
	if err != nil {
		t.Fatal(err)
	}
	payload, n, err := Split(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(Packet(payload, i), pkt(byte(i+1))) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
	if !IsFrame(frame) {
		t.Fatal("IsFrame rejected a sealed frame")
	}
}

func TestBuilderMatchesAppendFrame(t *testing.T) {
	var b Builder
	for i := 0; i < 5; i++ {
		if err := b.Add(pkt(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	got := b.Take()
	want, err := AppendFrame(nil, pkt(0), pkt(1), pkt(2), pkt(3), pkt(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("builder frame differs from one-shot frame:\n got %x\nwant %x", got, want)
	}
	if b.Count() != 0 || b.Take() != nil {
		t.Fatal("Take did not empty the builder")
	}
	// Ownership transfer: mutating the taken frame must not leak into
	// the next frame the builder seals.
	got[HeaderSize] ^= 0xFF
	if err := b.Add(pkt(9)); err != nil {
		t.Fatal(err)
	}
	next := b.Take()
	if _, _, err := Split(next, 0); err != nil {
		t.Fatalf("frame after ownership transfer corrupted: %v", err)
	}
}

func TestBuilderLimits(t *testing.T) {
	b := Builder{MaxPackets: 2}
	if err := b.Add(make([]byte, PacketSize-1)); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("short packet: got %v, want ErrBadPacket", err)
	}
	if err := b.Add(pkt(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(pkt(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(pkt(3)); !errors.Is(err, ErrFull) {
		t.Fatalf("over cap: got %v, want ErrFull", err)
	}
}

func TestSplitRejections(t *testing.T) {
	valid, err := AppendFrame(nil, pkt(7), pkt(8))
	if err != nil {
		t.Fatal(err)
	}
	tornShort := valid[:HeaderSize-1]
	tornBody := valid[:len(valid)-1]
	crcFlip := append([]byte(nil), valid...)
	crcFlip[HeaderSize] ^= 0x01
	overCap, err := AppendFrame(nil, pkt(1), pkt(2), pkt(3))
	if err != nil {
		t.Fatal(err)
	}
	empty := make([]byte, HeaderSize)
	// Header consistent with body length but not a whole packet count.
	ragged := make([]byte, HeaderSize+PacketSize+1)
	binary.BigEndian.PutUint32(ragged[0:4], PacketSize+1)

	cases := []struct {
		name  string
		frame []byte
		max   int
		want  error
	}{
		{"torn header", tornShort, 0, ErrTornFrame},
		{"torn body", tornBody, 0, ErrTornFrame},
		{"crc flip", crcFlip, 0, ErrFrameCRC},
		{"zero packets", empty, 0, ErrFrameSize},
		{"over max packets", overCap, 2, ErrFrameSize},
		{"ragged count", ragged, 0, ErrBadCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Split(tc.frame, tc.max); !errors.Is(err, tc.want) {
				t.Fatalf("Split = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestIsFrameDisjointFromBarePackets(t *testing.T) {
	if IsFrame(pkt(1)) {
		t.Fatal("a bare 24-byte packet classified as a frame")
	}
	frame, err := AppendFrame(nil, pkt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !IsFrame(frame) {
		t.Fatal("a minimal one-packet frame not classified as a frame")
	}
	if IsFrame(frame[:len(frame)-1]) {
		t.Fatal("a torn frame classified as a frame")
	}
}
