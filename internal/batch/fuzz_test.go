package batch

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzBatchDecode drives Split with arbitrary bytes, the way a hostile
// gateway or a corrupted proxy would: it must never panic, never accept
// a payload past the packet cap, and anything it does accept must
// re-encode to the exact bytes it came from (the framing is canonical).
// Mirrors internal/tsdb's FuzzWALDecode discipline — the frame reuses
// the WAL's CRC-32C taxonomy, so it earns the WAL's fuzz coverage too.
func FuzzBatchDecode(f *testing.F) {
	one := make([]byte, PacketSize)
	for i := range one {
		one[i] = byte(i)
	}
	valid, err := AppendFrame(nil, one)
	if err != nil {
		f.Fatal(err)
	}
	big, err := AppendFrame(nil, one, one, one, one)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(big)
	f.Add(valid[:len(valid)-5])                   // torn tail
	f.Add(bytes.Repeat([]byte{0xFF}, 64))         // garbage length prefix
	f.Add(make([]byte, 64))                       // zero length prefix
	f.Add(make([]byte, HeaderSize))               // zero-count frame
	f.Add(bytes.Repeat([]byte{0xAB}, PacketSize)) // bare packet, not a frame
	corrupted := append([]byte(nil), valid...)
	corrupted[HeaderSize+4] ^= 0x20 // payload bit flip -> CRC mismatch
	f.Add(corrupted)
	overlong, err := AppendFrame(nil, one, one, one)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(overlong) // fuzz body runs Split with maxPackets=2

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPackets = 2
		payload, n, err := Split(data, maxPackets)
		if err != nil {
			// Any corruption classification is fine; what matters is
			// that it IS classified, not panicked on.
			if !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrFrameSize) &&
				!errors.Is(err, ErrFrameCRC) && !errors.Is(err, ErrBadCount) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < 1 || n > maxPackets {
			t.Fatalf("accepted %d packets past the cap %d", n, maxPackets)
		}
		if len(payload) != n*PacketSize {
			t.Fatalf("payload %d bytes for %d packets", len(payload), n)
		}
		// Canonical: re-framing the accepted packets reproduces the
		// input byte for byte.
		packets := make([][]byte, n)
		for i := range packets {
			packets[i] = Packet(payload, i)
		}
		reframed, err := AppendFrame(nil, packets...)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(reframed, data) {
			t.Fatalf("round trip not canonical:\n in: %x\nout: %x", data, reframed)
		}
		// An accepted frame is also structurally a frame for routing.
		if !IsFrame(data) {
			t.Fatal("Split accepted a frame IsFrame rejects")
		}
	})
}
