// Package batch implements the gateway→endpoint batched binary frame:
// the backhaul wire format that lets one HTTP request carry N 24-byte
// telemetry packets instead of one.
//
// The paper's fleet shape (and the Signpost platform it cites) is many
// low-rate devices aggregated through a handful of gateways: each device
// transmits once an hour, but a gateway fronting ten thousand of them
// sees a steady stream. Carrying that stream packet-per-request spends
// ~75% of the endpoint's ingest budget on HTTP per-request overhead and
// per-append fsync scheduling (BENCH_obs.json vs BENCH_tsdb.json). A
// frame amortizes all three: one request, one body read, one WAL
// group-commit fsync for the whole batch.
//
// Frame layout (big-endian), deliberately the same CRC-32C framing
// discipline as the tsdb WAL (internal/tsdb/record.go) so the decoder
// has the same torn/corrupt/oversized taxonomy:
//
//	0:4  payload length (uint32) — must equal len(frame)-8
//	4:8  CRC-32C (Castagnoli) of the payload
//	8:   payload — N concatenated 24-byte telemetry packets, N >= 1
//
// The length field is bounded by the decoder's cap before anything is
// trusted, so a corrupted or adversarial prefix can never drive a huge
// allocation; the CRC covers the whole payload, so a frame truncated or
// bit-flipped in transit is rejected as a unit rather than half-applied.
// Packet authenticity is NOT the frame's job: each packet inside still
// carries its own HMAC tag and is verified individually by the endpoint.
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"centuryscale/internal/telemetry"
)

const (
	// HeaderSize is the frame prefix: length + CRC.
	HeaderSize = 8
	// PacketSize is the fixed record width inside a frame.
	PacketSize = telemetry.PacketSize
	// DefaultMaxPackets caps a frame at a size that amortizes HTTP and
	// fsync overhead to noise (<0.5% at 256 packets already) without
	// letting one request monopolize a decode buffer.
	DefaultMaxPackets = 1024
	// MaxFrameBytes is the largest on-the-wire frame the default cap
	// admits; body readers size their reject threshold from it.
	MaxFrameBytes = HeaderSize + DefaultMaxPackets*PacketSize
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the frame decoder, mirroring the WAL's taxonomy.
var (
	ErrTornFrame = errors.New("batch: torn frame (truncated header or payload)")
	ErrFrameSize = errors.New("batch: frame length out of bounds")
	ErrFrameCRC  = errors.New("batch: frame CRC mismatch")
	ErrBadCount  = errors.New("batch: payload is not a whole number of packets")
	ErrFull      = errors.New("batch: frame is full")
	ErrBadPacket = errors.New("batch: packet is not exactly PacketSize bytes")
)

// Split validates a complete frame and returns its payload (a view into
// frame, no copy) plus the packet count. maxPackets <= 0 means
// DefaultMaxPackets. The returned payload aliases frame: callers that
// reuse the frame buffer must finish with the payload first.
//
//lint:hotpath budget=0 frame admission runs per request on the batched ingest path; validation is pure arithmetic plus one CRC pass over borrowed bytes
func Split(frame []byte, maxPackets int) (payload []byte, n int, err error) {
	if maxPackets <= 0 {
		maxPackets = DefaultMaxPackets
	}
	if len(frame) < HeaderSize {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTornFrame, len(frame))
	}
	length := binary.BigEndian.Uint32(frame[0:4])
	if int64(length) != int64(len(frame)-HeaderSize) {
		return nil, 0, fmt.Errorf("%w: header says %d, body has %d", ErrTornFrame, length, len(frame)-HeaderSize)
	}
	if length == 0 || length > uint32(maxPackets)*PacketSize {
		return nil, 0, fmt.Errorf("%w: %d", ErrFrameSize, length)
	}
	if length%PacketSize != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrBadCount, length)
	}
	payload = frame[HeaderSize:]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(frame[4:8]) {
		return nil, 0, ErrFrameCRC
	}
	return payload, int(length) / PacketSize, nil
}

// Packet returns the i-th packet of a payload returned by Split, as a
// subslice (no copy).
//
//lint:hotpath budget=0 per-packet accessor on the batched decode path: pure slicing
func Packet(payload []byte, i int) []byte {
	return payload[i*PacketSize : (i+1)*PacketSize]
}

// IsFrame reports whether b is structurally a batch frame (consistent
// header, whole packets) without paying for the CRC. Senders that carry
// both bare 24-byte packets and frames over one channel route on this:
// a bare packet is always exactly PacketSize bytes, a frame is at least
// HeaderSize+PacketSize, so the two can never be confused.
func IsFrame(b []byte) bool {
	if len(b) < HeaderSize+PacketSize {
		return false
	}
	length := binary.BigEndian.Uint32(b[0:4])
	return int64(length) == int64(len(b)-HeaderSize) && length%PacketSize == 0
}

// Builder accumulates packets into a frame. The zero value is ready to
// use with the default cap; a Builder is not safe for concurrent use —
// callers serialize on their own lock (the uplink holds sendMu).
type Builder struct {
	// MaxPackets caps the frame; 0 means DefaultMaxPackets.
	MaxPackets int

	buf []byte // HeaderSize reserved bytes, then packets
}

func (b *Builder) cap() int {
	if b.MaxPackets > 0 {
		return b.MaxPackets
	}
	return DefaultMaxPackets
}

// Count returns the packets accumulated so far.
func (b *Builder) Count() int {
	if len(b.buf) <= HeaderSize {
		return 0
	}
	return (len(b.buf) - HeaderSize) / PacketSize
}

// Add appends one packet. ErrBadPacket rejects payloads that are not
// exactly PacketSize bytes (the caller falls back to an unbatched send);
// ErrFull rejects a packet that would exceed the cap (the caller flushes
// first).
//
//lint:hotpath budget=1 per-packet on the gateway datapath: one lazy buffer make per frame (ownership moved out by Take), amortized to ~0 per packet; appends reuse the buffer's reserved capacity
func (b *Builder) Add(p []byte) error {
	if len(p) != PacketSize {
		return ErrBadPacket
	}
	if b.Count() >= b.cap() {
		return ErrFull
	}
	if b.buf == nil {
		b.buf = make([]byte, HeaderSize, HeaderSize+b.cap()*PacketSize)
	}
	b.buf = append(b.buf, p...)
	return nil
}

// Take seals the frame — fills in the length and CRC header — and hands
// the buffer to the caller, leaving the builder empty. Ownership
// transfers: the builder allocates a fresh buffer on the next Add, so
// the returned frame may sit in a store-and-forward queue indefinitely.
// Returns nil when no packets are pending.
func (b *Builder) Take() []byte {
	n := b.Count()
	if n == 0 {
		return nil
	}
	frame := b.buf
	b.buf = nil
	binary.BigEndian.PutUint32(frame[0:4], uint32(n*PacketSize))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(frame[HeaderSize:], castagnoli))
	return frame
}

// AppendFrame seals packets into a single frame appended to dst — the
// one-shot form for tests and callers that already hold the batch.
func AppendFrame(dst []byte, packets ...[]byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	for _, p := range packets {
		if len(p) != PacketSize {
			return nil, ErrBadPacket
		}
		dst = append(dst, p...)
	}
	payload := dst[start+HeaderSize:]
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrFrameSize)
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc32.Checksum(payload, castagnoli))
	return dst, nil
}
