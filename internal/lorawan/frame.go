package lorawan

import (
	"crypto/aes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Uplink is an unconfirmed LoRaWAN 1.0 data uplink, the only frame a
// transmit-only sensor ever sends.
type Uplink struct {
	// DevAddr is the 32-bit device address.
	DevAddr uint32
	// FCnt is the uplink frame counter (16-bit on the wire).
	FCnt uint16
	// FPort in 1..223 selects the application.
	FPort uint8
	// Payload is the application payload (encrypted on the wire).
	Payload []byte
}

// MHDR for an unconfirmed data uplink, LoRaWAN 1.0.
const mhdrUnconfirmedUp = 0x40

// Wire layout sizes.
const (
	headerBytes = 1 + 4 + 1 + 2 + 1 // MHDR DevAddr FCtrl FCnt FPort
	micBytes    = 4
	// MaxPayload keeps the PHY payload within the SF10/125 kHz
	// regional dwell limits with margin.
	MaxPayload = 51
)

// Errors from Encode/Decode.
var (
	ErrBadKey      = errors.New("lorawan: session key must be 16 bytes")
	ErrBadPort     = errors.New("lorawan: FPort out of 1..223")
	ErrTooBig      = errors.New("lorawan: payload exceeds regional maximum")
	ErrTooShort    = errors.New("lorawan: frame too short")
	ErrBadMHDR     = errors.New("lorawan: not an unconfirmed data uplink")
	ErrBadMIC      = errors.New("lorawan: MIC check failed")
	ErrFCntReplay  = errors.New("lorawan: frame counter not advancing")
	ErrUnknownAddr = errors.New("lorawan: unknown device address")
)

// b0 builds the LoRaWAN B0 block for MIC computation (uplink).
func b0(devAddr uint32, fcnt uint32, msgLen int) [16]byte {
	var b [16]byte
	b[0] = 0x49
	// bytes 1..4 zero; b[5] = dir (0 = uplink)
	binary.LittleEndian.PutUint32(b[6:10], devAddr)
	binary.LittleEndian.PutUint32(b[10:14], fcnt)
	b[15] = byte(msgLen)
	return b
}

// aBlock builds the LoRaWAN A_i block for payload encryption.
func aBlock(devAddr uint32, fcnt uint32, i byte) [16]byte {
	var b [16]byte
	b[0] = 0x01
	binary.LittleEndian.PutUint32(b[6:10], devAddr)
	binary.LittleEndian.PutUint32(b[10:14], fcnt)
	b[15] = i
	return b
}

// cryptPayload applies the LoRaWAN payload cipher (AES-128 counter-mode
// keystream per §4.3.3 of the spec); it is its own inverse.
func cryptPayload(appSKey []byte, devAddr uint32, fcnt uint32, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(appSKey)
	if err != nil {
		return nil, fmt.Errorf("lorawan: appSKey: %w", err)
	}
	out := make([]byte, len(payload))
	var s [16]byte
	for i := 0; i < len(payload); i += 16 {
		a := aBlock(devAddr, fcnt, byte(i/16+1))
		block.Encrypt(s[:], a[:])
		for j := i; j < i+16 && j < len(payload); j++ {
			out[j] = payload[j] ^ s[j-i]
		}
	}
	return out, nil
}

// Encode serialises and protects the uplink: payload encrypted under
// appSKey, MIC computed under nwkSKey. Both keys are 16 bytes.
func (u Uplink) Encode(nwkSKey, appSKey []byte) ([]byte, error) {
	if len(nwkSKey) != 16 || len(appSKey) != 16 {
		return nil, ErrBadKey
	}
	if u.FPort < 1 || u.FPort > 223 {
		return nil, fmt.Errorf("%w: %d", ErrBadPort, u.FPort)
	}
	if len(u.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooBig, len(u.Payload), MaxPayload)
	}
	enc, err := cryptPayload(appSKey, u.DevAddr, uint32(u.FCnt), u.Payload)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 0, headerBytes+len(enc)+micBytes)
	msg = append(msg, mhdrUnconfirmedUp)
	msg = binary.LittleEndian.AppendUint32(msg, u.DevAddr)
	msg = append(msg, 0) // FCtrl: no ADR, no ACK, no FOpts
	msg = binary.LittleEndian.AppendUint16(msg, u.FCnt)
	msg = append(msg, u.FPort)
	msg = append(msg, enc...)

	blk := b0(u.DevAddr, uint32(u.FCnt), len(msg))
	mac, err := CMAC(nwkSKey, append(blk[:], msg...))
	if err != nil {
		return nil, err
	}
	return append(msg, mac[:micBytes]...), nil
}

// Decode parses, MIC-checks, and decrypts a frame using a key lookup by
// device address (the network router's view: it knows session keys for
// its devices).
func Decode(wire []byte, keys func(devAddr uint32) (nwkSKey, appSKey []byte, ok bool)) (Uplink, error) {
	var u Uplink
	if len(wire) < headerBytes+micBytes {
		return u, fmt.Errorf("%w: %d bytes", ErrTooShort, len(wire))
	}
	if wire[0] != mhdrUnconfirmedUp {
		return u, fmt.Errorf("%w: MHDR %02x", ErrBadMHDR, wire[0])
	}
	u.DevAddr = binary.LittleEndian.Uint32(wire[1:5])
	if fctrl := wire[5]; fctrl&0x0f != 0 {
		// FOpts present: out of scope for transmit-only sensors.
		return u, fmt.Errorf("%w: FOpts unsupported", ErrBadMHDR)
	}
	u.FCnt = binary.LittleEndian.Uint16(wire[6:8])
	u.FPort = wire[8]

	nwkSKey, appSKey, ok := keys(u.DevAddr)
	if !ok {
		return u, fmt.Errorf("%w: %08x", ErrUnknownAddr, u.DevAddr)
	}
	if len(nwkSKey) != 16 || len(appSKey) != 16 {
		return u, ErrBadKey
	}

	msg := wire[:len(wire)-micBytes]
	var gotMIC [4]byte
	copy(gotMIC[:], wire[len(wire)-micBytes:])
	blk := b0(u.DevAddr, uint32(u.FCnt), len(msg))
	mac, err := CMAC(nwkSKey, append(blk[:], msg...))
	if err != nil {
		return u, err
	}
	var want [4]byte
	copy(want[:], mac[:micBytes])
	if !micEqual(gotMIC, want) {
		return u, ErrBadMIC
	}

	enc := wire[headerBytes : len(wire)-micBytes]
	u.Payload, err = cryptPayload(appSKey, u.DevAddr, uint32(u.FCnt), enc)
	if err != nil {
		return u, err
	}
	return u, nil
}

// SessionKeys derives per-device NwkSKey/AppSKey deterministically from a
// join-server master secret and the device address: the ABP
// (activation-by-personalisation) provisioning a transmit-only device
// ships with. Derivation is CMAC-based so it stays inside this package's
// primitives.
func SessionKeys(master []byte, devAddr uint32) (nwkSKey, appSKey []byte, err error) {
	if len(master) != 16 {
		return nil, nil, ErrBadKey
	}
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:4], devAddr)
	buf[15] = 0x01
	n, err := CMAC(master, buf[:])
	if err != nil {
		return nil, nil, err
	}
	buf[15] = 0x02
	a, err := CMAC(master, buf[:])
	if err != nil {
		return nil, nil, err
	}
	return n[:], a[:], nil
}

// FCntTracker is the router-side replay guard: 16-bit counters with
// rollover detection per the LoRaWAN 1.0 relaxed scheme.
type FCntTracker struct {
	last map[uint32]uint16
	seen map[uint32]bool
	// MaxGap bounds an acceptable forward jump (lost frames).
	MaxGap uint16
}

// NewFCntTracker returns a tracker accepting forward jumps up to maxGap.
func NewFCntTracker(maxGap uint16) *FCntTracker {
	return &FCntTracker{last: make(map[uint32]uint16), seen: make(map[uint32]bool), MaxGap: maxGap}
}

// Accept validates and records a frame counter for a device.
func (t *FCntTracker) Accept(devAddr uint32, fcnt uint16) error {
	if !t.seen[devAddr] {
		t.seen[devAddr] = true
		t.last[devAddr] = fcnt
		return nil
	}
	last := t.last[devAddr]
	diff := fcnt - last // wraps naturally on uint16
	if diff == 0 || diff > t.MaxGap {
		return fmt.Errorf("%w: last %d got %d", ErrFCntReplay, last, fcnt)
	}
	t.last[devAddr] = fcnt
	return nil
}
