package lorawan

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (AES-128 key and messages).
var rfcKey, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCMACRFC4493Vectors(t *testing.T) {
	cases := []struct {
		msg, want string
	}{
		{"", "bb1d6929e95937287fa37d129b756746"},
		{"6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
		{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
			"dfa66747de9ae63030ca32611497c827"},
		{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
			"51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for i, c := range cases {
		got, err := CMAC(rfcKey, fromHex(t, c.msg))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:], fromHex(t, c.want)) {
			t.Fatalf("vector %d: got %x want %s", i, got, c.want)
		}
	}
}

func TestCMACBadKey(t *testing.T) {
	if _, err := CMAC([]byte("short"), []byte("x")); err == nil {
		t.Fatal("short key accepted")
	}
}

func sessionFixture(t *testing.T) (nwk, app []byte) {
	t.Helper()
	master := fromHex(t, "000102030405060708090a0b0c0d0e0f")
	nwk, app, err := SessionKeys(master, 0x26011234)
	if err != nil {
		t.Fatal(err)
	}
	return nwk, app
}

func TestUplinkRoundTrip(t *testing.T) {
	nwk, app := sessionFixture(t)
	u := Uplink{DevAddr: 0x26011234, FCnt: 42, FPort: 10, Payload: []byte("hello lorawan!")}
	wire, err := u.Encode(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(addr uint32) ([]byte, []byte, bool) {
		if addr == 0x26011234 {
			return nwk, app, true
		}
		return nil, nil, false
	}
	got, err := Decode(wire, keys)
	if err != nil {
		t.Fatal(err)
	}
	if got.DevAddr != u.DevAddr || got.FCnt != u.FCnt || got.FPort != u.FPort {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, u.Payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestPayloadIsEncryptedOnTheWire(t *testing.T) {
	nwk, app := sessionFixture(t)
	payload := []byte("plaintext-should-not-appear!")
	u := Uplink{DevAddr: 1, FCnt: 1, FPort: 1, Payload: payload}
	wire, err := u.Encode(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire, payload) {
		t.Fatal("plaintext payload visible on the wire")
	}
}

func TestMICRejectsTamper(t *testing.T) {
	nwk, app := sessionFixture(t)
	u := Uplink{DevAddr: 7, FCnt: 9, FPort: 2, Payload: []byte{1, 2, 3, 4}}
	wire, _ := u.Encode(nwk, app)
	keys := func(uint32) ([]byte, []byte, bool) { return nwk, app, true }
	for bit := 0; bit < len(wire)*8; bit += 7 {
		bad := append([]byte(nil), wire...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(bad, keys); err == nil {
			t.Fatalf("bit flip %d accepted", bit)
		}
	}
}

func TestMICRejectsWrongKey(t *testing.T) {
	nwk, app := sessionFixture(t)
	u := Uplink{DevAddr: 7, FCnt: 9, FPort: 2, Payload: []byte{1}}
	wire, _ := u.Encode(nwk, app)
	other := fromHex(t, "ffffffffffffffffffffffffffffffff")
	if _, err := Decode(wire, func(uint32) ([]byte, []byte, bool) { return other, app, true }); !errors.Is(err, ErrBadMIC) {
		t.Fatalf("wrong key err = %v", err)
	}
}

func TestDecodeUnknownDevice(t *testing.T) {
	nwk, app := sessionFixture(t)
	wire, _ := (Uplink{DevAddr: 7, FCnt: 1, FPort: 1}).Encode(nwk, app)
	if _, err := Decode(wire, func(uint32) ([]byte, []byte, bool) { return nil, nil, false }); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("unknown device err = %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	nwk, app := sessionFixture(t)
	if _, err := (Uplink{FPort: 0}).Encode(nwk, app); !errors.Is(err, ErrBadPort) {
		t.Fatalf("port 0 err = %v", err)
	}
	if _, err := (Uplink{FPort: 224}).Encode(nwk, app); !errors.Is(err, ErrBadPort) {
		t.Fatalf("port 224 err = %v", err)
	}
	if _, err := (Uplink{FPort: 1, Payload: make([]byte, MaxPayload+1)}).Encode(nwk, app); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversize err = %v", err)
	}
	if _, err := (Uplink{FPort: 1}).Encode([]byte("short"), app); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key err = %v", err)
	}
}

func TestDecodeStructuralErrors(t *testing.T) {
	keys := func(uint32) ([]byte, []byte, bool) { return nil, nil, false }
	if _, err := Decode([]byte{1, 2}, keys); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short err = %v", err)
	}
	nwk, app := sessionFixture(t)
	wire, _ := (Uplink{DevAddr: 7, FCnt: 1, FPort: 1}).Encode(nwk, app)
	bad := append([]byte(nil), wire...)
	bad[0] = 0x80 // join-accept MHDR
	if _, err := Decode(bad, keys); !errors.Is(err, ErrBadMHDR) {
		t.Fatalf("mhdr err = %v", err)
	}
}

func TestSessionKeysDistinct(t *testing.T) {
	master := fromHex(t, "000102030405060708090a0b0c0d0e0f")
	n1, a1, err := SessionKeys(master, 1)
	if err != nil {
		t.Fatal(err)
	}
	n2, a2, _ := SessionKeys(master, 2)
	if bytes.Equal(n1, n2) || bytes.Equal(a1, a2) {
		t.Fatal("different devices derived equal keys")
	}
	if bytes.Equal(n1, a1) {
		t.Fatal("network and app keys identical")
	}
	if _, _, err := SessionKeys([]byte("short"), 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("short master err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	nwk, app := sessionFixture(t)
	keys := func(uint32) ([]byte, []byte, bool) { return nwk, app, true }
	if err := quick.Check(func(addr uint32, fcnt uint16, port uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		p := port%223 + 1
		u := Uplink{DevAddr: addr, FCnt: fcnt, FPort: p, Payload: payload}
		wire, err := u.Encode(nwk, app)
		if err != nil {
			return false
		}
		got, err := Decode(wire, keys)
		return err == nil && got.DevAddr == addr && got.FCnt == fcnt &&
			got.FPort == p && bytes.Equal(got.Payload, payload)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFCntTracker(t *testing.T) {
	tr := NewFCntTracker(100)
	if err := tr.Accept(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Accept(1, 11); err != nil {
		t.Fatal(err)
	}
	// Replay.
	if err := tr.Accept(1, 11); !errors.Is(err, ErrFCntReplay) {
		t.Fatalf("replay err = %v", err)
	}
	// Backwards.
	if err := tr.Accept(1, 5); !errors.Is(err, ErrFCntReplay) {
		t.Fatalf("rewind err = %v", err)
	}
	// Forward gap within bound.
	if err := tr.Accept(1, 80); err != nil {
		t.Fatalf("gap err = %v", err)
	}
	// Rollover: 65530 -> 3 is a small forward jump mod 2^16.
	if err := tr.Accept(2, 65530); err != nil {
		t.Fatal(err)
	}
	if err := tr.Accept(2, 3); err != nil {
		t.Fatalf("rollover err = %v", err)
	}
	// Other devices are independent.
	if err := tr.Accept(3, 0); err != nil {
		t.Fatal(err)
	}
}

func Test24ByteTelemetryFits(t *testing.T) {
	// The paper's 24-byte packet rides a single uplink with room to
	// spare at SF10.
	nwk, app := sessionFixture(t)
	u := Uplink{DevAddr: 1, FCnt: 1, FPort: 1, Payload: make([]byte, 24)}
	wire, err := u.Encode(nwk, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 24+headerBytes+micBytes {
		t.Fatalf("wire = %d bytes", len(wire))
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	master := make([]byte, 16)
	nwk, app, _ := SessionKeys(master, 1)
	keys := func(uint32) ([]byte, []byte, bool) { return nwk, app, true }
	u := Uplink{DevAddr: 1, FPort: 1, Payload: make([]byte, 24)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.FCnt = uint16(i)
		wire, err := u.Encode(nwk, app)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(wire, keys); err != nil {
			b.Fatal(err)
		}
	}
}
