// Package lorawan implements the subset of the LoRaWAN 1.0 MAC that the
// paper's third-party design point rides (§4.2): unconfirmed data
// uplinks — the only frame a transmit-only device ever emits — with the
// real algorithms: AES-CMAC (RFC 4493) message integrity and the
// LoRaWAN payload encryption construction, both from the standard
// library's AES core.
//
// Why bother, when internal/lpwan already frames packets? Because the
// Helium-style network is *not* ours: third-party hotspots forward
// LoRaWAN frames, and the network's router checks the MIC before paying
// the hotspot. Speaking the genuine frame format is what makes a device
// forwardable by infrastructure its owner has never met — the paper's
// entire point about standards-compliant traffic (§3.1).
package lorawan

import (
	"crypto/aes"
	"crypto/subtle"
	"fmt"
)

// cmacKey holds the two subkeys of RFC 4493.
type cmacKey struct {
	k1, k2 [16]byte
}

// msb returns the most significant bit of b.
func msb(b [16]byte) bool { return b[0]&0x80 != 0 }

// shiftLeft shifts a 128-bit value left by one bit.
func shiftLeft(b [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 15; i >= 0; i-- {
		out[i] = b[i]<<1 | carry
		carry = b[i] >> 7
	}
	return out
}

// deriveSubkeys implements RFC 4493 §2.3.
func deriveSubkeys(key []byte) (cmacKey, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return cmacKey{}, fmt.Errorf("lorawan: cmac key: %w", err)
	}
	var l [16]byte
	block.Encrypt(l[:], l[:])

	const rb = 0x87
	k1 := shiftLeft(l)
	if msb(l) {
		k1[15] ^= rb
	}
	k2 := shiftLeft(k1)
	if msb(k1) {
		k2[15] ^= rb
	}
	return cmacKey{k1: k1, k2: k2}, nil
}

// CMAC computes AES-CMAC (RFC 4493) of msg under a 16-byte key.
func CMAC(key, msg []byte) ([16]byte, error) {
	var mac [16]byte
	sub, err := deriveSubkeys(key)
	if err != nil {
		return mac, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return mac, err
	}

	n := (len(msg) + 15) / 16
	complete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}

	var last [16]byte
	if complete {
		copy(last[:], msg[(n-1)*16:])
		for i := 0; i < 16; i++ {
			last[i] ^= sub.k1[i]
		}
	} else {
		rem := msg[(n-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := 0; i < 16; i++ {
			last[i] ^= sub.k2[i]
		}
	}

	var x [16]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < 16; j++ {
			x[j] ^= msg[i*16+j]
		}
		block.Encrypt(x[:], x[:])
	}
	for j := 0; j < 16; j++ {
		x[j] ^= last[j]
	}
	block.Encrypt(mac[:], x[:])
	return mac, nil
}

// cmacEqual compares two 4-byte truncated MICs in constant time.
func micEqual(a, b [4]byte) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}
