// Package backhaul models the network tier between gateways and the cloud
// (§3.3): fiber, Ethernet, cellular generations, and WiMAX, under
// municipal, commercial, or vertically-integrated ownership.
//
// The paper's backhaul argument has three prongs, and each is a model
// parameter here. First, cost structure: wired options are capex-heavy and
// opex-light (the trench is the cost; capacity rides transceiver
// upgrades), while cellular is capex-light and opex-heavy (subscriptions
// accumulate forever) — so their 50-year TCO curves cross. Second, sunset
// risk: spectrum is a leased resource, so cellular generations are
// *retired by others* on a schedule the deployment cannot control (the 2G
// sunset stranding devices, §3.4), while a wire, once trenched, "generally
// will not go anywhere". Third, ownership: commercially-provided service
// can be deprioritised (longer repair times) and repriced, while
// municipal networks run at cost — the paper's survey of Chattanooga,
// Santa Monica, Chanute et al. (§3.3.3).
package backhaul

import (
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Tech is a backhaul technology.
type Tech int

// Backhaul technologies.
const (
	Fiber Tech = iota
	Ethernet
	Cellular2G
	Cellular3G
	Cellular4G
	Cellular5G
	WiMAX
)

var techNames = map[Tech]string{
	Fiber:      "fiber",
	Ethernet:   "ethernet",
	Cellular2G: "cellular-2g",
	Cellular3G: "cellular-3g",
	Cellular4G: "cellular-4g",
	Cellular5G: "cellular-5g",
	WiMAX:      "wimax",
}

// String implements fmt.Stringer.
func (t Tech) String() string {
	if n, ok := techNames[t]; ok {
		return n
	}
	return fmt.Sprintf("tech(%d)", int(t))
}

// Cellular reports whether the technology rides carrier spectrum —
// the sunset-prone class.
func (t Tech) Cellular() bool {
	return t >= Cellular2G && t <= Cellular5G
}

// Ownership is who operates the backhaul.
type Ownership int

// Ownership models (§3.3.3).
const (
	Municipal Ownership = iota
	Commercial
	VerticalIntegrated
)

var ownershipNames = map[Ownership]string{
	Municipal:          "municipal",
	Commercial:         "commercial",
	VerticalIntegrated: "vertical",
}

// String implements fmt.Stringer.
func (o Ownership) String() string {
	if n, ok := ownershipNames[o]; ok {
		return n
	}
	return fmt.Sprintf("ownership(%d)", int(o))
}

// Profile parameterises one backhaul option for one gateway link.
// Currency is integer cents to keep ledgers exact.
type Profile struct {
	Tech      Tech
	Ownership Ownership

	// CapexCents is the up-front cost to light the link (trenching
	// share, modem, radio).
	CapexCents int64
	// OpexCentsPerMonth is the recurring cost (subscription, power,
	// upkeep share).
	OpexCentsPerMonth int64

	// MTBFYears / MTTRHours parameterise the outage process.
	MTBFYears float64
	MTTRHours float64

	// SunsetAfterYears, if positive, is when the technology is retired
	// by its operator, permanently stranding links that still use it.
	SunsetAfterYears float64
}

// DefaultProfile returns the reference parameters used across the
// experiments. Cost anchors: a fiber lateral's trench share ~$5,000 with
// trivial recurring cost; an IoT cellular plan ~$25-35/month on ~$200 of
// modem; municipally-run WiMAX (the Chanute model) sits between. The
// ownership dimension shifts repair priority (commercial service restores
// institutional customers last, §3.3.3) and whether wired service can be
// repriced away.
func DefaultProfile(t Tech, o Ownership) Profile {
	p := Profile{Tech: t, Ownership: o}
	switch t {
	case Fiber:
		p.CapexCents = 500_000 // $5,000 trench share per link
		p.OpexCentsPerMonth = 1_500
		p.MTBFYears, p.MTTRHours = 8, 8
	case Ethernet:
		p.CapexCents = 80_000
		p.OpexCentsPerMonth = 2_000
		p.MTBFYears, p.MTTRHours = 5, 8
	case Cellular2G, Cellular3G, Cellular4G, Cellular5G:
		p.CapexCents = 20_000 // modem
		p.OpexCentsPerMonth = 3_000
		p.MTBFYears, p.MTTRHours = 3, 4
		// Spectrum sunsets measured from the simulation epoch; the
		// earlier the generation, the sooner the axe (2G-style sunsets).
		switch t {
		case Cellular2G:
			p.SunsetAfterYears = 10
		case Cellular3G:
			p.SunsetAfterYears = 15
		case Cellular4G:
			p.SunsetAfterYears = 25
		case Cellular5G:
			p.SunsetAfterYears = 35
		}
	case WiMAX:
		p.CapexCents = 150_000
		p.OpexCentsPerMonth = 1_000
		p.MTBFYears, p.MTTRHours = 4, 12
		if o == Commercial {
			// Commercially-operated WiMAX was abandoned; owned WiMAX
			// (Chanute) keeps running.
			p.SunsetAfterYears = 12
		}
	default:
		panic(fmt.Sprintf("backhaul: unknown tech %d", int(t)))
	}
	if o == Commercial {
		// Institutional traffic is deprioritised: slower restoration,
		// and recurring prices drift upward (captured as +50% opex).
		p.MTTRHours *= 3
		p.OpexCentsPerMonth = p.OpexCentsPerMonth * 3 / 2
	}
	return p
}

// interval is a half-open outage window [start, end).
type interval struct{ start, end time.Duration }

// Backhaul is one link instance with a pre-generated outage history over a
// horizon, so availability queries are deterministic and O(log n).
type Backhaul struct {
	Profile  Profile
	horizon  time.Duration
	outages  []interval
	sunsetAt time.Duration // 0 = never
}

// New generates a link's outage history over the horizon from the seeded
// source. Outages arrive as a Poisson process at 1/MTBF per year and last
// MTTR (exponentially distributed) hours each.
func New(p Profile, horizon time.Duration, src *rng.Source) *Backhaul {
	b := &Backhaul{Profile: p, horizon: horizon}
	if p.SunsetAfterYears > 0 {
		b.sunsetAt = sim.Years(p.SunsetAfterYears)
	}
	if p.MTBFYears <= 0 {
		return b
	}
	t := time.Duration(0)
	for {
		gap := sim.Years(src.Exponential(p.MTBFYears))
		t += gap
		if t >= horizon {
			break
		}
		repair := time.Duration(src.Exponential(p.MTTRHours) * float64(time.Hour))
		b.outages = append(b.outages, interval{start: t, end: t + repair})
		t += repair
	}
	return b
}

// SunsetAt returns when the link is permanently retired (0 = never).
func (b *Backhaul) SunsetAt() time.Duration { return b.sunsetAt }

// Stranded reports whether the technology has been sunset at time t.
func (b *Backhaul) Stranded(t time.Duration) bool {
	return b.sunsetAt > 0 && t >= b.sunsetAt
}

// AvailableAt reports whether the link carries traffic at time t: not
// stranded and not inside an outage window.
func (b *Backhaul) AvailableAt(t time.Duration) bool {
	if b.Stranded(t) {
		return false
	}
	// Binary search the sorted outage list for a window containing t.
	i := sort.Search(len(b.outages), func(i int) bool { return b.outages[i].end > t })
	return i >= len(b.outages) || b.outages[i].start > t
}

// Availability returns the fraction of [0, d) during which the link was
// up (stranding counts as down for the remainder).
func (b *Backhaul) Availability(d time.Duration) float64 {
	if d <= 0 {
		return 1
	}
	end := d
	if b.sunsetAt > 0 && b.sunsetAt < end {
		end = b.sunsetAt
	}
	down := d - end // stranded tail
	for _, o := range b.outages {
		if o.start >= end {
			break
		}
		oe := o.end
		if oe > end {
			oe = end
		}
		down += oe - o.start
	}
	return 1 - float64(down)/float64(d)
}

// Outages returns the number of outage windows generated over the horizon.
func (b *Backhaul) Outages() int { return len(b.outages) }

// TCOCents returns the total cost of ownership of the link over the first
// d of service: capex plus monthly opex. Opex stops accruing after a
// sunset (there is nothing left to pay for).
func (b *Backhaul) TCOCents(d time.Duration) int64 {
	return b.Profile.TCOCents(d)
}

// TCOCents computes capex + opex over d, clipped at the sunset.
func (p Profile) TCOCents(d time.Duration) int64 {
	if p.SunsetAfterYears > 0 {
		if s := sim.Years(p.SunsetAfterYears); d > s {
			d = s
		}
	}
	months := int64(sim.ToYears(d) * 12)
	return p.CapexCents + months*p.OpexCentsPerMonth
}
