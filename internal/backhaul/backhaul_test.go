package backhaul

import (
	"testing"
	"time"

	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

func TestTechNames(t *testing.T) {
	if Fiber.String() != "fiber" || Cellular3G.String() != "cellular-3g" || WiMAX.String() != "wimax" {
		t.Fatal("tech names wrong")
	}
	if Tech(99).String() != "tech(99)" {
		t.Fatal("unknown tech fallback")
	}
}

func TestCellularClass(t *testing.T) {
	for _, tech := range []Tech{Cellular2G, Cellular3G, Cellular4G, Cellular5G} {
		if !tech.Cellular() {
			t.Fatalf("%v not cellular", tech)
		}
	}
	for _, tech := range []Tech{Fiber, Ethernet, WiMAX} {
		if tech.Cellular() {
			t.Fatalf("%v cellular", tech)
		}
	}
}

func TestOwnershipNames(t *testing.T) {
	if Municipal.String() != "municipal" || Commercial.String() != "commercial" || VerticalIntegrated.String() != "vertical" {
		t.Fatal("ownership names wrong")
	}
	if Ownership(9).String() != "ownership(9)" {
		t.Fatal("unknown ownership fallback")
	}
}

func TestDefaultProfileShapes(t *testing.T) {
	fiber := DefaultProfile(Fiber, Municipal)
	cell := DefaultProfile(Cellular4G, Municipal)
	// The cost-structure argument: fiber capex-heavy/opex-light,
	// cellular the reverse.
	if fiber.CapexCents <= cell.CapexCents {
		t.Fatal("fiber capex must exceed cellular capex")
	}
	if fiber.OpexCentsPerMonth >= cell.OpexCentsPerMonth {
		t.Fatal("fiber opex must undercut cellular opex")
	}
	// Only spectrum-borne techs sunset under municipal ownership.
	if fiber.SunsetAfterYears != 0 {
		t.Fatal("municipal fiber must never sunset")
	}
	if cell.SunsetAfterYears <= 0 {
		t.Fatal("cellular must carry a sunset")
	}
}

func TestSunsetOrdering(t *testing.T) {
	prev := 0.0
	for _, tech := range []Tech{Cellular2G, Cellular3G, Cellular4G, Cellular5G} {
		s := DefaultProfile(tech, Municipal).SunsetAfterYears
		if s <= prev {
			t.Fatalf("%v sunset %v not after previous %v", tech, s, prev)
		}
		prev = s
	}
}

func TestCommercialPenalty(t *testing.T) {
	muni := DefaultProfile(Fiber, Municipal)
	comm := DefaultProfile(Fiber, Commercial)
	if comm.MTTRHours <= muni.MTTRHours {
		t.Fatal("commercial restoration must be slower (deprioritised institutional service)")
	}
	if comm.OpexCentsPerMonth <= muni.OpexCentsPerMonth {
		t.Fatal("commercial recurring cost must exceed municipal")
	}
}

func TestCommercialWiMAXSunsets(t *testing.T) {
	if DefaultProfile(WiMAX, Municipal).SunsetAfterYears != 0 {
		t.Fatal("owned WiMAX (the Chanute model) must not sunset")
	}
	if DefaultProfile(WiMAX, Commercial).SunsetAfterYears == 0 {
		t.Fatal("commercial WiMAX must sunset")
	}
}

func TestOutageGeneration(t *testing.T) {
	p := DefaultProfile(Fiber, Municipal)
	b := New(p, sim.Years(50), rng.New(1))
	// ~50/8 ≈ 6 outages expected; allow wide tolerance.
	if b.Outages() < 1 || b.Outages() > 25 {
		t.Fatalf("fiber 50y outages = %d", b.Outages())
	}
	// All windows inside the horizon start and ordered.
	prevEnd := time.Duration(0)
	for _, o := range b.outages {
		if o.start < prevEnd {
			t.Fatal("outage windows overlap or unordered")
		}
		if o.start >= sim.Years(50) {
			t.Fatal("outage starts past horizon")
		}
		if o.end <= o.start {
			t.Fatal("empty outage window")
		}
		prevEnd = o.end
	}
}

func TestAvailableAt(t *testing.T) {
	b := &Backhaul{
		Profile: Profile{},
		outages: []interval{
			{start: 10 * time.Hour, end: 12 * time.Hour},
			{start: 100 * time.Hour, end: 101 * time.Hour},
		},
	}
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{0, true},
		{10*time.Hour - 1, true},
		{10 * time.Hour, false},
		{11 * time.Hour, false},
		{12 * time.Hour, true},
		{100*time.Hour + 30*time.Minute, false},
		{200 * time.Hour, true},
	}
	for _, c := range cases {
		if got := b.AvailableAt(c.t); got != c.want {
			t.Fatalf("AvailableAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStranding(t *testing.T) {
	p := DefaultProfile(Cellular2G, Municipal)
	b := New(p, sim.Years(50), rng.New(2))
	sunset := b.SunsetAt()
	if sunset != sim.Years(10) {
		t.Fatalf("2G sunset at %v years", sim.ToYears(sunset))
	}
	if b.Stranded(sunset - 1) {
		t.Fatal("stranded before sunset")
	}
	if !b.Stranded(sunset) || b.AvailableAt(sunset+sim.Years(1)) {
		t.Fatal("not stranded after sunset")
	}
}

func TestAvailabilityHighForFiber(t *testing.T) {
	b := New(DefaultProfile(Fiber, Municipal), sim.Years(50), rng.New(3))
	a := b.Availability(sim.Years(50))
	// 8h MTTR every ~8 years: availability is five nines-ish; accept >99.9%.
	if a < 0.999 || a > 1 {
		t.Fatalf("fiber availability = %v", a)
	}
}

func TestAvailabilityCollapsesAtSunset(t *testing.T) {
	b := New(DefaultProfile(Cellular2G, Municipal), sim.Years(50), rng.New(4))
	// Sunset at year 10 of 50: availability can be at most 20%.
	if a := b.Availability(sim.Years(50)); a > 0.2001 {
		t.Fatalf("2G 50-year availability = %v, want <= 0.2", a)
	}
	// But decent before the sunset.
	if a := b.Availability(sim.Years(9)); a < 0.99 {
		t.Fatalf("2G 9-year availability = %v", a)
	}
}

func TestTCOCrossover(t *testing.T) {
	fiber := DefaultProfile(Fiber, Municipal)
	cell := DefaultProfile(Cellular4G, Commercial)
	// Cellular wins early (low capex), fiber wins by 50 years.
	if fiber.TCOCents(sim.Years(1)) <= cell.TCOCents(sim.Years(1)) {
		t.Fatal("cellular must be cheaper in year 1")
	}
	// Compare at the 4G sunset (25y) where cellular opex has accrued.
	if fiber.TCOCents(sim.Years(25)) >= cell.TCOCents(sim.Years(25)) {
		t.Fatalf("fiber TCO %d must undercut cellular %d by year 25",
			fiber.TCOCents(sim.Years(25)), cell.TCOCents(sim.Years(25)))
	}
}

func TestTCOStopsAtSunset(t *testing.T) {
	cell := DefaultProfile(Cellular2G, Municipal) // sunset year 10
	at10 := cell.TCOCents(sim.Years(10))
	at50 := cell.TCOCents(sim.Years(50))
	if at10 != at50 {
		t.Fatalf("opex accrued past sunset: %d vs %d", at10, at50)
	}
}

func TestDeterministicOutages(t *testing.T) {
	a := New(DefaultProfile(Fiber, Municipal), sim.Years(50), rng.New(7))
	b := New(DefaultProfile(Fiber, Municipal), sim.Years(50), rng.New(7))
	if a.Outages() != b.Outages() {
		t.Fatal("same seed produced different outage histories")
	}
	for i := range a.outages {
		if a.outages[i] != b.outages[i] {
			t.Fatal("outage windows differ")
		}
	}
}

func TestUnknownTechPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown tech did not panic")
		}
	}()
	DefaultProfile(Tech(42), Municipal)
}

func BenchmarkAvailabilityQuery(b *testing.B) {
	bh := New(DefaultProfile(Ethernet, Commercial), sim.Years(50), rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bh.AvailableAt(sim.Years(25))
	}
}
