// Package fleet implements device-fleet lifecycle management: the Ship of
// Theseus dynamics at the heart of the paper's argument (§1, §3.4).
//
// "The lifetime of a sensing system is the aggregate lifetime of all of
// its devices across all their deployments. Constituent device lifetimes
// are pipelined, where some 15-year sensors are 10 years into their
// service life while others are being freshly deployed." No individual
// device needs to last 50 years for the *system* to last 50 years — if,
// and only if, a replacement pipeline exists. This package simulates a
// fleet of device slots under different replacement policies (none,
// on-failure dispatch, geographic batch projects, proactive schedule) and
// measures what the paper cares about: aggregate availability, replacement
// burden, cost, and the maintenance diary a long-lived experiment keeps.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Policy selects the replacement strategy.
type Policy int

// Replacement policies.
const (
	// PolicyNone deploys once and never replaces: the paper's 50-year
	// experiment rule for edge devices ("once deployed, never touched").
	PolicyNone Policy = iota
	// PolicyOnFailure replaces each device when its failure is noticed,
	// after a repair lag.
	PolicyOnFailure
	// PolicyBatch replaces failed devices only when the rolling
	// infrastructure project next visits their zone (§1: "infrastructure
	// projects operate in geographical batches").
	PolicyBatch
	// PolicyScheduled proactively replaces every device on a fixed
	// calendar, failed or not (today's 2-7-year upgrade cycles, §2).
	PolicyScheduled
)

var policyNames = map[Policy]string{
	PolicyNone:      "none",
	PolicyOnFailure: "on-failure",
	PolicyBatch:     "batch",
	PolicyScheduled: "scheduled",
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config parameterises a fleet run.
type Config struct {
	// Slots is the number of device positions the application needs
	// filled (one sensor per bridge pier, per intersection, ...).
	Slots int
	// Horizon is how long to simulate.
	Horizon time.Duration
	// Lifetime is the device lifetime distribution (from a BOM).
	Lifetime reliability.Distribution
	// Policy is the replacement strategy.
	Policy Policy

	// RepairLag applies to PolicyOnFailure: detect + dispatch + travel.
	RepairLag time.Duration

	// BatchZones and BatchCycle apply to PolicyBatch: the city is split
	// into zones visited round-robin, the full rotation taking
	// BatchCycle.
	BatchZones int
	BatchCycle time.Duration

	// ScheduledEvery applies to PolicyScheduled.
	ScheduledEvery time.Duration

	// StaggerCohorts > 1 pipelines the initial deployment: slot i enters
	// service at (i mod StaggerCohorts) / StaggerCohorts * StaggerSpan.
	StaggerCohorts int
	StaggerSpan    time.Duration

	// ForcedRetirementYears, if positive, truncates every device's life
	// at this age regardless of health: the paper's §1 obsolescence
	// taxonomy — planned obsolescence (vendor lockout), or technical
	// obsolescence when supporting infrastructure (a 2G network, a
	// vendor cloud) is withdrawn on a schedule the device cannot
	// influence.
	ForcedRetirementYears float64

	// PartsAvailableYears, if positive, is how long compatible
	// replacement hardware can still be bought (the Jang et al.
	// unplanned-obsolescence problem the paper cites in §1: production
	// lines close long before deployments do). Replacements scheduled
	// after this point simply cannot happen; the slot goes dark for
	// good.
	PartsAvailableYears float64

	// HardwareCents and LaborCents price each replacement.
	HardwareCents int64
	LaborCents    int64
}

// EventKind labels diary entries.
type EventKind int

// Diary event kinds.
const (
	EventDeploy EventKind = iota
	EventFailure
	EventReplace
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventDeploy:
		return "deploy"
	case EventFailure:
		return "failure"
	case EventReplace:
		return "replace"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one maintenance-diary line: the "living, public experimental
// diary" of §4.5.
type Event struct {
	At    time.Duration
	Slot  int
	Kind  EventKind
	Cause string
}

// interval is a half-open service window [from, to).
type interval struct{ from, to time.Duration }

// Result is the outcome of a fleet run.
type Result struct {
	Config       Config
	Failures     int
	Replacements int
	CostCents    int64
	Diary        []Event

	// up holds each slot's service intervals, sorted by start.
	up [][]interval
}

// Run simulates the fleet. All stochasticity comes from src, so runs are
// reproducible.
func Run(cfg Config, src *rng.Source) *Result {
	if cfg.Slots <= 0 || cfg.Horizon <= 0 || cfg.Lifetime == nil {
		panic("fleet: incomplete config")
	}
	res := &Result{Config: cfg, up: make([][]interval, cfg.Slots)}

	for slot := 0; slot < cfg.Slots; slot++ {
		t := time.Duration(0)
		if cfg.StaggerCohorts > 1 && cfg.StaggerSpan > 0 {
			cohort := slot % cfg.StaggerCohorts
			t = time.Duration(int64(cfg.StaggerSpan) / int64(cfg.StaggerCohorts) * int64(cohort))
		}
		res.event(t, slot, EventDeploy, "initial")

		for t < cfg.Horizon {
			life := sim.Years(cfg.Lifetime.Sample(src))
			failCause := "wear-out"
			if cfg.ForcedRetirementYears > 0 {
				if lim := sim.Years(cfg.ForcedRetirementYears); life > lim {
					life = lim
					failCause = "forced-retirement"
				}
			}
			failAt := t + life
			var next time.Duration // scheduled proactive replacement, if any
			if cfg.Policy == PolicyScheduled && cfg.ScheduledEvery > 0 {
				next = t + cfg.ScheduledEvery
			}

			serviceEnd := failAt
			failed := true
			if next > 0 && next < failAt {
				serviceEnd = next
				failed = false
			}
			if serviceEnd > cfg.Horizon {
				serviceEnd = cfg.Horizon
				failed = false
				res.addUp(slot, t, serviceEnd)
				break
			}
			res.addUp(slot, t, serviceEnd)

			if failed {
				res.Failures++
				res.event(serviceEnd, slot, EventFailure, failCause)
			}

			// When does the replacement arrive?
			var replaceAt time.Duration
			switch cfg.Policy {
			case PolicyNone:
				// Never: the slot stays dark.
				replaceAt = cfg.Horizon
			case PolicyOnFailure:
				replaceAt = serviceEnd + cfg.RepairLag
			case PolicyBatch:
				replaceAt = nextBatchVisit(cfg, slot, serviceEnd)
			case PolicyScheduled:
				if failed {
					// Failed mid-cycle: dark until the next scheduled
					// refresh.
					replaceAt = t + cfg.ScheduledEvery
					for replaceAt <= serviceEnd {
						replaceAt += cfg.ScheduledEvery
					}
				} else {
					replaceAt = serviceEnd
				}
			default:
				panic(fmt.Sprintf("fleet: unknown policy %d", int(cfg.Policy)))
			}
			if replaceAt >= cfg.Horizon {
				break
			}
			if cfg.PartsAvailableYears > 0 && replaceAt >= sim.Years(cfg.PartsAvailableYears) {
				// Compatible hardware can no longer be sourced: the
				// slot stays dark for the rest of the horizon.
				res.event(replaceAt, slot, EventFailure, "parts-unavailable")
				break
			}
			res.Replacements++
			res.CostCents += cfg.HardwareCents + cfg.LaborCents
			res.event(replaceAt, slot, EventReplace, cfg.Policy.String())
			t = replaceAt
		}
	}
	sort.Slice(res.Diary, func(i, j int) bool {
		if res.Diary[i].At != res.Diary[j].At {
			return res.Diary[i].At < res.Diary[j].At
		}
		return res.Diary[i].Slot < res.Diary[j].Slot
	})
	return res
}

// nextBatchVisit returns when the rolling project next reaches the slot's
// zone strictly after t.
func nextBatchVisit(cfg Config, slot int, t time.Duration) time.Duration {
	if cfg.BatchZones <= 0 || cfg.BatchCycle <= 0 {
		panic("fleet: batch policy without zones/cycle")
	}
	zone := slot % cfg.BatchZones
	step := time.Duration(int64(cfg.BatchCycle) / int64(cfg.BatchZones))
	visit := time.Duration(zone) * step
	for visit <= t {
		visit += cfg.BatchCycle
	}
	return visit
}

func (r *Result) event(at time.Duration, slot int, kind EventKind, cause string) {
	r.Diary = append(r.Diary, Event{At: at, Slot: slot, Kind: kind, Cause: cause})
}

func (r *Result) addUp(slot int, from, to time.Duration) {
	if to > from {
		r.up[slot] = append(r.up[slot], interval{from, to})
	}
}

// AliveAt counts slots in service at time t.
func (r *Result) AliveAt(t time.Duration) int {
	n := 0
	for _, ivs := range r.up {
		for _, iv := range ivs {
			if iv.from > t {
				break
			}
			if t < iv.to {
				n++
				break
			}
		}
	}
	return n
}

// Availability returns the average fraction of slot-time in service over
// the horizon. Accumulation is in float64: the slot-time sum (slots ×
// decades of nanoseconds) overflows int64.
func (r *Result) Availability() float64 {
	total := 0.0
	for _, ivs := range r.up {
		for _, iv := range ivs {
			total += float64(iv.to - iv.from)
		}
	}
	return total / (float64(r.Config.Horizon) * float64(r.Config.Slots))
}

// SystemUptime returns the fraction of the horizon during which at least
// threshold (0..1] of slots were in service, sampled at the given number
// of probe points. This is the aggregate "system is alive" metric.
func (r *Result) SystemUptime(threshold float64, samples int) float64 {
	return r.SystemUptimeWindow(threshold, samples, 0, r.Config.Horizon)
}

// SystemUptimeWindow is SystemUptime restricted to [from, to): useful for
// judging steady state after a staggered deployment finishes ramping.
func (r *Result) SystemUptimeWindow(threshold float64, samples int, from, to time.Duration) float64 {
	if samples <= 0 {
		panic("fleet: non-positive sample count")
	}
	if to <= from {
		panic("fleet: empty uptime window")
	}
	need := int(threshold * float64(r.Config.Slots))
	if need < 1 {
		need = 1
	}
	span := to - from
	upSamples := 0
	for i := 0; i < samples; i++ {
		t := from + time.Duration(int64(span)/int64(samples)*int64(i))
		if r.AliveAt(t) >= need {
			upSamples++
		}
	}
	return float64(upSamples) / float64(samples)
}
