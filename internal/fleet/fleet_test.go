package fleet

import (
	"testing"
	"time"

	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

func fifteenYearDevices() reliability.Distribution {
	return reliability.WeibullFromMean(3, 15)
}

func TestPolicyNames(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyNone: "none", PolicyOnFailure: "on-failure",
		PolicyBatch: "batch", PolicyScheduled: "scheduled",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy fallback")
	}
	if EventKind(9).String() != "event(9)" {
		t.Fatal("unknown event fallback")
	}
}

func TestNoReplacementFleetDies(t *testing.T) {
	res := Run(Config{
		Slots:    500,
		Horizon:  sim.Years(50),
		Lifetime: fifteenYearDevices(),
		Policy:   PolicyNone,
	}, rng.New(1))
	if res.Replacements != 0 {
		t.Fatalf("PolicyNone performed %d replacements", res.Replacements)
	}
	// 15-year devices: essentially all dead by year 40.
	if alive := res.AliveAt(sim.Years(40)); alive > 5 {
		t.Fatalf("%d of 500 alive at year 40 without replacement", alive)
	}
	if alive := res.AliveAt(sim.Years(5)); alive < 450 {
		t.Fatalf("%d of 500 alive at year 5", alive)
	}
	// Availability over 50y for mean-15y devices ≈ 15/50.
	a := res.Availability()
	if a < 0.25 || a > 0.36 {
		t.Fatalf("availability = %v, want ~0.30", a)
	}
}

func TestOnFailureKeepsFleetAlive(t *testing.T) {
	res := Run(Config{
		Slots:         500,
		Horizon:       sim.Years(50),
		Lifetime:      fifteenYearDevices(),
		Policy:        PolicyOnFailure,
		RepairLag:     30 * sim.Day,
		HardwareCents: 10000,
		LaborCents:    2500,
	}, rng.New(2))
	if res.Replacements == 0 {
		t.Fatal("no replacements in 50 years")
	}
	a := res.Availability()
	if a < 0.98 {
		t.Fatalf("on-failure availability = %v, want >0.98", a)
	}
	if res.CostCents != int64(res.Replacements)*12500 {
		t.Fatalf("cost = %d for %d replacements", res.CostCents, res.Replacements)
	}
	// ~50/15 ≈ 3.3 lifetimes per slot: expect ~2-3 replacements/slot.
	perSlot := float64(res.Replacements) / 500
	if perSlot < 1.5 || perSlot > 4 {
		t.Fatalf("replacements per slot = %v", perSlot)
	}
}

func TestShipOfTheseusPipelining(t *testing.T) {
	// E9's core claim: staggered cohorts + replacement keep the *system*
	// over threshold for the full 50 years even though no device lasts.
	base := Config{
		Slots:     600,
		Horizon:   sim.Years(50),
		Lifetime:  fifteenYearDevices(),
		Policy:    PolicyOnFailure,
		RepairLag: 60 * sim.Day,
	}
	staggered := base
	staggered.StaggerCohorts = 15
	staggered.StaggerSpan = sim.Years(15)

	single := Run(base, rng.New(3))
	pipe := Run(staggered, rng.New(3))

	// Once the staggered deployment has fully ramped (year 15 on), the
	// system holds above threshold for the rest of the half-century.
	if u := pipe.SystemUptimeWindow(0.8, 400, sim.Years(15), sim.Years(50)); u < 0.95 {
		t.Fatalf("staggered steady-state uptime = %v", u)
	}
	burst := func(r *Result) int {
		max := 0
		for y := 0; y < 50; y++ {
			n := 0
			for _, e := range r.Diary {
				if e.Kind == EventReplace && e.At >= sim.Years(float64(y)) && e.At < sim.Years(float64(y+1)) {
					n++
				}
			}
			if n > max {
				max = n
			}
		}
		return max
	}
	if burst(pipe) >= burst(single) {
		t.Fatalf("staggering should smooth replacement bursts: %d vs %d", burst(pipe), burst(single))
	}
}

func TestBatchPolicyWaitsForProject(t *testing.T) {
	res := Run(Config{
		Slots:      100,
		Horizon:    sim.Years(50),
		Lifetime:   fifteenYearDevices(),
		Policy:     PolicyBatch,
		BatchZones: 10,
		BatchCycle: sim.Years(10),
	}, rng.New(4))
	// Batch replacement leaves slots dark until the project comes by:
	// availability must sit between no-replacement and on-failure.
	a := res.Availability()
	if a < 0.5 || a > 0.95 {
		t.Fatalf("batch availability = %v", a)
	}
	// Every replacement lands on a project visit: (zone*step + k*cycle).
	step := sim.Years(1)
	for _, e := range res.Diary {
		if e.Kind != EventReplace {
			continue
		}
		zone := e.Slot % 10
		offset := e.At - time.Duration(zone)*step
		if offset%sim.Years(10) != 0 {
			t.Fatalf("replacement at %v (slot %d) not on a project visit", e.At, e.Slot)
		}
	}
}

func TestScheduledPolicyReplacesProactively(t *testing.T) {
	res := Run(Config{
		Slots:          200,
		Horizon:        sim.Years(20),
		Lifetime:       reliability.WeibullFromMean(3, 15),
		Policy:         PolicyScheduled,
		ScheduledEvery: sim.Years(5),
	}, rng.New(5))
	// 20y / 5y cycle: ~3 refreshes per slot (the final one at t=20 is
	// outside the horizon), minus early failures waiting for refresh.
	perSlot := float64(res.Replacements) / 200
	if perSlot < 2.5 || perSlot > 3.5 {
		t.Fatalf("scheduled replacements per slot = %v, want ~3", perSlot)
	}
	// Proactive refresh beats on-failure availability at 5y cycles for
	// 15y-mean devices (few failures mid-cycle).
	if a := res.Availability(); a < 0.95 {
		t.Fatalf("scheduled availability = %v", a)
	}
}

func TestDiaryOrderedAndComplete(t *testing.T) {
	res := Run(Config{
		Slots:    50,
		Horizon:  sim.Years(30),
		Lifetime: fifteenYearDevices(),
		Policy:   PolicyOnFailure,
	}, rng.New(6))
	deploys, failures, replaces := 0, 0, 0
	var last time.Duration
	for _, e := range res.Diary {
		if e.At < last {
			t.Fatal("diary out of order")
		}
		last = e.At
		switch e.Kind {
		case EventDeploy:
			deploys++
		case EventFailure:
			failures++
		case EventReplace:
			replaces++
		}
	}
	if deploys != 50 {
		t.Fatalf("diary deploys = %d", deploys)
	}
	if failures != res.Failures || replaces != res.Replacements {
		t.Fatalf("diary disagrees with counters: %d/%d vs %d/%d",
			failures, replaces, res.Failures, res.Replacements)
	}
}

func TestSystemUptimeThresholds(t *testing.T) {
	res := Run(Config{
		Slots:    300,
		Horizon:  sim.Years(50),
		Lifetime: fifteenYearDevices(),
		Policy:   PolicyNone,
	}, rng.New(7))
	// Without replacement, high-threshold uptime is short and must be
	// monotone in threshold.
	u90 := res.SystemUptime(0.9, 400)
	u50 := res.SystemUptime(0.5, 400)
	u10 := res.SystemUptime(0.1, 400)
	if !(u90 <= u50 && u50 <= u10) {
		t.Fatalf("uptime not monotone: %v %v %v", u90, u50, u10)
	}
	if u90 > 0.4 || u10 < 0.4 {
		t.Fatalf("uptime shape off: u90=%v u10=%v", u90, u10)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Slots: 100, Horizon: sim.Years(50),
		Lifetime: fifteenYearDevices(), Policy: PolicyOnFailure,
	}
	a := Run(cfg, rng.New(9))
	b := Run(cfg, rng.New(9))
	if a.Failures != b.Failures || a.Replacements != b.Replacements {
		t.Fatal("same seed diverged")
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-slots":   {Horizon: sim.Years(1), Lifetime: fifteenYearDevices()},
		"no-horizon": {Slots: 1, Lifetime: fifteenYearDevices()},
		"no-dist":    {Slots: 1, Horizon: sim.Years(1)},
		"batch-no-zones": {Slots: 1, Horizon: sim.Years(50),
			Lifetime: fifteenYearDevices(), Policy: PolicyBatch},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			_ = Run(cfg, rng.New(1))
		}()
	}
}

func BenchmarkFleetFiftyYears(b *testing.B) {
	cfg := Config{
		Slots: 1000, Horizon: sim.Years(50),
		Lifetime: fifteenYearDevices(), Policy: PolicyOnFailure,
		RepairLag: 30 * sim.Day,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Run(cfg, rng.New(uint64(i)))
	}
}

func TestForcedRetirementTruncatesLives(t *testing.T) {
	// §1's obsolescence taxonomy: a vendor EOL at 5 years makes even
	// healthy 15-year devices churn every 5 years.
	res := Run(Config{
		Slots:                 200,
		Horizon:               sim.Years(30),
		Lifetime:              fifteenYearDevices(),
		Policy:                PolicyOnFailure,
		ForcedRetirementYears: 5,
	}, rng.New(11))
	// ~30/5 = 6 lifetimes per slot (most truncated): ~5-6 replacements.
	perSlot := float64(res.Replacements) / 200
	if perSlot < 4.5 || perSlot > 6.5 {
		t.Fatalf("replacements per slot = %v, want ~5-6", perSlot)
	}
	// The diary must attribute the truncations.
	forced, wear := 0, 0
	for _, e := range res.Diary {
		if e.Kind != EventFailure {
			continue
		}
		switch e.Cause {
		case "forced-retirement":
			forced++
		case "wear-out":
			wear++
		default:
			t.Fatalf("unknown cause %q", e.Cause)
		}
	}
	if forced < wear*3 {
		t.Fatalf("forced=%d wear=%d: 5y EOL on 15y-mean devices should dominate", forced, wear)
	}
}

func TestForcedRetirementCostMultiplier(t *testing.T) {
	base := Config{
		Slots:         300,
		Horizon:       sim.Years(50),
		Lifetime:      fifteenYearDevices(),
		Policy:        PolicyOnFailure,
		HardwareCents: 10000,
		LaborCents:    2500,
	}
	natural := Run(base, rng.New(12))
	eol := base
	eol.ForcedRetirementYears = 5
	forced := Run(eol, rng.New(12))
	// Cutting device life from ~15y to 5y roughly triples the spend —
	// the cost of obsolescence the paper wants designed away.
	ratio := float64(forced.CostCents) / float64(natural.CostCents)
	if ratio < 2.2 || ratio > 4 {
		t.Fatalf("forced/natural cost ratio = %v, want ~3", ratio)
	}
}

func TestPartsAvailabilityCutoff(t *testing.T) {
	// §1 cites unplanned obsolescence: compatible hardware stops being
	// purchasable long before the deployment's horizon.
	base := Config{
		Slots:    300,
		Horizon:  sim.Years(50),
		Lifetime: fifteenYearDevices(),
		Policy:   PolicyOnFailure,
	}
	forever := Run(base, rng.New(13))
	cut := base
	cut.PartsAvailableYears = 20
	limited := Run(cut, rng.New(13))

	if limited.Replacements >= forever.Replacements {
		t.Fatalf("parts cutoff did not reduce replacements: %d vs %d",
			limited.Replacements, forever.Replacements)
	}
	if limited.Availability() >= forever.Availability() {
		t.Fatalf("availability: %v vs %v", limited.Availability(), forever.Availability())
	}
	// No replacement events after the cutoff; darkness attributed.
	darkened := 0
	for _, e := range limited.Diary {
		if e.Kind == EventReplace && e.At >= sim.Years(20) {
			t.Fatalf("replacement at %v after parts cutoff", e.At)
		}
		if e.Cause == "parts-unavailable" {
			darkened++
		}
	}
	if darkened == 0 {
		t.Fatal("no slots recorded going dark for parts")
	}
	// With 15-year devices and a 20-year cutoff, the fleet is nearly
	// extinct by year 45.
	if alive := limited.AliveAt(sim.Years(45)); alive > 15 {
		t.Fatalf("%d of 300 alive at 45y despite no parts since year 20", alive)
	}
}
