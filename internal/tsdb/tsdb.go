package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/lpwan"
)

// Defaults for Options zero values.
const (
	DefaultShards       = 8
	DefaultSegmentBytes = 4 << 20
	DefaultSyncEvery    = time.Second
)

// Options configures a DB.
type Options struct {
	// Dir is the storage directory; each shard keeps its WAL under
	// Dir/shard-NNN. Empty means memory-only: the same sharded engine
	// with no durability, for simulations and tests.
	Dir string
	// Shards is the partition count (default DefaultShards). More
	// shards means more ingest concurrency and more (smaller) WAL
	// segment files. Changing the count on an existing Dir is safe:
	// sharding is an in-memory routing decision, and boot replays
	// whatever shard directories exist on disk.
	Shards int
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync cadence under SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes rotates WAL segments past this size.
	SegmentBytes int64
	// Logf, when set, receives recovery and compaction diagnostics
	// (corrupt WAL records found, segments truncated).
	Logf func(string, ...any)
}

// Retention is the tsdb-level mirror of the endpoint's retention policy:
// full resolution inside the window, first-reading-per-bucket beyond it.
type Retention struct {
	FullResolutionWindow time.Duration
	KeepOnePer           time.Duration
}

// Stats describes the engine's current shape.
type Stats struct {
	Shards      int    `json:"shards"`
	Devices     int    `json:"devices"`
	Points      int    `json:"points"`
	Appended    uint64 `json:"appended"`
	Replayed    uint64 `json:"replayed"`
	Corruptions uint64 `json:"corruptions"`
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
}

// ReplayStats summarises one boot-time WAL replay.
type ReplayStats struct {
	Records     uint64 // records decoded from the WAL
	Kept        uint64 // records the caller's filter admitted
	Corruptions uint64 // torn/corrupt frames tolerated
}

// DB is the storage engine. All methods are safe for concurrent use.
type DB struct {
	opts   Options
	shards []*shard

	// orphanDirs are on-disk shard directories with index >= Shards,
	// left behind by a shard-count decrease. Their segments are replayed
	// (records re-route to the new shard map in memory) and the
	// directories are retired at the next checkpoint.
	orphanDirs []string

	appended          atomic.Uint64
	groupCommits      atomic.Uint64
	replayed          atomic.Uint64
	corruptions       atomic.Uint64
	appendErrors      atomic.Uint64
	compactionRuns    atomic.Uint64
	compactionDropped atomic.Uint64

	stopSync chan struct{}
	syncDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Open creates the engine. With a Dir it opens (creating as needed) one
// WAL per shard; boot-time state reconstruction is a separate, explicit
// Replay call so the caller can layer it over a loaded checkpoint.
func Open(opts Options) (*DB, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	db := &DB{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range db.shards {
		var w *wal
		if opts.Dir != "" {
			var err error
			w, err = openWAL(filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i)), opts.SegmentBytes, opts.Sync)
			if err != nil {
				return nil, err
			}
		}
		db.shards[i] = newShard(w)
	}
	if opts.Dir != "" {
		entries, err := os.ReadDir(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("tsdb: dir: %w", err)
		}
		for _, e := range entries {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "shard-%03d", &n); err == nil && n >= opts.Shards {
				db.orphanDirs = append(db.orphanDirs, filepath.Join(opts.Dir, e.Name()))
			}
		}
		sort.Strings(db.orphanDirs)
	}
	if opts.Dir != "" && opts.Sync == SyncInterval {
		db.stopSync = make(chan struct{})
		db.syncDone = make(chan struct{})
		go db.syncLoop()
	}
	return db, nil
}

func (db *DB) syncLoop() {
	defer close(db.syncDone)
	tick := time.NewTicker(db.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-db.stopSync:
			return
		case <-tick.C:
			for _, sh := range db.shards {
				sh.mu.Lock()
				if sh.wal != nil {
					//lint:lockedio the interval fsync must serialize with appends (dirty flag + active handle); one shard pauses, the others keep ingesting
					if err := sh.wal.sync(); err != nil && db.opts.Logf != nil {
						db.opts.Logf("tsdb: interval fsync: %v", err)
					}
				}
				sh.mu.Unlock()
			}
		}
	}
}

// Shards returns the partition count.
func (db *DB) Shards() int { return len(db.shards) }

// Durable reports whether the engine has a WAL.
func (db *DB) Durable() bool { return db.opts.Dir != "" }

// Mix64 is the splitmix64 finalizer: the avalanche function behind
// ShardIndex. Exported on its own so higher layers that partition the
// same device space — the cluster's consistent-hash ring — hash with
// bit-identical spread, keeping "which shard" and "which node" decisions
// derived from one function.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardIndex maps a device to its partition: a splitmix64 finalizer over
// the EUI-64, so the sequential device numbering a manufacturer burns in
// still spreads evenly. Exported so callers sharding their own
// per-device state (the endpoint's replay guards) stay aligned.
func ShardIndex(dev lpwan.EUI64, shards int) int {
	return int(Mix64(dev.Uint64()) % uint64(shards))
}

func (db *DB) shardFor(dev lpwan.EUI64) *shard {
	return db.shards[ShardIndex(dev, len(db.shards))]
}

// Append durably stores one point: WAL (fsynced per policy) first, then
// the in-memory series. An error means the point is NOT stored and the
// caller must not acknowledge it.
//lint:hotpath budget=0 acknowledgement path: WAL encode and series insert reuse scratch buffers, growth is amortized (BENCH_tsdb.json pins AppendSerial at 1 amortized alloc/op)
func (db *DB) Append(p Point) error {
	if err := db.shardFor(p.Device).append(p, true); err != nil {
		db.appendErrors.Add(1)
		return err
	}
	db.appended.Add(1)
	return nil
}

// Load inserts a point without writing the WAL: for restoring state that
// is already durable elsewhere (a checkpoint file).
func (db *DB) Load(p Point) {
	db.shardFor(p.Device).load(p)
}

// Reset drops all in-memory state, leaving the WAL untouched.
func (db *DB) Reset() {
	for _, sh := range db.shards {
		sh.reset()
	}
}

// Replay streams every WAL record (in per-shard append order) through
// keep; admitted points are inserted into the in-memory series. The
// filter is where the caller deduplicates records that overlap the
// checkpoint it already loaded — a crash between checkpoint write and
// segment truncation leaves such an overlap by design. Corrupt frames
// end the damaged segment's replay at the last intact record, counted
// and (via Options.Logf) logged, never fatal.
func (db *DB) Replay(keep func(Point) bool) (ReplayStats, error) {
	var st ReplayStats
	for _, sh := range db.shards {
		if sh.wal == nil {
			continue
		}
		// Replay reads only pre-open segments, which are immutable, so
		// decoding needs no lock; only the memtable inserts do. Collect
		// first, then filter, so keep (which takes the caller's own
		// locks) never runs under a shard lock. Each admitted point is
		// routed through the CURRENT shard map, not the directory it was
		// read from: after a shard-count change the on-disk layout is
		// stale, and History/Range look the device up via ShardIndex.
		var pts []Point
		records, corruptions, err := sh.wal.replay(db.opts.Logf, func(p Point) { pts = append(pts, p) })
		st.Records += records
		st.Corruptions += corruptions
		if err != nil {
			return st, err
		}
		for _, p := range pts {
			if keep == nil || keep(p) {
				db.shardFor(p.Device).load(p)
				st.Kept++
			}
		}
	}
	// Orphaned shard directories (shard count decreased since the WAL
	// was written): replay their records too, routing each point to its
	// new home shard.
	for _, dir := range db.orphanDirs {
		segs, err := listSegments(dir)
		if err != nil {
			return st, err
		}
		var pts []Point
		records, corruptions, err := replaySegments(dir, segs, false, db.opts.Logf, func(p Point) { pts = append(pts, p) })
		st.Records += records
		st.Corruptions += corruptions
		if err != nil {
			return st, err
		}
		for _, p := range pts {
			if keep == nil || keep(p) {
				db.shardFor(p.Device).load(p)
				st.Kept++
			}
		}
	}
	db.replayed.Add(st.Records)
	db.corruptions.Add(st.Corruptions)
	return st, nil
}

// Checkpoint makes save's output the new recovery baseline and truncates
// the WAL behind it. Sequence per shard: rotate to a fresh segment (so
// every record before this moment is in a sealed segment), then run
// save — which must persist at least the engine's current state — and
// only after save succeeds, delete the sealed segments. Records appended
// while save runs land in the new segments and stay replayable; records
// appended between rotation and the state copy appear in both snapshot
// and WAL, which the caller's Replay filter deduplicates after a crash
// in that window.
func (db *DB) Checkpoint(save func() error) error {
	if !db.Durable() {
		return save()
	}
	marks := make([]uint64, len(db.shards))
	for i, sh := range db.shards {
		sh.mu.Lock()
		//lint:lockedio rotation must be atomic with the append stream: every record before the watermark must land in a sealed segment
		err := sh.wal.rotate()
		marks[i] = sh.wal.idx
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if err := save(); err != nil {
		return err
	}
	// Segment deletion runs outside the shard locks (a centurylint
	// lockedio finding): removeBelow only touches sealed, immutable
	// segment files — concurrent appends go to the newer active segment —
	// so holding the lock across the unlink syscalls would stall ingest
	// for no consistency gain.
	for i, sh := range db.shards {
		if err := sh.wal.removeBelow(marks[i]); err != nil {
			return err
		}
	}
	// Orphan directories are fully covered by the snapshot now.
	for _, dir := range db.orphanDirs {
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	db.orphanDirs = nil
	return nil
}

// Sync forces WAL appends to stable storage regardless of policy — the
// explicit flush for shutdown paths and tests.
func (db *DB) Sync() error {
	for _, sh := range db.shards {
		sh.mu.Lock()
		var err error
		if sh.wal != nil {
			sh.wal.dirty = true
			//lint:lockedio explicit flush for shutdown paths: must serialize with appends so nothing acknowledged stays page-cache-only
			err = sh.wal.sync()
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Devices returns every device with stored points, sorted by address.
func (db *DB) Devices() []lpwan.EUI64 {
	var out []lpwan.EUI64
	for _, sh := range db.shards {
		out = append(out, sh.devices()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint64() < out[j].Uint64() })
	return out
}

// History returns a copy of one device's points in arrival order.
func (db *DB) History(dev lpwan.EUI64) []Point {
	return db.shardFor(dev).history(dev)
}

// rangePool recycles range-query result buffers. Entries are *[]Point
// (pointer to avoid an allocation per Put); capacity is whatever the
// largest query that used the buffer needed.
var rangePool = sync.Pool{
	New: func() any {
		buf := make([]Point, 0, 512)
		return &buf
	},
}

// Range returns an iterator over one device's points with At in
// [from, to), in arrival order. The iterator holds a private copy, so it
// stays valid (and the shard stays unlocked) while the caller streams
// it out to a slow HTTP client. The copy's buffer is pooled: call Close
// when done to recycle it. Skipping Close is safe — the buffer is then
// simply garbage-collected instead of reused.
func (db *DB) Range(dev lpwan.EUI64, from, to time.Duration) *Iterator {
	pts, release := db.RangeSlice(dev, from, to)
	return &Iterator{pts: pts, i: -1, release: release}
}

// RangeSlice is the allocation-free form of Range: the returned slice
// borrows a pooled buffer, and release returns it to the pool. The
// slice must not be used after release (which is idempotent and safe to
// drop — unreleased buffers are garbage-collected).
func (db *DB) RangeSlice(dev lpwan.EUI64, from, to time.Duration) (pts []Point, release func()) {
	bufp := rangePool.Get().(*[]Point)
	*bufp = db.shardFor(dev).rangeInto(dev, from, to, (*bufp)[:0])
	return *bufp, func() {
		if bufp != nil {
			rangePool.Put(bufp)
			bufp = nil
		}
	}
}

// ForEach calls fn for every stored point, shard by shard (each shard's
// lock is held only for its own copy). Order within a device follows
// arrival; order across devices is unspecified.
func (db *DB) ForEach(fn func(Point)) {
	for _, sh := range db.shards {
		for _, pts := range sh.snapshot() {
			for _, p := range pts {
				fn(p)
			}
		}
	}
}

// TimesByDevice copies the arrival times of every stored series, one
// slice per device in that device's arrival order (not guaranteed sorted
// by At across restarts — see rangeCopy). Order across devices is
// unspecified. Each shard's lock is held only for its own copy. This
// feeds cross-device gap analysis, which merges the per-device runs
// rather than re-sorting the fleet's entire history.
func (db *DB) TimesByDevice() [][]time.Duration {
	var out [][]time.Duration
	for _, sh := range db.shards {
		out = append(out, sh.times()...)
	}
	return out
}

// SnapshotShard copies shard i's series map. Snapshot writers iterate
// shards with this so no two shards are locked at once and encoding
// happens lock-free.
func (db *DB) SnapshotShard(i int) map[lpwan.EUI64][]Point {
	return db.shards[i].snapshot()
}

// Compact applies the retention policy shard by shard, returning dropped
// points. Only one shard is paused at a time: the "background compaction
// without a global stall" half of the retention contract.
func (db *DB) Compact(now time.Duration, r Retention) (dropped int) {
	if r.KeepOnePer <= 0 {
		panic("tsdb: retention bucket must be positive")
	}
	for _, sh := range db.shards {
		dropped += sh.compact(now, r)
	}
	db.compactionRuns.Add(1)
	db.compactionDropped.Add(uint64(dropped))
	return dropped
}

// Stats returns a point-in-time summary, including on-disk WAL footprint.
func (db *DB) Stats() Stats {
	st := Stats{
		Shards:      len(db.shards),
		Appended:    db.appended.Load(),
		Replayed:    db.replayed.Load(),
		Corruptions: db.corruptions.Load(),
	}
	for _, sh := range db.shards {
		sh.mu.Lock()
		st.Devices += len(sh.points)
		for _, pts := range sh.points {
			st.Points += len(pts)
		}
		sh.mu.Unlock()
	}
	if db.opts.Dir != "" {
		for i := range db.shards {
			dir := filepath.Join(db.opts.Dir, fmt.Sprintf("shard-%03d", i))
			entries, err := os.ReadDir(dir)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if _, ok := parseSegName(e.Name()); !ok {
					continue
				}
				st.WALSegments++
				if info, err := e.Info(); err == nil {
					st.WALBytes += info.Size()
				}
			}
		}
	}
	return st
}

// Close stops background work and seals the WALs. The DB must not be
// used afterwards.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		if db.stopSync != nil {
			close(db.stopSync)
			<-db.syncDone
		}
		for _, sh := range db.shards {
			sh.mu.Lock()
			if sh.wal != nil {
				//lint:lockedio shutdown seal: the final fsync+close must exclude late appends; contention is over by now
				if err := sh.wal.close(); err != nil && db.closeErr == nil {
					db.closeErr = err
				}
			}
			sh.mu.Unlock()
		}
	})
	return db.closeErr
}
