package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

// writeWAL populates a single-shard WAL with n records and closes it,
// returning the path of the one segment file holding them.
func writeWAL(t *testing.T, dir string, n uint32) string {
	t.Helper()
	db, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(1); seq <= n; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-000")
	segs, err := listSegments(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, idx := range segs {
		p := filepath.Join(shardDir, segName(idx))
		if info, err := os.Stat(p); err == nil && info.Size() > 0 {
			paths = append(paths, p)
		}
	}
	if len(paths) != 1 {
		t.Fatalf("expected one non-empty segment, found %d", len(paths))
	}
	return paths[0]
}

func replayCount(t *testing.T, dir string) (ReplayStats, *DB) {
	t.Helper()
	db, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := db.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, db
}

// TestRecoveryTornFinalRecord is the crash the WAL exists for: the
// process died mid-append, leaving a half-written final record. Reopen
// must recover every record before the tear, count the corruption, and
// carry on — and must trim the torn tail so the next boot is clean.
func TestRecoveryTornFinalRecord(t *testing.T) {
	const n = 25
	dir := t.TempDir()
	seg := writeWAL(t, dir, n)

	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: drop the final record's last 10 bytes.
	if err := os.Truncate(seg, info.Size()-10); err != nil {
		t.Fatal(err)
	}

	var logged []string
	db, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncNever,
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Replay(nil)
	if err != nil {
		t.Fatalf("replay must tolerate a torn tail, got %v", err)
	}
	if st.Records != n-1 || st.Corruptions != 1 {
		t.Fatalf("replay stats = %+v, want %d records, 1 corruption", st, n-1)
	}
	if len(db.History(lpwan.EUIFromUint64(1))) != n-1 {
		t.Fatal("recovered history wrong length")
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "recovering") {
		t.Fatalf("corruption was not logged: %q", logged)
	}

	// The torn tail was trimmed: a second boot replays clean, no
	// corruption re-counted, and appends continue past the tear.
	if err := db.Append(pt(1, n+1, (n+1)*time.Minute)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	st2, re := replayCount(t, dir)
	if st2.Corruptions != 0 {
		t.Fatalf("second boot still sees corruption: %+v", st2)
	}
	if st2.Records != n {
		t.Fatalf("second boot replayed %d, want %d", st2.Records, n)
	}
	hist := re.History(lpwan.EUIFromUint64(1))
	if hist[len(hist)-1].Seq != n+1 {
		t.Fatalf("post-recovery append lost: %+v", hist[len(hist)-1])
	}
}

// TestRecoveryFlippedCRCByte covers silent corruption (a flipped bit on
// disk): replay recovers to the last intact record before the damage,
// counts it, and does not fail the boot.
func TestRecoveryFlippedCRCByte(t *testing.T) {
	const n = 25
	dir := t.TempDir()
	seg := writeWAL(t, dir, n)

	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 11's payload (records are fixed-size
	// frames here, so offsets are arithmetic).
	frame := int64(frameHeader + pointPayload)
	off := 10*frame + frameHeader + 3
	data[off] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, db := replayCount(t, dir)
	if st.Corruptions != 1 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if st.Records != 10 {
		t.Fatalf("recovered %d records, want the 10 before the damage", st.Records)
	}
	hist := db.History(lpwan.EUIFromUint64(1))
	if len(hist) != 10 || hist[9].Seq != 10 {
		t.Fatalf("recovered history = %d records", len(hist))
	}
}

// TestRecoveryGarbageLengthPrefix: a corrupted length field must neither
// panic nor drive a giant allocation; recovery stops at the last intact
// record.
func TestRecoveryGarbageLengthPrefix(t *testing.T) {
	const n = 5
	dir := t.TempDir()
	seg := writeWAL(t, dir, n)

	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + pointPayload
	// Overwrite record 4's length with 0xFFFFFFFF.
	copy(data[3*frame:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, _ := replayCount(t, dir)
	if st.Records != 3 || st.Corruptions != 1 {
		t.Fatalf("replay stats = %+v", st)
	}
}

// TestTornWriteTruncatedOnAppendError: a failed append leaves a torn
// frame mid-segment; the repair must truncate it away so every record
// acknowledged AFTER the transient error still replays (replay stops a
// segment at its first corrupt frame).
func TestTornWriteTruncatedOnAppendError(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever})
	for seq := uint32(1); seq <= 5; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the partial frame a failed write leaves behind, then run
	// the repair the append error path invokes.
	w := db.shards[0].wal
	good := w.size
	n, err := w.f.Write([]byte{0x01, 0x02, 0x03})
	if err != nil {
		t.Fatal(err)
	}
	w.size += int64(n)
	w.dropTorn(good)
	for seq := uint32(6); seq <= 10; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	st, re := replayCount(t, dir)
	if st.Records != 10 || st.Corruptions != 0 {
		t.Fatalf("replay stats = %+v, want 10 records, 0 corruptions", st)
	}
	hist := re.History(lpwan.EUIFromUint64(1))
	if len(hist) != 10 || hist[9].Seq != 10 {
		t.Fatalf("post-error appends lost: %d records", len(hist))
	}
}

// TestTornWriteSealedWhenTruncateFails: when even the repairing truncate
// fails (dead file handle), the damaged segment must be sealed and a
// fresh one started, so the tear costs only the unacknowledged frame —
// acknowledged records on both sides of it replay.
func TestTornWriteSealedWhenTruncateFails(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever})
	for seq := uint32(1); seq <= 5; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// A torn frame on disk, then a dead handle: the next append's write
	// fails, and so does the truncate repair, forcing seal-and-rotate.
	w := db.shards[0].wal
	if _, err := w.f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	w.size += 2
	w.f.Close()
	if err := db.Append(pt(1, 6, 6*time.Minute)); err == nil {
		t.Fatal("append on a dead WAL handle must fail")
	}
	// Recovery rotated to a fresh segment: appends are accepted again
	// and land past the sealed tear.
	for seq := uint32(7); seq <= 9; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	st, re := replayCount(t, dir)
	if st.Records != 8 || st.Corruptions != 1 {
		t.Fatalf("replay stats = %+v, want 8 records, 1 corruption", st)
	}
	hist := re.History(lpwan.EUIFromUint64(1))
	if len(hist) != 8 || hist[4].Seq != 5 || hist[5].Seq != 7 {
		t.Fatalf("unexpected survivors: %+v", hist)
	}
}

// TestRecoveryCorruptionInEarlierSegment: damage in a sealed, non-final
// segment loses only that segment's tail; later segments still replay.
func TestRecoveryCorruptionInEarlierSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: ~3 records each.
	db, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncNever, SegmentBytes: 3 * (frameHeader + pointPayload)})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for seq := uint32(1); seq <= n; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	shardDir := filepath.Join(dir, "shard-000")
	segs, err := listSegments(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt the SECOND record of the first non-empty segment.
	first := filepath.Join(shardDir, segName(segs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + pointPayload
	data[frame+frameHeader+1] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, re := replayCount(t, dir)
	if st.Corruptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Lost: records 2,3 (rest of damaged segment). Kept: record 1 and
	// every record in the later segments.
	if st.Records != n-2 {
		t.Fatalf("replayed %d, want %d", st.Records, n-2)
	}
	hist := re.History(lpwan.EUIFromUint64(1))
	if hist[0].Seq != 1 || hist[1].Seq != 4 {
		t.Fatalf("unexpected survivors: %+v", hist[:2])
	}
}
