// Package tsdb is the endpoint's storage engine: N hash-sharded
// per-device partitions, each backed by an append-only, CRC-framed
// write-ahead log with segment rotation and a configurable fsync policy.
//
// The design answers the paper's §4.4-4.5 demand directly: a data
// endpoint that must survive 50 years of host migrations cannot afford
// either a single global mutex (ingest throughput stops scaling the day
// the fleet grows) or snapshot-only durability (a data-loss window equal
// to the snapshot interval). Here concurrent ingest fans out across
// shards keyed by device EUI-64, every accepted reading is framed into
// the shard's WAL before it is acknowledged, and boot replays the WAL
// over the last checkpoint, tolerating a torn final record from the
// crash that necessitated the replay.
//
// The engine stores points; policy (authentication, replay rejection,
// quarantine, the weekly-uptime ledger) stays in internal/cloud. The
// versioned-JSON snapshot remains the portable "readable in 2060"
// artifact; the WAL is deliberately not archival — it is the
// crash-safety path between checkpoints, truncated at each one.
package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"centuryscale/internal/lpwan"
)

// Point is one stored reading. It mirrors the fields of an accepted
// telemetry packet plus its arrival time, but deliberately does not
// import internal/telemetry: the storage layer outlives any particular
// wire format.
type Point struct {
	Device lpwan.EUI64
	At     time.Duration
	Seq    uint32
	Sensor uint8
	Value  float32
	Uptime uint32
}

// WAL framing: every record is
//
//	0:4  payload length  (big-endian uint32)
//	4:8  CRC-32C of the payload (Castagnoli)
//	8:   payload
//
// and a v1 point payload is
//
//	0     record type (recordPoint)
//	1:9   device EUI-64
//	9:17  arrival time, int64 nanoseconds
//	17:21 sequence number
//	21    sensor type
//	22:26 value (IEEE-754 float32 bits)
//	26:30 device uptime, seconds
//
// The length field is bounded by MaxFrame so that a corrupted or
// adversarial length prefix can never drive a huge allocation: the
// decoder rejects the frame before allocating.
const (
	frameHeader = 8
	// MaxFrame caps a record payload. Far above pointPayload to leave
	// room for future record types, far below anything dangerous.
	MaxFrame = 4096

	recordPoint  = 0x01
	pointPayload = 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the frame decoder. A torn or corrupt frame during
// replay is recovery information, not a fatal condition.
var (
	ErrTornFrame = errors.New("tsdb: torn frame (unexpected end of segment)")
	ErrFrameSize = errors.New("tsdb: frame length out of bounds")
	ErrFrameCRC  = errors.New("tsdb: frame CRC mismatch")
	ErrBadRecord = errors.New("tsdb: undecodable record payload")
)

// appendPointFrame appends a complete frame for p to dst.
func appendPointFrame(dst []byte, p Point) []byte {
	var payload [pointPayload]byte
	payload[0] = recordPoint
	copy(payload[1:9], p.Device[:])
	binary.BigEndian.PutUint64(payload[9:17], uint64(p.At))
	binary.BigEndian.PutUint32(payload[17:21], p.Seq)
	payload[21] = p.Sensor
	binary.BigEndian.PutUint32(payload[22:26], math.Float32bits(p.Value))
	binary.BigEndian.PutUint32(payload[26:30], p.Uptime)

	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], pointPayload)
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload[:], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:]...)
}

// decodePoint decodes a v1 point payload.
func decodePoint(payload []byte) (Point, error) {
	var p Point
	if len(payload) != pointPayload || payload[0] != recordPoint {
		return p, fmt.Errorf("%w: %d bytes, type %#x", ErrBadRecord, len(payload), leadByte(payload))
	}
	copy(p.Device[:], payload[1:9])
	p.At = time.Duration(binary.BigEndian.Uint64(payload[9:17]))
	p.Seq = binary.BigEndian.Uint32(payload[17:21])
	p.Sensor = payload[21]
	p.Value = math.Float32frombits(binary.BigEndian.Uint32(payload[22:26]))
	p.Uptime = binary.BigEndian.Uint32(payload[26:30])
	return p, nil
}

func leadByte(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// readFrame reads one frame from r. It returns io.EOF only on a clean
// record boundary; a partial header or short payload is ErrTornFrame,
// so replay can distinguish "end of log" from "crashed mid-append".
// The payload buffer is allocated only after the length passes the
// MaxFrame bound.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: %d", ErrFrameSize, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, ErrFrameCRC
	}
	return payload, nil
}
