package tsdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

func pt(dev uint64, seq uint32, at time.Duration) Point {
	return Point{
		Device: lpwan.EUIFromUint64(dev),
		At:     at,
		Seq:    seq,
		Sensor: 2,
		Value:  float32(seq) * 1.5,
		Uptime: seq * 60,
	}
}

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestMemoryAppendHistoryDevices(t *testing.T) {
	db := mustOpen(t, Options{Shards: 4})
	for dev := uint64(1); dev <= 5; dev++ {
		for seq := uint32(1); seq <= 3; seq++ {
			if err := db.Append(pt(dev, seq, time.Duration(seq)*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	devs := db.Devices()
	if len(devs) != 5 {
		t.Fatalf("devices = %d", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		if devs[i-1].Uint64() >= devs[i].Uint64() {
			t.Fatalf("devices not sorted: %v", devs)
		}
	}
	hist := db.History(lpwan.EUIFromUint64(3))
	if len(hist) != 3 {
		t.Fatalf("history = %d", len(hist))
	}
	for i, p := range hist {
		if p.Seq != uint32(i+1) {
			t.Fatalf("history out of order: %+v", hist)
		}
	}
	if st := db.Stats(); st.Points != 15 || st.Devices != 5 || st.Appended != 15 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeIterator(t *testing.T) {
	db := mustOpen(t, Options{Shards: 2})
	dev := uint64(7)
	for seq := uint32(1); seq <= 10; seq++ {
		if err := db.Append(pt(dev, seq, time.Duration(seq)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	it := db.Range(lpwan.EUIFromUint64(dev), 3*time.Hour, 7*time.Hour)
	if it.Remaining() != 4 {
		t.Fatalf("remaining = %d", it.Remaining())
	}
	want := uint32(3)
	for it.Next() {
		if got := it.Point().Seq; got != want {
			t.Fatalf("iterator seq = %d, want %d", got, want)
		}
		want++
	}
	if want != 7 {
		t.Fatalf("iterator ended at seq %d", want)
	}
	// The iterator is a snapshot: appends after creation are invisible.
	it = db.Range(lpwan.EUIFromUint64(dev), 0, time.Duration(1<<62))
	if err := db.Append(pt(dev, 11, 11*time.Hour)); err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("iterator saw %d points", n)
	}
}

func TestShardIndexSpreads(t *testing.T) {
	const shards = 16
	hit := make([]int, shards)
	// Sequential EUI-64s — exactly the pathological input for a naive
	// modulo shard map.
	for dev := uint64(1); dev <= 1000; dev++ {
		hit[ShardIndex(lpwan.EUIFromUint64(dev), shards)]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d never hit: %v", i, hit)
		}
		if n > 1000/shards*3 {
			t.Fatalf("shard %d overloaded (%d of 1000): %v", i, n, hit)
		}
	}
	// Same device always lands on the same shard.
	for dev := uint64(1); dev <= 10; dev++ {
		a := ShardIndex(lpwan.EUIFromUint64(dev), shards)
		b := ShardIndex(lpwan.EUIFromUint64(dev), shards)
		if a != b {
			t.Fatal("shard index not deterministic")
		}
	}
}

func TestWALPersistAndReplay(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 4, Sync: SyncNever})
	const devs, seqs = 6, 20
	for dev := uint64(1); dev <= devs; dev++ {
		for seq := uint32(1); seq <= seqs; seq++ {
			if err := db.Append(pt(dev, seq, time.Duration(seq)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 4, Sync: SyncNever})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != devs*seqs || st.Kept != devs*seqs || st.Corruptions != 0 {
		t.Fatalf("replay stats = %+v", st)
	}
	for dev := uint64(1); dev <= devs; dev++ {
		hist := re.History(lpwan.EUIFromUint64(dev))
		if len(hist) != seqs {
			t.Fatalf("device %d: %d points after replay", dev, len(hist))
		}
		for i, p := range hist {
			if want := pt(dev, uint32(i+1), time.Duration(i+1)*time.Minute); p != want {
				t.Fatalf("replayed point %+v, want %+v", p, want)
			}
		}
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	db := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever, SegmentBytes: 128})
	const n = 50
	for seq := uint32(1); seq <= n; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.WALSegments < 5 {
		t.Fatalf("expected many segments, got %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever, SegmentBytes: 128})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n {
		t.Fatalf("replayed %d of %d across segments", st.Records, n)
	}
}

func TestReplayFilterSkips(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever})
	for seq := uint32(1); seq <= 10; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq))); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	re := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever})
	st, err := re.Replay(func(p Point) bool { return p.Seq > 5 })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 || st.Kept != 5 {
		t.Fatalf("replay stats = %+v", st)
	}
	if got := len(re.History(lpwan.EUIFromUint64(1))); got != 5 {
		t.Fatalf("kept %d points", got)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever, SegmentBytes: 128})
	for seq := uint32(1); seq <= 40; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq))); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(pt(2, seq, time.Duration(seq))); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats().WALSegments
	saved := false
	if err := db.Checkpoint(func() error { saved = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !saved {
		t.Fatal("checkpoint never called save")
	}
	after := db.Stats().WALSegments
	if after >= before {
		t.Fatalf("checkpoint did not truncate: %d -> %d segments", before, after)
	}
	// Per shard only the fresh active segment remains.
	if after != db.Shards() {
		t.Fatalf("want %d active segments, got %d", db.Shards(), after)
	}

	// Records appended after the checkpoint replay; records before it
	// (covered by the "snapshot") are gone from the WAL.
	if err := db.Append(pt(1, 41, 41)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	re := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.Kept != 1 {
		t.Fatalf("post-checkpoint replay = %+v", st)
	}
}

func TestCheckpointSaveFailureKeepsSegments(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever})
	for seq := uint32(1); seq <= 10; seq++ {
		if err := db.Append(pt(1, seq, time.Duration(seq))); err != nil {
			t.Fatal(err)
		}
	}
	wantErr := os.ErrPermission
	if err := db.Checkpoint(func() error { return wantErr }); err != wantErr {
		t.Fatalf("checkpoint error = %v", err)
	}
	db.Close()
	// Nothing was truncated: a failed snapshot must not cost WAL data.
	re := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncNever})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 {
		t.Fatalf("replayed %d after failed checkpoint", st.Records)
	}
}

func TestCompactPerShard(t *testing.T) {
	db := mustOpen(t, Options{Shards: 4})
	dev := uint64(9)
	// 48 hourly points; retention: full resolution for the last 24h,
	// one per 6h bucket before that.
	for i := 0; i < 48; i++ {
		if err := db.Append(pt(dev, uint32(i+1), time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	now := 48 * time.Hour
	dropped := db.Compact(now, Retention{FullResolutionWindow: 24 * time.Hour, KeepOnePer: 6 * time.Hour})
	// Old points: hours 0..23 = 4 buckets of 6 -> keep 4, drop 20.
	if dropped != 20 {
		t.Fatalf("dropped = %d", dropped)
	}
	hist := db.History(lpwan.EUIFromUint64(dev))
	if len(hist) != 28 {
		t.Fatalf("kept %d points", len(hist))
	}
	// Survivors are the first of each old bucket, then the full window.
	if hist[0].At != 0 || hist[1].At != 6*time.Hour || hist[4].At != 24*time.Hour {
		t.Fatalf("unexpected survivors: %v %v %v", hist[0].At, hist[1].At, hist[4].At)
	}
}

func TestResetAndLoadBypassWAL(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever})
	db.Load(pt(1, 1, time.Minute))
	if got := len(db.History(lpwan.EUIFromUint64(1))); got != 1 {
		t.Fatalf("loaded %d", got)
	}
	db.Reset()
	if got := len(db.History(lpwan.EUIFromUint64(1))); got != 0 {
		t.Fatalf("reset left %d", got)
	}
	db.Close()
	// Load wrote nothing durable.
	re := mustOpen(t, Options{Dir: dir, Shards: 2, Sync: SyncNever})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 {
		t.Fatalf("Load leaked %d records into the WAL", st.Records)
	}
}

func TestShardCountChangeAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 8, Sync: SyncNever})
	for dev := uint64(1); dev <= 20; dev++ {
		if err := db.Append(pt(dev, 1, time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	// Re-shard 8 -> 3: replay must find every reading regardless of
	// which on-disk shard directory it lives in.
	re := mustOpen(t, Options{Dir: dir, Shards: 3, Sync: SyncNever})
	st, err := re.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 20 {
		t.Fatalf("kept %d of 20 after re-sharding", st.Kept)
	}
	if got := len(re.Devices()); got != 20 {
		t.Fatalf("devices = %d", got)
	}
	// Kept and Devices are insensitive to which shard a point landed in;
	// History routes through the current shard map and is not — every
	// replayed point must be findable where ShardIndex says it lives.
	for dev := uint64(1); dev <= 20; dev++ {
		if h := re.History(lpwan.EUIFromUint64(dev)); len(h) != 1 || h[0].Seq != 1 {
			t.Fatalf("device %d history = %+v after 8->3 re-shard", dev, h)
		}
	}
	re.Close()
	// And back up, 3 -> 8: an increase leaves no orphan directories, so
	// it depends entirely on replay re-hashing records out of the
	// surviving shard directories into their new homes.
	up := mustOpen(t, Options{Dir: dir, Shards: 8, Sync: SyncNever})
	if _, err := up.Replay(nil); err != nil {
		t.Fatal(err)
	}
	for dev := uint64(1); dev <= 20; dev++ {
		if h := up.History(lpwan.EUIFromUint64(dev)); len(h) != 1 || h[0].Seq != 1 {
			t.Fatalf("device %d history = %+v after 3->8 re-shard", dev, h)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "Interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("accepted bogus policy")
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, Options{Dir: dir, Shards: 1, Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err := db.Append(pt(1, 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the ticker fsync
	// The bytes are visible on disk even before Close.
	seg := filepath.Join(dir, "shard-000")
	entries, err := os.ReadDir(seg)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	if total == 0 {
		t.Fatal("no WAL bytes on disk")
	}
}
