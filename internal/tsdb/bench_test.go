package tsdb

import (
	"sync/atomic"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

// benchAppend drives concurrent appends into a WAL-backed engine with
// the given shard count. SyncNever keeps fsync out of the measurement:
// the benchmark isolates the engine's own locking, so the shards=1 vs
// shards=16 comparison shows the serialisation a single shard imposes
// on a multi-core ingest path. Each goroutine writes its own device, as
// a real fleet does, so the sharding hash spreads the contention.
func benchAppend(b *testing.B, shards int) {
	db, err := Open(Options{Dir: b.TempDir(), Shards: shards, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	var nextDev atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dev := lpwan.EUIFromUint64(nextDev.Add(1))
		var seq uint32
		for pb.Next() {
			seq++
			if err := db.Append(Point{
				Device: dev,
				At:     time.Duration(seq) * time.Second,
				Seq:    seq,
				Sensor: 1,
				Value:  float32(seq),
				Uptime: seq,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTSDBIngestParallel is the scaling acceptance benchmark: on a
// multi-core host, 16 shards must sustain at least twice the append
// throughput of 1 shard (on a single-core container the curve is flat —
// there is no parallelism for sharding to unlock; see BENCH_tsdb.json
// for the recorded baseline and its host shape).
func BenchmarkTSDBIngestParallel(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchAppend(b, 1) })
	b.Run("shards=4", func(b *testing.B) { benchAppend(b, 4) })
	b.Run("shards=16", func(b *testing.B) { benchAppend(b, 16) })
}

// BenchmarkTSDBAppendSerial is the single-writer floor: one goroutine,
// one device, no contention — the per-append cost of framing + CRC +
// the buffered segment write.
func BenchmarkTSDBAppendSerial(b *testing.B) {
	db, err := Open(Options{Dir: b.TempDir(), Shards: 1, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	dev := lpwan.EUIFromUint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint32(i + 1)
		if err := db.Append(Point{Device: dev, At: time.Duration(i), Seq: seq, Value: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSDBRecovery measures boot replay: open an engine over a WAL
// holding 50k records and stream them all back. SetBytes reports replay
// bandwidth in WAL bytes/sec — the number that decides how long the
// endpoint is dark after a crash.
func BenchmarkTSDBRecovery(b *testing.B) {
	const records = 50_000
	const devices = 64
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir, Shards: 4, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := db.Append(Point{
			Device: lpwan.EUIFromUint64(uint64(i%devices + 1)),
			At:     time.Duration(i) * time.Second,
			Seq:    uint32(i/devices + 1),
			Value:  float32(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(int64(records) * (frameHeader + pointPayload))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(Options{Dir: dir, Shards: 4, Sync: SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		st, err := re.Replay(nil)
		if err != nil {
			b.Fatal(err)
		}
		if st.Records != records || st.Corruptions != 0 {
			b.Fatalf("replay stats %+v", st)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSDBRangeQuery measures the status page's read path: a range
// query over the middle third of a 10k-point device history.
func BenchmarkTSDBRangeQuery(b *testing.B) {
	db, err := Open(Options{Shards: 4}) // memory-only: reads never touch the WAL
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	dev := lpwan.EUIFromUint64(7)
	const points = 10_000
	for i := 0; i < points; i++ {
		db.Load(Point{Device: dev, At: time.Duration(i) * time.Minute, Seq: uint32(i + 1), Value: float32(i)})
	}
	from := time.Duration(points/3) * time.Minute
	to := time.Duration(2*points/3) * time.Minute
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.Range(dev, from, to)
		n := 0
		for it.Next() {
			n++
		}
		it.Close() // returns the backing buffer to the range pool
		if n != points/3 {
			b.Fatalf("range returned %d points", n)
		}
	}
}

// BenchmarkTSDBRangeSlice is the same query through the pooled-slice
// fast path the query engine uses — no Iterator wrapper at all.
func BenchmarkTSDBRangeSlice(b *testing.B) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	dev := lpwan.EUIFromUint64(7)
	const points = 10_000
	for i := 0; i < points; i++ {
		db.Load(Point{Device: dev, At: time.Duration(i) * time.Minute, Seq: uint32(i + 1), Value: float32(i)})
	}
	from := time.Duration(points/3) * time.Minute
	to := time.Duration(2*points/3) * time.Minute
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, release := db.RangeSlice(dev, from, to)
		if len(pts) != points/3 {
			b.Fatalf("range returned %d points", len(pts))
		}
		release()
	}
}
