package tsdb

// Iterator walks a range-query result in arrival order:
//
//	it := db.Range(dev, from, to)
//	defer it.Close()
//	for it.Next() {
//		p := it.Point()
//		...
//	}
//
// It iterates a private copy taken under the shard lock at creation, so
// it never blocks ingest and never observes concurrent mutation. The
// copy lives in a pooled buffer; Close recycles it.
type Iterator struct {
	pts     []Point
	i       int
	release func()
}

// Next advances the iterator, reporting whether a point is available.
func (it *Iterator) Next() bool {
	if it.i+1 >= len(it.pts) {
		return false
	}
	it.i++
	return true
}

// Point returns the current point. Only valid after a true Next.
func (it *Iterator) Point() Point { return it.pts[it.i] }

// Remaining reports how many points are left, including the current one.
func (it *Iterator) Remaining() int {
	if it.i < 0 {
		return len(it.pts)
	}
	return len(it.pts) - it.i
}

// Close returns the iterator's buffer to the range pool. The iterator
// must not be used afterwards. Idempotent; skipping it leaks nothing
// (the buffer is garbage-collected instead of reused).
func (it *Iterator) Close() {
	if it.release != nil {
		it.release()
		it.release = nil
	}
	it.pts = nil
}
