package tsdb

import (
	"sort"
	"time"

	"centuryscale/internal/lpwan"
)

// DrainedSeries is one device's points removed by DrainBelow, in the
// device's arrival order.
type DrainedSeries struct {
	Device lpwan.EUI64
	Points []Point
}

// DrainBelow removes every stored point with At < cutoff from the
// in-memory series and returns them grouped by device, devices sorted
// by address. This is the hand-off from raw retention to the rollup
// tier: the caller summarizes the returned points into aggregate
// buckets and persists those through the next checkpoint, after which
// the raw copies exist nowhere — true tiered retention, not a cache.
//
// The WAL is deliberately untouched: records below the cutoff stay in
// their segments until the checkpoint that persists the buckets
// truncates them. A crash between drain and checkpoint therefore
// replays the drained points and the next fold re-summarizes them —
// the fold's deterministic ordering makes that re-fold byte-identical.
//
// Like Compact, only one shard is paused at a time.
func (db *DB) DrainBelow(cutoff time.Duration) []DrainedSeries {
	byDev := make(map[lpwan.EUI64][]Point)
	for _, sh := range db.shards {
		sh.drainBelow(cutoff, byDev)
	}
	out := make([]DrainedSeries, 0, len(byDev))
	for dev, pts := range byDev {
		out = append(out, DrainedSeries{Device: dev, Points: pts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device.Uint64() < out[j].Device.Uint64() })
	return out
}

// drainBelow moves this shard's points with At < cutoff into byDev.
// Drained points are copied out before the in-place rewrite of the kept
// run reuses the backing array.
func (sh *shard) drainBelow(cutoff time.Duration, byDev map[lpwan.EUI64][]Point) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for dev, ps := range sh.points {
		n := 0
		for _, p := range ps {
			if p.At < cutoff {
				n++
			}
		}
		if n == 0 {
			continue
		}
		drained := make([]Point, 0, n)
		kept := ps[:0]
		for _, p := range ps {
			if p.At < cutoff {
				drained = append(drained, p)
			} else {
				kept = append(kept, p)
			}
		}
		byDev[dev] = append(byDev[dev], drained...)
		if len(kept) == 0 {
			delete(sh.points, dev)
			continue
		}
		// Re-slice into a fresh array when a lot drained, so the old
		// backing array can be collected on a decades-long run.
		if len(kept) < len(ps)/2 {
			fresh := make([]Point, len(kept))
			copy(fresh, kept)
			sh.points[dev] = fresh
		} else {
			sh.points[dev] = kept
		}
	}
}
