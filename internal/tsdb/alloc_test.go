package tsdb

import (
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

// TestAppendAllocBudget pins the write path's allocation budget: one
// durable append costs at most 1 allocation per call on average — the
// amortized growth of the in-memory series plus WAL framing through
// reused scratch buffers. This is the machine-independent form of
// BENCH_tsdb.json's AppendSerial baseline; the static counterpart is
// the //lint:hotpath budget=0 annotation on (DB).Append (always-class
// sites only — amortized growth is exempt there and measured here).
func TestAppendAllocBudget(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), Shards: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dev := lpwan.EUIFromUint64(1)
	var i int
	got := testing.AllocsPerRun(5000, func() {
		i++
		if err := db.Append(Point{Device: dev, At: time.Duration(i), Seq: uint32(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if got > 1 {
		t.Errorf("Append allocates %.2f times per call, want <= 1", got)
	}
}

// TestRangeAllocBudget pins the read path's allocation budget: a range
// query over a resident series costs at most 2 allocations — the
// Iterator (or pooled-slice bookkeeping) plus at most one exact-size
// result buffer from rangeInto when the pooled buffer is too small.
// Matches BENCH_tsdb.json's RangeQuery/RangeSlice baselines.
func TestRangeAllocBudget(t *testing.T) {
	db, err := Open(Options{Shards: 4}) // memory-only: reads never touch the WAL
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dev := lpwan.EUIFromUint64(7)
	const points = 10_000
	for i := 0; i < points; i++ {
		db.Load(Point{Device: dev, At: time.Duration(i) * time.Minute, Seq: uint32(i + 1), Value: float32(i)})
	}
	from := time.Duration(points/3) * time.Minute
	to := time.Duration(2*points/3) * time.Minute

	if got := testing.AllocsPerRun(100, func() {
		it := db.Range(dev, from, to)
		n := 0
		for it.Next() {
			n++
		}
		it.Close()
		if n != points/3 {
			t.Fatalf("range returned %d points", n)
		}
	}); got > 2 {
		t.Errorf("Range allocates %.2f times per call, want <= 2", got)
	}

	if got := testing.AllocsPerRun(100, func() {
		pts, release := db.RangeSlice(dev, from, to)
		if len(pts) != points/3 {
			t.Fatalf("range returned %d points", len(pts))
		}
		release()
	}); got > 2 {
		t.Errorf("RangeSlice allocates %.2f times per call, want <= 2", got)
	}
}
