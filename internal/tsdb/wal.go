package tsdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SyncPolicy controls when WAL appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged reading is
	// on stable storage before the acknowledgement. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a background ticker (Options.SyncEvery):
	// a crash can lose at most one interval of acknowledged appends.
	SyncInterval
	// SyncNever issues no fsyncs at all; durability is whatever the OS
	// page cache provides. For benchmarks and throwaway simulations.
	SyncNever
)

// ParseSyncPolicy maps the -wal-fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("tsdb: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

const segPrefix = "wal-"
const segSuffix = ".log"

func segName(idx uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	return idx, err == nil
}

// wal is one shard's append-only log: numbered segment files, appends go
// to the highest-numbered (active) segment, rotation starts a new one.
// All methods are called under the owning shard's mutex.
type wal struct {
	dir          string
	segmentBytes int64
	policy       SyncPolicy

	f       *os.File
	idx     uint64 // active segment index
	size    int64
	dirty   bool // unsynced bytes outstanding (SyncInterval)
	scratch []byte

	// fsyncs/fsyncErrs count Sync syscalls issued and failed — plain
	// uint64s, mutated and read only under the owning shard's mutex.
	// Fsync cadence is the observable difference between the three
	// durability policies, so it is the first thing an operator checks
	// when acknowledged-write latency drifts.
	fsyncs    uint64
	fsyncErrs uint64

	// existing lists the segment indices found at open time, i.e. the
	// replay set. The active segment is always newer than all of them.
	existing []uint64
}

// openWAL opens (creating if needed) a shard WAL directory and starts a
// fresh active segment above every existing one. Appends never reuse an
// old segment, so replay and recovery never race a writer.
func openWAL(dir string, segmentBytes int64, policy SyncPolicy) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: wal dir: %w", err)
	}
	existing, err := listSegments(dir)
	if err != nil {
		return nil, err
	}

	w := &wal{dir: dir, segmentBytes: segmentBytes, policy: policy, existing: existing}
	w.idx = 1
	if n := len(existing); n > 0 {
		w.idx = existing[n-1] + 1
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *wal) openActive() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.idx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: wal segment: %w", err)
	}
	w.f = f
	w.size = 0
	return nil
}

// append frames p into the active segment, fsyncing per policy and
// rotating when the segment is full.
func (w *wal) append(p Point) error {
	w.scratch = appendPointFrame(w.scratch[:0], p)
	good := w.size
	n, err := w.f.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		w.dropTorn(good)
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	switch w.policy {
	case SyncAlways:
		if err := w.fsync(); err != nil {
			return err
		}
	case SyncInterval:
		w.dirty = true
	}
	if w.size >= w.segmentBytes {
		return w.rotate()
	}
	return nil
}

// dropTorn repairs the active segment after a failed append. The torn
// frame must not stay mid-segment in front of later acknowledged
// records: replay stops a segment at its first corrupt frame, so
// leaving the tear would silently drop everything appended after one
// transient write error. Preferred repair is truncating back to the
// last good offset; if even that fails the damaged segment is sealed
// and a fresh one started, so the tear only ends a sealed segment's
// replay — which loses nothing acknowledged, since the failed frame
// itself was never acknowledged.
func (w *wal) dropTorn(good int64) {
	if err := w.f.Truncate(good); err == nil {
		w.size = good
		return
	}
	_ = w.f.Close() // best effort: the handle is already suspect
	w.dirty = false
	w.idx++
	// If openActive fails, w.f keeps the closed handle: the next append
	// fails cleanly and retries this recovery path.
	_ = w.openActive()
}

// fsync wraps f.Sync with the counters.
func (w *wal) fsync() error {
	w.fsyncs++
	if err := w.f.Sync(); err != nil {
		w.fsyncErrs++
		return fmt.Errorf("tsdb: wal fsync: %w", err)
	}
	return nil
}

// sync flushes outstanding appends (the SyncInterval ticker's target).
func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.fsync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// rotate seals the active segment and starts the next one, returning
// nothing; callers needing a checkpoint watermark read w.idx after.
func (w *wal) rotate() error {
	if w.policy != SyncNever {
		if err := w.fsync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("tsdb: wal close: %w", err)
	}
	w.dirty = false
	w.idx++
	return w.openActive()
}

// removeBelow deletes every segment older than idx: the checkpoint
// truncation step, run only after the snapshot covering them is durable.
func (w *wal) removeBelow(idx uint64) error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("tsdb: wal dir: %w", err)
	}
	var firstErr error
	for _, e := range entries {
		if seg, ok := parseSegName(e.Name()); ok && seg < idx {
			if err := os.Remove(filepath.Join(w.dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (w *wal) close() error {
	if w.policy != SyncNever {
		if err := w.fsync(); err != nil {
			return err
		}
	}
	return w.f.Close()
}

// replay streams every point recorded in the pre-open segments, in
// append order. Corruption — a torn final record from a crash, a flipped
// bit failing CRC, an insane length prefix — ends that segment's replay
// at the last intact record and is counted, never fatal: a 50-year
// endpoint treats a damaged log as partial data, not as a reason to
// refuse to boot. A damaged final segment is additionally truncated back
// to its last intact record so the damage is not re-counted forever.
func (w *wal) replay(logf func(string, ...any), emit func(Point)) (records, corruptions uint64, err error) {
	return replaySegments(w.dir, w.existing, true, logf, emit)
}

// replaySegments is the shared replay loop: it also serves orphaned
// shard directories (left behind by a shard-count decrease), which have
// no live wal to hang it off.
func replaySegments(dir string, segs []uint64, truncateTail bool, logf func(string, ...any), emit func(Point)) (records, corruptions uint64, err error) {
	for i, idx := range segs {
		path := filepath.Join(dir, segName(idx))
		segRecords, good, corrupt, err := replaySegment(path, emit)
		records += segRecords
		if err != nil {
			return records, corruptions, err
		}
		if corrupt != nil {
			corruptions++
			if logf != nil {
				logf("tsdb: %s: %v after %d records (%d bytes intact); recovering", path, corrupt, segRecords, good)
			}
			if truncateTail && i == len(segs)-1 {
				// Torn tail of the crash-time segment: trim it so the
				// next boot replays clean. Best-effort.
				if terr := os.Truncate(path, good); terr != nil && logf != nil {
					logf("tsdb: %s: truncate: %v", path, terr)
				}
			}
		}
	}
	return records, corruptions, nil
}

// listSegments returns the sorted segment indices in dir.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: wal dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if idx, ok := parseSegName(e.Name()); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// replaySegment reads one segment, emitting decoded points, and reports
// how many bytes of intact records prefix the file. A decode failure is
// returned as corrupt (recoverable); only I/O setup errors are fatal.
func replaySegment(path string, emit func(Point)) (records uint64, goodBytes int64, corrupt, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("tsdb: wal segment: %w", err)
	}
	//lint:syncerr read-only replay handle; a close error cannot un-write the records just decoded
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		payload, err := readFrame(r)
		if errors.Is(err, io.EOF) {
			return records, goodBytes, nil, nil
		}
		if err != nil {
			return records, goodBytes, err, nil
		}
		p, err := decodePoint(payload)
		if err != nil {
			return records, goodBytes, err, nil
		}
		emit(p)
		records++
		goodBytes += frameHeader + int64(len(payload))
	}
}
