package tsdb

import (
	"fmt"
	"sync"
)

// Group commit: the WAL-side half of the batched ingest path. A frame of
// N packets arriving on POST /ingest/batch becomes one appendBatch per
// shard — every point framed into one scratch buffer, one Write, one
// fsync — so SyncAlways durability costs one disk flush per frame
// instead of one per point. The WAL-before-ack contract is unchanged:
// the caller holds its acknowledgement until AppendBatch returns, and
// AppendBatch does not return success for a shard until that shard's
// covering fsync has.

// appendBatch frames every point into the active segment with a single
// Write and (under SyncAlways) a single fsync covering them all. Error
// semantics match append: on failure the torn tail is dropped and NONE
// of the batch is considered stored — all-or-nothing per shard, so the
// caller never has to guess which prefix survived.
func (w *wal) appendBatch(ps []Point) error {
	if len(ps) == 0 {
		return nil
	}
	w.scratch = w.scratch[:0]
	for _, p := range ps {
		w.scratch = appendPointFrame(w.scratch, p)
	}
	good := w.size
	n, err := w.f.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		w.dropTorn(good)
		return fmt.Errorf("tsdb: wal append batch: %w", err)
	}
	switch w.policy {
	case SyncAlways:
		if err := w.fsync(); err != nil {
			return err
		}
	case SyncInterval:
		w.dirty = true
	}
	if w.size >= w.segmentBytes {
		return w.rotate()
	}
	return nil
}

// appendBatch stores the group under one lock acquisition: WAL first
// (one fsync for the whole group), then every memtable insert. On WAL
// failure nothing is inserted — the group is all-or-nothing, matching
// wal.appendBatch's dropTorn repair — so the memtable never holds a
// point the log does not.
func (sh *shard) appendBatch(ps []Point, durable bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if durable && sh.wal != nil {
		//lint:lockedio WAL-before-ack contract, group form: the single fsync covering the whole group must complete inside the critical section, before any insert and before the caller can acknowledge any packet of the frame
		if err := sh.wal.appendBatch(ps); err != nil {
			return err
		}
	}
	for _, p := range ps {
		sh.points[p.Device] = append(sh.points[p.Device], p)
	}
	return nil
}

// batchBuckets recycles the per-shard grouping used by AppendBatch.
// Entries are *[][]Point with one inner slice per shard; inner slices
// keep their grown capacity across uses. Shard counts are small and
// fixed per process in practice, so a pooled entry sized for a different
// DB is simply resliced.
var batchBuckets = sync.Pool{
	New: func() any {
		b := make([][]Point, 0, DefaultShards)
		return &b
	},
}

// AppendBatch durably stores a group of points with one fsync per
// touched shard (not one per point): the group-commit entry point for
// the batched ingest path. Points are bucketed by ShardIndex and each
// shard's bucket commits atomically — WAL write + fsync + memtable
// insert under that shard's lock. A shard's failure voids only that
// shard's bucket; other shards' buckets still commit, and the first
// error is returned so the caller refuses acknowledgement for the whole
// frame (the sender's retry re-offers every packet, and the replay
// guards deduplicate the ones that did land).
//
//lint:hotpath budget=2 per-frame, not per-packet: one pooled bucket array plus amortized bucket growth; each packet moves through exactly one append into a reused bucket
func (db *DB) AppendBatch(pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	nshards := len(db.shards)
	bp := batchBuckets.Get().(*[][]Point)
	buckets := *bp
	if cap(buckets) < nshards {
		buckets = make([][]Point, nshards)
	}
	buckets = buckets[:nshards]
	for _, p := range pts {
		i := ShardIndex(p.Device, nshards)
		buckets[i] = append(buckets[i], p)
	}
	var firstErr error
	for i := range buckets {
		group := buckets[i]
		if len(group) == 0 {
			continue
		}
		if err := db.shards[i].appendBatch(group, true); err != nil {
			db.appendErrors.Add(uint64(len(group)))
			if firstErr == nil {
				firstErr = err
			}
		} else {
			db.appended.Add(uint64(len(group)))
		}
		buckets[i] = group[:0]
	}
	db.groupCommits.Add(1)
	*bp = buckets
	batchBuckets.Put(bp)
	return firstErr
}

// GroupCommits reports how many AppendBatch group commits have run —
// the denominator an operator divides appended by to see the realized
// batching factor.
func (db *DB) GroupCommits() uint64 { return db.groupCommits.Load() }
