package tsdb

import (
	"sync"
	"time"

	"centuryscale/internal/lpwan"
)

// shard is one partition: an in-memory per-device series map plus (when
// durable) its own WAL. Each shard has its own mutex, so ingest for
// devices hashing to different shards never contends.
type shard struct {
	mu     sync.Mutex
	points map[lpwan.EUI64][]Point
	wal    *wal // nil in memory-only mode
}

func newShard(w *wal) *shard {
	return &shard{points: make(map[lpwan.EUI64][]Point), wal: w}
}

// append stores p, writing it to the WAL first when durable is true.
// The WAL write happening before the in-memory insert (and before any
// acknowledgement the caller sends) is the crash-safety contract: a
// reading is never acknowledged until it would survive a restart.
func (sh *shard) append(p Point, durable bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if durable && sh.wal != nil {
		//lint:lockedio WAL-before-ack contract: log order and memtable order must agree, and the fsync must complete before the caller can acknowledge — this I/O is the critical section
		if err := sh.wal.append(p); err != nil {
			return err
		}
	}
	sh.points[p.Device] = append(sh.points[p.Device], p)
	return nil
}

// load inserts without touching the WAL: snapshot restore and WAL
// replay, whose records are already durable elsewhere.
func (sh *shard) load(p Point) {
	sh.mu.Lock()
	sh.points[p.Device] = append(sh.points[p.Device], p)
	sh.mu.Unlock()
}

// reset drops the in-memory state (the WAL is untouched).
func (sh *shard) reset() {
	sh.mu.Lock()
	sh.points = make(map[lpwan.EUI64][]Point)
	sh.mu.Unlock()
}

// history returns a copy of one device's points in arrival order.
func (sh *shard) history(dev lpwan.EUI64) []Point {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]Point(nil), sh.points[dev]...)
}

// rangeInto appends the device's points with At in [from, to) to buf,
// growing it exactly once if needed. Points are kept in arrival order,
// which is not guaranteed to be sorted by At across restarts, so this
// is a filter, not a binary search. The count pass costs one extra walk
// of a series already resident under the lock; it replaces the old
// rangeCopy's geometric append growth (up to 2x the result size in
// transient garbage per query, ~355 KB/op in BenchmarkTSDBRangeQuery)
// with a single exact-size allocation — or none, when a pooled buf
// already has the capacity.
//lint:hotpath budget=1 one exact-size result buffer, and only when the pooled buf is too small (BENCH_tsdb.json pins Range at 2 allocs/op)
func (sh *shard) rangeInto(dev lpwan.EUI64, from, to time.Duration, buf []Point) []Point {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ps := sh.points[dev]
	n := 0
	for _, p := range ps {
		if p.At >= from && p.At < to {
			n++
		}
	}
	if cap(buf) < n {
		buf = make([]Point, 0, n)
	}
	buf = buf[:0]
	for _, p := range ps {
		if p.At >= from && p.At < to {
			buf = append(buf, p)
		}
	}
	return buf
}

// times copies just the arrival times of every series in the shard, one
// slice per device in arrival order. Gap analysis needs only the 8-byte
// times; copying full Points would move ~5x the bytes under the lock.
func (sh *shard) times() [][]time.Duration {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([][]time.Duration, 0, len(sh.points))
	for _, ps := range sh.points {
		ts := make([]time.Duration, len(ps))
		for i, p := range ps {
			ts[i] = p.At
		}
		out = append(out, ts)
	}
	return out
}

// devices returns the shard's device set (unsorted).
func (sh *shard) devices() []lpwan.EUI64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]lpwan.EUI64, 0, len(sh.points))
	for d := range sh.points {
		out = append(out, d)
	}
	return out
}

// snapshot copies the shard's whole series map. Called per shard by the
// snapshot writer so that encoding (the expensive part) happens with no
// lock held and ingest stalls only for this one shard's memcpy.
func (sh *shard) snapshot() map[lpwan.EUI64][]Point {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[lpwan.EUI64][]Point, len(sh.points))
	for d, ps := range sh.points {
		out[d] = append([]Point(nil), ps...)
	}
	return out
}

// compact applies the retention policy to this shard only, so fleet-wide
// compaction never stalls ingest globally — each shard pauses for its
// own pass while the other shards keep accepting.
func (sh *shard) compact(now time.Duration, r Retention) (dropped int) {
	cutoff := now - r.FullResolutionWindow
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for dev, ps := range sh.points {
		kept := ps[:0]
		lastBucket := int64(-1)
		for _, p := range ps {
			if p.At >= cutoff {
				kept = append(kept, p)
				continue
			}
			bucket := int64(p.At / r.KeepOnePer)
			if bucket != lastBucket {
				kept = append(kept, p)
				lastBucket = bucket
			} else {
				dropped++
			}
		}
		// Re-slice into a fresh array when a lot dropped, so the old
		// backing array can be collected on a decades-long run.
		if len(kept) < len(ps)/2 {
			fresh := make([]Point, len(kept))
			copy(fresh, kept)
			sh.points[dev] = fresh
		} else {
			sh.points[dev] = kept
		}
	}
	return dropped
}
