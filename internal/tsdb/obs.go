package tsdb

import "centuryscale/internal/obs"

// walCounters sums the per-shard WAL fsync counters, taking each shard's
// lock only for the two loads. Memory-only shards contribute zero.
func (db *DB) walCounters() (fsyncs, errs uint64) {
	for _, sh := range db.shards {
		sh.mu.Lock()
		if sh.wal != nil {
			fsyncs += sh.wal.fsyncs
			errs += sh.wal.fsyncErrs
		}
		sh.mu.Unlock()
	}
	return fsyncs, errs
}

// seriesCounts counts devices and points, shard by shard. Unlike Stats it
// touches no filesystem, so it is cheap enough for every scrape.
func (db *DB) seriesCounts() (devices, points int) {
	for _, sh := range db.shards {
		sh.mu.Lock()
		devices += len(sh.points)
		for _, pts := range sh.points {
			points += len(pts)
		}
		sh.mu.Unlock()
	}
	return devices, points
}

// RegisterMetrics exposes the engine's counters on reg under the tsdb_
// prefix. Everything is bridged via CounterFunc/GaugeFunc closures over
// the counters the engine already keeps: registration adds nothing to
// the append hot path, and scraping never reads the filesystem (the WAL
// footprint stays a Stats-only figure, since sizing segment files is a
// ReadDir per shard).
func (db *DB) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("tsdb_appended_total", "points durably appended", db.appended.Load)
	reg.CounterFunc("tsdb_replayed_total", "WAL records decoded at boot replay", db.replayed.Load)
	reg.CounterFunc("tsdb_corruptions_total", "torn or corrupt WAL frames tolerated", db.corruptions.Load)
	reg.CounterFunc("tsdb_append_errors_total", "appends refused by the WAL (not acknowledged)", db.appendErrors.Load)
	reg.CounterFunc("tsdb_compaction_runs_total", "retention compaction passes", db.compactionRuns.Load)
	reg.CounterFunc("tsdb_compaction_dropped_total", "points dropped by retention compaction", db.compactionDropped.Load)
	reg.CounterFunc("tsdb_wal_fsyncs_total", "WAL fsync syscalls issued", func() uint64 {
		n, _ := db.walCounters()
		return n
	})
	reg.CounterFunc("tsdb_wal_fsync_errors_total", "WAL fsync syscalls failed", func() uint64 {
		_, e := db.walCounters()
		return e
	})
	reg.GaugeFunc("tsdb_devices", "devices with stored points", func() float64 {
		d, _ := db.seriesCounts()
		return float64(d)
	})
	reg.GaugeFunc("tsdb_points", "points held in memory", func() float64 {
		_, p := db.seriesCounts()
		return float64(p)
	})
}
