package tsdb

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

// FuzzWALDecode drives the frame decoder with arbitrary bytes, the way
// a corrupted disk or a hostile file would: it must never panic, never
// allocate beyond MaxFrame for a payload, and anything it does decode
// must re-encode to the exact bytes it came from (the framing is
// canonical). Mirrors internal/telemetry's FuzzVerify discipline.
func FuzzWALDecode(f *testing.F) {
	// Seed with valid frames so the fuzzer starts from the real format.
	valid := appendPointFrame(nil, Point{
		Device: lpwan.EUIFromUint64(0xCAFE),
		At:     42 * time.Hour,
		Seq:    7,
		Sensor: 3,
		Value:  2.5,
		Uptime: 99,
	})
	two := appendPointFrame(append([]byte(nil), valid...), Point{Device: lpwan.EUIFromUint64(1), Seq: 1})
	f.Add(valid)
	f.Add(two)
	f.Add(valid[:len(valid)-5])           // torn tail
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // garbage length prefix
	f.Add(bytes.Repeat([]byte{0x00}, 64)) // zero length prefix
	corrupted := append([]byte(nil), valid...)
	corrupted[frameHeader+4] ^= 0x20 // payload bit flip -> CRC mismatch
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				// Any corruption classification is fine; what matters is
				// that it IS classified, not panicked on.
				if !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrFrameSize) && !errors.Is(err, ErrFrameCRC) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("decoder over-allocated: %d bytes", len(payload))
			}
			p, err := decodePoint(payload)
			if err != nil {
				if !errors.Is(err, ErrBadRecord) {
					t.Fatalf("unclassified record error: %v", err)
				}
				return
			}
			// Canonical: a decoded point re-frames to identical bytes.
			reframed := appendPointFrame(nil, p)
			if !bytes.Equal(reframed[frameHeader:], payload) {
				t.Fatalf("round trip not canonical:\n in: %x\nout: %x", payload, reframed[frameHeader:])
			}
		}
	})
}
