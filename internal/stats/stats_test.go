package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("median = %v", s.P50)
	}
	// Sample std of 1..5 = sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(sorted, 100); p != 40 {
		t.Fatalf("P100 = %v", p)
	}
	// P50 of 4 points: rank 1.5 -> 25.
	if p := Percentile(sorted, 50); p != 25 {
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile([]float64{7}, 99); p != 7 {
		t.Fatalf("single-point percentile = %v", p)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over-100": func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(sorted, p1) <= Percentile(sorted, p2)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	// Bins: [0,2): {0, 1.9} = 2; [2,4): {2} = 1; [4,6): {5} = 1; [8,10): {9.99} = 1.
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	out := h.Render(10)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("render = %q", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeriesAppendOrdered(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	s.Append(0.5, 5)
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d points", d.Len())
	}
	// Bucket means of a linear ramp are increasing and centered.
	for i := 1; i < d.Len(); i++ {
		if d.V[i] <= d.V[i-1] {
			t.Fatal("downsampled ramp not increasing")
		}
	}
	// First bucket of 0..99 has mean 49.5.
	if math.Abs(d.V[0]-49.5) > 1 {
		t.Fatalf("first bucket mean = %v", d.V[0])
	}
}

func TestDownsampleSmallInput(t *testing.T) {
	var s Series
	s.Append(1, 2)
	d := s.Downsample(10)
	if d.Len() != 1 || d.V[0] != 2 {
		t.Fatalf("downsample of 1 point = %+v", d)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("RMSE of equal = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Pearson(a, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant correlation = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i * 7 % 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Summarize(xs)
	}
}
