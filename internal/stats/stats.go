// Package stats provides the summary statistics the experiment harness
// and long-horizon analyses share: running moments, percentiles,
// histograms, and time-series downsampling for 50-year traces.
//
// The simulator produces millions of samples per run (packet outcomes,
// fill levels, lifetimes); experiments need compact, deterministic
// summaries of them. Everything here is plain computation over float64
// slices — no randomness, no time.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual five-number-plus-moments description.
type Summary struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P95, P99      float64
}

// Summarize computes a Summary. It copies and sorts internally; the input
// is not modified. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var s Summary
	s.Count = len(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(s.Count)
	varsum := 0.0
	for _, v := range sorted {
		varsum += (v - s.Mean) * (v - s.Mean)
	}
	if s.Count > 1 {
		s.Std = math.Sqrt(varsum / float64(s.Count-1))
	}
	s.P25 = Percentile(sorted, 25)
	s.P50 = Percentile(sorted, 50)
	s.P75 = Percentile(sorted, 75)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an already-sorted
// slice, with linear interpolation between ranks. It panics on an empty
// slice or p outside [0, 100].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram builds an empty histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: bad histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx == len(h.Counts) { // float edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns all recorded samples including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Render draws an ASCII bar chart, one row per bin, scaled to width.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bars := c * width / max
		fmt.Fprintf(&sb, "%10.2f-%-10.2f |%-*s %d\n",
			h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW,
			width, strings.Repeat("#", bars), c)
	}
	return sb.String()
}

// Series is a (time, value) sequence; times are in arbitrary consistent
// units (the simulator uses years).
type Series struct {
	T, V []float64
}

// Append adds a point; times must be non-decreasing.
func (s *Series) Append(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic("stats: series time going backwards")
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// Downsample reduces the series to at most n points by averaging values
// within equal-width time buckets (bucket time = midpoint). Useful for
// turning a 50-year hourly trace into a plottable curve.
func (s *Series) Downsample(n int) Series {
	if n <= 0 {
		panic("stats: non-positive downsample size")
	}
	if s.Len() <= n {
		return Series{T: append([]float64(nil), s.T...), V: append([]float64(nil), s.V...)}
	}
	t0, t1 := s.T[0], s.T[len(s.T)-1]
	width := (t1 - t0) / float64(n)
	if width == 0 {
		return Series{T: []float64{t0}, V: []float64{Mean(s.V)}}
	}
	var out Series
	bucket := 0
	sum, count := 0.0, 0
	flush := func() {
		if count > 0 {
			mid := t0 + (float64(bucket)+0.5)*width
			out.T = append(out.T, mid)
			out.V = append(out.V, sum/float64(count))
		}
		sum, count = 0, 0
	}
	for i := range s.T {
		b := int((s.T[i] - t0) / width)
		if b >= n {
			b = n - 1
		}
		if b != bucket {
			flush()
			bucket = b
		}
		sum += s.V[i]
		count++
	}
	flush()
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// RMSE returns the root-mean-square error between two equal-length
// slices. It panics on length mismatch.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// slices, or 0 when either is constant. It panics on length mismatch.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Pearson length mismatch")
	}
	if len(a) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
