package lockorder_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		"lockorder", "lockorder/base", "lockorder/top")
}
