// Fixture for the lockorder analyzer: inconsistent lock-acquisition
// order across the program is a potential deadlock; index-ordered
// accumulation is a safe hierarchy.
package lockorder

import "sync"

type L1 struct{ mu sync.Mutex }
type L2 struct{ mu sync.Mutex }

// oneTwo and twoOne take the same pair of lock families in opposite
// orders — the classic inversion. The cycle is reported once, at the
// first edge of the canonical path (smallest root first), with the
// complete acquisition path in the message.
func oneTwo(a *L1, b *L2) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: lockorder\.oneTwo acquires lockorder\.\(L2\)\.mu while holding lockorder\.\(L1\)\.mu; then lockorder\.twoOne acquires lockorder\.\(L1\)\.mu while holding lockorder\.\(L2\)\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func twoOne(a *L1, b *L2) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type Shard struct{ mu sync.Mutex }

// grabAll accumulates every instance of one family while ranging a map
// — no fixed order, so two goroutines can grab instances in opposite
// order and deadlock: a self-cycle on the family.
func grabAll(m map[string]*Shard) {
	for _, s := range m { // keep: order depends on map iteration
		s.mu.Lock() // want `lock-order cycle: lockorder\.\(Shard\)\.mu accumulated across loop iterations in lockorder\.grabAll with no fixed order`
	}
	for _, s := range m {
		s.mu.Unlock()
	}
}

type Guard struct{ mu sync.Mutex }

// barrier is the guard-shard idiom: every instance taken in slice index
// order, a total order over the family — safe hierarchy, not flagged.
func barrier(gs []*Guard) {
	for _, g := range gs {
		g.mu.Lock()
	}
	for _, g := range gs {
		g.mu.Unlock()
	}
}

// lockStep locks and releases per iteration — no accumulation at all,
// so nothing to order. Not flagged.
func lockStep(gs []*Guard) {
	for _, g := range gs {
		g.mu.Lock()
		g.mu.Unlock()
	}
}

type W1 struct{ mu sync.Mutex }
type W2 struct{ mu sync.Mutex }

// waived shows the escape hatch: an inversion whose ordering is
// guaranteed by something the graph cannot see states its contract.
func waived(a *W1, b *W2) {
	a.mu.Lock()
	b.mu.Lock() //lint:lockorder fixture: callers serialize through a semaphore, the inversion is unreachable
	b.mu.Unlock()
	a.mu.Unlock()
}

func waivedReverse(a *W1, b *W2) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
