// Fixture package base: the lower half of a multi-package lock-order
// cycle. BA acquires (A).Mu while holding (B).Mu; the opposite edge
// lives in lockorder/top, which imports this package. The cycle's
// canonical first edge ((A).Mu -> (B).Mu) is witnessed in top, so the
// diagnostic lands there and this package stays silent — one report per
// cycle program-wide.
package base

import "sync"

type A struct{ Mu sync.Mutex }
type B struct{ Mu sync.Mutex }

// Acquire/Release let a caller take (B).Mu through a call, exercising
// the call-under-lock edges in the graph.
func (b *B) Acquire() { b.Mu.Lock() }
func (b *B) Release() { b.Mu.Unlock() }

// BA is the B-then-A half of the inversion.
func BA(a *A, b *B) {
	b.Mu.Lock()
	a.Mu.Lock()
	a.Mu.Unlock()
	b.Mu.Unlock()
}
