// Fixture package top: the upper half of the multi-package cycle with
// lockorder/base. AB holds (A).Mu and reaches (B).Mu through a call
// into base — the lock graph must follow the call summary across the
// package boundary to see the edge, and the diagnostic prints the
// function chain that takes it.
package top

import "lockorder/base"

func AB(a *base.A, b *base.B) {
	a.Mu.Lock()
	b.Acquire() // want `lock-order cycle: lockorder/top\.AB holds lockorder/base\.\(A\)\.Mu and calls lockorder/base\.\(B\)\.Acquire, which acquires lockorder/base\.\(B\)\.Mu; then lockorder/base\.BA acquires lockorder/base\.\(A\)\.Mu while holding lockorder/base\.\(B\)\.Mu`
	b.Release()
	a.Mu.Unlock()
}
