// Package lockorder implements the centurylint analyzer that detects
// potential deadlocks from inconsistent lock-acquisition order.
//
// A lock-order inversion is the concurrency bug a century-scale node
// cannot afford: it passes every test that doesn't hit the exact
// interleaving, then wedges the process in year 3 with both goroutines
// asleep and no operator attached. The analyzer builds the
// whole-program lock-acquisition graph from the dataflow summaries —
// nodes are lock *families* (canonical roots like
// "internal/cloud.(guardShard).mu", see dataflow.ExprRoot), and there
// is an edge A→B wherever some function acquires B while holding A,
// directly or through any statically-resolved callee. Any cycle in
// that graph means two call paths can take the same pair of locks in
// opposite orders; the diagnostic prints a complete witness: the cycle
// of roots and, per edge, the function chain that takes it.
//
// Two idioms are recognized as safe and do not produce edges:
//
//   - Index-ordered accumulation: a loop that grabs every instance of
//     one family in slice/index order (the guard-shard barrier in
//     FoldRollups, snapshot's hold-all) is a total order over the
//     family, not a race to deadlock. A loop that accumulates with NO
//     fixed order (ranging a map) is flagged as a self-cycle.
//   - Same-family reacquisition through a call (A held, callee
//     acquires A) is skipped: across instances it is usually two
//     different objects, and the summary cannot tell. Conservative in
//     the no-false-positive direction, like dynamic dispatch.
//
// Intentional orderings the graph cannot see justify themselves with
// `//lint:lockorder <reason>` at the reported edge.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Directive: "lockorder",
	Doc: "build the whole-program lock-acquisition graph from the call summaries " +
		"and report any cycle — two paths taking the same locks in opposite order " +
		"— as a potential deadlock, with the full acquisition path; index-ordered " +
		"loop accumulation (the guard-shard barrier idiom) is a safe hierarchy",
	Run: run,
}

// An edge is one observed "to acquired while from held", with enough
// witness context to print the acquisition path.
type edge struct {
	from, to string
	// fn is the function whose body witnesses the edge.
	fn string
	// via is the callee that performs the acquisition when the edge
	// comes from a call under lock ("" for a direct acquisition).
	via string
	// pos locates the witness: the Lock call or the call expression.
	pos token.Pos
	// looped marks a self-edge from unordered loop accumulation.
	looped bool
}

func run(pass *analysis.Pass) error {
	index := pass.Summaries
	if index == nil {
		index = dataflow.NewIndex()
		index.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		index.Resolve()
	}

	edges := buildGraph(index)
	adj := make(map[string][]string)
	byPair := make(map[[2]string]edge)
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if _, seen := byPair[key]; !seen {
			byPair[key] = e
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}

	for _, cycle := range cycles(adj) {
		reportCycle(pass, index, byPair, cycle)
	}
	return nil
}

// buildGraph extracts every acquisition-order edge from the index, in
// deterministic order (sorted function names, source order within a
// body) so the first witness for each pair is stable across runs.
func buildGraph(index *dataflow.Index) []edge {
	var edges []edge
	for _, name := range index.Names() {
		s := index.Lookup(name)
		for _, a := range s.Acquires {
			for _, h := range a.Held {
				if h != a.Root {
					edges = append(edges, edge{from: h, to: a.Root, fn: name, pos: a.Pos})
				}
			}
			if a.Looped && !a.IndexOrdered {
				edges = append(edges, edge{from: a.Root, to: a.Root, fn: name, pos: a.Pos, looped: true})
			}
		}
		for _, cu := range s.CallsUnder {
			for _, l := range index.TransitiveLocks(cu.Callee) {
				for _, h := range cu.Held {
					// Same-family reacquisition through a call is
					// instance-ambiguous; skip (package doc).
					if h != l {
						edges = append(edges, edge{from: h, to: l, fn: name, via: cu.Callee, pos: cu.Pos})
					}
				}
			}
		}
	}
	return edges
}

// cycles returns one representative cycle per strongly connected
// component that contains one: the shortest cycle through the
// component's smallest root, as a node sequence whose first and last
// element are equal. Deterministic: SCCs found over sorted nodes,
// successors expanded sorted.
func cycles(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	seenNode := make(map[string]bool)
	for from, tos := range adj {
		if !seenNode[from] {
			seenNode[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seenNode[to] {
				seenNode[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	sccs := tarjan(nodes, adj)
	var out [][]string
	for _, scc := range sccs {
		sort.Strings(scc)
		root := scc[0]
		if len(scc) == 1 {
			if !hasEdge(adj, root, root) {
				continue
			}
			out = append(out, []string{root, root})
			continue
		}
		if c := shortestCycle(adj, scc, root); c != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func hasEdge(adj map[string][]string, from, to string) bool {
	for _, t := range adj[from] {
		if t == to {
			return true
		}
	}
	return false
}

// tarjan computes strongly connected components, iteratively.
func tarjan(nodes []string, adj map[string][]string) [][]string {
	type frame struct {
		node string
		succ int
	}
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	for _, start := range nodes {
		if _, visited := index[start]; visited {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.succ < len(adj[f.node]) {
				w := adj[f.node][f.succ]
				f.succ++
				if _, visited := index[w]; !visited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// f.node is done: pop, propagate lowlink, emit SCC at root.
			if low[f.node] == index[f.node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				if len(scc) > 1 || hasEdge(adj, f.node, f.node) {
					sccs = append(sccs, scc)
				}
			}
			done := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.node] {
					low[parent.node] = low[done]
				}
			}
		}
	}
	return sccs
}

// shortestCycle BFSes within one SCC from root back to root.
func shortestCycle(adj map[string][]string, scc []string, root string) []string {
	inSCC := make(map[string]bool, len(scc))
	for _, n := range scc {
		inSCC[n] = true
	}
	type node struct {
		name string
		path []string
	}
	seen := map[string]bool{}
	queue := []node{{root, []string{root}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, succ := range adj[n.name] {
			if succ == root && len(n.path) > 1 {
				return append(n.path, root)
			}
			if !inSCC[succ] || seen[succ] {
				continue
			}
			seen[succ] = true
			queue = append(queue, node{succ, append(append([]string(nil), n.path...), succ)})
		}
	}
	// Two-node cycles exit above; root→root within a larger SCC needs
	// the 2-hop minimum relaxed.
	for _, succ := range adj[root] {
		if succ == root {
			return []string{root, root}
		}
	}
	return nil
}

// reportCycle prints the full acquisition path for one cycle, anchored
// at the first edge whose witness position lies in this pass's files —
// so a multi-package cycle is reported exactly once, in the package
// that takes the first edge.
func reportCycle(pass *analysis.Pass, index *dataflow.Index, byPair map[[2]string]edge, cycle []string) {
	first := byPair[[2]string{cycle[0], cycle[1]}]
	if !posInPass(pass, first.pos) {
		return
	}

	if len(cycle) == 2 && cycle[0] == cycle[1] && first.looped {
		pass.Reportf(first.pos,
			"lock-order cycle: %s accumulated across loop iterations in %s with no fixed order; two goroutines grabbing instances in opposite order deadlock — iterate the owning slice in index order (the guard-shard barrier idiom) or annotate //lint:lockorder <reason>",
			cycle[0], first.fn)
		return
	}

	var steps []string
	for i := 0; i+1 < len(cycle); i++ {
		e := byPair[[2]string{cycle[i], cycle[i+1]}]
		steps = append(steps, describeEdge(index, e))
	}
	pass.Reportf(first.pos,
		"lock-order cycle: %s; two goroutines taking these paths concurrently deadlock — acquire in one global order or annotate //lint:lockorder <reason>",
		strings.Join(steps, "; then "))
}

// describeEdge renders one acquisition step with its function chain.
func describeEdge(index *dataflow.Index, e edge) string {
	if e.via == "" {
		return fmt.Sprintf("%s acquires %s while holding %s", e.fn, e.to, e.from)
	}
	chain := index.AcquireChain(e.via, e.to)
	if chain == nil {
		chain = []string{e.via}
	}
	return fmt.Sprintf("%s holds %s and calls %s, which acquires %s",
		e.fn, e.from, strings.Join(chain, " -> "), e.to)
}

func posInPass(pass *analysis.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
