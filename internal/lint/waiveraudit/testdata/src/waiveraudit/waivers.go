// Fixture for the waiveraudit analyzer, run in a suite together with
// centurytime so the suppression log carries real entries.
package waiveraudit

import "time"

// usedWaiver is the healthy case: the directive suppresses a real
// centurytime finding and states why — no diagnostics at all.
func usedWaiver(a, b time.Duration) time.Duration {
	return a * b //lint:centurytime calibration product, operands bounded by caller
}

// reasonless still suppresses the finding, but a bare waiver is
// unreviewable.
func reasonless(a, b time.Duration) time.Duration {
	return a * b //lint:centurytime // want "must carry a reason"
}

// stale waives a line that produces no finding.
func stale() time.Duration {
	return 2 * time.Second //lint:centurytime historical, product was removed // want "stale waiver"
}

// typo: the misspelled directive waives nothing, so the real finding
// escapes AND the directive is reported.
func typo(a, b time.Duration) time.Duration {
	return a * b //lint:centurytim operands bounded // want "unknown suppression directive" "multiplying two non-constant"
}

// standalone directives (line above the code) are audited identically.
func standaloneUsed(a, b time.Duration) time.Duration {
	//lint:centurytime calibration product, operands bounded by caller
	return a * b
}
