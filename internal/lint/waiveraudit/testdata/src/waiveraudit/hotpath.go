// //lint:hotpath cases: the annotation is audited like a waiver, with
// the budget token stripped before the reason rule is applied, and
// staleness meaning "attached to no function declaration" (allocbudget
// marks every annotation it attaches as used).
package waiveraudit

// hotClean is the healthy case: attached, budgeted, reasoned, and
// within budget — no diagnostics from either analyzer.
//
//lint:hotpath budget=0 pure arithmetic, nothing may allocate
func hotClean(n int) int { return n + 1 }

// hotReasonless parses as a valid budget, but the budget token alone is
// not a justification.
//
//lint:hotpath budget=0 // want "must carry a reason"
func hotReasonless(n int) int { return n + 1 }

// hotFloating's annotation sits mid-body: allocbudget attaches it to no
// declaration, so it enforces nothing.
func hotFloating() {
	//lint:hotpath budget=1 floats mid-body, annotating nothing // want "stale annotation"
	_ = 0
}
