// Package waiveraudit implements the centurylint analyzer that audits
// the other analyzers' waivers.
//
// A //lint:<directive> comment is a standing exception to a safety
// invariant, and on this repository's timescales exceptions outlive
// their authors: the waived call gets refactored away, the directive
// stays, and five years later it silently swallows a brand-new finding
// on the same line. waiveraudit keeps the waiver set exactly as large
// as the set of real, justified exceptions:
//
//   - every //lint: directive must name a directive some analyzer in
//     the suite actually recognises (a typo like //lint:lockedoi would
//     otherwise waive nothing, forever, without anyone noticing);
//   - every waiver must carry a free-form reason after the directive
//     word — a bare waiver is an unreviewable "trust me" (a nested
//     //-comment does not count as a reason);
//   - every waiver must still suppress at least one finding. The
//     analyzers record each directive line that absorbed a diagnostic
//     in the pass's shared SuppressionLog; waiveraudit runs last in the
//     suite and flags the lines that absorbed nothing as stale.
//
// The staleness check is only sound when the whole suite ran — under
// `centurylint -only <analyzer>` the suppressed analyzer may simply not
// have executed — so the driver disables it (nil SuppressionLog) in
// that mode. waiveraudit itself has no suppression directive: waivers
// of the waiver audit are not a thing.
package waiveraudit

import (
	"go/ast"
	"sort"
	"strings"

	"centuryscale/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "waiveraudit",
	Directive: "", // deliberately unwaivable
	Doc: "audit //lint: waivers: the directive must be one the suite recognises, " +
		"must carry a reason, and must still suppress a real finding (stale " +
		"waivers are errors)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				auditComment(pass, c)
			}
		}
	}
	return nil
}

func auditComment(pass *analysis.Pass, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return
	}
	word, reason := rest, ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		word, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	// A nested //-comment (a test harness expectation, a stray TODO) is
	// not a justification.
	if i := strings.Index(reason, "//"); i >= 0 {
		reason = strings.TrimSpace(reason[:i])
	}

	if pass.Directives != nil {
		if _, known := pass.Directives[word]; !known {
			pass.Reportf(c.Pos(),
				"unknown suppression directive //lint:%s waives nothing, forever; the suite recognises: %s",
				word, strings.Join(knownWords(pass), ", "))
			return
		}
	}
	// //lint:hotpath is an annotation, not a waiver: its first argument
	// is the budget, and the reason is whatever follows. Strip the
	// budget token so the reason rule applies to the justification
	// alone; allocbudget reports the malformed-budget case itself.
	if word == "hotpath" {
		budget, rest, _ := strings.Cut(reason, " ")
		if strings.HasPrefix(budget, "budget=") {
			reason = strings.TrimSpace(rest)
		}
	}
	if reason == "" {
		pass.Reportf(c.Pos(),
			"waiver //lint:%s must carry a reason: a standing exception with no justification is unreviewable for the decades it will live",
			word)
		return
	}
	if pass.Suppressions != nil {
		pos := pass.Fset.Position(c.Pos())
		if !pass.Suppressions.Used(pos.Filename, pos.Line) {
			if word == "hotpath" {
				// allocbudget marks every annotation it attaches to a
				// declaration as used; an unattached one enforces
				// nothing.
				pass.Reportf(c.Pos(),
					"stale annotation: //lint:hotpath is attached to no function declaration, so it enforces no budget; move it onto the declaration or delete it")
				return
			}
			pass.Reportf(c.Pos(),
				"stale waiver: //lint:%s suppresses no finding on this line; delete it before it silently swallows the next real one",
				word)
		}
	}
}

func knownWords(pass *analysis.Pass) []string {
	words := make([]string, 0, len(pass.Directives))
	for w := range pass.Directives {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}
