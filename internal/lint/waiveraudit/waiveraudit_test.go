package waiveraudit_test

import (
	"testing"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/centurytime"
	"centuryscale/internal/lint/waiveraudit"
)

// waiveraudit is only meaningful inside a suite: it audits directives
// recognised by the other analyzers and consumes the suppression log
// they populate. Run it the way lint.Suite does — after a real
// analyzer, sharing one log.
func TestWaiveraudit(t *testing.T) {
	analysistest.RunSuite(t, "testdata",
		[]*analysis.Analyzer{centurytime.Analyzer, waiveraudit.Analyzer},
		"waiveraudit")
}
