package waiveraudit_test

import (
	"testing"

	"centuryscale/internal/lint/allocbudget"
	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/centurytime"
	"centuryscale/internal/lint/waiveraudit"
)

// waiveraudit is only meaningful inside a suite: it audits directives
// recognised by the other analyzers and consumes the suppression log
// they populate. Run it the way lint.Suite does — after real
// analyzers, sharing one log. allocbudget rides along so the
// //lint:hotpath annotation cases exercise the budget-token stripping
// and the attached-annotation staleness rule.
func TestWaiveraudit(t *testing.T) {
	analysistest.RunSuite(t, "testdata",
		[]*analysis.Analyzer{centurytime.Analyzer, allocbudget.Analyzer, waiveraudit.Analyzer},
		"waiveraudit")
}
