package syncerr_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/syncerr"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", syncerr.Analyzer, "closer")
}
