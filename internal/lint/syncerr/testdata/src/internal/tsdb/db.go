// Fixture helper: a stand-in for a durability-path type. Its import path
// suffix (internal/tsdb) puts every Close/Sync/Flush/Truncate on it under
// syncerr's watch.
package tsdb

type DB struct{}

func (*DB) Close() error { return nil }

func (*DB) Sync() error { return nil }
