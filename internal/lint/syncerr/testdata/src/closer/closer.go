// Fixture for syncerr: discarded durability errors in every statement
// shape the analyzer must catch, and the handled/waived forms it must
// accept.
package closer

import (
	"bufio"
	"net"
	"os"

	"internal/tsdb"
)

func bad(f *os.File, db *tsdb.DB, w *bufio.Writer) {
	f.Close()       // want `os\.File\.Close discards its error`
	f.Sync()        // want `os\.File\.Sync discards its error`
	f.Truncate(0)   // want `os\.File\.Truncate discards its error`
	defer f.Close() // want `defer os\.File\.Close discards its error`
	db.Close()      // want `tsdb\.DB\.Close discards its error`
	db.Sync()       // want `tsdb\.DB\.Sync discards its error`
	w.Flush()       // want `bufio\.Writer\.Flush discards its error`
}

func good(f *os.File, db *tsdb.DB) error {
	// Explicit blank assignment is a visible, greppable decision.
	_ = f.Close()
	//lint:syncerr read-only handle; close errors cannot lose data
	f.Close()
	if err := db.Close(); err != nil {
		return err
	}
	return f.Sync()
}

// Close on a non-durability receiver (a net.Conn) is another analyzer's
// business, not syncerr's.
func irrelevant(c net.Conn) {
	c.Close()
}
