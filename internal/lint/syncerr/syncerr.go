// Package syncerr implements the centurylint analyzer that refuses to let
// durability-relevant Close/Sync/Flush/Truncate errors vanish.
//
// The torn-append class of bug (PR 2): a write path that ignores the
// error from the final Close or Sync can acknowledge a record that never
// reached stable storage — the loss surfaces years later as a replay gap.
// syncerr flags statements that call Close, Sync, Flush, or Truncate and
// drop the error, when the receiver is an *os.File, a *bufio.Writer, or
// any type declared in a durability package (internal/tsdb,
// internal/cloud — where a discarded close IS a discarded fsync).
//
// Escapes, in order of preference: handle the error; write `_ = f.Close()`
// to make a deliberate best-effort discard explicit and greppable; or
// annotate `//lint:syncerr <reason>` (read-only handles, already-failed
// cleanup paths).
package syncerr

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/typeutil"
)

// DurabilityPackages are import-path suffixes whose own types' Close/
// Sync/Flush/Truncate methods are treated as durability barriers.
var DurabilityPackages = []string{"internal/tsdb", "internal/cloud"}

var checkedMethods = map[string]bool{
	"Close": true, "Sync": true, "Flush": true, "Truncate": true,
}

var Analyzer = &analysis.Analyzer{
	Name:      "syncerr",
	Directive: "syncerr",
	Doc: "flag discarded errors from Close/Sync/Flush/Truncate on files and " +
		"durability-path types; an unchecked close can silently lose " +
		"acknowledged data (torn-append class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				check(pass, stmt.X, "")
			case *ast.DeferStmt:
				check(pass, stmt.Call, "defer ")
			case *ast.GoStmt:
				check(pass, stmt.Call, "go ")
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, expr ast.Expr, context string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || !checkedMethods[fn.Name()] || !typeutil.ReturnsError(fn) {
		return
	}
	if !durabilityReceiver(fn) {
		return
	}
	recv := typeutil.ReceiverNamed(fn)
	pass.Reportf(call.Pos(),
		"%s%s.%s.%s discards its error: an unchecked %s can lose acknowledged data (torn-append class); handle it, discard explicitly with `_ =`, or annotate //lint:syncerr <reason>",
		context, recv.Obj().Pkg().Name(), recv.Obj().Name(), fn.Name(), fn.Name())
}

// durabilityReceiver reports whether fn is a method whose receiver type
// makes the discarded error durability-relevant.
func durabilityReceiver(fn *types.Func) bool {
	named := typeutil.ReceiverNamed(fn)
	if named == nil {
		return false
	}
	pkg := typeutil.PkgPath(named.Obj())
	name := named.Obj().Name()
	switch {
	case pkg == "os" && name == "File":
		return true
	case pkg == "bufio" && name == "Writer":
		return true
	case typeutil.HasPathSuffix(pkg, DurabilityPackages):
		return true
	}
	return false
}
