// Fixture for seedflow: rng sources built from nondeterministic seeds
// (the classes that break seed-identified replay) versus seeds that flow
// from configuration.
package seeds

import (
	"math/rand"
	"os"
	"time"

	"centuryscale/internal/rng"
)

func bad() {
	_ = rng.New(uint64(time.Now().UnixNano())) // want `rng\.New seeded from time\.Now`
	_ = rng.New(rand.Uint64())                 // want `rng\.New seeded from math/rand\.Uint64`
	_ = rng.New(uint64(os.Getpid()) << 1)      // want `rng\.New seeded from os\.Getpid`
}

func good(seed uint64) {
	src := rng.New(seed)
	child := src.Split("radio-noise")
	_ = child
	_ = rng.New(42)
}

func waived() {
	//lint:seedflow throwaway smoke source; never identifies an experiment
	_ = rng.New(uint64(time.Now().UnixNano()))
}
