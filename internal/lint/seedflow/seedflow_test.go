package seedflow_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/seedflow"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", seedflow.Analyzer, "seeds")
}
