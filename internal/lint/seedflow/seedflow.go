// Package seedflow implements the centurylint analyzer that guards how
// centuryscale/internal/rng sources are constructed.
//
// The whole reproduction identifies an experiment by its seed: EQUAL
// SEEDS MUST REPRODUCE RESULTS EXACTLY (cmd/centurysim -seed). That
// property dies at construction time if a seed is derived from the wall
// clock, the process environment, or another nondeterministic generator —
// the classic `rng.New(uint64(time.Now().UnixNano()))` — because the
// "seed" recorded in logs no longer regenerates the run. seedflow flags
// rng constructor calls whose seed argument syntactically contains such a
// source. Seeds must flow from configuration: a flag, an experiment
// table, or a parent Source's Split.
package seedflow

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/typeutil"
)

// RNGPackages matches the deterministic generator package.
var RNGPackages = []string{"centuryscale/internal/rng", "internal/rng"}

// constructors are the rng functions whose first argument is a seed.
var constructors = map[string]bool{"New": true}

// nondetFuncs maps package path → function names that read inherently
// nondeterministic state. An empty name set means every function in the
// package.
var nondetFuncs = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os": {
		"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true,
		"Getgid": true, "Getegid": true,
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"crypto/rand":  nil,
}

var Analyzer = &analysis.Analyzer{
	Name:      "seedflow",
	Directive: "seedflow",
	Doc: "forbid constructing centuryscale/internal/rng sources from wall-clock, " +
		"process-state, or ambient-random seeds; seeds must come from experiment " +
		"configuration so a logged seed replays the run",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutil.Callee(pass.TypesInfo, call)
			if fn == nil || !constructors[fn.Name()] ||
				!typeutil.HasPathSuffix(typeutil.PkgPath(fn), RNGPackages) {
				return true
			}
			for _, arg := range call.Args {
				if src := nondetSource(pass, arg); src != "" {
					pass.Reportf(call.Pos(),
						"rng.%s seeded from %s: a nondeterministic seed makes the run unreproducible — derive seeds from experiment configuration (flag, table, or Source.Split)",
						fn.Name(), src)
					break
				}
			}
			return true
		})
	}
	return nil
}

// nondetSource returns a description of the first nondeterministic call
// found inside expr, or "".
func nondetSource(pass *analysis.Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		path := typeutil.PkgPath(obj)
		names, ok := nondetFuncs[path]
		if !ok {
			return true
		}
		if names == nil || names[obj.Name()] {
			found = path + "." + obj.Name()
			return false
		}
		return true
	})
	return found
}
