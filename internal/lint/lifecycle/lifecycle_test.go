package lifecycle_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/lifecycle"
)

func TestLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", lifecycle.Analyzer, "internal/daemon", "pure")
}
