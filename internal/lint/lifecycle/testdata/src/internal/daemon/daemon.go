// Fixture for the lifecycle analyzer: in daemon packages every spawn
// must be tied to shutdown AND joinable. The two halves are independent
// diagnostics — a spawn can fail either or both.
package daemon

import (
	"context"
	"sync"
)

func compute() int { return 1 }

// --- good: the WaitGroup fan-out idiom. Done ties and joins at once:
// the workers observe completion through the group, Wait proves it.
func fanOut(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute()
		}()
	}
	wg.Wait()
}

// --- good: the stop/done channel pair on a long-lived loop (the tsdb
// syncLoop shape). The loop is tied through the stop receive; the
// deferred close of done is its completion signal, and Close receives
// it — a join path reachable from shutdown, across methods.
type DB struct {
	stop chan struct{}
	done chan struct{}
}

func (d *DB) loop() {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		}
	}
}

func (d *DB) Open() {
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop()
}

func (d *DB) Close() {
	close(d.stop)
	<-d.done
}

// --- good: a bounded worker joined through a local result channel; the
// send is the completion signal and the enclosing function receives it.
// Tied through ctx.
func bounded(ctx context.Context) int {
	res := make(chan int, 1)
	go func() {
		select {
		case <-ctx.Done():
			res <- 0
		case res <- compute():
		}
	}()
	return <-res
}

// --- bad: tied but unjoined. The watcher sees ctx, but nothing can
// wait for it — the enclosing function returns while the goroutine may
// still be running (the conn.Close-after-return race).
type conn struct{}

func (*conn) Close() {}

func watch(ctx context.Context, c *conn) {
	go func() { // want `goroutine has no join path`
		<-ctx.Done()
		c.Close()
	}()
}

// --- bad: joined but untied. The spawn is waited for, but it cannot
// learn the process is stopping — on a wedged compute it blocks
// shutdown forever with no escape.
func untied() int {
	res := make(chan int, 1)
	go func() { // want `goroutine is not tied to shutdown`
		res <- compute()
	}()
	return <-res
}

// --- bad: both halves missing.
func fireAndForget() {
	go func() { // want `goroutine is not tied to shutdown` `goroutine has no join path`
		compute()
	}()
}

// --- waived: a process-lifetime goroutine states its contract.
func serveForever(d *DB) {
	//lint:lifecycle process-lifetime pump: joined by process exit, the listener close is its stop signal
	go pump(d)
}

func pump(d *DB) {
	for {
		compute()
	}
}
