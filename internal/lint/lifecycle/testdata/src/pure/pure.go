// Fixture: a package outside DaemonPackages is exempt from the
// lifecycle contract — library and simulation code spawns under test
// harnesses that outlive every goroutine.
package pure

func compute() int { return 1 }

func fireAndForget() {
	go func() {
		compute()
	}()
}
