// Package lifecycle implements the centurylint analyzer that upgrades
// goroleak's "has a stop signal" to a full lifecycle contract for
// daemon code.
//
// A stop signal alone means a goroutine will *eventually* notice
// shutdown; it says nothing about who waits for it. On a century-scale
// node the difference matters twice over: a goroutine still running
// after "shutdown" holds sockets, shard handles, and WAL files that the
// restarting daemon is about to reopen (the conn.Close-after-return
// race), and a supervisor that cannot know when a child is actually
// finished cannot sequence an upgrade. So in daemon packages every `go`
// spawn must satisfy both halves of the contract:
//
//   - tied: the body can observe shutdown — a context, a struct{} stop
//     channel, or a WaitGroup, as an argument or closed over,
//     transitively through its callees (goroleak's test, applied to
//     every spawn, not just forever-loops);
//   - joined: completion is observable — the body (transitively) calls
//     (*sync.WaitGroup).Done and someone in the package Waits, or it
//     closes/sends on a channel some shutdown path in the package
//     receives from. Channels match by canonical root
//     (dataflow.ExprRoot) for fields and globals, and by object
//     identity for function-local done-channels joined in the spawning
//     function itself.
//
// Dynamic dispatch and spawns of functions outside the loaded packages
// resolve to no summary and stay quiet, as everywhere in the suite.
// Genuinely process-lifetime goroutines (an http.Serve runner whose
// join *is* the server's Shutdown) state their contract with
// `//lint:lifecycle <reason>` — the reason is mandatory, audited by
// waiveraudit.
package lifecycle

import (
	"go/ast"
	"go/types"
	"strings"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/typeutil"
)

// DaemonPackages lists the packages held to the full lifecycle
// contract, as "/"-suffixes: the long-running serving stack plus the
// daemon mains. Simulation and pure-library packages are exempt — they
// spawn under test harnesses that outlive every goroutine.
var DaemonPackages = []string{
	"internal/daemon",
	"internal/cloud",
	"internal/tsdb",
	"internal/cluster",
	"internal/resilience",
	"internal/obs",
	"internal/gateway",
	"cmd/routerd",
	"cmd/endpointd",
	"cmd/gatewayd",
	"cmd/hotspotd",
	"cmd/sensornode",
}

var Analyzer = &analysis.Analyzer{
	Name:      "lifecycle",
	Directive: "lifecycle",
	Doc: "enforce the goroutine lifecycle contract in daemon packages: every go " +
		"spawn must be tied to shutdown (ctx/stop channel/WaitGroup) and have a " +
		"join path (WaitGroup.Wait or a done-channel receive) so shutdown can " +
		"prove the goroutine finished",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !typeutil.HasPathSuffix(pass.Pkg.Path(), DaemonPackages) {
		return nil
	}
	index := pass.Summaries
	if index == nil {
		index = dataflow.NewIndex()
		index.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		index.Resolve()
	}

	// The package-side join evidence: who Waits, and which channel
	// roots shutdown paths receive from. Computed from this package's
	// own (resolved) summaries.
	pkgWaits := false
	pkgReceives := make(map[string]bool)
	prefix := pass.Pkg.Path() + "."
	for _, name := range index.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		s := index.Lookup(name)
		if s.CallsWGWait {
			pkgWaits = true
		}
		for _, r := range receivesOf(index, s) {
			pkgReceives[r] = true
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, index, fd, pkgWaits, pkgReceives)
		}
	}
	return nil
}

// checkFunc examines every spawn lexically inside one declaration,
// with the declaration's body as the local-join scope.
func checkFunc(pass *analysis.Pass, index *dataflow.Index, fd *ast.FuncDecl, pkgWaits bool, pkgReceives map[string]bool) {
	// Local join scope: channel objects the enclosing function receives
	// from, and whether it Waits — a spawn joined right where it was
	// made (the fan-out idiom) needs no package-wide evidence.
	localRecv := make(map[types.Object]bool)
	localWaits := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if obj := chanObj(pass.TypesInfo, n.X); obj != nil {
					localRecv[obj] = true
				}
			}
		case *ast.RangeStmt:
			if _, isChan := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				if obj := chanObj(pass.TypesInfo, n.X); obj != nil {
					localRecv[obj] = true
				}
			}
		case *ast.CallExpr:
			if callee := typeutil.Callee(pass.TypesInfo, n); callee != nil &&
				callee.Name() == "Wait" && typeutil.IsMethodOf(callee, "sync", "WaitGroup") {
				localWaits = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		checkSpawn(pass, index, g, pkgWaits || localWaits, pkgReceives, localRecv)
		return true
	})
}

func checkSpawn(pass *analysis.Pass, index *dataflow.Index, g *ast.GoStmt, anyWaits bool, pkgReceives map[string]bool, localRecv map[types.Object]bool) {
	call := g.Call

	var sum *dataflow.FuncSummary
	var lit *ast.FuncLit
	name := "the function literal"
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		lit = fun
		sum = dataflow.SummarizeLit(pass.TypesInfo, fun)
	default:
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return // dynamic dispatch: no summary, stay quiet
		}
		sum = index.Lookup(dataflow.Name(callee))
		if sum == nil {
			return // outside the loaded packages
		}
		name = callee.Name()
	}

	// Half one: tied to shutdown.
	tied := index.StopsOf(sum)
	for _, arg := range call.Args {
		if isStopArg(pass.TypesInfo.TypeOf(arg)) {
			tied = true
		}
	}
	if !tied {
		pass.Reportf(g.Pos(),
			"goroutine is not tied to shutdown: %s observes no context, stop channel, or WaitGroup; in a daemon package every spawn must be able to learn the process is stopping — pass a ctx or annotate //lint:lifecycle <reason>",
			name)
	}

	// Half two: a join path reachable from shutdown.
	joined := false
	if wgDoneOf(index, sum) || hasWGArg(pass.TypesInfo, call) {
		joined = anyWaits
	}
	if !joined {
		for _, root := range signalsOf(index, sum) {
			if pkgReceives[root] {
				joined = true
				break
			}
		}
	}
	if !joined && lit != nil {
		// Local done-channel: the literal closes/sends a function-local
		// channel the spawning function receives from.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
					if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
						if obj := chanObj(pass.TypesInfo, n.Args[0]); obj != nil && localRecv[obj] {
							joined = true
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanObj(pass.TypesInfo, n.Chan); obj != nil && localRecv[obj] {
					joined = true
				}
			}
			return true
		})
	}
	if !joined {
		pass.Reportf(g.Pos(),
			"goroutine has no join path: nothing can wait for %s to finish — shutdown returns while it may still hold sockets or shard handles; give it a WaitGroup (Done here, Wait on the shutdown path) or a done channel someone receives from, or annotate //lint:lifecycle <reason>",
			name)
	}
}

// wgDoneOf reports whether the body calls WaitGroup.Done, directly or
// through resolved callees.
func wgDoneOf(index *dataflow.Index, s *dataflow.FuncSummary) bool {
	if s.CallsWGDone {
		return true
	}
	for _, c := range s.Calls {
		if t := index.Lookup(c); t != nil && t.CallsWGDone {
			return true
		}
	}
	return false
}

// signalsOf returns the canonical channel roots the body closes or
// sends on, directly or through resolved callees — its completion
// signals.
func signalsOf(index *dataflow.Index, s *dataflow.FuncSummary) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(roots []string) {
		for _, r := range roots {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	add(s.ClosesChans)
	add(s.SendsChans)
	for _, c := range s.Calls {
		if t := index.Lookup(c); t != nil {
			add(t.ClosesChans)
			add(t.SendsChans)
		}
	}
	return out
}

// receivesOf mirrors signalsOf for the receiving side.
func receivesOf(index *dataflow.Index, s *dataflow.FuncSummary) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(roots []string) {
		for _, r := range roots {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	add(s.ReceivesChans)
	for _, c := range s.Calls {
		if t := index.Lookup(c); t != nil {
			add(t.ReceivesChans)
		}
	}
	return out
}

// chanObj resolves a channel expression to its variable object when it
// is a plain identifier (function-local done channels); selector-based
// channels go through canonical roots instead.
func chanObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// hasWGArg reports whether the spawn passes a *sync.WaitGroup.
func hasWGArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t == nil {
			continue
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "WaitGroup" && typeutil.PkgPath(obj) == "sync" {
					return true
				}
			}
		}
	}
	return false
}

// isStopArg matches goroleak's: a context, struct{} channel, or
// WaitGroup pointer argument hands the goroutine a shutdown signal.
func isStopArg(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Context" && typeutil.PkgPath(obj) == "context" {
			return true
		}
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && typeutil.PkgPath(obj) == "sync" {
				return true
			}
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}
