// Fixture for the centurytime analyzer. The load-bearing cases are the
// 292/293-year boundary pair: reaching definitions must prove one side
// safe and the other overflowing from the same variable.
package centurytime

import "time"

const Year = 365 * 24 * time.Hour

// boundary exercises the exact bound computation through reaching
// definitions: the same variable is provably safe at one use and
// provably overflowing at the next.
func boundary() {
	n := 292
	_ = time.Duration(n) * Year // 292 years = 9.2085e18 ns <= 2^63-1: provably safe
	n = 293
	_ = time.Duration(n) * Year // want "past the int64-nanosecond ceiling"
}

// branchJoin merges two reaching definitions; the worst one overflows.
func branchJoin(long bool) time.Duration {
	n := 100
	if long {
		n = 293
	}
	return time.Duration(n) * Year // want "past the int64-nanosecond ceiling"
}

// branchJoinSafe merges two reaching definitions, both provably safe.
func branchJoinSafe(long bool) time.Duration {
	n := 100
	if long {
		n = 292
	}
	return time.Duration(n) * Year
}

// unknownYears multiplies an unbounded count by a year-scale unit: any
// plausible century-scale value overflows.
func unknownYears(years int) time.Duration {
	return time.Duration(years) * Year // want "unbounded count times a year-scale unit"
}

// chain folds the constant leaves of the whole multiplication chain
// before judging the unit scale.
func chain(years int) time.Duration {
	return time.Duration(years) * 365 * 24 * time.Hour // want "unbounded count times a year-scale unit"
}

// opaqueDef: a definition from a function call is unbounded.
func opaqueDef() time.Duration {
	n := configuredYears()
	return time.Duration(n) * Year // want "unbounded count times a year-scale unit"
}

func configuredYears() int { return 10 }

// smallUnits stays quiet: an unknown count of seconds or days needs an
// implausible value (>100k days) to wrap.
func smallUnits(n int) time.Duration {
	a := time.Duration(n) * time.Second
	b := time.Duration(n) * 24 * time.Hour
	return a + b
}

// product multiplies two opaque durations: nanoseconds squared.
func product(a, b time.Duration) time.Duration {
	return a * b // want "multiplying two non-constant time.Durations"
}

// countIdiom is the accepted shape: the conversion marks n as a
// unitless count against a runtime-configured unit.
func countIdiom(n int, unit time.Duration) time.Duration {
	return time.Duration(n) * unit
}

// boundedSum: addition of bounded values past the ceiling is caught by
// the exact path even though unbounded sums stay quiet.
func boundedSum() time.Duration {
	d := 200 * Year
	return d + 100*Year // want "past the int64-nanosecond ceiling"
}
