package centurytime_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/centurytime"
)

func TestCenturytime(t *testing.T) {
	analysistest.Run(t, "testdata", centurytime.Analyzer, "centurytime")
}
