// Package centurytime implements the centurylint analyzer that catches
// time.Duration arithmetic that overflows int64 nanoseconds on
// century-scale horizons.
//
// A time.Duration is an int64 count of nanoseconds, which tops out at
// about 292.47 Julian years. That is comfortably past the paper's
// 100-year mark — until arithmetic multiplies a horizon by a year-scale
// unit: `years * 365 * 24 * time.Hour` silently wraps at years >= 293,
// and the simulator then schedules events in the negative past or
// truncates a retention window to garbage. The failure is the worst
// kind for a century system: every test with a 10-year horizon passes,
// and the wrap surfaces decades into a real deployment (or a long
// ablation run) as quietly corrupted timelines.
//
// The analyzer evaluates every Duration-typed +, -, * expression with
// the dataflow engine's reaching definitions:
//
//   - If every operand is bounded (constants, or locals whose every
//     reaching definition is a constant), the product/sum is computed
//     exactly; a bound beyond 2^63-1 ns is reported, a provably-safe
//     bound is not. This is what makes the 292↔293-year boundary sharp
//     instead of heuristic.
//   - If an unbounded operand is multiplied by a constant factor of
//     roughly a quarter-year or more (the chain's constants are folded
//     first, so `x * 365 * 24 * time.Hour` counts as year-scale), the
//     expression is reported: any plausible century-scale count
//     overflows within a millennium. Small units (seconds, hours, days)
//     with unknown counts are left alone — they need implausible
//     counts to wrap.
//   - Multiplying two non-constant Durations (neither written as the
//     `time.Duration(n) * unit` count idiom) is reported outright:
//     nanoseconds-squared has no meaning and wraps almost immediately.
//
// Fixes: hold long horizons in the coarse sim.Tick clock (whole
// seconds: ±292 billion years), build them with the saturating sim.Mul,
// or restructure so the multiplication happens in float64 years as
// sim.Years does. Intentional sites annotate
// `//lint:centurytime <reason>`.
package centurytime

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name:      "centurytime",
	Directive: "centurytime",
	Doc: "flag time.Duration arithmetic that can exceed int64 nanoseconds (~292 " +
		"years) on century-scale horizons: year-scale constant factors times " +
		"unbounded counts, provably-overflowing bounded products, and " +
		"duration-times-duration multiplication",
	Run: run,
}

// maxDuration is 2^63-1 — the int64-nanosecond ceiling, ~292.47 Julian
// years.
var maxDuration = constant.MakeInt64(1<<63 - 1)

// maxPlausibleCount is the largest count of units an unbounded operand
// is assumed to plausibly carry at century scale. A constant factor C
// triggers the unknown-count report only when MaxInt64/C < this — i.e.
// C is roughly a quarter Julian year or larger. 1000 year-units spans
// a millennium; 1000 day-units is under three years and cannot wrap.
const maxPlausibleCount = 1000

type funcScope struct {
	body     *ast.BlockStmt
	reaching *dataflow.Reaching // built lazily on the first candidate
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// Collect every function body — declarations and literals —
		// since each needs its own CFG and reaching solution.
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		for _, body := range bodies {
			checkBody(pass, body)
		}
	}
	return nil
}

// checkBody scans one function body (skipping nested literals, which
// get their own scope) for outermost Duration arithmetic.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	scope := &funcScope{body: body}
	// Outermost-first: once an expression is handled, its sub-
	// expressions are not reported separately.
	handled := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || handled[bin] {
			return !handled[bin]
		}
		switch bin.Op {
		case token.MUL, token.ADD, token.SUB:
		default:
			return true
		}
		if !isDuration(pass.TypesInfo.TypeOf(bin)) {
			return true
		}
		if cv := pass.TypesInfo.Types[bin]; cv.Value != nil {
			// Fully constant: the compiler already rejects typed
			// constant overflow.
			return true
		}
		markArithChildren(bin, handled)
		checkExpr(pass, scope, bin)
		return true
	})
}

// markArithChildren marks nested +,-,* sub-expressions of e as covered
// by the outermost report.
func markArithChildren(e ast.Expr, handled map[ast.Expr]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b != e {
			switch b.Op {
			case token.MUL, token.ADD, token.SUB:
				handled[b] = true
			}
		}
		return true
	})
}

func checkExpr(pass *analysis.Pass, scope *funcScope, bin *ast.BinaryExpr) {
	// Exact path first: a fully bounded expression either provably
	// overflows or is provably safe.
	if bound, ok := boundOf(pass, scope, bin); ok {
		if constant.Compare(bound, token.GTR, maxDuration) {
			years := yearsOf(bound)
			pass.Reportf(bin.Pos(),
				"duration arithmetic reaches %s (~%.0f years), past the int64-nanosecond ceiling of ~292 years; hold long horizons in sim.Tick or build them with the saturating sim.Mul (internal/sim), or annotate //lint:centurytime <reason>",
				bound.ExactString(), years)
		}
		return
	}

	if bin.Op != token.MUL {
		// Unbounded sums stay quiet: addition needs ~2^62 before it
		// wraps and flagging every `a + b` would bury the signal.
		return
	}

	leaves := flattenMul(bin)
	constFactor := constant.MakeInt64(1)
	var unknown []ast.Expr
	for _, leaf := range leaves {
		if b, ok := boundOf(pass, scope, leaf); ok {
			constFactor = constant.BinaryOp(constFactor, token.MUL, b)
			continue
		}
		unknown = append(unknown, leaf)
	}

	switch {
	case len(unknown) >= 2:
		// ns × ns: meaningless and wraps almost immediately — unless
		// written as the count idiom, where the conversion marks which
		// side is a count (count × runtime-configured unit: unbounded
		// but idiomatic, handled by review not lint).
		counts := 0
		for _, u := range unknown {
			if isCountConversion(pass, u) {
				counts++
			}
		}
		if counts < len(unknown)-1 {
			pass.Reportf(bin.Pos(),
				"multiplying two non-constant time.Durations (nanoseconds × nanoseconds) wraps int64 almost immediately; make one factor a unitless count — time.Duration(n) * unit — or use sim.Mul (internal/sim), or annotate //lint:centurytime <reason>")
		}
	case len(unknown) == 1:
		if constant.Sign(constFactor) == 0 {
			return
		}
		limit := constant.BinaryOp(maxDuration, token.QUO, absVal(constFactor))
		if constant.Compare(limit, token.LSS, constant.MakeInt64(maxPlausibleCount)) {
			pass.Reportf(bin.Pos(),
				"unbounded count times a year-scale unit (%s ns per unit) overflows int64 nanoseconds at only %s units — a ~100-year horizon is int64-safe but 293 years is not; bound the count, use the coarse sim.Tick clock or saturating sim.Mul (internal/sim), or annotate //lint:centurytime <reason>",
				absVal(constFactor).ExactString(), limit.ExactString())
		}
	}
}

// flattenMul returns the leaves of a multiplication chain, looking
// through parentheses.
func flattenMul(e ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.MUL {
		return append(flattenMul(b.X), flattenMul(b.Y)...)
	}
	return []ast.Expr{e}
}

// boundOf computes an upper bound on |e| as an exact constant, using
// reaching definitions to bound locals whose every definition is a
// constant. ok=false means unbounded at this layer.
func boundOf(pass *analysis.Pass, scope *funcScope, e ast.Expr) (constant.Value, bool) {
	e = ast.Unparen(e)
	if tv := pass.TypesInfo.Types[e]; tv.Value != nil && tv.Value.Kind() == constant.Int {
		return absVal(tv.Value), true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return boundOfIdent(pass, scope, e)
	case *ast.CallExpr:
		// A conversion (time.Duration(x), int64(x)) preserves the bound.
		if len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return boundOf(pass, scope, e.Args[0])
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return boundOf(pass, scope, e.X)
		}
	case *ast.BinaryExpr:
		x, okX := boundOf(pass, scope, e.X)
		switch e.Op {
		case token.MUL:
			y, okY := boundOf(pass, scope, e.Y)
			if okX && okY {
				return constant.BinaryOp(x, token.MUL, y), true
			}
		case token.ADD, token.SUB:
			y, okY := boundOf(pass, scope, e.Y)
			if okX && okY {
				// |a±b| <= |a|+|b|
				return constant.BinaryOp(x, token.ADD, y), true
			}
		case token.QUO, token.REM:
			// |a/b| <= |a| and |a%b| <= |a| for any nonzero integer b.
			if okX {
				return x, true
			}
		}
	}
	return nil, false
}

// boundOfIdent bounds a local variable through its reaching
// definitions: every definition must carry a constant expression.
func boundOfIdent(pass *analysis.Pass, scope *funcScope, id *ast.Ident) (constant.Value, bool) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, false
	}
	if c, ok := obj.(*types.Const); ok {
		if v := c.Val(); v != nil && v.Kind() == constant.Int {
			return absVal(v), true
		}
		return nil, false
	}
	if scope.reaching == nil {
		cfg := dataflow.NewCFG(scope.body)
		scope.reaching = dataflow.ReachingDefs(cfg, scope.body, pass.TypesInfo)
	}
	defs, ok := scope.reaching.At(id)
	if !ok {
		return nil, false
	}
	var bound constant.Value
	for _, d := range defs {
		if d.Rhs == nil {
			return nil, false
		}
		tv := pass.TypesInfo.Types[d.Rhs]
		if tv.Value == nil || tv.Value.Kind() != constant.Int {
			return nil, false
		}
		v := absVal(tv.Value)
		if bound == nil || constant.Compare(v, token.GTR, bound) {
			bound = v
		}
	}
	return bound, bound != nil
}

// isCountConversion reports whether e is the `time.Duration(intExpr)`
// idiom: an explicit conversion marking a unitless count.
func isCountConversion(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

func absVal(v constant.Value) constant.Value {
	if constant.Sign(v) < 0 {
		return constant.UnaryOp(token.SUB, v, 0)
	}
	return v
}

func yearsOf(v constant.Value) float64 {
	f, _ := constant.Float64Val(v)
	return f / (365.25 * 24 * 3600 * 1e9)
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
