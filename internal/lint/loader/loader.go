// Package loader turns Go packages into the parsed, fully type-checked
// form centurylint's analyzers consume — using only the standard library
// and the go tool itself.
//
// The conventional driver for go/analysis checkers is
// golang.org/x/tools/go/packages, which this offline repository cannot
// vendor. The mechanism that library uses is available without it, though:
// `go list -export -deps -json` makes the go command compile the
// dependency graph and report, for every package, the path of its export
// data in the build cache. Target packages are then re-parsed from source
// (with comments, so //lint: directives survive) and type-checked with
// go/types, resolving every import through the stdlib gc importer pointed
// at those export files. That is exactly the x/tools loading strategy,
// reimplemented in ~200 lines.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A ListedPackage is the subset of `go list -json` output the loader
// consumes.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// GoList runs `go list -json=<fields> args...` in dir and decodes the
// package stream.
func GoList(dir string, args ...string) ([]*ListedPackage, error) {
	cmdArgs := append([]string{
		"list", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportMap extracts importPath → export-data-file from a GoList result.
func ExportMap(pkgs []*ListedPackage) map[string]string {
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// NewImporter returns a types.Importer that resolves import paths present
// in exports through gc export data, and everything else through local
// (which may be nil). The fallback exists for analysistest fixtures whose
// helper packages live under testdata/src and are type-checked from
// source.
func NewImporter(fset *token.FileSet, exports map[string]string, local func(path string) (*types.Package, error)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &comboImporter{gc: gc, exports: exports, local: local}
}

type comboImporter struct {
	gc      types.Importer
	exports map[string]string
	local   func(path string) (*types.Package, error)
}

func (c *comboImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := c.exports[path]; ok {
		return c.gc.Import(path)
	}
	if c.local != nil {
		return c.local(path)
	}
	return nil, fmt.Errorf("loader: unresolved import %q", path)
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ParseDir parses the named Go files (absolute, or relative to dir) with
// comments preserved.
func ParseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// Check type-checks one package from its parsed files.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("loader: type errors in %s: %v", path, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	return pkg, info, nil
}

// inTestdata reports whether dir sits under a testdata directory.
func inTestdata(dir string) bool {
	for _, part := range strings.Split(filepath.ToSlash(dir), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// Load builds and type-checks the packages matching patterns, rooted at
// dir. The returned slice holds only the matched packages (dependencies
// are consumed as export data, never re-parsed), in `go list` order.
// Packages under a testdata directory are skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-export", "-deps"}, patterns...)
	listed, err := GoList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := ExportMap(listed)
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if inTestdata(lp.Dir) {
			// The go tool already keeps testdata out of ./... wildcards;
			// this guards the explicit-pattern path too, so analyzer
			// fixtures (which deliberately violate the invariants) can
			// never leak into a lint run.
			continue
		}
		files, err := ParseDir(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", lp.ImportPath, err)
		}
		tpkg, info, err := Check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path:  lp.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}
