package loader_test

import (
	"go/types"
	"testing"

	"centuryscale/internal/lint/loader"
)

// TestLoadTypeChecksAgainstRealDependencies loads a real module package
// through the full pipeline — go list -export, source parse, go/types
// check against gc export data — and verifies the result carries usable
// type information, imports resolved through export data included.
func TestLoadTypeChecksAgainstRealDependencies(t *testing.T) {
	pkgs, err := loader.Load(".", "centuryscale/internal/tsdb")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "centuryscale/internal/tsdb" {
		t.Fatalf("loaded %q", pkg.Path)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no parsed files")
	}
	// Comments must survive parsing: //lint: directive suppression
	// depends on them.
	comments := 0
	for _, f := range pkg.Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Fatal("parsed files carry no comments; directives would be invisible")
	}

	// The DB type and a method resolved through an export-data import
	// (lpwan.EUI64 appears in its signatures) must be present and typed.
	obj := pkg.Types.Scope().Lookup("DB")
	if obj == nil {
		t.Fatal("tsdb.DB not found in package scope")
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("tsdb.DB is %T, want *types.Named", obj.Type())
	}
	found := false
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Append" {
			found = true
		}
	}
	if !found {
		t.Fatal("tsdb.DB has no Append method after type-checking")
	}
	if len(pkg.Info.Uses) == 0 || len(pkg.Info.Selections) == 0 {
		t.Fatal("types.Info not populated")
	}
}

// TestLoadRejectsBrokenPatterns: loading failures must surface as
// errors, not as silently-empty analysis runs (a lint gate that loads
// nothing passes everything).
func TestLoadRejectsBrokenPatterns(t *testing.T) {
	if _, err := loader.Load(".", "centuryscale/internal/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
