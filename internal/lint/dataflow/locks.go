// Lock-effect extraction: the dataflow layer under the lockorder
// analyzer. Each function body is walked once, tracking which mutex
// roots are held at every point, producing two effect lists on the
// FuncSummary:
//
//   - Acquires: every mu.Lock()/mu.RLock() whose receiver resolves to a
//     stable root, with the set of roots already held at that moment;
//   - CallsUnder: every statically-resolved call made while at least one
//     root is held.
//
// A root names a lock *family*, not an instance: every (*guardShard).mu
// in the program is one root, because lock-order discipline is a
// property of the type's locking protocol, not of one object. Receiver
// fields canonicalize through the named type that declares them
// ("pkg.(Type).field"), package-level mutexes through their package
// ("pkg.var"). Locals and fields of unnamed types resolve to no root
// and contribute nothing — conservative in the no-false-positive
// direction, exactly like dynamic dispatch in the call summaries.
//
// Loops get one extra fact. A body that locks a root and does not
// release it before the next iteration is accumulating instances of the
// same family — the "grab every shard" pattern — which is a
// self-deadlock between two goroutines unless all acquirers agree on an
// order. The walk marks such acquisitions Looped, and marks them
// IndexOrdered when the iteration itself fixes the order: a range over
// a slice or array (Go iterates ascending), or an index expression
// driven by the enclosing for-loop's counter. lockorder treats
// index-ordered accumulation as a safe hierarchy (the guard-shard
// barrier idiom) and flags the rest.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Acquire is one lock acquisition with its held-set context.
type Acquire struct {
	// Root is the canonical lock family acquired.
	Root string
	// Held lists the roots already held at the acquisition, in
	// acquisition order.
	Held []string
	// Pos is the position of the Lock/RLock call.
	Pos token.Pos
	// Looped marks an acquisition that accumulates across iterations of
	// its enclosing loop: the body locks Root and does not release it
	// before the next iteration.
	Looped bool
	// IndexOrdered marks a Looped acquisition whose order is fixed by
	// the iteration itself: a range over a slice/array, or a receiver
	// indexed by the enclosing for-loop's counter variable.
	IndexOrdered bool
}

// A CallUnder is one statically-resolved call made while locks are held.
type CallUnder struct {
	// Callee is the qualified summary key of the called function.
	Callee string
	// Held lists the roots held at the call, in acquisition order.
	Held []string
	// Pos is the position of the call expression.
	Pos token.Pos
}

// ExprRoot returns the canonical root naming the variable or field an
// expression denotes, for the whole-program lock and channel graphs:
// "pkg.(Type).field" when the expression is a field of a named type
// (every instance of the type maps to one root), "pkg.var" for a
// package-level variable, "" when no stable root exists (locals,
// unnamed types) — the conservative-quiet direction. Indexing and
// dereferencing are transparent: s.guards[i].mu and (*p).mu resolve
// like s.guards.mu and p.mu.
func ExprRoot(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		if named := derefNamed(info.TypeOf(e.X)); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + e.Sel.Name
		}
		if root := ExprRoot(info, e.X); root != "" {
			return root + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		return ExprRoot(info, e.X)
	case *ast.StarExpr:
		return ExprRoot(info, e.X)
	}
	return ""
}

// derefNamed returns the named type behind t, looking through one level
// of pointer, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// LockOp matches `<expr>.Lock()`-shaped calls on sync.Mutex/RWMutex,
// returning the receiver expression and the operation name.
func LockOp(info *types.Info, expr ast.Expr) (recv ast.Expr, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// loopFrame describes the innermost loop enclosing a statement, for the
// index-order test.
type loopFrame struct {
	// rangeOverSeq is true for a range over a slice or array: Go
	// iterates those in ascending index order, so any per-element
	// acquisition inside is index-ordered by construction.
	rangeOverSeq bool
	// counter is the for-loop counter variable (or the range key), when
	// one exists; an acquisition whose receiver indexes by it is
	// index-ordered.
	counter types.Object
	// iterVars are the range Key/Value objects: a receiver rooted at
	// one of them iterates with the range, inheriting its order.
	iterVars []types.Object
}

// lockWalker accumulates lock effects for one body.
type lockWalker struct {
	info *types.Info
	sum  *FuncSummary
}

// walkLocks records Acquires and CallsUnder for the body of one
// function. It mirrors the nesting discipline lockedio uses: branches
// are scanned with a copy of the held list, so a branch-local Lock
// never leaks into the enclosing block; loop bodies additionally report
// their net-acquired roots, which both marks Looped acquisitions and
// keeps post-loop calls aware of locks the loop accumulated.
func walkLocks(info *types.Info, sum *FuncSummary, body *ast.BlockStmt) {
	w := &lockWalker{info: info, sum: sum}
	w.block(body.List, &[]string{}, nil)
}

func cloneHeld(h []string) *[]string {
	c := append([]string(nil), h...)
	return &c
}

func removeLast(h []string, root string) []string {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == root {
			return append(h[:i], h[i+1:]...)
		}
	}
	return h
}

func (w *lockWalker) block(stmts []ast.Stmt, held *[]string, loop *loopFrame) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := LockOp(w.info, s.X); ok {
				root := ExprRoot(w.info, recv)
				if root == "" {
					continue
				}
				switch op {
				case "Lock", "RLock":
					w.acquire(root, recv, s.X.Pos(), *held, loop)
					*held = append(*held, root)
				case "Unlock", "RUnlock":
					*held = removeLast(*held, root)
				}
				continue
			}
			w.callsIn(s, *held)
		case *ast.DeferStmt:
			// A deferred Unlock holds the region to function end; other
			// deferred calls run after the body, outside every region
			// opened here. Neither contributes a call-under-lock.
		case *ast.GoStmt:
			// The spawned goroutine does not hold this goroutine's locks.
		case *ast.BlockStmt:
			w.block(s.List, cloneHeld(*held), loop)
		case *ast.IfStmt:
			w.callsIn(s.Init, *held)
			w.callsIn(s.Cond, *held)
			w.block(s.Body.List, cloneHeld(*held), loop)
			if s.Else != nil {
				w.block([]ast.Stmt{s.Else}, cloneHeld(*held), loop)
			}
		case *ast.ForStmt:
			w.callsIn(s.Init, *held)
			w.callsIn(s.Cond, *held)
			w.callsIn(s.Post, *held)
			w.loopBody(s.Body.List, held, forFrame(w.info, s))
		case *ast.RangeStmt:
			w.callsIn(s.X, *held)
			w.loopBody(s.Body.List, held, rangeFrame(w.info, s))
		case *ast.SwitchStmt:
			w.callsIn(s.Init, *held)
			w.callsIn(s.Tag, *held)
			w.cases(s.Body, *held, loop)
		case *ast.TypeSwitchStmt:
			w.cases(s.Body, *held, loop)
		case *ast.SelectStmt:
			w.cases(s.Body, *held, loop)
		case *ast.LabeledStmt:
			w.block([]ast.Stmt{s.Stmt}, held, loop)
		default:
			w.callsIn(stmt, *held)
		}
	}
}

// loopBody scans one loop body and merges its net-acquired roots into
// the caller's held list: a root locked in the body and not released
// there is genuinely held after the loop (and across iterations, which
// is what Looped records).
//
// Net acquisition is a syntactic count — locks minus unlocks anywhere
// in the body, at any branch depth — rather than the branch-cloned held
// walk: a loop that locks at the top and releases inside every switch
// arm (the Uplink drain pattern) releases per iteration, which the
// clones cannot see. Deferred unlocks do NOT count as releases: they
// run at function end, so a `defer mu.Unlock()` inside a loop body
// really does accumulate one pending lock per iteration.
func (w *lockWalker) loopBody(stmts []ast.Stmt, held *[]string, frame *loopFrame) {
	inner := cloneHeld(*held)
	firstAcquire := len(w.sum.Acquires)
	w.block(stmts, inner, frame)

	net := w.netRoots(stmts)
	// IndexOrdered is a claim about accumulation order; on an
	// acquisition the loop releases before its next iteration it means
	// nothing, so it only survives on Looped ones.
	for i := firstAcquire; i < len(w.sum.Acquires); i++ {
		if net[w.sum.Acquires[i].Root] > 0 {
			w.sum.Acquires[i].Looped = true
		} else {
			w.sum.Acquires[i].IndexOrdered = false
		}
	}
	// The accumulated roots stay held after the loop.
	var nets []string
	for r, n := range net {
		if n > 0 {
			nets = append(nets, r)
		}
	}
	sort.Strings(nets)
	*held = append(*held, nets...)
}

// netRoots counts, per lock root, acquisitions minus releases anywhere
// in the statements, at any branch depth — skipping deferred calls,
// nested literals, and spawned goroutines, none of which run within the
// iteration.
func (w *lockWalker) netRoots(stmts []ast.Stmt) map[string]int {
	net := make(map[string]int)
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if recv, op, ok := LockOp(w.info, n); ok {
					root := ExprRoot(w.info, recv)
					if root == "" {
						return true
					}
					switch op {
					case "Lock", "RLock":
						net[root]++
					case "Unlock", "RUnlock":
						net[root]--
					}
				}
			}
			return true
		})
	}
	return net
}

func (w *lockWalker) cases(body *ast.BlockStmt, held []string, loop *loopFrame) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.callsIn(e, held)
			}
			w.block(cc.Body, cloneHeld(held), loop)
		case *ast.CommClause:
			w.callsIn(cc.Comm, held)
			w.block(cc.Body, cloneHeld(held), loop)
		}
	}
}

// acquire records one acquisition, deciding index-orderedness from the
// innermost enclosing loop.
func (w *lockWalker) acquire(root string, recv ast.Expr, pos token.Pos, held []string, loop *loopFrame) {
	a := Acquire{
		Root: root,
		Held: append([]string(nil), held...),
		Pos:  pos,
	}
	if loop != nil {
		a.IndexOrdered = w.indexOrdered(recv, loop)
	}
	w.sum.Acquires = append(w.sum.Acquires, a)
}

// indexOrdered reports whether the receiver's iteration order is fixed
// by the enclosing loop: rooted at a slice/array range variable, or
// indexed by the loop counter.
func (w *lockWalker) indexOrdered(recv ast.Expr, loop *loopFrame) bool {
	ordered := false
	ast.Inspect(recv, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := w.info.Uses[n]; obj != nil && loop.rangeOverSeq {
				for _, v := range loop.iterVars {
					if obj == v {
						ordered = true
					}
				}
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.Index).(*ast.Ident); ok && loop.counter != nil {
				if w.info.Uses[id] == loop.counter {
					ordered = true
				}
			}
		}
		return true
	})
	return ordered
}

// callsIn records every statically-resolved call inside node while any
// lock is held. Function literals are skipped: their bodies run when
// invoked, not here. An empty held set contributes nothing to the lock
// graph, so lock-free regions cost nothing.
func (w *lockWalker) callsIn(node ast.Node, held []string) {
	if node == nil || len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A nested Lock/Unlock expression is an acquisition, not a call
		// into the graph (handled by the statement walk when it stands
		// alone; inside a larger expression the receiver is untrackable
		// anyway).
		if _, _, isLockOp := LockOp(w.info, call); isLockOp {
			return true
		}
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = w.info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = w.info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		name := Name(callee)
		if name == "" {
			return true
		}
		w.sum.CallsUnder = append(w.sum.CallsUnder, CallUnder{
			Callee: name,
			Held:   append([]string(nil), held...),
			Pos:    call.Pos(),
		})
		return true
	})
}

// forFrame extracts the counter variable of a classic counted for loop
// (`for i := 0; i < n; i++` and friends). Only the counter identity
// matters: an acquisition indexed by it follows the loop's own order.
func forFrame(info *types.Info, s *ast.ForStmt) *loopFrame {
	f := &loopFrame{}
	if init, ok := s.Init.(*ast.AssignStmt); ok && len(init.Lhs) == 1 {
		if id, ok := init.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				f.counter = obj
			} else if obj := info.Uses[id]; obj != nil {
				f.counter = obj
			}
		}
	}
	return f
}

// rangeFrame extracts the iteration variables of a range loop and
// whether the ranged expression is a slice or array (ascending index
// order by the language spec).
func rangeFrame(info *types.Info, s *ast.RangeStmt) *loopFrame {
	f := &loopFrame{}
	switch info.TypeOf(s.X).Underlying().(type) {
	case *types.Slice, *types.Array:
		f.rangeOverSeq = true
	case *types.Pointer:
		if p, ok := info.TypeOf(s.X).Underlying().(*types.Pointer); ok {
			if _, isArr := p.Elem().Underlying().(*types.Array); isArr {
				f.rangeOverSeq = true
			}
		}
	}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			f.iterVars = append(f.iterVars, obj)
			if f.counter == nil && s.Key == e {
				f.counter = obj
			}
		}
	}
	return f
}
