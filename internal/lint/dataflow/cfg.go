// Package dataflow is the SSA-lite engine under centurylint's
// flow-sensitive analyzers: a per-function control-flow graph over
// go/ast, reaching-definitions on that graph, and interprocedural call
// summaries that let analyzers see across package boundaries.
//
// "SSA-lite" is a deliberate trade. Full SSA (the x/tools/go/ssa route)
// buys precise value flow at the cost of a second IR, phi placement,
// and a much larger surface to keep correct offline. The invariants
// centurylint enforces — can this multiplication overflow int64
// nanoseconds, does this goroutine ever observe a stop signal, does
// this locked region reach a syscall — need only (a) which definitions
// of a variable reach a use and (b) a conservative per-function effect
// summary. Both are computable directly on the AST the analyzers
// already hold, with go/types answering every name-resolution question.
//
// The three layers:
//
//   - CFG (this file): basic blocks of ast.Node with successor edges,
//     built per function body. if/for/range/switch/select/labels/
//     goto/break/continue/return are modelled; defer and go bodies are
//     deliberately not inlined (they do not run at their textual
//     position).
//   - Reaching definitions (reaching.go): a classic gen/kill worklist
//     over the CFG, answering "which assignments can reach this use".
//   - Call summaries (summary.go): per-function effect bits (blocking
//     I/O, infinite loops, context/stop-channel/WaitGroup usage) with a
//     cross-package fixpoint, keyed by qualified function name.
package dataflow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A Block is a straight-line run of AST nodes: statements, plus the
// condition/tag/iteration expressions that execute at that point.
// Compound statements never appear whole — their bodies live in other
// blocks — with one exception: a *ast.RangeStmt node marks the loop
// head where its Key/Value variables are (re)defined on each iteration.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is
// the entry; Exit is the single synthetic exit block (empty) that every
// return and the natural fall-off edge lead to.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// NewCFG builds the control-flow graph of one function body. Nested
// function literals are not descended into: their statements execute
// when the literal is called, not here, so they belong to their own
// CFG.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	b.link(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target)
		}
	}
	return b.cfg
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopCtx is one entry of the break/continue target stacks. label is ""
// for the innermost implicit target.
type loopCtx struct {
	label  string
	target *Block
}

type builder struct {
	cfg       *CFG
	cur       *Block
	breaks    []loopCtx
	continues []loopCtx
	labels    map[string]*Block
	gotos     []pendingGoto

	// pendingLabel names the label directly wrapping the next loop,
	// switch, or select, so labelled break/continue resolve to it.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) emit(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the label pending for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, loopCtx{label, brk})
	b.continues = append(b.continues, loopCtx{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, loopCtx{label, brk})
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func findTarget(stack []loopCtx, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].target
		}
	}
	return nil
}

func (b *builder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.emit(s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		head := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.link(head, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.link(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.link(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, after)
		} else {
			b.link(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
			cont = post
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		b.link(b.cur, cont)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.emit(s.X)
		head := b.newBlock()
		b.link(b.cur, head)
		// The RangeStmt node on the head block stands for the per-
		// iteration Key/Value definition (see Block doc).
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.link(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.caseBlocks(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.caseBlocks(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.pushBreak(label, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			b.link(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
		}
		b.popBreak()
		// A case-less select{} blocks forever: head then has no
		// successors and `after` is unreachable, which is exact.
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.link(b.cur, lb)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.link(b.cur, findTarget(b.breaks, label))
			b.cur = b.newBlock()
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.link(b.cur, findTarget(b.continues, label))
			b.cur = b.newBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled by caseBlocks; reaching it here (invalid Go)
			// is ignored.
		}

	default:
		// Straight-line statements: assignments, declarations, calls,
		// sends, defer/go registration, inc/dec, empty.
		b.emit(s)
	}
}

// caseBlocks builds the per-case blocks of a switch or type switch.
// fallthroughOK enables the fallthrough edge into the next case body.
func (b *builder) caseBlocks(label string, body *ast.BlockStmt, fallthroughOK bool) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	blocks := make([]*Block, len(body.List))
	for i := range body.List {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
	}
	b.pushBreak(label, after)
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); fallthroughOK && n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(blocks) {
			b.link(b.cur, blocks[i+1])
		} else {
			b.link(b.cur, after)
		}
	}
	b.popBreak()
	if !hasDefault {
		b.link(head, after)
	}
	b.cur = after
}

// String renders the CFG for tests and debugging: one line per block,
// statements printed compactly, successor indices at the end.
func (c *CFG) String() string {
	fset := token.NewFileSet()
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%s]", renderNode(fset, n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		if blk == c.Exit {
			sb.WriteString(" (exit)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderNode(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Render only the iteration-variable definition, not the body
		// (which lives in other blocks).
		s := "range"
		if r.Key != nil {
			s += " " + renderNode(fset, r.Key)
			if r.Value != nil {
				s += ", " + renderNode(fset, r.Value)
			}
		}
		return s
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
