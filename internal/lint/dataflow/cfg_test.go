package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestCFG pins the block structure for each control-flow construct the
// builder models. The golden strings are the CFG's own String() format:
// one block per line, nodes in brackets, successor indices at the end,
// b0 the entry and the synthetic exit marked.
func TestCFG(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if-else",
			src: `func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	} else {
		x = 3
	}
	return x
}`,
			want: `
b0: [x := 1] [a > 0] -> b2 b4
b1: (exit)
b2: [x = 2] -> b3
b3: [return x] -> b1
b4: [x = 3] -> b3
b5: -> b1
`,
		},
		{
			name: "for-with-post",
			src: `func f() {
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	_ = s
}`,
			want: `
b0: [s := 0] [i := 0] -> b2
b1: (exit)
b2: [i < 10] -> b3 b4
b3: [s += i] -> b5
b4: [_ = s] -> b1
b5: [i++] -> b2
`,
		},
		{
			// The nil-condition loop has no head->after edge: the only
			// way out is the break. This is the exact fact goroleak's
			// Blocking bit rests on.
			name: "forever-break-continue",
			src: `func f() {
	for {
		if stop() {
			break
		}
		continue
	}
	done()
}`,
			want: `
b0: -> b2
b1: (exit)
b2: -> b3
b3: [stop()] -> b5 b6
b4: [done()] -> b1
b5: -> b4
b6: -> b2
b7: -> b6
b8: -> b2
`,
		},
		{
			name: "select-in-loop",
			src: `func f(ch chan int, stop chan struct{}) {
	for {
		select {
		case v := <-ch:
			use(v)
		case <-stop:
			return
		}
	}
}`,
			want: `
b0: -> b2
b1: (exit)
b2: -> b3
b3: -> b6 b7
b4: -> b1
b5: -> b2
b6: [v := <-ch] [use(v)] -> b5
b7: [<-stop] [return] -> b1
b8: -> b5
`,
		},
		{
			// defer registers in straight line — its body is not inlined
			// — and goto resolves through the label table, here into a
			// self-loop.
			name: "defer-label-goto",
			src: `func f() {
	defer cleanup()
L:
	work()
	goto L
}`,
			want: `
b0: [defer cleanup()] -> b2
b1: (exit)
b2: [work()] -> b2
b3: -> b1
`,
		},
		{
			name: "switch-fallthrough-default",
			src: `func f(n int) {
	switch n {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
}`,
			want: `
b0: [n] -> b3 b4 b5
b1: (exit)
b2: -> b1
b3: [1] [one()] -> b4
b4: [2] [two()] -> b2
b5: [other()] -> b2
`,
		},
		{
			// defer inside a loop body registers once per iteration but
			// never splices the unlock into the loop's flow: the defer
			// node sits in the body block and the walk sees the lock as
			// net-held. This is the shape the lock walker's
			// defer-unlock-in-loop accumulation rests on.
			name: "defer-unlock-in-loop",
			src: `func f(mus []Mutex) {
	for i := range mus {
		mus[i].Lock()
		defer mus[i].Unlock()
	}
}`,
			want: `
b0: [mus] -> b2
b1: (exit)
b2: [range i] -> b3 b4
b3: [mus[i].Lock()] [defer mus[i].Unlock()] -> b2
b4: -> b1
`,
		},
		{
			// A lock split across if/else arms: both arms rejoin at the
			// same block, so a flow walk that clones held-sets per branch
			// must merge — neither arm's acquisition leaks past the join
			// unconditionally.
			name: "lock-split-if-else",
			src: `func f(c bool) {
	if c {
		mu.Lock()
	} else {
		mu.RLock()
	}
	work()
	if c {
		mu.Unlock()
	} else {
		mu.RUnlock()
	}
}`,
			want: `
b0: [c] -> b2 b4
b1: (exit)
b2: [mu.Lock()] -> b3
b3: [work()] [c] -> b5 b7
b4: [mu.RLock()] -> b3
b5: [mu.Unlock()] -> b6
b6: -> b1
b7: [mu.RUnlock()] -> b6
`,
		},
		{
			// Method values: f := mu.Lock captures the receiver, and the
			// later call site is a bare f() — the selector appears only in
			// the assignment node. Effect analyses keyed on call-site
			// selectors are conservatively blind here; the CFG still
			// records both statements in order.
			name: "method-value-lock",
			src: `func f() {
	lock := mu.Lock
	unlock := mu.Unlock
	lock()
	work()
	unlock()
}`,
			want: `
b0: [lock := mu.Lock] [unlock := mu.Unlock] [lock()] [work()] [unlock()] -> b1
b1: (exit)
`,
		},
		{
			// The range head carries the RangeStmt node standing for the
			// per-iteration key/value definition.
			name: "range",
			src: `func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`,
			want: `
b0: [s := 0] [xs] -> b2
b1: (exit)
b2: [range _, v] -> b3 b4
b3: [s += v] -> b2
b4: [return s] -> b1
b5: -> b1
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewCFG(parseFunc(t, tt.src)).String()
			if got != strings.TrimPrefix(tt.want, "\n") {
				t.Errorf("CFG mismatch\n got:\n%s\nwant:\n%s", got, tt.want)
			}
		})
	}
}

func checkFunc(t *testing.T, src string) (*ast.BlockStmt, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body, info
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// lastUse finds the last use of the named identifier in the body.
func lastUse(body *ast.BlockStmt, name string) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = id
		}
		return true
	})
	return found
}

func rhsStrings(defs []Def) []string {
	var out []string
	for _, d := range defs {
		if d.Rhs == nil {
			out = append(out, "<opaque>")
		} else {
			out = append(out, types.ExprString(d.Rhs))
		}
	}
	return out
}

func TestReachingDefs(t *testing.T) {
	tests := []struct {
		name string
		src  string
		varr string
		want []string // expected Rhs renderings, any order; nil = untracked
	}{
		{
			name: "branch-join",
			src: `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`,
			varr: "x",
			want: []string{"1", "2"},
		},
		{
			name: "shadowed-in-block",
			src: `package p
func f() int {
	x := 1
	x = 2
	return x
}`,
			varr: "x",
			want: []string{"2"},
		},
		{
			name: "loop-carried",
			src: `package p
func f(n int) int {
	x := 1
	for i := 0; i < n; i++ {
		x = x * 2
	}
	return x
}`,
			varr: "x",
			want: []string{"1", "x * 2"},
		},
		{
			name: "address-taken-untracked",
			src: `package p
func g(*int)
func f() int {
	x := 1
	g(&x)
	return x
}`,
			varr: "x",
			want: nil,
		},
		{
			name: "closure-write-untracked",
			src: `package p
func f() int {
	x := 1
	h := func() { x = 2 }
	h()
	return x
}`,
			varr: "x",
			want: nil,
		},
		{
			name: "param-untracked",
			src: `package p
func f(x int) int {
	return x
}`,
			varr: "x",
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body, info := checkFunc(t, tt.src)
			use := lastUse(body, tt.varr)
			if use == nil {
				t.Fatalf("no use of %s", tt.varr)
			}
			cfg := NewCFG(body)
			r := ReachingDefs(cfg, body, info)
			defs, ok := r.At(use)
			if tt.want == nil {
				if ok {
					t.Fatalf("At(%s) = %v, want untracked", tt.varr, rhsStrings(defs))
				}
				return
			}
			if !ok {
				t.Fatalf("At(%s) untracked, want %v", tt.varr, tt.want)
			}
			got := rhsStrings(defs)
			if len(got) != len(tt.want) {
				t.Fatalf("At(%s) = %v, want %v", tt.varr, got, tt.want)
			}
			for _, w := range tt.want {
				found := false
				for _, g := range got {
					if g == w {
						found = true
					}
				}
				if !found {
					t.Fatalf("At(%s) = %v, missing %v", tt.varr, got, w)
				}
			}
		})
	}
}
